"""Tests for the optional extensions: refresh, TLB, WG-Share, plotting."""

import dataclasses

import pytest

from repro.core.config import SimConfig
from repro.gpu.system import GPUSystem, simulate
from repro.gpu.tlb import TLB
from repro.workloads.profiles import IRREGULAR_PROFILES
from repro.workloads.synthetic import synthetic_trace


def small_trace(cfg, name="bfs", warps=32, loads=5, seed=4):
    profile = dataclasses.replace(
        IRREGULAR_PROFILES[name], warps=warps, loads_per_warp=loads
    )
    return synthetic_trace(profile, cfg, seed=seed, scale=1.0)


# -- refresh -----------------------------------------------------------------
def test_refresh_costs_time_and_counts():
    base = SimConfig().small()
    ref = dataclasses.replace(
        base,
        dram_timing=dataclasses.replace(
            base.dram_timing, refresh_enabled=True, trefi_ns=400.0, trfc_ns=160.0
        ),
    )
    trace = small_trace(base, warps=48, loads=8)
    s0 = simulate(base, trace)
    s1 = simulate(ref, trace)
    assert sum(c.refreshes for c in s1.channels) > 0
    assert s1.ipc() < s0.ipc()


def test_refresh_skipped_while_idle():
    base = SimConfig().small()
    ref = dataclasses.replace(
        base,
        dram_timing=dataclasses.replace(
            base.dram_timing, refresh_enabled=True, trefi_ns=400.0
        ),
    )
    # Tiny burst of work, long idle drain afterwards: the engine must not
    # spin on refresh events forever.
    trace = small_trace(ref, warps=4, loads=3)
    stats = simulate(ref, trace)
    assert stats.ipc() > 0


def test_refresh_timing_fields():
    t = SimConfig().dram_timing
    assert t.trefi_ps > t.trfc_ps > 0


# -- TLB ------------------------------------------------------------------------
def test_tlb_lru_and_rates():
    tlb = TLB(entries=2, page_bytes=4096)
    assert not tlb.lookup(0)
    tlb.fill(0)
    assert tlb.lookup(100)  # same page
    tlb.fill(4096)
    tlb.fill(8192)  # evicts page 0 (LRU order: 0 was MRU after lookup...)
    assert len(tlb) == 2
    assert 0.0 <= tlb.hit_rate() <= 1.0


def test_tlb_page_size_validation():
    with pytest.raises(ValueError):
        TLB(entries=4, page_bytes=3000)


def test_tlb_walk_addresses_line_aligned_and_bounded():
    tlb = TLB(entries=4, page_bytes=64 * 1024)
    for addr in (0, 1 << 20, 700 << 20):
        walk = tlb.walk_address(addr)
        assert walk < 768 << 20


def test_tlb_misses_add_walk_requests_and_cost():
    base = SimConfig().small()
    small_tlb = dataclasses.replace(
        base, use_tlb=True,
        gpu=dataclasses.replace(base.gpu, tlb_entries=4),
    )
    trace = small_trace(base, warps=32, loads=5)
    s0 = simulate(base, trace)
    sys_ = GPUSystem(small_tlb, trace)
    s1 = sys_.run()
    assert s1.requests_issued > s0.requests_issued  # page walks added
    miss = sum(sm.tlb.misses for sm in sys_.sms)
    assert miss > 0
    assert s1.ipc() <= s0.ipc() * 1.02


def test_large_tlb_near_perfect_coverage():
    """The paper's §V argument: big pages + enough entries -> ~100% hits."""
    base = SimConfig().small()
    big = dataclasses.replace(
        base, use_tlb=True,
        gpu=dataclasses.replace(
            base.gpu, tlb_entries=4096, page_bytes=1 << 20
        ),
    )
    small = dataclasses.replace(
        base, use_tlb=True,
        gpu=dataclasses.replace(base.gpu, tlb_entries=4, page_bytes=4096),
    )
    trace = small_trace(base, warps=32, loads=8)

    def hit_rate(cfg):
        sys_ = GPUSystem(cfg, trace)
        sys_.run()
        hits = sum(sm.tlb.hits for sm in sys_.sms)
        misses = sum(sm.tlb.misses for sm in sys_.sms)
        return hits / (hits + misses)

    big_rate = hit_rate(big)
    small_rate = hit_rate(small)
    # Large pages + capacity -> only compulsory misses remain.
    assert big_rate > 0.75
    assert big_rate > small_rate + 0.2


# -- WG-Share ---------------------------------------------------------------------
def test_wgshare_runs_and_stays_near_wgw():
    cfg = SimConfig().small()
    trace = small_trace(cfg, name="PVC", warps=48, loads=6)
    wgw = simulate(cfg.with_scheduler("wg-w"), trace)
    share = simulate(cfg.with_scheduler("wg-share"), trace)
    assert share.warp_instructions == wgw.warp_instructions
    assert share.ipc() > 0.9 * wgw.ipc()


def test_wgshare_bonus_computation():
    from repro.mc.warp_sorter import WarpSorter
    from helpers import MCHarness, make_request

    h = MCHarness("wg-share")
    mc = h.mc
    # Group of warp 1: one request on (bank0,row5); two other warps pend
    # on the same row.
    r = make_request(bank=0, row=5, warp_id=1)
    r.transaction = object.__new__(object)  # non-None sentinel
    mc.sorter.add(r, 0)
    for w in (2, 3):
        o = make_request(bank=0, row=5, warp_id=w)
        o.transaction = r.transaction
        mc.sorter.add(o, 0)
    entry = mc.sorter.get((0, 1))
    assert mc._sharing_bonus(entry) == 2


# -- plotting -----------------------------------------------------------------------
def test_hbar_chart_renders():
    from repro.analysis.plotting import hbar_chart

    out = hbar_chart(
        ["bfs", "cfd"], {"wg": [1.05, 1.10], "wg-w": [1.12, 1.15]},
        width=20, baseline=1.0,
    )
    assert "bfs" in out and "wg-w" in out
    assert "1.120" in out


def test_hbar_chart_validates_lengths():
    from repro.analysis.plotting import hbar_chart

    with pytest.raises(ValueError):
        hbar_chart(["a"], {"s": [1.0, 2.0]})
    with pytest.raises(ValueError):
        hbar_chart(["a"], {})


def test_sparkline():
    from repro.analysis.plotting import sparkline

    assert sparkline([]) == ""
    assert len(sparkline([1, 2, 3])) == 3
    assert sparkline([5, 5, 5]) == "▁▁▁"


def test_chart_result_from_experiment():
    from repro.analysis.experiments import table1_merb
    from repro.analysis.plotting import chart_result

    out = chart_result(table1_merb())
    assert "MERB" in out
    assert "█" in out
