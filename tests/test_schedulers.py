"""Behavioral tests for the individual scheduling policies.

These drive controllers directly with hand-built request patterns whose
correct service order is known from the paper's policy descriptions.
"""

import dataclasses

from repro.core.config import SimConfig
from repro.core.request import LoadTransaction

from helpers import MCHarness, make_request


def send_group(h: MCHarness, warp_id: int, specs, sm_id: int = 0):
    """Inject a complete warp-group: specs = [(bank, row), ...].

    Uses a real LoadTransaction so the group-size announcement flows
    exactly as in the full system.
    """
    txn = LoadTransaction(
        sm_id, warp_id, n_requests=len(specs), t_issue=h.engine.now,
        on_group_complete=lambda ch, key, n: h.mc.receive_group_complete(key, n),
    )
    reqs = []
    for bank, row in specs:
        req = make_request(bank=bank, row=row, sm_id=sm_id, warp_id=warp_id)
        req.transaction = txn
        txn.note_dispatched(0)
        reqs.append(req)
    for req in reqs:
        h.mc.receive_read(req)
    txn.finish_dispatch()
    return reqs


# ---------------------------------------------------------------------------
# FCFS / FR-FCFS
# ---------------------------------------------------------------------------
def test_fcfs_services_in_arrival_order_per_bank(harness):
    h = harness("fcfs")
    a = h.read(bank=0, row=1)
    b = h.read(bank=0, row=2)
    c = h.read(bank=0, row=1)  # row hit available, but FCFS ignores it
    h.run()
    assert a.t_data < b.t_data < c.t_data
    assert h.stats.row_hits == 0  # 1,2,1 never hits


def test_frfcfs_prefers_row_hits(harness):
    h = harness("frfcfs")
    a = h.read(bank=0, row=1)
    b = h.read(bank=0, row=2)
    c = h.read(bank=0, row=1)
    h.run()
    # c (row hit after a) jumps ahead of b.
    assert c.t_data < b.t_data
    assert h.stats.row_hits == 1


# ---------------------------------------------------------------------------
# GMC baseline
# ---------------------------------------------------------------------------
def test_gmc_max_streak_yields_to_other_row():
    cfg = dataclasses.replace(
        SimConfig(), mc=dataclasses.replace(SimConfig().mc, max_row_hit_streak=4)
    )
    h = MCHarness("gmc", cfg)
    hits = [h.read(bank=0, row=1, col=i % 16) for i in range(10)]
    other = h.read(bank=0, row=2)
    h.run()
    # The streak limit forces row 2 in before all ten row-1 requests drain.
    assert other.t_data < max(r.t_data for r in hits)


def test_gmc_age_threshold_rescues_starved_request():
    # Tiny threshold so requests age while the command queue drains; the
    # streak limit is disabled to isolate the age guard.
    cfg = dataclasses.replace(
        SimConfig(),
        mc=dataclasses.replace(
            SimConfig().mc, age_threshold_ns=10.0, max_row_hit_streak=1 << 20
        ),
    )
    h = MCHarness("gmc", cfg)
    h.read(bank=0, row=1, col=0)
    starved = h.read(bank=0, row=2)
    # A long row-1 stream that would starve row 2 forever without aging.
    for i in range(60):
        h.read(bank=0, row=1, col=i % 16)
    h.run()
    finished_after = sum(1 for r in h.delivered if r.t_data > starved.t_data)
    assert finished_after >= 10  # the starved miss preempted the stream


# ---------------------------------------------------------------------------
# WG (§IV-B)
# ---------------------------------------------------------------------------
def test_wg_shortest_group_first(harness):
    h = harness("wg")
    # Long group: 6 requests, all fresh rows on bank 0.
    long_group = send_group(h, warp_id=1, specs=[(0, r) for r in range(2, 8)])
    # Short group: 1 request on the same bank, arriving later.
    short_group = send_group(h, warp_id=2, specs=[(0, 99)])
    h.run()
    # SJF: the later, shorter group completes before the long one.
    assert short_group[0].t_data < max(r.t_data for r in long_group)


def test_wg_group_scheduled_together(harness):
    h = harness("wg")
    grp = send_group(h, warp_id=1, specs=[(0, 5), (1, 6), (2, 7)])
    # competing singles from other warps
    for i in range(6):
        send_group(h, warp_id=10 + i, specs=[(i % 3, 40 + i)])
    h.run()
    t_sched = [r.t_scheduled for r in grp]
    assert max(t_sched) == min(t_sched)  # pulled as one unit


def test_wg_waits_for_group_completion(harness):
    h = harness("wg")
    txn = LoadTransaction(
        0, 1, n_requests=2, t_issue=0,
        on_group_complete=lambda ch, key, n: h.mc.receive_group_complete(key, n),
    )
    first = make_request(bank=0, row=1, warp_id=1)
    first.transaction = txn
    txn.note_dispatched(0)
    txn.note_dispatched(0)
    h.mc.receive_read(first)
    # Competing complete singleton arrives later but is schedulable.
    other = send_group(h, warp_id=2, specs=[(0, 2)])[0]
    h.engine.run(max_events=10_000)
    assert other.t_data > 0
    assert first.t_data < 0  # still waiting: group incomplete
    # Second request arrives; group completes and drains.
    second = make_request(bank=1, row=1, warp_id=1)
    second.transaction = txn
    h.mc.receive_read(second)
    txn.finish_dispatch()
    h.run()
    assert first.t_data > 0 and second.t_data > 0


def test_wg_tie_break_prefers_row_hits(harness):
    h = harness("wg")
    # Prime bank 0 to row 5 and bank 1 to row 9.
    send_group(h, warp_id=1, specs=[(0, 5)])
    send_group(h, warp_id=2, specs=[(1, 9)])
    h.run()
    h.delivered.clear()
    # Two new singleton groups, same structure; one hits bank 0's row.
    hit = send_group(h, warp_id=3, specs=[(0, 5)])[0]
    miss = send_group(h, warp_id=4, specs=[(0, 6)])[0]
    h.run()
    assert hit.t_data < miss.t_data


# ---------------------------------------------------------------------------
# WAFCFS (§VI-C2)
# ---------------------------------------------------------------------------
def test_wafcfs_strict_completion_order(harness):
    h = harness("wafcfs")
    g1 = send_group(h, warp_id=1, specs=[(0, 1), (0, 3)])
    g2 = send_group(h, warp_id=2, specs=[(0, 2)])
    h.run()
    # Group 1 completed first, so *all* of it is serviced before group 2,
    # even though g2 would be a shorter job.
    assert max(r.t_data for r in g1) < g2[0].t_data


def test_wafcfs_no_row_reordering_inside_group(harness):
    h = harness("wafcfs")
    grp = send_group(h, warp_id=1, specs=[(0, 1), (0, 2), (0, 1)])
    h.run()
    order = sorted(grp, key=lambda r: r.t_data)
    assert [r.row for r in order] == [1, 2, 1]
    assert h.stats.row_hits == 0


# ---------------------------------------------------------------------------
# SBWAS (§VI-C1)
# ---------------------------------------------------------------------------
def test_sbwas_short_warp_preempts_row_stream(harness):
    h = harness("sbwas")
    # Warm a long row-hit stream on bank 0 for warp 1 (many remaining).
    stream = [h.read(bank=0, row=1, col=i % 16, warp_id=1) for i in range(12)]
    # Warp 2 has a single remaining request: row miss on the same bank.
    short = h.read(bank=0, row=2, warp_id=2)
    h.run()
    assert short.t_data < max(r.t_data for r in stream)


def test_sbwas_interleaves_writes_without_drain(harness):
    h = harness("sbwas")
    for i in range(6):
        h.read(bank=0, row=1, col=i % 16, warp_id=1)
    w = h.write(bank=0, row=1, col=7)
    h.run()
    assert h.stats.writes == 1
    assert h.stats.write_drains == 0
    assert h.mc.pending_work() == 0
