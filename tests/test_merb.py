"""Unit tests for the MERB computation (§IV-D, Table I)."""

import pytest

from repro.core.config import DRAMTimingConfig
from repro.dram.timing import DDR3_TIMING, GDDR5_TIMING
from repro.mc.merb import MERB_COUNTER_MAX, merb_table, merb_value, single_bank_utilization


def test_table1_reproduced_exactly():
    """The paper's Table I: MERB for GDDR5 by busy-bank count."""
    table = merb_table(GDDR5_TIMING, 16)
    assert table[1] == 31
    assert table[2] == 20
    assert table[3] == 10
    assert table[4] == 7
    assert table[5] == 5
    for b in range(6, 17):
        assert table[b] == 5


def test_single_bank_case_saturates_counter():
    assert merb_value(1, GDDR5_TIMING) == MERB_COUNTER_MAX


def test_invalid_bank_count():
    with pytest.raises(ValueError):
        merb_value(0, GDDR5_TIMING)


def test_values_monotonically_nonincreasing():
    table = merb_table(GDDR5_TIMING, 16)
    for b in range(2, 16):
        assert table[b + 1] <= table[b]


def test_activate_window_floor_binds_at_many_banks():
    """For b >= 5 the activate-rate floor max(tRRD, tFAW/4)/tBURST binds
    (5 bursts on GDDR5), so adding banks stops reducing MERB."""
    assert merb_value(5, GDDR5_TIMING) == merb_value(16, GDDR5_TIMING) == 5
    # Whereas at b=2..4 the row-cycle term dominates and shrinks with b.
    assert merb_value(2, GDDR5_TIMING) > merb_value(3, GDDR5_TIMING)


def test_ddr3_table_differs():
    """The MERB table is technology-specific: DDR3's slower tFAW and wider
    bursts change every entry, which is why the paper computes it at boot."""
    assert merb_table(DDR3_TIMING, 8) != merb_table(GDDR5_TIMING, 8)


def test_single_bank_utilization_62_percent():
    """§IV-D: 31 hits per activate delivers ~62% utilization on GDDR5."""
    assert single_bank_utilization(31, GDDR5_TIMING) == pytest.approx(0.62, abs=0.005)


def test_utilization_increases_with_streak_length():
    prev = 0.0
    for n in (1, 2, 4, 8, 16, 32):
        u = single_bank_utilization(n, GDDR5_TIMING)
        assert u > prev
        prev = u
    assert prev < 1.0


def test_utilization_rejects_zero():
    with pytest.raises(ValueError):
        single_bank_utilization(0, GDDR5_TIMING)


def test_values_clamped_to_counter_width():
    slow = DRAMTimingConfig(trp_ns=400.0, trcd_ns=400.0)
    assert merb_value(2, slow) == MERB_COUNTER_MAX
