"""Unit tests for the memory partition (L2 slice + controller glue)."""

import pytest

from repro.core.config import SimConfig
from repro.core.engine import Engine
from repro.core.request import LoadTransaction, MemoryRequest
from repro.core.stats import SimStats
from repro.gpu.address_map import AddressMap
from repro.gpu.partition import MemoryPartition


class FakeMC:
    """Captures what the partition forwards to the controller."""

    def __init__(self):
        self.reads = []
        self.writes = []

    def receive_read(self, req):
        self.reads.append(req)

    def receive_write(self, req):
        self.writes.append(req)


def build(part_id: int = 0, use_l2: bool = True):
    import dataclasses

    cfg = SimConfig()
    if not use_l2:
        cfg = dataclasses.replace(cfg, use_l2=False)
    eng = Engine()
    amap = AddressMap(cfg.dram_org)
    stats = SimStats(cfg.dram_org.num_channels)
    replies = []
    part = MemoryPartition(eng, part_id, cfg, amap, replies.append, stats)
    part.mc = FakeMC()
    return eng, amap, part, replies


def read_req(amap, part_id: int, bank=0, row=0, col=0):
    addr = amap.compose(part_id, bank, row, col)
    req = MemoryRequest(addr=addr, is_write=False, sm_id=0, warp_id=0)
    amap.route(req)
    return req


def test_cold_miss_forwards_to_mc():
    eng, amap, part, replies = build()
    req = read_req(amap, 0)
    part.receive(req)
    eng.run()
    assert part.mc.reads == [req]
    assert replies == []


def test_fill_then_hit():
    eng, amap, part, replies = build()
    req = read_req(amap, 0)
    part.receive(req)
    eng.run()
    part.on_dram_data(req)  # fill
    assert replies == [req]
    again = read_req(amap, 0)
    part.receive(again)
    eng.run()
    assert again.serviced_by == "l2"
    assert replies == [req, again]
    assert part.mc.reads == [req]  # no second DRAM read


def test_mshr_merges_concurrent_misses():
    eng, amap, part, replies = build()
    a = read_req(amap, 0)
    b = read_req(amap, 0)  # same line
    part.receive(a)
    part.receive(b)
    eng.run()
    assert part.mc.reads == [a]  # b merged
    part.on_dram_data(a)
    assert set(replies) == {a, b}


def test_write_allocates_dirty_and_evicts_to_dram():
    eng, amap, part, replies = build()
    cfg = SimConfig()
    sets = cfg.gpu.l2_slice.num_sets
    ways = cfg.gpu.l2_slice.ways
    # Collect channel-0 lines that all map to L2 set 0, enough to overflow
    # the set's associativity with dirty lines.
    addrs = []
    i = 0
    while len(addrs) < ways + 4:
        addr = i * sets * 128  # same set index
        i += 1
        if amap.channel_of(addr) == 0:
            addrs.append(addr)
    for addr in addrs:
        w = MemoryRequest(addr=addr, is_write=True, sm_id=0, warp_id=0)
        amap.route(w)
        part.receive(w)
    eng.run()
    assert part.writebacks >= 4
    assert all(w.is_write for w in part.mc.writes)


def test_write_hit_absorbed():
    eng, amap, part, replies = build()
    w1 = MemoryRequest(addr=amap.compose(0, 0, 1, 0), is_write=True, sm_id=0, warp_id=0)
    amap.route(w1)
    w2 = MemoryRequest(addr=w1.addr, is_write=True, sm_id=0, warp_id=0)
    amap.route(w2)
    part.receive(w1)
    part.receive(w2)
    eng.run()
    assert part.mc.writes == []
    assert part.writebacks == 0


def test_l2_disabled_passthrough():
    eng, amap, part, replies = build(use_l2=False)
    req = read_req(amap, 0)
    part.receive(req)
    eng.run()
    assert part.mc.reads == [req]
    part.on_dram_data(req)
    assert replies == [req]
    w = MemoryRequest(addr=amap.compose(0, 1, 1, 0), is_write=True, sm_id=0, warp_id=0)
    amap.route(w)
    part.receive(w)
    eng.run()
    assert part.mc.writes == [w]


def test_lookup_latency_applied():
    eng, amap, part, replies = build()
    req = read_req(amap, 0)
    part.receive(req)
    assert part.mc.reads == []  # not before the L2 lookup latency
    eng.run()
    assert part.mc.reads == [req]
    assert eng.now >= part.l2_lat_ps


def test_transaction_resolution_on_l2_hit():
    eng, amap, part, replies = build()
    req = read_req(amap, 0)
    part.receive(req)
    eng.run()
    part.on_dram_data(req)
    fired = []
    txn = LoadTransaction(
        0, 0, n_requests=1, t_issue=0,
        on_group_complete=lambda ch, key, n: fired.append(ch),
    )
    again = read_req(amap, 0)
    again.transaction = txn
    txn.note_dispatched(0)
    txn.finish_dispatch()
    part.receive(again)
    eng.run()
    # L2 hit -> resolved with to_dram False -> no group anywhere.
    assert fired == []
    assert again.serviced_by == "l2"
