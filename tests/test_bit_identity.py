"""Bit-identity regression gate for the hot-path optimizations (PR 5).

The incremental BASJF scorer, the engine's near-future event ring and the
command scheduler's next-legal-issue cache are all *pure* optimizations:
they must not change a single simulated outcome.  This gate pins that
claim against committed reference fingerprints taken on the
pre-optimization code: for every registered scheduler, a TINY guarded run
must produce a bit-identical summary (and event count, and simulated end
time) and a bit-identical Perfetto trace.

The fixture (``tests/fixtures/bit_identity.json``) was generated *before*
the optimizations landed and must only be regenerated when simulated
behavior changes intentionally (a new scheduler, a model-fidelity fix)::

    PYTHONPATH=src python tests/test_bit_identity.py --regen

A checkpoint/restore round trip is also exercised per scheduler so the
optimized structures prove they still pickle and resume bit-identically.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile

import pytest

import repro.core.request as request_mod
import repro.idealized  # noqa: F401  (registers zero-div)
from repro.core.config import SimConfig
from repro.gpu.system import GPUSystem
from repro.guardrails.checkpoint import load_checkpoint
from repro.guardrails.config import GuardrailConfig
from repro.mc.registry import SCHEDULERS
from repro.telemetry.hub import TelemetryHub
from repro.workloads.suite import Scale, build_benchmark

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures", "bit_identity.json")

#: Guarded exactly like the CI guardrails job: invariants + protocol audit.
_GUARDED = GuardrailConfig(invariants=True, audit=True)


def _sha(payload: dict) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


def _case(scheduler: str):
    """(config, trace) of the reference workload: TINY bfs, 2 channels."""
    # Request ids are drawn from a process-global cursor and are embedded
    # in the Perfetto trace; pin it so the fingerprint does not depend on
    # which tests (or schedulers) ran earlier in the process.
    request_mod._req_ids.next_id = 0
    config = SimConfig(scheduler=scheduler).small()
    trace = build_benchmark("bfs", config, Scale.TINY, seed=1)
    return config, trace


def fingerprint(scheduler: str) -> dict:
    """Reference fingerprint of one scheduler's TINY run.

    * ``summary_sha`` — guarded run's ``SimStats.summary()`` (every
      headline metric, bit-for-bit);
    * ``trace_sha`` — full Perfetto/Chrome trace of a telemetered run
      (every request's lifecycle instants, event-for-event);
    * ``events_processed`` / ``elapsed_ps`` — cheap diagnostics that
      localize a mismatch to "different event count" vs "different
      outcomes".
    """
    config, trace = _case(scheduler)
    system = GPUSystem(config, trace, guardrails=_GUARDED)
    stats = system.run()
    hub = TelemetryHub(sample_period_ns=100.0, trace=True)
    traced_stats = GPUSystem(config, trace, telemetry=hub).run()
    chrome = hub.tracer.chrome_trace(traced_stats.intervals)
    return {
        "summary_sha": _sha(stats.summary()),
        "trace_sha": _sha(chrome),
        "events_processed": system.engine.events_processed,
        "elapsed_ps": stats.elapsed_ps,
    }


def _load_fixture() -> dict:
    with open(FIXTURE) as fh:
        return json.load(fh)


@pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
def test_bit_identity_against_reference(scheduler):
    reference = _load_fixture()
    assert scheduler in reference, (
        f"no committed fingerprint for {scheduler!r}; regenerate with "
        f"`PYTHONPATH=src python tests/test_bit_identity.py --regen` "
        f"(only legitimate for intentional behavior changes)"
    )
    current = fingerprint(scheduler)
    expected = reference[scheduler]
    assert current["events_processed"] == expected["events_processed"], (
        f"{scheduler}: event count changed "
        f"({current['events_processed']} vs {expected['events_processed']})"
    )
    assert current["elapsed_ps"] == expected["elapsed_ps"]
    assert current["summary_sha"] == expected["summary_sha"], (
        f"{scheduler}: summary diverged from the pre-optimization reference"
    )
    assert current["trace_sha"] == expected["trace_sha"], (
        f"{scheduler}: Perfetto trace diverged from the pre-optimization "
        f"reference"
    )


@pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
def test_checkpoint_roundtrip_matches_reference(scheduler):
    """Snapshot mid-run, restore, finish: summary must match the fixture."""
    reference = _load_fixture()[scheduler]
    config, trace = _case(scheduler)
    baseline_elapsed_ns = reference["elapsed_ps"] / 1000.0
    period_ns = max(1.0, baseline_elapsed_ns / 3.0)
    with tempfile.TemporaryDirectory(prefix="bit-identity-") as tmp:
        path = os.path.join(tmp, "mid.ckpt")
        g = GuardrailConfig(checkpoint_period_ns=period_ns, checkpoint_path=path)
        direct = GPUSystem(config, trace, guardrails=g).run()
        assert _sha(direct.summary()) == reference["summary_sha"]
        if not os.path.exists(path):
            pytest.skip("run finished within the first checkpoint period")
        resumed = load_checkpoint(path).resume()
    assert _sha(resumed.summary()) == reference["summary_sha"], (
        f"{scheduler}: checkpoint/restore round trip diverged"
    )


def _regen() -> None:
    os.makedirs(os.path.dirname(FIXTURE), exist_ok=True)
    reference = {}
    for scheduler in sorted(SCHEDULERS):
        reference[scheduler] = fingerprint(scheduler)
        print(f"{scheduler:10s} {reference[scheduler]['summary_sha'][:12]} "
              f"({reference[scheduler]['events_processed']} events)")
    with open(FIXTURE, "w") as fh:
        json.dump(reference, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {FIXTURE}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
