"""Distributed sweep backend: retry policy, lease protocol, job store,
quarantine, manifest compaction, and cluster-vs-local bit-identity.

Process-killing fault injection lives in ``tests/test_cluster_chaos.py``;
this file proves the protocol building blocks and the happy/failure
paths that do not require SIGKILLing anybody.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time

import pytest

from repro.analysis.runner import ExperimentRunner
from repro.analysis.sweep import (
    MANIFEST_NAME,
    SweepJob,
    cluster_job_records,
    cluster_run_meta,
    load_manifest,
    run_sweep,
)
from repro.cluster.lease import Lease
from repro.cluster.retry import RetryPolicy
from repro.cluster.store import ClusterError, JobStore, compact_manifest, job_slug
from repro.cluster.worker import ClusterWorker
from repro.workloads.suite import Scale


def tiny_runner(path, **kw) -> ExperimentRunner:
    return ExperimentRunner(
        scale=Scale.TINY, seeds=(1,), cache_dir=str(path), **kw
    )


def cache_entries(path) -> dict[str, dict]:
    """Cache JSONs keyed by name, minus wall-clock (non-deterministic)."""
    return {
        p.name: {
            k: v
            for k, v in json.loads(p.read_text()).items()
            if k != "sim_wall_s"
        }
        for p in path.iterdir()
        if p.suffix == ".json" and p.name != MANIFEST_NAME
    }


# ----------------------------------------------------------------------
# RetryPolicy (satellite: one policy for local pool and cluster)
# ----------------------------------------------------------------------
def test_retry_policy_is_deterministic_and_bounded():
    p = RetryPolicy(base_s=0.25, cap_s=30.0, multiplier=2.0, jitter=0.5, seed=7)
    for attempt in range(1, 12):
        raw = min(30.0, 0.25 * 2.0 ** (attempt - 1))
        d1 = p.delay_s(attempt, token="core/sad/wg/tiny/s1")
        d2 = p.delay_s(attempt, token="core/sad/wg/tiny/s1")
        assert d1 == d2  # pure function of (seed, token, attempt)
        assert raw * 0.5 <= d1 <= raw  # jitter only shaves, never inflates
    assert p.delay_s(0) == 0.0 and p.delay_s(-3) == 0.0


def test_retry_policy_jitter_decorrelates_jobs():
    p = RetryPolicy(seed=0)
    delays = {p.delay_s(3, token=f"job-{i}") for i in range(16)}
    assert len(delays) == 16  # distinct tokens, distinct schedules


def test_retry_policy_seed_changes_schedule_zero_jitter_does_not():
    a, b = RetryPolicy(seed=1), RetryPolicy(seed=2)
    assert a.delay_s(2, token="x") != b.delay_s(2, token="x")
    flat = RetryPolicy(jitter=0.0, base_s=0.5)
    assert flat.delay_s(1, token="x") == 0.5
    assert flat.delay_s(3, token="y") == 2.0


def test_retry_policy_roundtrip_and_validation():
    p = RetryPolicy(base_s=0.1, cap_s=5.0, multiplier=3.0, jitter=0.25, seed=9)
    assert RetryPolicy.from_dict(p.to_dict()) == p
    assert RetryPolicy.from_dict({}) == RetryPolicy()
    with pytest.raises(ValueError):
        RetryPolicy(base_s=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)


# ----------------------------------------------------------------------
# lease protocol
# ----------------------------------------------------------------------
def lease_at(tmp_path, expiry_s=10.0) -> Lease:
    return Lease(str(tmp_path / "leases" / "job.lease"), expiry_s)


def test_lease_claim_read_release(tmp_path):
    lease = lease_at(tmp_path)
    assert lease.read() is None and not lease.expired()
    assert lease.try_claim("w1", attempt=1)
    info = lease.read()
    assert info.owner == "w1" and info.attempt == 1 and not info.corrupt
    assert not lease.expired(info)
    # duplicate claim loses cleanly while the lease is live
    assert not lease.try_claim("w2", attempt=1)
    assert lease.read().owner == "w1"
    # release by a non-owner is a no-op; by the owner it clears the slot
    lease.release("w2")
    assert lease.read().owner == "w1"
    lease.release("w1")
    assert lease.read() is None


def test_lease_renew_verifies_ownership_and_preserves_claim_time(tmp_path):
    lease = lease_at(tmp_path)
    assert lease.try_claim("w1")
    first = lease.read()
    assert lease.renew("w1")
    renewed = lease.read()
    assert renewed.heartbeat >= first.heartbeat
    assert renewed.claimed == first.claimed  # original claim ts survives
    assert not lease.renew("w2")  # not the owner
    lease.release("w1")
    assert not lease.renew("w1")  # nothing to renew


def test_expired_lease_is_reclaimed(tmp_path):
    lease = lease_at(tmp_path, expiry_s=0.0)  # everything is instantly stale
    assert lease.try_claim("dead", attempt=1)
    assert lease.expired()
    assert lease.try_claim("rescuer", attempt=2)
    info = lease.read()
    assert info.owner == "rescuer" and info.attempt == 2
    # the stale owner's renewal now reports the takeover
    assert not lease.renew("dead")


def test_corrupt_lease_falls_back_to_mtime_and_ages_out(tmp_path):
    from repro.cluster.chaos import corrupt_file

    lease = lease_at(tmp_path, expiry_s=10.0)
    assert lease.try_claim("w1")
    corrupt_file(lease.path)
    info = lease.read()
    assert info.corrupt and info.owner == ""
    # a corrupt lease still holds the slot until it expires...
    assert not lease.expired(info)
    assert not lease.try_claim("w2")
    # ...then expires on the mtime schedule and is reclaimable
    old = info.heartbeat - 60.0
    os.utime(lease.path, (old, old))
    assert lease.expired()
    assert lease.try_claim("w2", attempt=2)
    assert lease.read().owner == "w2"


def test_truncated_lease_behaves_like_corrupt(tmp_path):
    from repro.cluster.chaos import truncate_file

    lease = lease_at(tmp_path)
    assert lease.try_claim("w1")
    truncate_file(lease.path)
    assert lease.read().corrupt
    assert not lease.renew("w1")  # owner cannot prove ownership any more


def _steal_proc(path: str, owner: str, out_dir: str, go: str) -> None:
    while not os.path.exists(go):  # start line: maximize the actual race
        pass
    lease = Lease(path, expiry_s=5.0)
    if lease.try_claim(owner, attempt=2):
        with open(os.path.join(out_dir, owner), "w") as fh:
            fh.write("won")


def test_concurrent_steal_of_expired_lease_has_one_winner(tmp_path):
    """The rename-based steal: N racing reclaimers, exactly one claim."""
    lease = lease_at(tmp_path, expiry_s=5.0)
    assert lease.try_claim("dead")
    # Backdate the heartbeat: the dead worker's lease is stale, but the
    # winner's fresh claim will NOT be (so losers cannot re-steal it).
    doc = json.load(open(lease.path))
    doc["heartbeat"] = doc["claimed"] = time.time() - 60.0
    with open(lease.path, "w") as fh:
        json.dump(doc, fh)
    assert lease.expired()
    out = tmp_path / "winners"
    out.mkdir()
    go = str(tmp_path / "go")
    ctx = multiprocessing.get_context()
    procs = [
        ctx.Process(
            target=_steal_proc, args=(lease.path, f"thief{i}", str(out), go)
        )
        for i in range(8)
    ]
    for p in procs:
        p.start()
    open(go, "w").close()
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0
    winners = sorted(os.listdir(out))
    assert len(winners) == 1  # never zero, never two
    assert Lease(lease.path, 10.0).read().owner == winners[0]


# ----------------------------------------------------------------------
# job store
# ----------------------------------------------------------------------
def make_store(tmp_path, cache_name="cache", **meta_kw) -> JobStore:
    cache = tmp_path / cache_name
    cache.mkdir(exist_ok=True)
    runner = tiny_runner(cache)
    meta = cluster_run_meta(runner, **meta_kw)
    store = JobStore.create(str(tmp_path / "run"), meta)
    jobs = [
        SweepJob(
            kind="synthetic", bench="sad", scheduler=sched, scale="TINY",
            seed=1, perfect=False, config_hash=runner.config_hash,
        )
        for sched in ("gmc", "wg")
    ]
    store.ensure_jobs(cluster_job_records(jobs))
    return store


def test_store_create_is_idempotent_but_rejects_other_configs(tmp_path):
    store = make_store(tmp_path)
    meta = dict(store.meta)
    again = JobStore.create(store.root, {k: v for k, v in meta.items()
                                         if k not in ("schema_version", "created")})
    assert again.meta["created"] == meta["created"]  # kept, not re-keyed
    with pytest.raises(ClusterError, match="refusing to enqueue"):
        JobStore.create(store.root, {**meta, "config_hash": "deadbeef"})


def test_store_open_rejects_non_run_directories(tmp_path):
    with pytest.raises(ClusterError, match="no readable run.json"):
        JobStore.open(str(tmp_path))
    (tmp_path / "run.json").write_text(json.dumps({"schema_version": 99}))
    with pytest.raises(ClusterError, match="schema"):
        JobStore.open(str(tmp_path))
    (tmp_path / "run.json").write_text(json.dumps({"schema_version": 1}))
    with pytest.raises(ClusterError, match="missing"):
        JobStore.open(str(tmp_path))


def test_store_heals_corrupt_job_records(tmp_path):
    from repro.cluster.chaos import corrupt_file, truncate_file

    store = make_store(tmp_path)
    ids = store.job_ids()
    assert len(ids) == 2
    records = [store.job_record(j) for j in ids]
    paths = [os.path.join(store.jobs_dir, job_slug(j) + ".json") for j in ids]
    corrupt_file(paths[0])
    truncate_file(paths[1])
    assert store.job_ids() == []  # unreadable records drop out of the grid
    healed = store.ensure_jobs(records)
    assert healed == 2
    assert store.job_ids() == ids
    assert store.ensure_jobs(records) == 0  # idempotent once healthy


def test_store_state_machine(tmp_path):
    store = make_store(tmp_path, retries=5)
    job = store.job_ids()[0]
    assert store.state(job) == "pending"
    lease = store.lease(job)
    assert lease.try_claim("w1", attempt=1)
    assert store.state(job) == "running"
    # a failure + release puts the job in its backoff window...
    store.record_failure(job, {"owner": "w1", "ts": time.time()})
    lease.release("w1")
    assert store.state(job) == "backoff"
    # ...which ends after the policy delay
    later = store.next_eligible_s(job) + 0.001
    assert store.state(job, now=later) == "pending"
    store.publish_outcome(job, {"status": "done"})
    assert store.state(job) == "done"
    other = store.job_ids()[1]
    store.quarantine_mark(other, {"error": "poison"})
    assert store.state(other) == "quarantined"
    assert store.all_terminal()
    snap = store.snapshot()
    assert snap == {"done": [job], "quarantined": [other]}


def test_store_outcome_corruption_is_healed_once(tmp_path):
    from repro.cluster.chaos import corrupt_file

    store = make_store(tmp_path)
    job = store.job_ids()[0]
    assert store.publish_outcome(job, {"status": "done"})
    assert not store.publish_outcome(job, {"status": "done"})  # first wins
    path = os.path.join(store.outcomes_dir, job_slug(job) + ".json")
    corrupt_file(path)
    assert store.outcome(job) is None  # moved aside, job claimable again
    assert not os.path.exists(path)
    assert store.state(job) == "pending"
    assert store.publish_outcome(job, {"status": "done"})  # re-earned


def _failure_proc(root: str, job: str, owner: str, n: int) -> None:
    store = JobStore.open(root)
    for i in range(n):
        store.record_failure(job, {"owner": owner, "attempt": i})


def test_store_concurrent_failure_records_all_land(tmp_path):
    """Exclusive-create sequence numbering: no shared counter to corrupt."""
    store = make_store(tmp_path)
    job = store.job_ids()[0]
    ctx = multiprocessing.get_context()
    procs = [
        ctx.Process(target=_failure_proc, args=(store.root, job, f"w{i}", 5))
        for i in range(4)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0
    fails = store.failures(job)
    assert len(fails) == 20
    assert sorted(f["seq"] for f in fails) == list(range(1, 21))


def test_compact_manifest_folds_outcomes_and_quarantine(tmp_path):
    store = make_store(tmp_path)
    done, poisoned = store.job_ids()
    store.publish_outcome(done, {
        "status": "done", "simulated": True, "wall_s": 1.0,
        "sim_events": 10.0, "sim_wall_s": 0.5, "retries": 1,
        "error": "", "error_type": "", "checkpoint": "", "worker": "w1",
    })
    store.quarantine_mark(poisoned, {"error": "boom", "failures": 3})
    manifest = compact_manifest(store)
    assert manifest[done]["status"] == "done"
    assert manifest[done]["worker"] == "w1"
    assert manifest[done]["retries"] == 1
    assert manifest[poisoned]["status"] == "failed"
    assert manifest[poisoned]["error_type"] == "Quarantined"
    assert manifest[poisoned]["error"] == "boom"
    # and it landed in the classic on-disk manifest in the cache dir
    on_disk = load_manifest(store.meta["cache_dir"])
    assert set(on_disk) == {done, poisoned}


# ----------------------------------------------------------------------
# worker failure handling: terminal fail and poison quarantine
# ----------------------------------------------------------------------
def poison_store(tmp_path, **meta_kw) -> JobStore:
    """A store whose single job can never run (bench does not exist)."""
    cache = tmp_path / "cache"
    cache.mkdir(exist_ok=True)
    meta = cluster_run_meta(
        tiny_runner(cache),
        policy=RetryPolicy(base_s=0.01, cap_s=0.02),
        **meta_kw,
    )
    store = JobStore.create(str(tmp_path / "run"), meta)
    store.ensure_jobs([{
        "id": "core/nosuch/gmc/tiny/s1", "kind": "synthetic",
        "bench": "nosuch", "scheduler": "gmc", "scale": "TINY",
        "seed": 1, "perfect": False,
        "config_hash": meta["config_hash"],
    }])
    return store


def test_worker_exhausts_retries_into_failed_outcome(tmp_path):
    store = poison_store(tmp_path, retries=1, quarantine_owners=99)
    stats = ClusterWorker(store, worker_id="solo").drain()
    assert stats.failed_attempts == 2  # initial + one retry
    assert stats.done == 0
    outcome = store.outcome("core/nosuch/gmc/tiny/s1")
    assert outcome["status"] == "failed"
    assert outcome["error_type"] and outcome["error"]
    assert outcome["worker"] == "solo"
    assert len(store.failures("core/nosuch/gmc/tiny/s1")) == 2
    assert store.all_terminal()


def test_distinct_owner_failures_quarantine_poison_job(tmp_path):
    """Quarantine keys on *distinct* owners: one flaky host cannot poison
    a job, but a config that fails everywhere is frozen fleet-wide."""
    store = poison_store(tmp_path, retries=99, quarantine_owners=2)
    job = "core/nosuch/gmc/tiny/s1"
    a = ClusterWorker(store, worker_id="host-a").drain(max_jobs=1)
    assert a.failed_attempts == 1 and a.quarantined == 0
    assert store.quarantined(job) is None  # one owner is not enough
    b = ClusterWorker(store, worker_id="host-b").drain()
    assert b.quarantined == 1
    mark = store.quarantined(job)
    assert mark["owners"] == ["host-a", "host-b"]
    assert store.state(job) == "quarantined"
    # a third worker has nothing to claim: poison costs the fleet nothing
    c = ClusterWorker(store, worker_id="host-c").drain()
    assert c.claims == 0
    assert compact_manifest(store)[job]["error_type"] == "Quarantined"


def test_same_owner_failures_do_not_quarantine(tmp_path):
    store = poison_store(tmp_path, retries=2, quarantine_owners=2)
    stats = ClusterWorker(store, worker_id="only-host").drain()
    assert stats.failed_attempts == 3
    assert stats.quarantined == 0
    assert store.quarantined("core/nosuch/gmc/tiny/s1") is None
    assert store.outcome("core/nosuch/gmc/tiny/s1")["status"] == "failed"


# ----------------------------------------------------------------------
# run_sweep(cluster_dir=...): same API, same results, distributed drain
# ----------------------------------------------------------------------
def test_cluster_sweep_is_bit_identical_to_inline(tmp_path):
    work, ref = tmp_path / "work", tmp_path / "ref"
    work.mkdir(), ref.mkdir()
    report = run_sweep(
        tiny_runner(work), ["sad"], ["gmc", "wg"],
        workers=1, cluster_dir=str(tmp_path / "cluster"), history=False,
    )
    assert report.n_done == 2 and report.n_failed == 0
    assert all(r.worker for r in report.results)  # provenance stamped
    inline = run_sweep(
        tiny_runner(ref), ["sad"], ["gmc", "wg"], workers=0, history=False
    )
    assert inline.n_done == 2
    assert cache_entries(work) == cache_entries(ref)
    manifest = load_manifest(str(work))
    assert len(manifest) == 2
    assert all(e["status"] == "done" and e["worker"] for e in manifest.values())


def test_cluster_sweep_resume_skips_finished_jobs(tmp_path):
    cache = tmp_path / "cache"
    cache.mkdir()
    run_sweep(
        tiny_runner(cache), ["sad"], ["gmc"],
        workers=1, cluster_dir=str(tmp_path / "c1"), history=False,
    )
    second = run_sweep(
        tiny_runner(cache), ["sad"], ["gmc", "wg"],
        workers=1, cluster_dir=str(tmp_path / "c2"),
        resume=True, history=False,
    )
    assert second.n_skipped == 1  # the finished job never re-enqueued
    assert second.n_simulated == 1
    assert second.n_failed == 0


def test_cluster_sweep_without_cluster_dir_is_unchanged(tmp_path):
    """Degradation contract: no cluster dir -> the local pool, and no
    cluster run directory materializes anywhere near the cache."""
    report = run_sweep(
        tiny_runner(tmp_path), ["sad"], ["gmc"], workers=2, history=False
    )
    assert report.n_done == 1
    assert sorted(p.name for p in tmp_path.iterdir() if p.is_dir()) == []
