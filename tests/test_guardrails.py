"""Tests for the runtime guardrails (repro.guardrails): non-perturbation,
invariant detection of every injected fault class, and bit-identical
checkpoint/restore."""

import dataclasses
import pickle

import pytest

from repro.analysis.runner import config_hash
from repro.core.config import SimConfig
from repro.dram.commands import CommandKind
from repro.dram.validate import (
    CommandLog,
    ProtocolViolationError,
    StreamingAuditor,
    audit_command_log,
)
from repro.gpu.system import GPUSystem, simulate
from repro.guardrails import (
    CheckpointError,
    FaultInjectionError,
    FaultSpec,
    GuardrailConfig,
    InvariantViolation,
    load_checkpoint,
    peek_checkpoint,
    save_checkpoint,
)
from repro.telemetry import TelemetryHub
from repro.workloads.profiles import IRREGULAR_PROFILES
from repro.workloads.synthetic import synthetic_trace

import repro.idealized  # noqa: F401  (registers zero-div)
from repro.mc.registry import SCHEDULERS

# A small irregular workload: ~4000 ns simulated, every queue exercised.
PROFILE = dataclasses.replace(IRREGULAR_PROFILES["bfs"], warps=48, loads_per_warp=6)


def cfg_for(scheduler: str) -> SimConfig:
    return SimConfig().small().with_scheduler(scheduler)


def trace_for(cfg: SimConfig):
    return synthetic_trace(PROFILE, cfg, seed=1)


_BASELINE: dict[str, dict] = {}


def baseline(scheduler: str) -> dict:
    """Plain-run summary, computed once per scheduler per session."""
    if scheduler not in _BASELINE:
        cfg = cfg_for(scheduler)
        _BASELINE[scheduler] = simulate(cfg, trace_for(cfg)).summary()
    return _BASELINE[scheduler]


# ---------------------------------------------------------------------------
# config validation
# ---------------------------------------------------------------------------
def test_guardrail_config_validation():
    with pytest.raises(ValueError):
        GuardrailConfig(check_period_ns=0)
    with pytest.raises(ValueError):
        GuardrailConfig(stale_request_ns=-1)
    with pytest.raises(ValueError):
        GuardrailConfig(checkpoint_period_ns=100)  # no path
    g = GuardrailConfig(faults=[FaultSpec("crash", at_ns=1)])
    assert isinstance(g.faults, tuple)  # list coerced
    assert g.active and g.needs_driver


def test_guardrail_config_layer_flags():
    assert not GuardrailConfig().active
    audit_only = GuardrailConfig(audit=True)
    assert audit_only.active and not audit_only.needs_driver
    inv = GuardrailConfig(invariants=True)
    assert inv.active and inv.needs_driver


def test_fault_spec_validation():
    with pytest.raises(ValueError):
        FaultSpec("eat_flash", at_ns=1)
    with pytest.raises(ValueError):
        FaultSpec("crash", at_ns=-1)
    with pytest.raises(ValueError):
        FaultSpec("delay_response", at_ns=1)  # needs delay_ns > 0
    spec = FaultSpec("delay_response", at_ns=1.5, delay_ns=2.5)
    assert spec.at_ps == 1500 and spec.delay_ps == 2500


# ---------------------------------------------------------------------------
# non-perturbation: guardrails on == guardrails off, bit for bit
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("scheduler", ["wg", "frfcfs"])
def test_guardrails_do_not_perturb_the_simulation(scheduler):
    cfg = cfg_for(scheduler)
    guarded = simulate(
        cfg,
        trace_for(cfg),
        guardrails=GuardrailConfig(invariants=True, audit=True, check_period_ns=200),
    )
    assert guarded.summary() == baseline(scheduler)


# ---------------------------------------------------------------------------
# checkpoint / restore
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
def test_checkpoint_restore_is_bit_identical(tmp_path, scheduler):
    """A run finished from a mid-run snapshot reports the same statistics
    as an uninterrupted one — monitor ledger included."""
    ckpt = str(tmp_path / "snap.ckpt")
    cfg = cfg_for(scheduler)
    guardrails = GuardrailConfig(
        invariants=True,
        check_period_ns=200,
        checkpoint_period_ns=1500,
        checkpoint_path=ckpt,
    )
    full = simulate(cfg, trace_for(cfg), guardrails=guardrails)
    assert full.summary() == baseline(scheduler)

    meta = peek_checkpoint(ckpt)  # the last periodic snapshot, mid-run
    assert meta["scheduler"] == scheduler
    assert meta["config_hash"] == config_hash(cfg)
    assert 0 < meta["warps_done"] < PROFILE.warps

    system = load_checkpoint(ckpt, expected_config_hash=config_hash(cfg))
    resumed = system.resume()
    assert resumed.summary() == baseline(scheduler)


def test_checkpoint_rejects_wrong_config_hash(tmp_path):
    ckpt = str(tmp_path / "snap.ckpt")
    cfg = cfg_for("wg")
    save_checkpoint(GPUSystem(cfg, trace_for(cfg)), ckpt)
    with pytest.raises(CheckpointError, match="config"):
        load_checkpoint(ckpt, expected_config_hash="not-the-hash")


def test_checkpoint_rejects_version_and_format_mismatch(tmp_path):
    ckpt = tmp_path / "snap.ckpt"
    cfg = cfg_for("wg")
    save_checkpoint(GPUSystem(cfg, trace_for(cfg)), str(ckpt))
    envelope = pickle.loads(ckpt.read_bytes())
    envelope["version"] = 999
    ckpt.write_bytes(pickle.dumps(envelope))
    with pytest.raises(CheckpointError, match="version"):
        load_checkpoint(str(ckpt))

    not_ours = tmp_path / "other.ckpt"
    not_ours.write_bytes(pickle.dumps({"hello": "world"}))
    with pytest.raises(CheckpointError):
        load_checkpoint(str(not_ours))

    garbage = tmp_path / "garbage.ckpt"
    garbage.write_text("this is not a pickle")
    with pytest.raises(CheckpointError):
        load_checkpoint(str(garbage))

    with pytest.raises(CheckpointError, match="no checkpoint"):
        load_checkpoint(str(tmp_path / "missing.ckpt"))


def test_checkpoint_rejects_attached_telemetry(tmp_path):
    cfg = cfg_for("wg")
    system = GPUSystem(
        cfg, trace_for(cfg), telemetry=TelemetryHub(sample_period_ns=100.0)
    )
    with pytest.raises(CheckpointError, match="telemetry"):
        save_checkpoint(system, str(tmp_path / "snap.ckpt"))


# ---------------------------------------------------------------------------
# fault injection: every fault class is caught by its guardrail
# ---------------------------------------------------------------------------
def run_with_faults(*faults, audit=False, invariants=True):
    cfg = cfg_for("wg")
    guardrails = GuardrailConfig(
        invariants=invariants,
        audit=audit,
        # Tight watchdogs, scaled to the ~4000 ns run: the stale bound
        # still clears the longest natural request age (~1700 ns).
        check_period_ns=100,
        stale_request_ns=2500,
        stuck_mc_ns=400,
        faults=faults,
    )
    return simulate(cfg, trace_for(cfg), guardrails=guardrails)


def test_tight_watchdogs_pass_a_clean_run():
    """The fault tests' watchdog bounds do not false-positive."""
    assert run_with_faults().summary() == baseline("wg")


@pytest.mark.parametrize(
    "spec, law",
    [
        (FaultSpec("drop_response", at_ns=400), "stale-request"),
        (FaultSpec("delay_response", at_ns=400, delay_ns=4000), "stale-request"),
        (FaultSpec("duplicate_response", at_ns=400), "conservation"),
        (FaultSpec("stuck_mc", at_ns=800, channel=0), "stuck-mc"),
        (FaultSpec("corrupt_queue", at_ns=800, channel=0), "occupancy"),
    ],
    ids=lambda x: getattr(x, "kind", x),
)
def test_fault_is_caught_by_invariant(spec, law):
    with pytest.raises(InvariantViolation) as exc_info:
        run_with_faults(spec)
    assert exc_info.value.law == law
    assert exc_info.value.time_ps >= spec.at_ps


def test_illegal_command_caught_by_streaming_audit():
    with pytest.raises(ProtocolViolationError) as exc_info:
        run_with_faults(
            FaultSpec("illegal_command", at_ns=800, channel=0),
            audit=True,
            invariants=False,
        )
    assert exc_info.value.channel_id == 0


def test_crash_fault_raises():
    with pytest.raises(FaultInjectionError):
        run_with_faults(FaultSpec("crash", at_ns=800))


def test_dropped_response_without_watchdog_fails_final_conservation():
    """Even with watchdogs effectively off, the end-of-run ledger check
    still refuses to bless a run that lost a response."""
    cfg = cfg_for("wg")
    guardrails = GuardrailConfig(
        invariants=True,
        check_period_ns=100,
        stale_request_ns=10**6,
        stuck_mc_ns=10**6,
        faults=(FaultSpec("drop_response", at_ns=400),),
    )
    with pytest.raises((InvariantViolation, RuntimeError)) as exc_info:
        simulate(cfg, trace_for(cfg), guardrails=guardrails)
    if isinstance(exc_info.value, InvariantViolation):
        assert exc_info.value.law == "conservation"


# ---------------------------------------------------------------------------
# streaming auditor == offline auditor
# ---------------------------------------------------------------------------
def test_streaming_auditor_matches_offline_audit():
    T = SimConfig().dram_timing
    ORG = SimConfig().dram_org
    # A sequence with two deliberate violations (tRCD, tRRD) amid legal
    # commands; the collecting streaming auditor must report exactly what
    # the offline replay reports.
    rd = T.tck_ps
    cmds = [
        (0, CommandKind.ACT, 0, 5),
        (rd, CommandKind.RD, 0, 5, rd + T.tcas_ps, rd + T.tcas_ps + T.tburst_ps),
        (rd + T.tck_ps, CommandKind.ACT, 1, 7),
    ]
    log = CommandLog()
    streaming = StreamingAuditor(T, ORG, channel_id=3, collect=True)
    for c in cmds:
        log.record(*c)
        streaming.record(*c)
    offline = audit_command_log(log, T, ORG)
    assert streaming.violations == offline
    assert {v.rule for v in offline} >= {"ACT_TO_COL", "ACT_TO_ACT_DIFF"}
    assert streaming.commands_checked == len(cmds)


def test_streaming_auditor_raises_on_first_violation():
    T = SimConfig().dram_timing
    ORG = SimConfig().dram_org
    auditor = StreamingAuditor(T, ORG, channel_id=1)
    auditor.record(0, CommandKind.ACT, 0, 5)
    with pytest.raises(ProtocolViolationError) as exc_info:
        auditor.record(T.tck_ps, CommandKind.RD, 0, 5)
    assert exc_info.value.violation.rule == "ACT_TO_COL"
    assert exc_info.value.channel_id == 1
