"""Unit tests for the SM model: SIMT blocking, issue server, L1 path."""

from repro.core.config import SimConfig
from repro.core.engine import Engine
from repro.core.request import MemoryRequest
from repro.core.stats import SimStats
from repro.gpu.coalescer import CoalescerStats
from repro.gpu.sm import SMCore
from repro.gpu.warp import WarpStatus
from repro.workloads.trace import MemOp, Segment, WarpTrace


class SMHarness:
    """An SM wired to a perfect memory system with fixed latency."""

    def __init__(self, warps, config=None, mem_latency_ps=200_000, use_l1=True):
        import dataclasses

        cfg = config or SimConfig()
        if not use_l1:
            cfg = dataclasses.replace(cfg, use_l1=False)
        self.engine = Engine()
        self.stats = SimStats(cfg.dram_org.num_channels)
        self.coal = CoalescerStats()
        self.sent: list[MemoryRequest] = []
        self.done_warps = []
        self.mem_latency_ps = mem_latency_ps

        def send(req: MemoryRequest) -> None:
            self.sent.append(req)
            if req.is_write:
                return  # stores get no reply, as in the real system
            req.t_data = 0  # mark as memory-serviced
            self.engine.schedule(
                self.mem_latency_ps, lambda r=req: self.sm.receive_reply(r)
            )

        self.sm = SMCore(
            self.engine, 0, cfg, warps,
            send_request=send,
            group_complete_cb=lambda ch, key, n: None,
            on_warp_done=self.done_warps.append,
            sim_stats=self.stats,
            coal_stats=self.coal,
        )

    def run(self):
        self.sm.start()
        self.engine.run(max_events=1_000_000)


def warp(sm_id, wid, segments):
    return WarpTrace(sm_id, wid, segments)


def gather_op(lines, is_write=False):
    lanes = [line * 4096 + 4 * i for i, line in enumerate(lines * (32 // len(lines)))]
    return MemOp(is_write, lanes)


def test_warp_blocks_until_last_reply():
    w = warp(0, 0, [Segment(4, gather_op([1, 2, 3, 4]))])
    h = SMHarness([w])
    h.run()
    assert len(h.done_warps) == 1
    assert len(h.sent) == 4
    rec = h.stats.load_records[0]
    assert rec.n_requests == 4
    # Warp finished only after the last reply.
    assert h.done_warps[0].t_finished >= max(r.t_return for r in h.sent)


def test_issue_server_serializes_compute():
    warps = [warp(0, i, [Segment(100, None)]) for i in range(4)]
    h = SMHarness(warps)
    h.run()
    cfg = SimConfig()
    # 4 warps x 100 instructions at 1 IPC.
    assert h.engine.now >= 400 * cfg.gpu.core_cycle_ps
    assert h.stats.warp_instructions == 400


def test_memory_latency_overlaps_across_warps():
    # Two warps, each: tiny compute then a load. Their memory time overlaps.
    segs = [Segment(1, gather_op([1])), Segment(1, None)]
    h = SMHarness([warp(0, 0, list(segs)), warp(0, 1, [Segment(1, gather_op([9])), Segment(1, None)])])
    h.run()
    total = h.engine.now
    assert total < 2 * h.mem_latency_ps  # not serialized


def test_l1_hit_avoids_second_request():
    segs = [
        Segment(1, gather_op([7])),
        Segment(1, gather_op([7])),  # same line again -> L1 hit
    ]
    h = SMHarness([warp(0, 0, segs)])
    h.run()
    assert len(h.sent) == 1
    assert h.stats.l1_hits == 1
    assert len(h.stats.load_records) == 2


def test_l1_mshr_merges_cross_warp_same_line():
    h = SMHarness([
        warp(0, 0, [Segment(1, gather_op([5]))]),
        warp(0, 1, [Segment(1, gather_op([5]))]),
    ])
    h.run()
    assert len(h.sent) == 1  # second warp merged into the in-flight miss
    assert len(h.done_warps) == 2


def test_without_l1_every_line_is_sent():
    segs = [Segment(1, gather_op([7])), Segment(1, gather_op([7]))]
    h = SMHarness([warp(0, 0, segs)], use_l1=False)
    h.run()
    assert len(h.sent) == 2


def test_store_is_fire_and_forget():
    segs = [Segment(1, gather_op([3], is_write=True)), Segment(50, None)]
    h = SMHarness([warp(0, 0, segs)], mem_latency_ps=10**9)
    h.run()
    # Warp finished despite the write never being acknowledged.
    assert len(h.done_warps) == 1
    assert h.sent[0].is_write


def test_resident_warp_cap_staggers_start():
    import dataclasses

    cfg = SimConfig()
    cfg = dataclasses.replace(cfg, gpu=dataclasses.replace(cfg.gpu, max_warps_per_sm=2))
    warps = [warp(0, i, [Segment(2, gather_op([i + 1]))]) for i in range(6)]
    h = SMHarness(warps, config=cfg)
    h.sm.start()
    assert h.sm.resident_count == 2
    assert len(h.sm.pending) == 4
    h.engine.run(max_events=1_000_000)
    assert len(h.done_warps) == 6


def test_fully_masked_load_is_skipped():
    segs = [Segment(3, MemOp(False, [None] * 32))]
    h = SMHarness([warp(0, 0, segs)])
    h.run()
    assert len(h.sent) == 0
    assert len(h.done_warps) == 1
    assert h.stats.loads_issued == 0


def test_instruction_counting():
    segs = [Segment(10, gather_op([1])), Segment(5, None)]
    h = SMHarness([warp(0, 0, segs)])
    h.run()
    # 10 compute + 1 load + 5 compute.
    assert h.stats.warp_instructions == 16
