"""Tests for the Fig. 4 idealized opportunity models."""

import dataclasses

from repro.core.config import SimConfig
from repro.gpu.coalescer import coalesce
from repro.gpu.system import simulate
from repro.idealized import perfect_coalescing
from repro.mc.registry import SCHEDULERS
from repro.workloads.profiles import IRREGULAR_PROFILES
from repro.workloads.synthetic import synthetic_trace
from repro.workloads.trace import KernelTrace, MemOp, Segment, WarpTrace


def test_zero_div_registered():
    assert "zero-div" in SCHEDULERS


def test_perfect_coalescing_every_op_single_line():
    cfg = SimConfig()
    profile = dataclasses.replace(IRREGULAR_PROFILES["bh"], warps=32, loads_per_warp=4)
    trace = synthetic_trace(profile, cfg, seed=1)
    pc = perfect_coalescing(trace)
    assert pc.name.endswith("+perfect-coalescing")
    for w in pc.warps:
        for s in w.segments:
            if s.mem is None:
                continue
            assert len(coalesce(s.mem.lane_addrs)) == 1


def test_perfect_coalescing_preserves_structure():
    trace = KernelTrace("t", [
        WarpTrace(0, 0, [
            Segment(5, MemOp(False, [0, 4096, 8192] + [None] * 29)),
            Segment(2, None),
            Segment(1, MemOp(False, [None] * 32)),
        ])
    ])
    pc = perfect_coalescing(trace)
    segs = pc.warps[0].segments
    assert segs[0].compute_cycles == 5
    assert segs[0].mem is not None
    assert segs[1].mem is None
    assert segs[2].mem is None  # fully-masked op collapses to compute


def test_perfect_coalescing_speeds_up_divergent_workload():
    cfg = SimConfig().small()
    profile = dataclasses.replace(IRREGULAR_PROFILES["bfs"], warps=32, loads_per_warp=5)
    trace = synthetic_trace(profile, cfg, seed=2)
    base = simulate(cfg, trace)
    ideal = simulate(cfg, perfect_coalescing(trace))
    assert ideal.ipc() > base.ipc() * 1.3
    assert ideal.requests_issued < base.requests_issued


def test_zero_divergence_reduces_divergence_and_helps():
    cfg = SimConfig().small()
    profile = dataclasses.replace(IRREGULAR_PROFILES["bfs"], warps=48, loads_per_warp=6)
    trace = synthetic_trace(profile, cfg, seed=3)
    base = simulate(cfg.with_scheduler("gmc"), trace)
    zd = simulate(cfg.with_scheduler("zero-div"), trace)
    assert zd.mean_divergence_ns() < base.mean_divergence_ns()
    assert zd.ipc() > base.ipc()
    # Bandwidth is still charged: total DRAM reads essentially unchanged
    # (tiny deltas come from timing-dependent L2 MSHR merges).
    reads_zd = sum(c.reads for c in zd.channels)
    reads_base = sum(c.reads for c in base.channels)
    assert abs(reads_zd - reads_base) <= 0.02 * reads_base
