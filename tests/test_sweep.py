"""Tests for the robust parallel sweep harness (repro.analysis.sweep)."""

import json
import multiprocessing
import os
import time

import pytest

from repro.analysis.runner import ExperimentRunner
from repro.analysis.sweep import MANIFEST_NAME, load_manifest, run_sweep
from repro.workloads.suite import Scale


def tiny_runner(tmp_path, seeds=(1,)) -> ExperimentRunner:
    return ExperimentRunner(scale=Scale.TINY, seeds=seeds, cache_dir=str(tmp_path))


def test_sweep_requires_cache_dir():
    r = ExperimentRunner(scale=Scale.TINY, seeds=(1,))
    with pytest.raises(ValueError):
        run_sweep(r, ["sad"], ["gmc"])


def test_inline_sweep_fills_cache_and_manifest(tmp_path):
    r = tiny_runner(tmp_path)
    report = run_sweep(r, ["sad"], ["gmc", "wg"], workers=0)
    assert report.n_done == 2 and report.n_failed == 0
    assert report.n_simulated == 2
    assert report.events_total > 0
    manifest = load_manifest(str(tmp_path))
    assert len(manifest) == 2
    assert all(e["status"] == "done" for e in manifest.values())
    # Every published cache entry is complete, parseable JSON.
    for p in tmp_path.iterdir():
        if p.suffix == ".json" and p.name != MANIFEST_NAME:
            assert json.loads(p.read_text())["ipc"] > 0


def test_interrupted_sweep_resumes_without_resimulating(tmp_path):
    """A killed-then-resumed sweep re-simulates zero finished jobs."""
    r = tiny_runner(tmp_path)
    # "Interrupted" run: only part of the grid completed before the kill.
    first = run_sweep(r, ["sad"], ["gmc", "wg"], workers=0)
    assert first.n_simulated == 2
    mtimes = {p.name: p.stat().st_mtime_ns for p in tmp_path.iterdir()}
    # Resumed run over the full grid.
    r2 = tiny_runner(tmp_path)
    second = run_sweep(r2, ["sad"], ["gmc", "wg", "wg-m"], workers=0, resume=True)
    assert second.n_skipped == 2  # the finished jobs were not touched
    assert second.n_simulated == 1  # only the new cell ran
    assert second.n_failed == 0
    for p in tmp_path.iterdir():
        if p.name in mtimes and p.name != MANIFEST_NAME:
            assert p.stat().st_mtime_ns == mtimes[p.name], p.name
    # A third resume is a complete no-op.
    third = run_sweep(
        tiny_runner(tmp_path), ["sad"], ["gmc", "wg", "wg-m"], workers=0, resume=True
    )
    assert third.n_skipped == 3 and third.n_simulated == 0


def test_without_resume_manifest_is_ignored_but_cache_still_hits(tmp_path):
    r = tiny_runner(tmp_path)
    run_sweep(r, ["sad"], ["gmc"], workers=0)
    again = run_sweep(tiny_runner(tmp_path), ["sad"], ["gmc"], workers=0)
    assert again.n_done == 1
    assert again.n_simulated == 0 and again.n_cached == 1


def test_injected_crash_fails_only_that_job_and_is_retried(tmp_path, monkeypatch):
    """A worker crash fails only its job; one retry lets the sweep finish."""
    monkeypatch.setenv("REPRO_SWEEP_CRASH", "sad:wg:1")
    r = tiny_runner(tmp_path)
    report = run_sweep(r, ["sad"], ["gmc", "wg"], workers=2, retries=1)
    assert report.n_failed == 0 and report.n_done == 2
    crashed = [x for x in report.results if x.job.scheduler == "wg"]
    assert crashed[0].retries == 1  # resubmitted exactly once
    # All cache entries are intact (no partial JSON from the crashed worker).
    manifest = load_manifest(str(tmp_path))
    assert all(e["status"] == "done" for e in manifest.values())


def test_injected_crash_without_retry_budget_is_isolated(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SWEEP_CRASH", "sad:wg:1")
    r = tiny_runner(tmp_path)
    report = run_sweep(r, ["sad"], ["gmc", "wg"], workers=2, retries=0)
    assert report.n_failed == 1  # only the crashed job
    assert report.n_done == 1  # the rest of the sweep completed
    assert "injected crash" in report.failed[0].error
    with pytest.raises(RuntimeError):
        report.raise_on_failure()
    # The failed job is NOT marked done: a resume retries it (and the
    # crash marker makes the second attempt succeed).
    resumed = run_sweep(
        tiny_runner(tmp_path), ["sad"], ["gmc", "wg"], workers=0,
        retries=0, resume=True,
    )
    assert resumed.n_failed == 0
    assert resumed.n_skipped == 1 and resumed.n_simulated == 1


def test_bench_report_schema(tmp_path):
    r = tiny_runner(tmp_path)
    report = run_sweep(r, ["sad"], ["gmc"], workers=0)
    out = tmp_path / "BENCH_sweep.json"
    report.write_bench(str(out))
    doc = json.loads(out.read_text())
    assert doc["schema_version"] == 1
    assert doc["jobs_total"] == 1 and doc["jobs_done"] == 1
    assert doc["config_hash"] == r.config_hash
    (job,) = doc["jobs"]
    assert job["bench"] == "sad" and job["scheduler"] == "gmc"
    assert job["status"] == "done" and job["simulated"]
    assert job["events_per_sec"] > 0
    assert doc["events_per_sec"] > 0


def test_corrupt_manifest_is_tolerated(tmp_path):
    (tmp_path / MANIFEST_NAME).write_text("{not json")
    r = tiny_runner(tmp_path)
    report = run_sweep(r, ["sad"], ["gmc"], workers=0, resume=True)
    assert report.n_done == 1
    assert load_manifest(str(tmp_path))  # rewritten in valid form


def test_resume_reruns_job_whose_cache_entry_vanished(tmp_path):
    r = tiny_runner(tmp_path)
    run_sweep(r, ["sad"], ["gmc"], workers=0)
    for p in tmp_path.iterdir():
        if p.name != MANIFEST_NAME:
            os.unlink(p)  # cache evicted behind the manifest's back
    report = run_sweep(
        tiny_runner(tmp_path), ["sad"], ["gmc"], workers=0, resume=True
    )
    assert report.n_skipped == 0 and report.n_done == 1


def test_progress_reports_counts_and_eta(tmp_path):
    lines = []
    r = tiny_runner(tmp_path)
    run_sweep(r, ["sad"], ["gmc", "wg"], workers=0, progress=lines.append)
    assert any("1/2" in ln for ln in lines)
    assert any("2/2" in ln for ln in lines)
    assert "eta" in lines[0]
    assert "jobs done" in lines[-1]  # final summary line


# ---------------------------------------------------------------------------
# checkpoint-backed resume (repro.guardrails integration)
# ---------------------------------------------------------------------------
def ckpt_runner(path) -> ExperimentRunner:
    return ExperimentRunner(
        scale=Scale.TINY, seeds=(1,), cache_dir=str(path),
        checkpoint_period_ns=500.0,
    )


def cache_entries(path) -> dict[str, dict]:
    """Cache JSONs keyed by name, minus wall-clock (non-deterministic)."""
    return {
        p.name: {
            k: v
            for k, v in json.loads(p.read_text()).items()
            if k != "sim_wall_s"
        }
        for p in path.iterdir()
        if p.suffix == ".json" and p.name != MANIFEST_NAME
    }


def test_mid_run_crash_retry_resumes_from_checkpoint(tmp_path, monkeypatch):
    """A job that dies mid-simulation is retried from its last periodic
    snapshot, and the resumed result is identical to an uninterrupted run."""
    work = tmp_path / "work"
    ref = tmp_path / "ref"
    work.mkdir(), ref.mkdir()
    monkeypatch.setenv("REPRO_SWEEP_CRASH_AT", "sad:wg:1:1500")
    report = run_sweep(ckpt_runner(work), ["sad"], ["wg"], workers=0, retries=1)
    assert report.n_failed == 0 and report.n_done == 1
    (res,) = report.results
    assert res.retries == 1  # first attempt crashed at 1500 ns
    # The checkpoint is consumed (deleted) once the job lands.
    r = ckpt_runner(work)
    assert not os.path.exists(r.checkpoint_path("sad", "wg", 1, False))
    # An uninterrupted reference sweep produces the exact same cache entry.
    monkeypatch.delenv("REPRO_SWEEP_CRASH_AT")
    run_sweep(ckpt_runner(ref), ["sad"], ["wg"], workers=0)
    assert cache_entries(work) == cache_entries(ref)


def test_exhausted_retries_record_error_type_and_checkpoint(tmp_path, monkeypatch):
    """When retries run out, the manifest records what broke and where the
    last snapshot lives — and a later resume finishes from that snapshot."""
    monkeypatch.setenv("REPRO_SWEEP_CRASH_AT", "sad:wg:1:1500")
    report = run_sweep(ckpt_runner(tmp_path), ["sad"], ["wg"], workers=0, retries=0)
    assert report.n_failed == 1
    entry = next(iter(load_manifest(str(tmp_path)).values()))
    assert entry["status"] == "failed"
    assert entry["error_type"] == "FaultInjectionError"
    assert entry["checkpoint"] and os.path.exists(entry["checkpoint"])
    # Resume: the snapshot finishes the job without restarting from zero.
    monkeypatch.delenv("REPRO_SWEEP_CRASH_AT")
    second = run_sweep(
        ckpt_runner(tmp_path), ["sad"], ["wg"], workers=0, resume=True
    )
    assert second.n_failed == 0 and second.n_done == 1
    entry = next(iter(load_manifest(str(tmp_path)).values()))
    assert entry["status"] == "done" and entry["error_type"] == ""


def test_pre_run_crash_records_error_type_without_checkpoint(tmp_path, monkeypatch):
    """A crash before the simulation starts has no snapshot to point at."""
    monkeypatch.setenv("REPRO_SWEEP_CRASH", "sad:wg:1")
    report = run_sweep(
        tiny_runner(tmp_path), ["sad"], ["wg"], workers=0, retries=0
    )
    assert report.n_failed == 1
    entry = next(iter(load_manifest(str(tmp_path)).values()))
    assert entry["status"] == "failed"
    assert entry["error_type"] == "RuntimeError"
    assert entry["checkpoint"] == ""


# ---------------------------------------------------------------------------
# manifest reconciliation against an edited grid
# ---------------------------------------------------------------------------
def test_manifest_marks_orphans_stale_and_revives_them(tmp_path):
    """Regression: rows for jobs no longer in the grid used to survive in
    the manifest forever.  A still-cache-backed orphan is now marked
    ``stale`` and turns live again when its job returns to the grid."""
    run_sweep(tiny_runner(tmp_path), ["sad"], ["gmc"], workers=0)
    # Grid edit: gmc dropped, wg added.  The gmc cache entry survives.
    run_sweep(tiny_runner(tmp_path), ["sad"], ["wg"], workers=0)
    manifest = load_manifest(str(tmp_path))
    gmc_id = next(k for k in manifest if "/gmc/" in k)
    wg_id = next(k for k in manifest if "/wg/" in k)
    assert manifest[gmc_id]["stale"] is True
    assert "stale" not in manifest[wg_id]
    # The job returns: stale cleared, resume skips both without rerunning.
    report = run_sweep(
        tiny_runner(tmp_path), ["sad"], ["gmc", "wg"], workers=0, resume=True
    )
    assert report.n_skipped == 2 and report.n_simulated == 0
    manifest = load_manifest(str(tmp_path))
    assert all("stale" not in e for e in manifest.values())


def test_manifest_prunes_orphans_without_cache_backing(tmp_path):
    """An orphaned row whose cache entry is gone too is pruned outright."""
    run_sweep(tiny_runner(tmp_path), ["sad"], ["gmc"], workers=0)
    for p in tmp_path.iterdir():
        if p.name != MANIFEST_NAME:
            os.unlink(p)  # cache evicted behind the manifest's back
    lines = []
    run_sweep(
        tiny_runner(tmp_path), ["sad"], ["wg"], workers=0,
        progress=lines.append,
    )
    manifest = load_manifest(str(tmp_path))
    assert not any("/gmc/" in k for k in manifest)
    assert any("pruned" in ln for ln in lines)


def test_manifest_reconciles_config_change_orphans(tmp_path):
    """Changing the config re-keys every job id; the old rows are marked
    stale (their cache entries remain valid for the old config)."""
    from repro.core.config import SimConfig

    run_sweep(tiny_runner(tmp_path), ["sad"], ["gmc"], workers=0)
    other = ExperimentRunner(
        scale=Scale.TINY, seeds=(1,), cache_dir=str(tmp_path),
        config=SimConfig(use_l1=False),
    )
    run_sweep(other, ["sad"], ["gmc"], workers=0)
    manifest = load_manifest(str(tmp_path))
    assert len(manifest) == 2
    stale = [e for e in manifest.values() if e.get("stale")]
    assert len(stale) == 1  # the old config's row, cache still on disk


def test_manifest_prunes_malformed_rows(tmp_path):
    run_sweep(tiny_runner(tmp_path), ["sad"], ["gmc"], workers=0)
    path = tmp_path / MANIFEST_NAME
    doc = json.loads(path.read_text())
    doc["jobs"]["bogus-row"] = "not a dict"
    path.write_text(json.dumps(doc))
    run_sweep(tiny_runner(tmp_path), ["sad"], ["gmc"], workers=0, resume=True)
    assert "bogus-row" not in load_manifest(str(tmp_path))


# ---------------------------------------------------------------------------
# per-job timeout supervision and the shared retry policy
# ---------------------------------------------------------------------------
def test_hung_job_is_killed_at_timeout_not_abandoned(tmp_path, monkeypatch):
    """Regression (the abandoned-worker bug): a job that hung past its
    timeout used to have its future cancelled while the worker process
    kept running — and kept its pool slot — indefinitely.  The per-job
    supervisor must SIGKILL the worker at the deadline."""
    monkeypatch.setenv("REPRO_CHAOS", "job-start=stall:60")
    t0 = time.time()
    report = run_sweep(
        tiny_runner(tmp_path), ["sad"], ["gmc"],
        workers=1, timeout_s=1.0, retries=0,
    )
    elapsed = time.time() - t0
    assert report.n_failed == 1
    assert report.failed[0].error_type == "TimeoutError"
    assert "timeout after 1s" in report.failed[0].error
    assert elapsed < 30  # nowhere near the 60s hang
    assert multiprocessing.active_children() == []  # worker actually dead
    entry = next(iter(load_manifest(str(tmp_path)).values()))
    assert entry["status"] == "failed" and entry["error_type"] == "TimeoutError"


def test_worker_killed_without_result_is_detected(tmp_path, monkeypatch):
    """A worker that dies without reporting (OOM killer) is classified
    as a crash, not a hang — and does not poison the rest of the sweep."""
    monkeypatch.setenv("REPRO_CHAOS", "job-start=kill")
    report = run_sweep(
        tiny_runner(tmp_path), ["sad"], ["gmc"],
        workers=1, timeout_s=60.0, retries=0,
    )
    assert report.n_failed == 1
    assert report.failed[0].error_type == "WorkerCrashed"
    assert "died without reporting" in report.failed[0].error


def test_crashed_worker_is_retried_once_chaos_passes(tmp_path, monkeypatch):
    """``!once`` chaos: the first attempt is SIGKILLed, the retry runs
    clean — proving the supervisor's retry path end to end."""
    monkeypatch.setenv("REPRO_CHAOS_MARK_DIR", str(tmp_path / "marks"))
    monkeypatch.setenv("REPRO_CHAOS", "job-start=kill!once")
    report = run_sweep(
        tiny_runner(tmp_path / "cache"), ["sad"], ["gmc"],
        workers=1, timeout_s=60.0, retries=1,
    )
    assert report.n_failed == 0 and report.n_done == 1
    (res,) = report.results
    assert res.retries == 1  # the kill cost exactly one attempt


def test_retry_policy_paces_local_retries(tmp_path, monkeypatch):
    """Satellite: the seeded backoff policy is honored by both local
    dispatch paths (inline and pool), with the deterministic delay
    visible in the progress log."""
    from repro.cluster.retry import RetryPolicy

    policy = RetryPolicy(base_s=0.4, jitter=0.0)  # exact, no jitter
    for workers in (0, 2):
        cache = tmp_path / f"w{workers}"
        cache.mkdir()
        monkeypatch.setenv("REPRO_SWEEP_CRASH", "sad:gmc:1")
        lines = []
        t0 = time.time()
        report = run_sweep(
            tiny_runner(cache), ["sad"], ["gmc"],
            workers=workers, retries=1, retry_policy=policy,
            progress=lines.append,
        )
        elapsed = time.time() - t0
        assert report.n_failed == 0 and report.n_done == 1
        (res,) = report.results
        assert res.retries == 1
        assert elapsed >= 0.4  # the delay was actually slept, not skipped
        assert any("retrying" in ln and "0.40s" in ln for ln in lines)
