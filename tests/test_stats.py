"""Unit tests for statistics aggregation."""

from hypothesis import given, strategies as st

from repro.core.stats import ChannelStats, Histogram, LoadRecord, SimStats


def rec(
    n=4, dram=4, channels=2, banks=2, t_issue=0, first=100, last=400,
    first_dram=100, last_dram=400,
) -> LoadRecord:
    return LoadRecord(
        sm_id=0, warp_id=0, n_requests=n, dram_requests=dram,
        channels_touched=channels, banks_touched=banks, t_issue=t_issue,
        t_first_return=first, t_last_return=last,
        t_first_dram=first_dram, t_last_dram=last_dram,
    )


def test_histogram_mean_min_max():
    h = Histogram()
    h.extend([1.0, 2.0, 3.0])
    assert h.mean == 2.0
    assert h.min == 1.0
    assert h.max == 3.0
    assert len(h) == 3


def test_histogram_percentile():
    h = Histogram()
    h.extend(float(i) for i in range(101))
    assert h.percentile(0) == 0.0
    assert h.percentile(100) == 100.0
    assert 40 <= h.percentile(50) <= 60


@given(st.lists(st.floats(min_value=-1e9, max_value=1e9), min_size=1, max_size=500))
def test_histogram_reservoir_bounds(values):
    h = Histogram(capacity=64)
    h.extend(values)
    assert h.count == len(values)
    assert h.min == min(values)
    assert h.max == max(values)
    assert min(values) <= h.percentile(50) <= max(values)


def test_histogram_merge_exact_counters():
    a, b = Histogram(), Histogram()
    a.extend([1.0, 2.0, 3.0])
    b.extend([10.0, 20.0])
    assert a.merge(b) is a
    assert a.count == 5
    assert a.total == 36.0
    assert a.min == 1.0 and a.max == 20.0
    assert a.mean == 7.2


def test_histogram_merge_empty_and_into_empty():
    a, b = Histogram(), Histogram()
    b.extend([5.0, 6.0])
    a.merge(Histogram())  # merging empty is a no-op
    assert a.count == 0
    a.merge(b)
    assert a.count == 2 and a.percentile(100) == 6.0


def test_histogram_merge_small_reservoirs_keep_everything():
    a, b = Histogram(capacity=64), Histogram(capacity=64)
    a.extend(float(i) for i in range(10))
    b.extend(float(i) for i in range(100, 110))
    a.merge(b)
    assert sorted(a._reservoir) == [float(i) for i in range(10)] + [
        float(i) for i in range(100, 110)
    ]


def test_histogram_merge_respects_capacity_and_weights():
    a, b = Histogram(capacity=100), Histogram(capacity=100)
    a.extend(0.0 for _ in range(900))  # 90% of the merged population
    b.extend(1.0 for _ in range(100))
    a.merge(b)
    assert len(a._reservoir) == 100
    assert a.count == 1000
    ones = sum(1 for v in a._reservoir if v == 1.0)
    assert ones == 10  # proportional to b's population share
    assert a.percentile(50) == 0.0


def test_histogram_merge_is_reproducible():
    def build():
        # Small capacity so every merge takes the weighted-sampling path.
        total = Histogram(capacity=150)
        for chunk in range(5):
            h = Histogram()
            h.extend(float(chunk * 100 + i) for i in range(200))
            total.merge(h)
        return total

    x, y = build(), build()
    assert x._reservoir == y._reservoir
    for q in (0, 25, 50, 75, 90, 99, 100):
        assert x.percentile(q) == y.percentile(q)


def test_histogram_percentile_cache_invalidated_by_add_and_merge():
    h = Histogram()
    h.extend([1.0, 2.0, 3.0])
    assert h.percentile(100) == 3.0
    h.add(10.0)  # must invalidate the cached sorted reservoir
    assert h.percentile(100) == 10.0
    other = Histogram()
    other.add(50.0)
    h.merge(other)
    assert h.percentile(100) == 50.0
    assert h.percentile(0) == 1.0


def test_load_record_metrics():
    r = rec(first=100, last=400, first_dram=150, last_dram=390)
    assert r.divergence_ps == 240
    assert r.effective_latency_ps == 400
    assert r.first_latency_ps == 100
    assert abs(r.last_over_first - 390 / 150) < 1e-9


def test_load_record_without_dram_reply():
    r = rec(dram=0, first_dram=-1, last_dram=-1)
    assert r.divergence_ps == 0
    assert r.last_over_first == 1.0


def test_bank_imbalance_metric():
    c = ChannelStats()
    assert c.bank_imbalance() == 1.0  # no traffic: balanced by definition
    for bank, n in ((0, 10), (1, 10), (2, 40)):
        for _ in range(n):
            c.note_bank_column(bank)
    assert c.bank_columns == [10, 10, 40]
    assert c.bank_imbalance() == 2.0  # 40 / mean(20)


def test_bank_imbalance_ignores_idle_banks():
    # Pinned behavior (documented in the docstring): banks with zero
    # column accesses are excluded from the mean, so concentrating all
    # traffic evenly on a subset of banks still reports 1.0.
    c = ChannelStats()
    for bank in (0, 1, 2, 3):
        for _ in range(25):
            c.note_bank_column(bank)
    c.bank_columns.extend([0] * 12)  # 12 idle banks must not skew the mean
    assert c.bank_imbalance() == 1.0
    # An idle bank recorded between busy ones is likewise excluded.
    c2 = ChannelStats()
    c2.note_bank_column(0)
    c2.note_bank_column(2)
    assert c2.bank_columns == [1, 0, 1]
    assert c2.bank_imbalance() == 1.0


def test_channel_stats_rates():
    c = ChannelStats()
    c.row_hits, c.row_misses = 30, 10
    assert c.row_hit_rate() == 0.75
    c.data_bus_busy_ps = 500
    assert c.bandwidth_utilization(1000) == 0.5
    assert c.column_accesses == 0


def test_sim_stats_aggregations():
    s = SimStats(num_channels=2)
    s.warp_instructions = 1000
    s.elapsed_ps = 2_000_000  # 2 us
    assert s.ipc() == 0.5
    s.record_load(rec(n=1, dram=0, first_dram=-1, last_dram=-1))
    s.record_load(rec(n=4, dram=4))
    s.record_load(rec(n=6, dram=6, channels=3, last_dram=700, last=700))
    assert len(s.dram_loads()) == 2
    assert s.frac_divergent_loads() == 2 / 3
    assert abs(s.mean_requests_per_load() - 11 / 3) < 1e-9
    assert s.mean_channels_per_divergent_warp() == 2.5
    # divergences: 300 and 600 -> 450 ns mean 0.45
    assert abs(s.mean_divergence_ns() - 0.45) < 1e-9
    s.channels[0].row_hits = 8
    s.channels[0].row_misses = 2
    assert s.total_row_hit_rate() == 0.8
    s.channels[0].reads, s.channels[0].writes = 90, 10
    assert s.write_intensity() == 0.1
    summary = s.summary()
    assert summary["ipc"] == 0.5
    assert set(summary) >= {"effective_latency_ns", "row_hit_rate", "write_intensity"}


def test_empty_stats_are_zero_not_nan():
    s = SimStats(num_channels=1)
    for value in s.summary().values():
        assert value == value  # not NaN
    assert s.ipc() == 0.0
    assert s.mean_last_over_first() == 1.0
