"""Paper-accuracy export: EXPERIMENTS.md and results/accuracy.json must
never drift apart, and the export honors its provenance contract."""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.experiments import (
    ACCURACY_ENTRIES,
    accuracy_doc,
    write_accuracy,
)
from repro.analysis.schema import ACCURACY_SCHEMA, provenance_problems
from repro.history.store import HistoryStore

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _doc_rows() -> list[str]:
    with open(os.path.join(REPO_ROOT, "EXPERIMENTS.md")) as fh:
        return [line for line in fh if line.startswith("|")]


def test_entries_well_formed():
    assert len(ACCURACY_ENTRIES) >= 15
    ids = [e["id"] for e in ACCURACY_ENTRIES]
    assert len(ids) == len(set(ids))
    for e in ACCURACY_ENTRIES:
        assert set(e) == {
            "id", "figure", "metric", "unit", "paper", "measured",
            "delta", "paper_text", "measured_text",
        }, e["id"]
        assert e["unit"] in ("pct", "x", "count"), e["id"]
        assert e["delta"] == pytest.approx(
            round(e["measured"] - e["paper"], 6), abs=1e-9
        ), e["id"]


def test_doc_and_export_are_consistent():
    """Every entry's literal snippets appear in its EXPERIMENTS.md row.

    This is the drift guard: edit the doc table without updating
    ACCURACY_ENTRIES (or vice versa) and this test names the entry.
    """
    rows = _doc_rows()
    for e in ACCURACY_ENTRIES:
        row = next(
            (r for r in rows if r.startswith(f"| {e['figure']} ")), None
        )
        assert row is not None, f"{e['id']}: no table row for {e['figure']!r}"
        assert e["paper_text"] in row, (
            f"{e['id']}: paper snippet {e['paper_text']!r} not in the "
            f"{e['figure']} row — doc and export have drifted"
        )
        assert e["measured_text"] in row, (
            f"{e['id']}: measured snippet {e['measured_text']!r} not in "
            f"the {e['figure']} row — doc and export have drifted"
        )


def test_accuracy_doc_contract():
    doc = accuracy_doc()
    assert doc["schema_version"] == ACCURACY_SCHEMA
    assert doc["source"] == "EXPERIMENTS.md"
    assert provenance_problems("accuracy", doc) == []
    # the doc is a deep copy: mutating it must not poison the module table
    doc["entries"][0]["paper"] = -1
    assert ACCURACY_ENTRIES[0]["paper"] != -1


def test_write_accuracy_exports_and_ingests(tmp_path, monkeypatch):
    out = tmp_path / "accuracy.json"
    store = HistoryStore(str(tmp_path / "history"))
    monkeypatch.setenv("REPRO_HISTORY", "1")
    monkeypatch.setenv("REPRO_HISTORY_DIR", store.root)
    doc = write_accuracy(str(out))
    assert json.loads(out.read_text()) == doc
    record = store.latest("accuracy")
    assert record is not None and record.payload == doc


def test_committed_export_matches_generator():
    """results/accuracy.json in the tree is exactly accuracy_doc().

    Regenerate with ``python -m repro accuracy`` after touching either
    side.
    """
    path = os.path.join(REPO_ROOT, "results", "accuracy.json")
    assert os.path.exists(path), (
        "results/accuracy.json is not committed — run "
        "`python -m repro accuracy` and commit the result"
    )
    with open(path) as fh:
        committed = json.load(fh)
    assert committed == accuracy_doc()
