"""Terminal rendering helpers: analysis/plotting.py and analysis/report.py."""

from __future__ import annotations

import csv
import io

import pytest

from repro.analysis.experiments import ExperimentResult
from repro.analysis.plotting import chart_result, hbar_chart, sparkline
from repro.analysis.report import bar, format_table, geomean, rows_to_csv


# ----------------------------------------------------------------------
# hbar_chart
# ----------------------------------------------------------------------
def test_hbar_chart_basic_layout():
    out = hbar_chart(
        ["bfs", "spmv"],
        {"gmc": [1.0, 2.0], "wg-w": [1.5, 0.5]},
        width=10, fmt="{:.1f}",
    )
    lines = out.splitlines()
    # two labels x two series + a blank spacer between groups
    assert len([l for l in lines if l.strip()]) == 4
    assert lines[0].startswith(" bfs  gmc ")
    # label printed only on the first series row of each group
    assert lines[1].lstrip().startswith("wg-w")
    assert lines[0].rstrip().endswith("1.0")
    # the longest value fills the full width
    assert "█" * 10 in out


def test_hbar_chart_baseline_marker():
    out = hbar_chart(["a"], {"s": [0.5]}, width=10, baseline=1.0)
    # baseline sits at the right edge, past the bar: plain | marker
    assert "|" in out
    out2 = hbar_chart(["a"], {"s": [1.0]}, width=10, baseline=0.5)
    # baseline inside the filled bar renders the overstruck marker
    assert "┃" in out2


def test_hbar_chart_validates_input():
    with pytest.raises(ValueError, match="at least one series"):
        hbar_chart(["a"], {})
    with pytest.raises(ValueError, match="2 values for 1 labels"):
        hbar_chart(["a"], {"s": [1.0, 2.0]})


def test_hbar_chart_all_zero_values():
    out = hbar_chart(["a"], {"s": [0.0]}, width=10)
    assert "█" not in out  # no bar, but no crash and the value prints
    assert "0.000" in out


# ----------------------------------------------------------------------
# sparkline
# ----------------------------------------------------------------------
def test_sparkline_trend():
    line = sparkline([1.0, 2.0, 3.0, 4.0])
    assert len(line) == 4
    assert line[0] == "▁" and line[-1] == "█"
    assert line == "".join(sorted(line))


def test_sparkline_flat_and_empty():
    assert sparkline([]) == ""
    assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"


# ----------------------------------------------------------------------
# chart_result
# ----------------------------------------------------------------------
def _result(rows) -> ExperimentResult:
    return ExperimentResult(
        "Fig. X - test", ["benchmark", "wg", "wg-w"], rows
    )


def test_chart_result_renders_numeric_columns():
    out = chart_result(_result([["bfs", 1.0, 1.1], ["nw", 0.9, 1.2]]))
    assert out.startswith("Fig. X - test")
    assert "wg-w" in out and "bfs" in out


def test_chart_result_falls_back_to_table():
    # a non-numeric column (e.g. an alpha annotation) drops that series;
    # with no numeric series left the table is returned instead
    res = ExperimentResult("Fig. Y", ["benchmark", "note"], [["bfs", "n/a"]])
    assert chart_result(res) == res.table


def test_chart_result_mixed_columns():
    res = ExperimentResult(
        "Fig. Z", ["benchmark", "ipc", "note"],
        [["bfs", 1.25, "ok"], ["nw", 0.75, "meh"]],
    )
    out = chart_result(res)
    assert "ipc" in out and "note" not in out


# ----------------------------------------------------------------------
# report helpers
# ----------------------------------------------------------------------
def test_format_table_alignment_and_title():
    out = format_table(
        ["name", "value"], [["bfs", 1.23456], ["a-long-one", 2]],
        title="T",
    )
    lines = out.splitlines()
    assert lines[0] == "T" and lines[1] == "="
    assert lines[2].endswith("value")
    assert "1.235" in out  # default float format
    assert "2" in lines[-1]
    # every row right-aligns to the same width
    assert len({len(l) for l in lines[2:]}) == 1


def test_rows_to_csv_roundtrip():
    text = rows_to_csv(["a", "b"], [[1, "x,y"], [2, "z"]])
    rows = list(csv.reader(io.StringIO(text)))
    assert rows == [["a", "b"], ["1", "x,y"], ["2", "z"]]


def test_geomean():
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    assert geomean([]) == 0.0
    assert geomean([-1.0, 0.0]) == 0.0  # non-positive values drop out
    assert geomean([3.0, -5.0]) == pytest.approx(3.0)


def test_bar_clamps():
    assert bar(1.0, scale=10, maximum=2.0) == "#####"
    assert bar(5.0, scale=10, maximum=2.0) == "#" * 10
    assert bar(-1.0) == ""
