"""Tests for the differential/metamorphic fuzzer (repro.fuzz).

The two regression tests re-introduce real bugs this codebase shipped
and later fixed (overflow writes invisible to forwarding; MERB gate
overfilling the command queue) and assert the fuzzer catches each one
within a few seed-0 cases, minimizes it, and writes an artifact that
replays deterministically — and stops reproducing once the patch is
reverted.
"""

import dataclasses
import json
import os

import pytest

import repro.mc.base as mc_base
import repro.mc.wgbw as mc_wgbw
from repro.__main__ import main
from repro.analysis.runner import config_hash
from repro.core.config import SimConfig
from repro.fuzz import (
    CaseGenerator,
    load_artifact,
    minimize,
    run_campaign,
    run_oracle,
    save_artifact,
)
from repro.fuzz.artifact import (
    ArtifactError,
    build_artifact,
    config_from_dict,
    trace_from_json,
    trace_to_json,
)
from repro.fuzz.oracles import ORACLES
from repro.mc.warp_sorter import WarpGroupEntry
from repro.mc.wgbw import ORPHAN_LIMIT
from repro.workloads.mutate import (
    MUTATORS,
    churn_lane_masks,
    flip_address_bits,
    flip_read_write,
    mutate_trace,
    truncate_warps,
)
from repro.workloads.trace import KernelTrace, MemOp, Segment, WarpTrace

import numpy as np


# ---------------------------------------------------------------------------
# generator
# ---------------------------------------------------------------------------
def test_generator_is_deterministic():
    a, b = CaseGenerator(3), CaseGenerator(3)
    for i in (0, 1, 5):
        ca, cb = a.case(i), b.case(i)
        assert config_hash(ca.config) == config_hash(cb.config)
        assert trace_to_json(ca.trace) == trace_to_json(cb.trace)
        assert ca.recipe == cb.recipe


def test_generator_seeds_diverge():
    h0 = [config_hash(CaseGenerator(0).case(i).config) for i in range(4)]
    h1 = [config_hash(CaseGenerator(1).case(i).config) for i in range(4)]
    assert h0 != h1


def test_generated_cases_are_valid_and_labelled():
    g = CaseGenerator(11)
    recipes = set()
    for i in range(12):
        case = g.case(i)
        case.config.validate()  # never raises: the generator filters
        assert case.trace.warps, "generated kernels must have work"
        recipes.add(case.recipe["config_recipe"])
        if case.recipe["config_recipe"] == "mc-stress":
            # Stress cases force cacheless, tiny-write-queue traffic.
            assert not case.config.use_l1 and not case.config.use_l2
            assert case.config.mc.write_queue_entries <= 4
    assert recipes == {"sampled", "mc-stress"}


# ---------------------------------------------------------------------------
# mutation operators
# ---------------------------------------------------------------------------
def _toy_trace() -> KernelTrace:
    return KernelTrace("toy", [
        WarpTrace(0, 0, [
            Segment(3, MemOp(False, [64, 128, None, 192])),
            Segment(2, MemOp(True, [256])),
        ]),
        WarpTrace(0, 1, [Segment(1, MemOp(False, [512, 576]))]),
        WarpTrace(1, 0, [Segment(4, None), Segment(1, MemOp(False, [1024]))]),
    ])


def test_truncate_warps_keeps_selected():
    t = truncate_warps(_toy_trace(), [0, 2])
    assert len(t.warps) == 2
    assert (t.warps[0].sm_id, t.warps[0].warp_id) == (0, 0)
    assert (t.warps[1].sm_id, t.warps[1].warp_id) == (1, 0)


def test_churn_lane_masks_keeps_a_live_lane():
    rng = np.random.default_rng(5)
    for _ in range(20):
        t = churn_lane_masks(_toy_trace(), rng)
        for w in t.warps:
            for s in w.segments:
                if s.mem is not None:
                    assert s.mem.active_lanes() >= 1


def test_flip_read_write_changes_direction():
    rng = np.random.default_rng(5)
    before = [s.mem.is_write for w in _toy_trace().warps
              for s in w.segments if s.mem]
    flipped = False
    for _ in range(10):
        t = flip_read_write(_toy_trace(), rng)
        after = [s.mem.is_write for w in t.warps for s in w.segments if s.mem]
        flipped = flipped or after != before
    assert flipped


def test_flip_address_bits_stays_nonnegative():
    rng = np.random.default_rng(5)
    for _ in range(20):
        t = flip_address_bits(_toy_trace(), rng)
        addrs = [a for w in t.warps for s in w.segments if s.mem
                 for a in s.mem.lane_addrs if a is not None]
        assert all(a >= 0 for a in addrs)


def test_mutate_trace_does_not_modify_input():
    original = _toy_trace()
    reference = trace_to_json(original)
    rng = np.random.default_rng(9)
    mutate_trace(original, rng, sorted(MUTATORS))
    assert trace_to_json(original) == reference


# ---------------------------------------------------------------------------
# minimizer
# ---------------------------------------------------------------------------
def test_minimizer_shrinks_to_the_culprit_warp():
    warps = [
        WarpTrace(0, i, [Segment(2, MemOp(False, [64 * i + 64]))])
        for i in range(8)
    ]
    warps[5] = WarpTrace(0, 5, [
        Segment(2, MemOp(True, [0xDEAD00])),
        Segment(1, MemOp(False, [128])),
    ])
    trace = KernelTrace("t", warps)

    def predicate(_config, t):
        return any(
            s.mem and s.mem.is_write and 0xDEAD00 in s.mem.lane_addrs
            for w in t.warps for s in w.segments
        )

    cfg = dataclasses.replace(SimConfig(), mc=dataclasses.replace(
        SimConfig().mc, age_threshold_ns=123.0))
    result = minimize(cfg, trace, predicate, max_evals=100)
    assert len(result.trace.warps) == 1
    assert result.trace.warps[0].warp_id == 5
    assert len(result.trace.warps[0].segments) == 1
    # The config delta was irrelevant to the failure -> neutralized.
    assert "mc.age_threshold_ns" in result.neutralized
    assert result.config.mc.age_threshold_ns == SimConfig().mc.age_threshold_ns
    assert 0 < result.evals <= 100


def test_minimizer_never_returns_empty_trace():
    trace = KernelTrace("t", [WarpTrace(0, 0, [Segment(1, MemOp(False, [64]))])])
    result = minimize(SimConfig(), trace, lambda _c, _t: True, max_evals=20)
    assert len(result.trace.warps) == 1


# ---------------------------------------------------------------------------
# artifacts
# ---------------------------------------------------------------------------
def _artifact_for(case, oracle="determinism", scheduler="frfcfs"):
    return build_artifact(
        campaign_seed=case.campaign_seed,
        case_index=case.index,
        oracle=oracle,
        scheduler=scheduler,
        schedulers=[scheduler],
        detail="demo",
        config=case.config,
        trace=case.trace,
        recipe=case.recipe,
        minimized=False,
        minimize_evals=0,
        neutralized=[],
        original_warps=len(case.trace.warps),
    )


def test_artifact_roundtrip(tmp_path):
    case = CaseGenerator(7).case(0)
    path = str(tmp_path / "a.json")
    save_artifact(path, _artifact_for(case))
    loaded = load_artifact(path)
    assert loaded["oracle"] == "determinism"
    assert loaded["config_hash"] == config_hash(case.config)
    rebuilt = config_from_dict(loaded["config"])
    assert config_hash(rebuilt) == config_hash(case.config)
    assert trace_to_json(trace_from_json(loaded["trace"])) \
        == trace_to_json(case.trace)


def test_artifact_rejects_tampered_config(tmp_path):
    case = CaseGenerator(7).case(0)
    path = tmp_path / "a.json"
    save_artifact(str(path), _artifact_for(case))
    doc = json.loads(path.read_text())
    doc["config"]["use_l1"] = not doc["config"]["use_l1"]
    path.write_text(json.dumps(doc))
    with pytest.raises(ArtifactError, match="hash"):
        load_artifact(str(path))


def test_artifact_rejects_wrong_format(tmp_path):
    path = tmp_path / "a.json"
    path.write_text(json.dumps({"format": "something-else", "version": 1}))
    with pytest.raises(ArtifactError, match="repro-fuzz-repro"):
        load_artifact(str(path))
    path.write_text("not json at all")
    with pytest.raises(ArtifactError):
        load_artifact(str(path))


def test_oracle_catalogue_is_documented():
    assert set(ORACLES) >= {
        "invariants", "forwarding-consistency", "merb-gate-contract",
        "load-latency-bounds", "scorer-differential", "differential-totals",
        "trace-equivalence", "determinism", "telemetry-perturbation",
        "checkpoint-restore", "timing-scale",
    }
    assert all(isinstance(doc, str) and doc for doc in ORACLES.values())


# ---------------------------------------------------------------------------
# campaigns
# ---------------------------------------------------------------------------
def test_clean_mini_campaign():
    report = run_campaign(
        seed=0, iterations=2, schedulers=["frfcfs", "wg"], artifact_dir=None,
    )
    assert report.clean
    assert report.cases_run == 2


def test_campaign_requires_a_bound():
    with pytest.raises(ValueError):
        run_campaign(seed=0)


# ---------------------------------------------------------------------------
# regression: PR 2 bug A — overflowed writes invisible to read forwarding
# ---------------------------------------------------------------------------
def _buggy_receive_write(self, req):
    """Pre-fix behavior: overflowed writes were never indexed."""
    req.t_mc_arrival = self.engine.now
    if len(self.write_queue) >= self.mc.write_queue_entries or self._write_overflow:
        self._write_overflow.append(req)
    else:
        self._admit_write(req)
    self._kick()


def test_fuzzer_catches_overflow_forwarding_regression(tmp_path, monkeypatch):
    monkeypatch.setattr(
        mc_base.MemoryController, "receive_write", _buggy_receive_write
    )
    report = run_campaign(
        seed=0, iterations=3, schedulers=["fcfs"],
        artifact_dir=str(tmp_path), do_minimize=True,
    )
    assert not report.clean
    failure = report.failures[0]
    assert failure.oracle == "forwarding-consistency"
    assert failure.artifact_path and os.path.exists(failure.artifact_path)
    assert failure.minimized_warps is not None

    artifact = load_artifact(failure.artifact_path)
    assert artifact["minimized"]
    assert artifact["original_warps"] >= failure.minimized_warps
    config = config_from_dict(artifact["config"])
    trace = trace_from_json(artifact["trace"])

    # Deterministic replay: the minimized artifact trips the same oracle
    # every time while the bug is present ...
    for _ in range(2):
        replayed = run_oracle(
            artifact["oracle"], config, trace, artifact["schedulers"]
        )
        assert replayed is not None
        assert replayed.oracle == "forwarding-consistency"

    # ... and stops reproducing the moment the fix is restored.
    monkeypatch.undo()
    assert run_oracle(
        artifact["oracle"], config, trace, artifact["schedulers"]
    ) is None


# ---------------------------------------------------------------------------
# regression: PR 2 bug B — MERB gate overfilling the command queue
# ---------------------------------------------------------------------------
def _buggy_merb_gate(self, bank, open_row, now):
    """Pre-fix behavior: fillers and orphan rescues ignored queue space."""
    busy = self.cq.busy_banks()
    if not self.cq.queues[bank]:
        busy += 1
    busy = max(1, min(busy, len(self._merb) - 1))
    need = self._merb[busy]
    pending = self.sorter.pending_hits(bank, open_row)
    while pending and self.cq.hits_since_row_change[bank] < need:
        filler = pending[0]
        self.sorter.remove_request(filler)
        self.cq.insert(filler, now)
        self.stats.merb_deferrals += 1
        pending = self.sorter.pending_hits(bank, open_row)
    pending = self.sorter.pending_hits(bank, open_row)
    if 0 < len(pending) <= ORPHAN_LIMIT:
        for filler in list(pending):
            self.sorter.remove_request(filler)
            self.cq.insert(filler, now)
            self.stats.orphan_rescues += 1


def test_fuzzer_catches_uncapped_merb_regression(tmp_path, monkeypatch):
    monkeypatch.setattr(
        mc_wgbw.WGBwController, "_merb_gate", _buggy_merb_gate
    )
    report = run_campaign(
        seed=0, iterations=1, schedulers=["wg-bw"],
        artifact_dir=str(tmp_path), do_minimize=True,
    )
    assert not report.clean
    failure = report.failures[0]
    assert failure.oracle == "merb-gate-contract"
    assert failure.artifact_path and os.path.exists(failure.artifact_path)

    artifact = load_artifact(failure.artifact_path)
    config = config_from_dict(artifact["config"])
    trace = trace_from_json(artifact["trace"])
    replayed = run_oracle(
        artifact["oracle"], config, trace, artifact["schedulers"]
    )
    assert replayed is not None and replayed.oracle == "merb-gate-contract"

    monkeypatch.undo()
    assert run_oracle(
        artifact["oracle"], config, trace, artifact["schedulers"]
    ) is None


# ---------------------------------------------------------------------------
# regression: incremental BASJF state drifting from the naive walk (PR 5)
# ---------------------------------------------------------------------------
def _buggy_entry_add(self, req):
    """Corrupted maintenance: chain contributions are never folded in."""
    bank = req.bank
    reqs = self.by_bank.get(bank)
    if reqs is None:
        self.by_bank[bank] = [req]
        self.bank_stats[bank] = [req.row, 0, 0]
    else:
        reqs.append(req)  # stats[1]/stats[2] silently go stale
    self.n_requests += 1
    self.received += 1


def test_fuzzer_catches_incremental_scorer_drift(tmp_path, monkeypatch):
    monkeypatch.setattr(WarpGroupEntry, "add", _buggy_entry_add)
    report = run_campaign(
        seed=0, iterations=3, schedulers=["wg"],
        artifact_dir=str(tmp_path), do_minimize=False,
    )
    assert not report.clean
    failure = report.failures[0]
    assert failure.oracle == "scorer-differential"
    assert failure.artifact_path and os.path.exists(failure.artifact_path)

    artifact = load_artifact(failure.artifact_path)
    config = config_from_dict(artifact["config"])
    trace = trace_from_json(artifact["trace"])
    replayed = run_oracle(
        artifact["oracle"], config, trace, artifact["schedulers"]
    )
    assert replayed is not None and replayed.oracle == "scorer-differential"

    # The healthy maintenance passes the same case.
    monkeypatch.undo()
    assert run_oracle(
        artifact["oracle"], config, trace, artifact["schedulers"]
    ) is None


# ---------------------------------------------------------------------------
# regression: vectorized front end dropping part of a coalesced op
# ---------------------------------------------------------------------------
import repro.gpu.frontend as gpu_frontend

_real_coalesce_many = gpu_frontend.coalesce_many


def _broken_coalesce_many(lane_addrs, line_bytes):
    """Corrupted mask reduction: the last line of every divergent op is lost."""
    lines, offsets = _real_coalesce_many(lane_addrs, line_bytes)
    out_lines: list[int] = []
    new_offsets = [0]
    for i in range(len(offsets) - 1):
        lo, hi = int(offsets[i]), int(offsets[i + 1])
        if hi - lo > 1:
            hi -= 1
        out_lines.extend(lines[lo:hi].tolist())
        new_offsets.append(len(out_lines))
    return (
        np.asarray(out_lines, dtype=np.int64),
        np.asarray(new_offsets, dtype=np.int64),
    )


def test_fuzzer_catches_broken_mask_reduction(tmp_path, monkeypatch):
    """The frontend-differential oracle pins the vectorized coalescer.

    A pool built from the broken reduction is *internally* consistent —
    every simulation sees the same (wrong) request set, so determinism,
    checkpoint/restore, telemetry and the guarded invariants all still
    hold.  Only the scalar-reference comparison can see the loss, which
    is exactly why it is in the catalogue.
    """
    monkeypatch.setattr(gpu_frontend, "coalesce_many", _broken_coalesce_many)
    # Five iterations: the metamorphic rotation reaches
    # frontend-differential on case index 4.
    report = run_campaign(
        seed=0, iterations=5, schedulers=["wg"],
        artifact_dir=str(tmp_path), do_minimize=True,
    )
    assert not report.clean
    failure = report.failures[0]
    assert failure.oracle == "frontend-differential"
    assert failure.artifact_path and os.path.exists(failure.artifact_path)
    assert failure.minimized_warps is not None

    artifact = load_artifact(failure.artifact_path)
    assert artifact["minimized"]
    config = config_from_dict(artifact["config"])
    trace = trace_from_json(artifact["trace"])
    replayed = run_oracle(
        artifact["oracle"], config, trace, artifact["schedulers"]
    )
    assert replayed is not None and replayed.oracle == "frontend-differential"

    # The healthy reduction passes the same minimized case.
    monkeypatch.undo()
    assert run_oracle(
        artifact["oracle"], config, trace, artifact["schedulers"]
    ) is None


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def test_cli_fuzz_requires_a_bound(capsys):
    assert main(["fuzz"]) == 2
    assert "iterations" in capsys.readouterr().err


def test_cli_fuzz_replay_rejects_campaign_flags(capsys):
    assert main(["fuzz", "--replay", "x.json", "--iterations", "1"]) == 2


def test_cli_fuzz_replay_missing_artifact(capsys):
    assert main(["fuzz", "--replay", "no-such-file.json"]) == 2


def test_cli_fuzz_smoke_campaign(tmp_path, capsys):
    rc = main([
        "fuzz", "--iterations", "1", "--seed", "0",
        "--schedulers", "frfcfs", "--artifact-dir", str(tmp_path), "--quiet",
    ])
    assert rc == 0
    assert "clean" in capsys.readouterr().err


def test_cli_fuzz_replay_fixed_build_exits_3(tmp_path, capsys):
    # An artifact whose oracle passes on this build: exit 3, not 0.
    case = CaseGenerator(7).case(0)
    path = str(tmp_path / "stale.json")
    save_artifact(path, _artifact_for(case, oracle="determinism"))
    assert main(["fuzz", "--replay", path, "--quiet"]) == 3
    assert "did NOT reproduce" in capsys.readouterr().err
