"""Unit tests for trace containers, builders and persistence."""

import numpy as np
import pytest

from repro.workloads.builder import ELEM_BYTES, Layout, TraceBuilder, WarpBuilder, chunk_lanes
from repro.workloads.trace import (
    KernelTrace,
    MemOp,
    Segment,
    TraceFormatError,
    WarpTrace,
)


def test_segment_instruction_count():
    assert Segment(5, None).instructions == 5
    assert Segment(5, MemOp(False, [0])).instructions == 6


def test_warp_trace_accounting():
    w = WarpTrace(0, 0, [
        Segment(3, MemOp(False, [0, 4])),
        Segment(2, MemOp(True, [8])),
        Segment(4, None),
    ])
    assert w.instructions() == 11
    assert w.memory_ops() == 2
    assert len(list(w.loads())) == 1


def test_kernel_by_sm_buckets_and_validation():
    k = KernelTrace("t", [WarpTrace(0, 0, []), WarpTrace(1, 0, []), WarpTrace(0, 1, [])])
    buckets = k.by_sm(2)
    assert len(buckets[0]) == 2 and len(buckets[1]) == 1
    with pytest.raises(ValueError):
        k.by_sm(1)


def test_save_load_roundtrip(tmp_path):
    mem = MemOp(False, [100, None, 204] + [None] * 29)
    k = KernelTrace("demo", [
        WarpTrace(0, 0, [Segment(7, mem), Segment(2, None)]),
        WarpTrace(1, 3, [Segment(0, MemOp(True, [4096 + 4 * i for i in range(32)]))]),
    ])
    path = str(tmp_path / "trace.npz")
    k.save(path)
    loaded = KernelTrace.load(path)
    assert loaded.name == "demo"
    assert loaded.total_instructions() == k.total_instructions()
    assert loaded.total_memory_ops() == k.total_memory_ops()
    w0 = loaded.warps[0]
    assert w0.segments[0].mem.lane_addrs[:3] == [100, None, 204]
    assert loaded.warps[1].segments[0].mem.is_write


# -- load() hardening ---------------------------------------------------------
def _demo_trace() -> KernelTrace:
    return KernelTrace("demo", [
        WarpTrace(0, 0, [Segment(3, MemOp(False, [64, None, 128]))]),
        WarpTrace(0, 1, [Segment(1, MemOp(True, [256]))]),
    ])


def _resave(path, **overrides):
    """Rewrite a saved trace archive with some arrays replaced."""
    with np.load(path, allow_pickle=False) as data:
        arrays = {k: data[k] for k in data.files}
    arrays.update(overrides)
    np.savez(path, **arrays)


def test_load_rejects_non_archive(tmp_path):
    path = str(tmp_path / "garbage.npz")
    with open(path, "w") as fh:
        fh.write("this is not a zip archive")
    with pytest.raises(TraceFormatError, match="garbage.npz"):
        KernelTrace.load(path)


def test_load_rejects_missing_file(tmp_path):
    with pytest.raises(TraceFormatError, match="missing.npz"):
        KernelTrace.load(str(tmp_path / "missing.npz"))


def test_load_rejects_missing_array(tmp_path):
    path = str(tmp_path / "t.npz")
    _demo_trace().save(path)
    with np.load(path, allow_pickle=False) as data:
        arrays = {k: data[k] for k in data.files if k != "lanes"}
    np.savez(path, **arrays)
    with pytest.raises(TraceFormatError, match="'lanes'"):
        KernelTrace.load(path)


def test_load_rejects_bad_dtype(tmp_path):
    path = str(tmp_path / "t.npz")
    _demo_trace().save(path)
    _resave(path, lanes=np.array([1.5, 2.5]))
    with pytest.raises(TraceFormatError, match="'lanes'.*dtype"):
        KernelTrace.load(path)


def test_load_rejects_bad_shape(tmp_path):
    path = str(tmp_path / "t.npz")
    _demo_trace().save(path)
    _resave(path, warp_meta=np.zeros((2, 2), dtype=np.int64))
    with pytest.raises(TraceFormatError, match="'warp_meta'.*shape"):
        KernelTrace.load(path)


def test_load_rejects_segment_count_mismatch(tmp_path):
    path = str(tmp_path / "t.npz")
    _demo_trace().save(path)
    with np.load(path, allow_pickle=False) as data:
        warp_meta = data["warp_meta"].copy()
    warp_meta[0, 2] += 1  # claim a segment that isn't there
    _resave(path, warp_meta=warp_meta)
    with pytest.raises(TraceFormatError, match="seg_meta.*claims"):
        KernelTrace.load(path)


def test_load_rejects_lane_count_mismatch(tmp_path):
    path = str(tmp_path / "t.npz")
    _demo_trace().save(path)
    with np.load(path, allow_pickle=False) as data:
        lanes = data["lanes"].copy()
    _resave(path, lanes=lanes[:-1])  # drop one flattened lane address
    with pytest.raises(TraceFormatError, match="lanes.*claims"):
        KernelTrace.load(path)


def test_trace_format_error_is_value_error(tmp_path):
    # Callers that already catch ValueError keep working.
    assert issubclass(TraceFormatError, ValueError)


# -- builders -----------------------------------------------------------------
def test_layout_allocates_aligned_and_tracks():
    lay = Layout()
    a = lay.alloc("a", 100)
    b = lay.alloc("b", 10)
    assert a % 256 == 0 and b % 256 == 0
    assert b >= a + 100 * ELEM_BYTES
    assert set(lay.arrays) == {"a", "b"}


def test_layout_overflow():
    lay = Layout(capacity=1024)
    with pytest.raises(MemoryError):
        lay.alloc("big", 10_000)


def test_warp_builder_stream_and_compute():
    wb = WarpBuilder(0, 0)
    wb.compute(5).load_stream(0, 0).compute(3).store_stream(4096, 0)
    trace = wb.finish()
    assert len(trace.segments) == 2
    assert trace.segments[0].compute_cycles == 5
    assert not trace.segments[0].mem.is_write
    assert trace.segments[1].mem.is_write
    # A stream covers consecutive 4B elements.
    lanes = trace.segments[0].mem.lane_addrs
    assert lanes == [4 * i for i in range(32)]


def test_warp_builder_gather_masks_missing_lanes():
    wb = WarpBuilder(0, 0)
    wb.load_gather(0, [1, None, 5])
    seg = wb.finish().segments[0]
    assert seg.mem.lane_addrs[0] == 4
    assert seg.mem.lane_addrs[1] is None
    assert seg.mem.lane_addrs[3] is None  # beyond provided indices


def test_warp_builder_trailing_compute_flushed():
    wb = WarpBuilder(0, 0)
    wb.compute(9)
    trace = wb.finish()
    assert trace.segments[-1].compute_cycles == 9
    assert trace.segments[-1].mem is None


def test_trace_builder_round_robin_sm_assignment():
    tb = TraceBuilder("t", num_sms=3)
    for _ in range(7):
        tb.new_warp().compute(1)
    k = tb.build()
    assert [w.sm_id for w in k.warps] == [0, 1, 2, 0, 1, 2, 0]
    # Per-SM warp ids are dense.
    assert [w.warp_id for w in k.warps] == [0, 0, 0, 1, 1, 1, 2]


def test_chunk_lanes():
    chunks = chunk_lanes(np.arange(70))
    assert [len(c) for c in chunks] == [32, 32, 6]
