"""Unit tests for trace containers, builders and persistence."""

import numpy as np
import pytest

from repro.workloads.builder import ELEM_BYTES, Layout, TraceBuilder, WarpBuilder, chunk_lanes
from repro.workloads.trace import (
    KernelTrace,
    MemOp,
    Segment,
    TraceFormatError,
    WarpTrace,
)


def test_segment_instruction_count():
    assert Segment(5, None).instructions == 5
    assert Segment(5, MemOp(False, [0])).instructions == 6


def test_warp_trace_accounting():
    w = WarpTrace(0, 0, [
        Segment(3, MemOp(False, [0, 4])),
        Segment(2, MemOp(True, [8])),
        Segment(4, None),
    ])
    assert w.instructions() == 11
    assert w.memory_ops() == 2
    assert len(list(w.loads())) == 1


def test_kernel_by_sm_buckets_and_validation():
    k = KernelTrace("t", [WarpTrace(0, 0, []), WarpTrace(1, 0, []), WarpTrace(0, 1, [])])
    buckets = k.by_sm(2)
    assert len(buckets[0]) == 2 and len(buckets[1]) == 1
    with pytest.raises(ValueError):
        k.by_sm(1)


def test_save_load_roundtrip(tmp_path):
    mem = MemOp(False, [100, None, 204] + [None] * 29)
    k = KernelTrace("demo", [
        WarpTrace(0, 0, [Segment(7, mem), Segment(2, None)]),
        WarpTrace(1, 3, [Segment(0, MemOp(True, [4096 + 4 * i for i in range(32)]))]),
    ])
    path = str(tmp_path / "trace.npz")
    k.save(path)
    loaded = KernelTrace.load(path)
    assert loaded.name == "demo"
    assert loaded.total_instructions() == k.total_instructions()
    assert loaded.total_memory_ops() == k.total_memory_ops()
    w0 = loaded.warps[0]
    assert w0.segments[0].mem.lane_addrs[:3] == [100, None, 204]
    assert loaded.warps[1].segments[0].mem.is_write


# -- load() hardening ---------------------------------------------------------
def _demo_trace() -> KernelTrace:
    return KernelTrace("demo", [
        WarpTrace(0, 0, [Segment(3, MemOp(False, [64, None, 128]))]),
        WarpTrace(0, 1, [Segment(1, MemOp(True, [256]))]),
    ])


def _resave(path, **overrides):
    """Rewrite a saved trace archive with some arrays replaced."""
    with np.load(path, allow_pickle=False) as data:
        arrays = {k: data[k] for k in data.files}
    arrays.update(overrides)
    np.savez(path, **arrays)


def test_load_rejects_non_archive(tmp_path):
    path = str(tmp_path / "garbage.npz")
    with open(path, "w") as fh:
        fh.write("this is not a zip archive")
    with pytest.raises(TraceFormatError, match="garbage.npz"):
        KernelTrace.load(path)


def test_load_rejects_missing_file(tmp_path):
    with pytest.raises(TraceFormatError, match="missing.npz"):
        KernelTrace.load(str(tmp_path / "missing.npz"))


def test_load_rejects_missing_array(tmp_path):
    path = str(tmp_path / "t.npz")
    _demo_trace().save(path)
    with np.load(path, allow_pickle=False) as data:
        arrays = {k: data[k] for k in data.files if k != "lanes"}
    np.savez(path, **arrays)
    with pytest.raises(TraceFormatError, match="'lanes'"):
        KernelTrace.load(path)


def test_load_rejects_bad_dtype(tmp_path):
    path = str(tmp_path / "t.npz")
    _demo_trace().save(path)
    _resave(path, lanes=np.array([1.5, 2.5]))
    with pytest.raises(TraceFormatError, match="'lanes'.*dtype"):
        KernelTrace.load(path)


def test_load_rejects_bad_shape(tmp_path):
    path = str(tmp_path / "t.npz")
    _demo_trace().save(path)
    _resave(path, warp_meta=np.zeros((2, 2), dtype=np.int64))
    with pytest.raises(TraceFormatError, match="'warp_meta'.*shape"):
        KernelTrace.load(path)


def test_load_rejects_segment_count_mismatch(tmp_path):
    path = str(tmp_path / "t.npz")
    _demo_trace().save(path)
    with np.load(path, allow_pickle=False) as data:
        warp_meta = data["warp_meta"].copy()
    warp_meta[0, 2] += 1  # claim a segment that isn't there
    _resave(path, warp_meta=warp_meta)
    with pytest.raises(TraceFormatError, match="seg_meta.*claims"):
        KernelTrace.load(path)


def test_load_rejects_lane_count_mismatch(tmp_path):
    path = str(tmp_path / "t.npz")
    _demo_trace().save(path)
    with np.load(path, allow_pickle=False) as data:
        lanes = data["lanes"].copy()
    _resave(path, lanes=lanes[:-1])  # drop one flattened lane address
    with pytest.raises(TraceFormatError, match="lanes.*claims"):
        KernelTrace.load(path)


def test_trace_format_error_is_value_error(tmp_path):
    # Callers that already catch ValueError keep working.
    assert issubclass(TraceFormatError, ValueError)


# -- builders -----------------------------------------------------------------
def test_layout_allocates_aligned_and_tracks():
    lay = Layout()
    a = lay.alloc("a", 100)
    b = lay.alloc("b", 10)
    assert a % 256 == 0 and b % 256 == 0
    assert b >= a + 100 * ELEM_BYTES
    assert set(lay.arrays) == {"a", "b"}


def test_layout_overflow():
    lay = Layout(capacity=1024)
    with pytest.raises(MemoryError):
        lay.alloc("big", 10_000)


def test_warp_builder_stream_and_compute():
    wb = WarpBuilder(0, 0)
    wb.compute(5).load_stream(0, 0).compute(3).store_stream(4096, 0)
    trace = wb.finish()
    assert len(trace.segments) == 2
    assert trace.segments[0].compute_cycles == 5
    assert not trace.segments[0].mem.is_write
    assert trace.segments[1].mem.is_write
    # A stream covers consecutive 4B elements.
    lanes = trace.segments[0].mem.lane_addrs
    assert lanes == [4 * i for i in range(32)]


def test_warp_builder_gather_masks_missing_lanes():
    wb = WarpBuilder(0, 0)
    wb.load_gather(0, [1, None, 5])
    seg = wb.finish().segments[0]
    assert seg.mem.lane_addrs[0] == 4
    assert seg.mem.lane_addrs[1] is None
    assert seg.mem.lane_addrs[3] is None  # beyond provided indices


def test_warp_builder_trailing_compute_flushed():
    wb = WarpBuilder(0, 0)
    wb.compute(9)
    trace = wb.finish()
    assert trace.segments[-1].compute_cycles == 9
    assert trace.segments[-1].mem is None


def test_trace_builder_round_robin_sm_assignment():
    tb = TraceBuilder("t", num_sms=3)
    for _ in range(7):
        tb.new_warp().compute(1)
    k = tb.build()
    assert [w.sm_id for w in k.warps] == [0, 1, 2, 0, 1, 2, 0]
    # Per-SM warp ids are dense.
    assert [w.warp_id for w in k.warps] == [0, 0, 0, 1, 1, 1, 2]


def test_chunk_lanes():
    chunks = chunk_lanes(np.arange(70))
    assert [len(c) for c in chunks] == [32, 32, 6]


# ---------------------------------------------------------------------------
# JSON interchange (export -> ingest round trip)
# ---------------------------------------------------------------------------
def _sample_trace() -> KernelTrace:
    return KernelTrace(
        "demo",
        [
            WarpTrace(0, 0, [
                Segment(4, MemOp(False, [128 * i for i in range(32)])),
                Segment(2, MemOp(True, [None] * 31 + [4096])),
                Segment(7, None),
            ]),
            WarpTrace(1, 1, [Segment(1, MemOp(False, [0] * 32))]),
        ],
    )


def test_json_roundtrip_is_identity(tmp_path):
    from repro.workloads.trace import load_trace_file

    t = _sample_trace()
    path = tmp_path / "demo.trace.json"
    t.save_json(str(path))
    rt = load_trace_file(str(path))
    assert rt.name == t.name
    assert len(rt.warps) == len(t.warps)
    for a, b in zip(t.warps, rt.warps):
        assert (a.sm_id, a.warp_id) == (b.sm_id, b.warp_id)
        assert len(a.segments) == len(b.segments)
        for sa, sb in zip(a.segments, b.segments):
            assert sa.compute_cycles == sb.compute_cycles
            assert (sa.mem is None) == (sb.mem is None)
            if sa.mem is not None:
                assert sa.mem.is_write == sb.mem.is_write
                assert sa.mem.lane_addrs == sb.mem.lane_addrs
    # ...and the round-trip simulates identically to the npz path.
    npz = tmp_path / "demo.npz"
    t.save(str(npz))
    from_npz = load_trace_file(str(npz))
    assert from_npz.total_instructions() == rt.total_instructions()
    assert from_npz.total_memory_ops() == rt.total_memory_ops()


def test_json_export_format_header(tmp_path):
    import json as _json

    t = _sample_trace()
    path = tmp_path / "t.json"
    t.save_json(str(path))
    doc = _json.loads(path.read_text())
    assert doc["format"] == "repro-kernel-trace"
    assert doc["version"] == 1


@pytest.mark.parametrize(
    "mangle, fragment",
    [
        (lambda d: d.__setitem__("format", "other"), "format"),
        (lambda d: d.__setitem__("version", 99), "version"),
        (lambda d: d.__setitem__("name", ""), "name"),
        (lambda d: d.__setitem__("warps", []), "warps"),
        (lambda d: d["warps"][0]["segments"].append([-1]), r"segments\[3\]"),
        (
            lambda d: d["warps"][0]["segments"].append([0, 0, [None] * 32]),
            "lane",
        ),
    ],
)
def test_json_ingest_rejects_malformed_documents(tmp_path, mangle, fragment):
    import json as _json

    from repro.workloads.trace import KernelTrace as KT

    doc = _sample_trace().to_json_dict()
    mangle(doc)
    path = tmp_path / "bad.trace.json"
    path.write_text(_json.dumps(doc))
    with pytest.raises(TraceFormatError, match=fragment):
        KT.load_json(str(path))


def test_json_ingest_rejects_non_json(tmp_path):
    from repro.workloads.trace import KernelTrace as KT

    path = tmp_path / "bad.json"
    path.write_text("{truncated")
    with pytest.raises(TraceFormatError, match="bad.json"):
        KT.load_json(str(path))


def test_load_trace_file_dispatches_on_extension(tmp_path):
    from repro.workloads.trace import load_trace_file

    t = _sample_trace()
    t.save(str(tmp_path / "a.npz"))
    t.save_json(str(tmp_path / "a.json"))
    assert load_trace_file(str(tmp_path / "a.npz")).name == "demo"
    assert load_trace_file(str(tmp_path / "a.json")).name == "demo"
