"""Run-history store: golden envelope schema, forward-compat, ingestion."""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.schema import (
    BENCH_SCHEMA,
    FUZZ_SCHEMA,
    HISTORY_SCHEMA,
    provenance_problems,
)
from repro.history import default_store, enabled, record_run
from repro.history.store import (
    HistoryError,
    HistoryRecord,
    HistoryStore,
    git_sha,
)

#: Every key a stored envelope line must carry, exactly — the on-disk
#: contract old dashboards rely on.  Extending it is a schema bump
#: (v2 added "worker" and "attempt" for distributed sweeps).
ENVELOPE_KEYS = {
    "schema_version", "id", "kind", "created_utc", "git_sha",
    "config_hash", "host", "python", "worker", "attempt",
    "calibration_ops_per_sec", "payload",
}


def bench_payload(eps: float = 50_000.0) -> dict:
    return {
        "schema_version": BENCH_SCHEMA,
        "kind": "core",
        "calibration_ops_per_sec": 8.0e6,
        "events_per_sec": eps,
        "jobs": [
            {"id": "core/bfs/gmc/tiny/s1", "scheduler": "gmc",
             "scale": "TINY", "events_per_sec": eps},
        ],
    }


def fuzz_payload(clean: bool = True) -> dict:
    return {
        "schema_version": FUZZ_SCHEMA,
        "campaign_seed": 7,
        "schedulers": ["gmc", "wg"],
        "cases_run": 100,
        "clean": clean,
        "failures": [] if clean else [{"case_index": 3, "oracle": "x"}],
    }


@pytest.fixture
def store(tmp_path) -> HistoryStore:
    return HistoryStore(str(tmp_path / "history"))


# ----------------------------------------------------------------------
# append / read round trip
# ----------------------------------------------------------------------
def test_append_roundtrip_and_sequence_ids(store):
    r1 = store.append("bench", bench_payload(10.0))
    r2 = store.append("bench", bench_payload(20.0))
    assert (r1.record_id, r2.record_id) == ("bench-0001", "bench-0002")
    got = store.records("bench")
    assert [r.record_id for r in got] == ["bench-0001", "bench-0002"]
    assert got[0].payload == bench_payload(10.0)
    assert got[0].problems == []
    assert store.latest("bench").record_id == "bench-0002"
    assert store.get("bench-0001").payload["events_per_sec"] == 10.0
    assert store.get("bench-9999") is None


def test_envelope_golden_schema(store):
    store.append("bench", bench_payload())
    line = open(store.path("bench")).read().strip()
    doc = json.loads(line)
    assert set(doc) == ENVELOPE_KEYS
    assert doc["schema_version"] == HISTORY_SCHEMA
    assert doc["kind"] == "bench"
    assert doc["id"] == "bench-0001"
    # created_utc is ISO-8601 Zulu to the second
    assert len(doc["created_utc"]) == 20 and doc["created_utc"].endswith("Z")
    assert doc["calibration_ops_per_sec"] > 0
    # bench payloads donate their calibration score instead of re-measuring
    assert doc["calibration_ops_per_sec"] == pytest.approx(8.0e6)
    roundtrip = HistoryRecord.from_dict(doc)
    assert roundtrip.to_dict() == doc


def test_envelope_calibration_measured_for_other_kinds(store):
    record = store.append("fuzz", fuzz_payload())
    assert record.calibration_ops_per_sec > 0


def test_envelope_worker_stamp(store, monkeypatch):
    monkeypatch.delenv("REPRO_WORKER_ID", raising=False)
    local = store.append("bench", bench_payload())
    assert (local.worker, local.attempt) == ("", 0)
    monkeypatch.setenv("REPRO_WORKER_ID", "host-1234")
    ambient = store.append("bench", bench_payload())
    assert ambient.worker == "host-1234"
    explicit = store.append(
        "bench", bench_payload(), worker="other", attempt=2
    )
    assert (explicit.worker, explicit.attempt) == ("other", 2)
    got = store.records("bench")
    assert [(r.worker, r.attempt) for r in got] == [
        ("", 0), ("host-1234", 0), ("other", 2),
    ]


def test_schema_v1_lines_read_with_defaults(store):
    # A store written before the v2 bump has no worker/attempt keys.
    doc = store.append("bench", bench_payload()).to_dict()
    del doc["worker"], doc["attempt"]
    doc["schema_version"] = 1
    with open(store.path("bench"), "w") as fh:
        fh.write(json.dumps(doc) + "\n")
    (record,) = store.records("bench")
    assert (record.worker, record.attempt) == ("", 0)
    assert record.schema_version == 1


def test_kinds_ordering_known_first(store):
    store.append("zcustom", {"anything": 1})
    store.append("fuzz", fuzz_payload())
    store.append("bench", bench_payload())
    assert store.kinds() == ["bench", "fuzz", "zcustom"]
    merged = store.records()
    assert len(merged) == 3


def test_invalid_kind_rejected(store):
    for kind in ("", "a/b", ".hidden"):
        with pytest.raises(HistoryError):
            store.append(kind, {})


# ----------------------------------------------------------------------
# forward compatibility: bad lines are skipped with warnings, not crashes
# ----------------------------------------------------------------------
def test_unknown_schema_version_skipped_with_warning(store):
    store.append("bench", bench_payload())
    future = store.append("bench", bench_payload()).to_dict()
    future["schema_version"] = HISTORY_SCHEMA + 1
    with open(store.path("bench"), "a") as fh:
        fh.write(json.dumps(future) + "\n")
    with pytest.warns(UserWarning, match="unknown history schema_version"):
        records = store.records("bench")
    assert [r.record_id for r in records] == ["bench-0001", "bench-0002"]


def test_unparsable_line_skipped_with_warning(store):
    store.append("fuzz", fuzz_payload())
    with open(store.path("fuzz"), "a") as fh:
        fh.write("{truncated by a crash\n")
    with pytest.warns(UserWarning, match="unparsable"):
        records = store.records("fuzz")
    assert len(records) == 1


def test_missing_directory_reads_empty(tmp_path):
    store = HistoryStore(str(tmp_path / "never-created"))
    assert store.records() == []
    assert store.kinds() == []
    assert store.latest("bench") is None


# ----------------------------------------------------------------------
# concurrent writers (the distributed-sweep case)
# ----------------------------------------------------------------------
def _torture_writer(root: str, writer: int, n: int) -> None:
    store = HistoryStore(root)
    payload = fuzz_payload()
    for i in range(n):
        store.append(
            "fuzz", payload, worker=f"w{writer}", attempt=i, strict=False
        )


def test_parallel_appends_never_garble_lines(tmp_path):
    """Satellite: O_APPEND single-write appends under real concurrency.

    Eight processes hammer one JSONL file; every line must parse, carry
    the full envelope, and every (writer, attempt) pair must land —
    nothing torn, spliced, or lost.
    """
    import multiprocessing

    root = str(tmp_path / "history")
    n_writers, n_each = 8, 25
    ctx = multiprocessing.get_context()
    procs = [
        ctx.Process(target=_torture_writer, args=(root, w, n_each))
        for w in range(n_writers)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=120)
        assert p.exitcode == 0
    lines = open(os.path.join(root, "fuzz.jsonl")).read().splitlines()
    assert len(lines) == n_writers * n_each
    seen = set()
    for line in lines:
        doc = json.loads(line)  # raises on any torn/spliced line
        assert set(doc) == ENVELOPE_KEYS
        seen.add((doc["worker"], doc["attempt"]))
    assert seen == {
        (f"w{w}", i) for w in range(n_writers) for i in range(n_each)
    }


# ----------------------------------------------------------------------
# provenance contracts
# ----------------------------------------------------------------------
def test_contract_violation_rejected_strict(store):
    with pytest.raises(HistoryError, match="schema_version"):
        store.append("bench", {"schema_version": 999})


def test_contract_violation_kept_when_not_strict(store):
    record = store.append("bench", {"schema_version": 999}, strict=False)
    assert record.problems
    # and the problems are recomputed at read time
    (read,) = store.records("bench")
    assert read.problems


def test_provenance_problems_shapes():
    assert provenance_problems("bench", bench_payload()) == []
    assert provenance_problems("bench", "not a dict")
    assert provenance_problems("fuzz", {"schema_version": FUZZ_SCHEMA})
    # unregistered kinds only require a dict payload
    assert provenance_problems("custom", {"x": 1}) == []


# ----------------------------------------------------------------------
# producer-facing plumbing
# ----------------------------------------------------------------------
def test_record_run_disabled_by_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_HISTORY", "0")
    monkeypatch.setenv("REPRO_HISTORY_DIR", str(tmp_path / "h"))
    assert not enabled()
    assert record_run("bench", bench_payload()) is None
    assert not (tmp_path / "h").exists()


def test_record_run_appends_to_env_dir(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_HISTORY", "1")
    monkeypatch.setenv("REPRO_HISTORY_DIR", str(tmp_path / "h"))
    record = record_run("fuzz", fuzz_payload())
    assert record is not None and record.record_id == "fuzz-0001"
    assert default_store().latest("fuzz").record_id == "fuzz-0001"


def test_record_run_never_raises(monkeypatch, tmp_path):
    # Point the store *inside a regular file*: makedirs must fail.
    blocker = tmp_path / "blocker"
    blocker.write_text("")
    monkeypatch.setenv("REPRO_HISTORY", "1")
    monkeypatch.setenv("REPRO_HISTORY_DIR", str(blocker / "sub"))
    with pytest.warns(UserWarning, match="ingestion .* failed"):
        assert record_run("fuzz", fuzz_payload()) is None


def test_record_run_warns_on_contract_violation(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_HISTORY", "1")
    monkeypatch.setenv("REPRO_HISTORY_DIR", str(tmp_path / "h"))
    with pytest.warns(UserWarning, match="ingestion .* failed"):
        assert record_run("bench", {"schema_version": 999}) is None


def test_git_sha_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_GIT_SHA", "deadbeefcafe")
    assert git_sha() == "deadbeefcafe"


def test_git_sha_outside_checkout(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_GIT_SHA", raising=False)
    assert git_sha(cwd=str(tmp_path)) == "unknown"


def test_producers_skip_history_under_test_suite():
    # tests/conftest.py pins REPRO_HISTORY=0 so simulations inside the
    # suite never write into the working tree.
    assert os.environ.get("REPRO_HISTORY") == "0"
