"""Unit tests for the per-bank DRAM state machine."""

import pytest

from repro.core.config import DRAMTimingConfig
from repro.dram.bank import Bank

T = DRAMTimingConfig()


def test_activate_then_column_respects_trcd():
    b = Bank(0, 0)
    b.do_activate(0, row=5, t=T)
    assert b.open_row == 5
    assert b.earliest_col == T.trcd_ps
    with pytest.raises(RuntimeError):
        b.do_column(0, is_write=False, t=T)  # before tRCD
    end = b.do_column(T.trcd_ps, is_write=False, t=T)
    assert end == T.trcd_ps + T.tcas_ps + T.tburst_ps


def test_double_activate_rejected():
    b = Bank(0, 0)
    b.do_activate(0, row=5, t=T)
    with pytest.raises(RuntimeError):
        b.do_activate(T.trc_ps, row=6, t=T)  # row still open


def test_precharge_requires_open_row_and_tras():
    b = Bank(0, 0)
    with pytest.raises(RuntimeError):
        b.do_precharge(0, T)
    b.do_activate(0, row=1, t=T)
    with pytest.raises(RuntimeError):
        b.do_precharge(T.tras_ps - 1, T)
    b.do_precharge(T.tras_ps, T)
    assert b.open_row is None
    # tRP gates the next activate
    assert b.earliest_act >= T.tras_ps + T.trp_ps


def test_read_to_precharge_trtp():
    b = Bank(0, 0)
    b.do_activate(0, row=1, t=T)
    t_rd = T.trcd_ps + 100 * T.tck_ps  # read late: tRTP dominates tRAS
    b.do_column(t_rd, is_write=False, t=T)
    assert b.earliest_pre >= t_rd + T.trtp_ps


def test_write_recovery_gates_precharge():
    b = Bank(0, 0)
    b.do_activate(0, row=1, t=T)
    end = b.do_column(T.trcd_ps, is_write=True, t=T)
    assert end == T.trcd_ps + T.twl_ps + T.tburst_ps
    assert b.earliest_pre >= end + T.twr_ps


def test_trc_same_bank_activate_spacing():
    b = Bank(0, 0)
    b.do_activate(0, row=1, t=T)
    b.do_column(T.trcd_ps, is_write=False, t=T)
    b.do_precharge(T.tras_ps, T)
    assert b.earliest_act >= T.trc_ps


def test_multi_burst_column():
    b = Bank(0, 0)
    b.do_activate(0, row=1, t=T)
    end = b.do_column(T.trcd_ps, is_write=False, t=T, n_bursts=2)
    assert end == T.trcd_ps + T.tcas_ps + 2 * T.tburst_ps
    assert b.hits_since_act == 2


def test_hits_counter_saturates_at_31():
    b = Bank(0, 0)
    b.do_activate(0, row=1, t=T)
    t = T.trcd_ps
    for _ in range(40):
        b.do_column(t, is_write=False, t=T)
        t += T.tburst_ps
    assert b.hits_since_act == 31


def test_counters():
    b = Bank(3, 1)
    b.do_activate(0, 9, T)
    b.do_column(T.trcd_ps, False, T)
    b.do_precharge(max(T.tras_ps, T.trcd_ps + T.trtp_ps), T)
    assert (b.acts, b.pres, b.col_reads, b.col_writes) == (1, 1, 1, 0)
