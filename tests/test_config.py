"""Unit tests for configuration dataclasses and timing conversion."""

import dataclasses

import pytest

from repro.core.config import (
    CacheConfig,
    DRAMOrgConfig,
    DRAMTimingConfig,
    GPUConfig,
    MCConfig,
    SimConfig,
)


def test_gddr5_defaults_match_table2():
    t = DRAMTimingConfig()
    assert t.tck_ps == 667
    # All paper values, rounded up to command-clock edges.
    assert t.trc_ps == 60 * 667
    assert t.trcd_ps == 18 * 667
    assert t.trp_ps == 18 * 667
    assert t.tcas_ps == 18 * 667
    assert t.tras_ps == 42 * 667
    assert t.tfaw_ps == 35 * 667
    assert t.trrd_ps == 9 * 667
    assert t.twtr_ps == 8 * 667
    assert t.trtp_ps == 3 * 667
    assert t.tburst_ps == 2 * 667
    assert t.twl_ps == 4 * 667
    assert t.tccdl_ps == 3 * 667
    assert t.tccds_ps == 2 * 667


def test_row_miss_penalty_is_36ns():
    t = DRAMTimingConfig()
    assert t.row_miss_penalty_ps == t.trp_ps + t.trcd_ps + t.tcas_ps
    assert abs(t.row_miss_penalty_ps / 1000 - 36.0) < 0.1
    assert abs(t.row_hit_latency_ps / 1000 - 12.0) < 0.1


def test_invalid_tck_rejected():
    with pytest.raises(ValueError):
        DRAMTimingConfig(tck_ns=0)


def test_org_defaults_and_validation():
    org = DRAMOrgConfig()
    assert org.num_channels == 6
    assert org.banks_per_channel == 16
    assert org.num_bank_groups == 4
    assert org.lines_per_row == 16
    assert org.bursts_per_access == 2  # 128B line over 64B bursts
    with pytest.raises(ValueError):
        DRAMOrgConfig(banks_per_channel=10, banks_per_group=4)
    with pytest.raises(ValueError):
        DRAMOrgConfig(row_size_bytes=100)


def test_cache_config_sets():
    l1 = CacheConfig(size_bytes=32 * 1024, ways=8)
    assert l1.num_sets == 32
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=1000, ways=8)


def test_gpu_defaults_match_table2():
    g = GPUConfig()
    assert g.num_sms == 30
    assert g.warp_size == 32
    assert g.max_warps_per_sm == 32
    assert g.l1.size_bytes == 32 * 1024
    assert g.l2_slice.size_bytes == 128 * 1024
    assert g.l2_slice.ways == 16


def test_simconfig_with_scheduler_and_small():
    cfg = SimConfig()
    wg = cfg.with_scheduler("wg-w")
    assert wg.scheduler == "wg-w"
    assert cfg.scheduler == "gmc"  # original untouched
    small = cfg.small()
    assert small.gpu.num_sms == 4
    assert small.dram_org.num_channels == 2


def test_mc_watermarks():
    cfg = SimConfig()
    assert cfg.mc.write_high_watermark == 32
    assert cfg.mc.write_low_watermark == 16
    assert cfg.mc.read_queue_entries == 64
    assert cfg.mc.write_queue_entries == 64


# -- SimConfig.validate() -----------------------------------------------------
def test_validate_accepts_defaults_and_presets():
    SimConfig().validate()
    SimConfig().small().validate()


def test_validate_rejects_tras_below_trcd_plus_trtp():
    timing = dataclasses.replace(DRAMTimingConfig(), tras_ns=5.0)
    with pytest.raises(ValueError, match="tRAS.*raise tRAS"):
        SimConfig(dram_timing=timing)


def test_validate_rejects_trc_below_tras_plus_trp():
    timing = dataclasses.replace(DRAMTimingConfig(), trc_ns=20.0)
    with pytest.raises(ValueError, match="tRC.*raise tRC"):
        SimConfig(dram_timing=timing)


def test_validate_rejects_tfaw_below_four_trrd():
    timing = dataclasses.replace(DRAMTimingConfig(), tfaw_ns=10.0)
    with pytest.raises(ValueError, match="tFAW.*4\\*tRRD"):
        SimConfig(dram_timing=timing)


@pytest.mark.parametrize("field", [
    "read_queue_entries",
    "write_queue_entries",
    "row_sorter_entries",
    "warp_sorter_entries",
    "command_queue_depth",
])
@pytest.mark.parametrize("bad", [0, -4])
def test_validate_rejects_nonpositive_queue_sizes(field, bad):
    mc = dataclasses.replace(MCConfig(), **{field: bad})
    with pytest.raises(ValueError, match=f"mc.{field}.*positive"):
        SimConfig(mc=mc)


def test_validate_rejects_inverted_watermarks():
    mc = dataclasses.replace(
        MCConfig(), write_low_watermark=32, write_high_watermark=16
    )
    with pytest.raises(ValueError, match="watermarks"):
        SimConfig(mc=mc)


def test_validate_runs_on_dataclasses_replace():
    cfg = SimConfig()
    bad_timing = dataclasses.replace(cfg.dram_timing, tras_ns=5.0)
    with pytest.raises(ValueError, match="tRAS"):
        dataclasses.replace(cfg, dram_timing=bad_timing)


def test_validate_allows_exact_boundaries():
    # DDR3-style identity: tRC == tRAS + tRP exactly must be accepted.
    t = DRAMTimingConfig()
    timing = dataclasses.replace(t, trc_ns=t.tras_ns + t.trp_ns)
    SimConfig(dram_timing=timing).validate()
