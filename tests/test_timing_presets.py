"""Tests for DRAM timing presets and the DDR3 ablation configuration."""

from repro.core.config import DRAMOrgConfig
from repro.dram.channel import Channel
from repro.dram.timing import DDR3_TIMING, GDDR5_ORG, GDDR5_TIMING, ddr3_org


def test_gddr5_org_matches_table2():
    assert GDDR5_ORG.num_channels == 6
    assert GDDR5_ORG.banks_per_channel == 16
    assert GDDR5_ORG.banks_per_group == 4


def test_ddr3_is_slower_where_it_matters():
    assert DDR3_TIMING.tck_ns > GDDR5_TIMING.tck_ns
    assert DDR3_TIMING.tfaw_ns > GDDR5_TIMING.tfaw_ns
    # DDR3 has no bank-group advantage.
    assert DDR3_TIMING.tccdl_ck == DDR3_TIMING.tccds_ck


def test_ddr3_org_has_8_flat_banks():
    org = ddr3_org()
    assert org.banks_per_channel == 8
    assert org.num_bank_groups == 1


def test_ddr3_channel_runs():
    org = ddr3_org(num_channels=1)
    ch = Channel(org, DDR3_TIMING)
    t = ch.earliest_act(0, 0)
    ch.issue_act(0, 3, t)
    tc = ch.earliest_col(0, False, t)
    end = ch.issue_col(0, False, tc)
    assert end > tc > t >= 0


def test_bursts_per_access_scales_with_line_size():
    wide = DRAMOrgConfig(bytes_per_burst=128)
    assert wide.bursts_per_access == 1
    assert GDDR5_ORG.bursts_per_access == 2


def test_single_channel_throughput_bound():
    """A saturated GDDR5 channel moves one 128B line per 4 tCK."""
    org = ddr3_org(num_channels=1)  # shape irrelevant; use GDDR5 timing
    ch = Channel(GDDR5_ORG, GDDR5_TIMING)
    t = ch.earliest_act(0, 1, )
    ch.issue_act(0, 1, t)
    now = ch.banks[0].earliest_col
    starts = []
    for _ in range(10):
        tc = ch.earliest_col(0, False, now)
        ch.issue_col(0, False, tc)
        starts.append(tc)
        now = tc
    gaps = [b - a for a, b in zip(starts, starts[1:])]
    burst = GDDR5_ORG.bursts_per_access * GDDR5_TIMING.tburst_ps
    assert all(g >= burst for g in gaps)
    # Back-to-back row hits reach full bus occupancy (no extra bubbles).
    assert min(gaps) == burst


# ---------------------------------------------------------------------------
# named preset registry (repro.dram.timing.DRAM_PRESETS)
# ---------------------------------------------------------------------------
import pytest

from repro.core.config import SimConfig
from repro.dram.timing import (
    DRAM_PRESETS,
    GDDR6_ORG,
    GDDR6_TIMING,
    HBM2_ORG,
    HBM2_TIMING,
    get_preset,
    preset_names,
)

_NS_FIELDS = (
    "trc_ns", "trcd_ns", "trp_ns", "tcas_ns", "tras_ns", "trrd_ns",
    "twtr_ns", "tfaw_ns", "trtp_ns", "twr_ns",
)


def test_preset_registry_contents():
    assert preset_names() == ("ddr3", "gddr5", "gddr6", "hbm2")
    for name in preset_names():
        preset = get_preset(name)
        assert preset.name == name
        assert preset.description


def test_unknown_preset_names_choices():
    with pytest.raises(ValueError, match="gddr5"):
        get_preset("gddr7")


def test_gddr5_preset_is_the_default_config():
    """The gddr5 preset must resolve bit-identically to SimConfig() —
    scenario specs naming it share the default config's cache entries."""
    preset = get_preset("gddr5")
    assert SimConfig(dram_timing=preset.timing, dram_org=preset.org) == SimConfig()


@pytest.mark.parametrize("name", ["ddr3", "gddr5", "gddr6", "hbm2"])
def test_preset_timings_are_legal(name):
    """Every preset passes the config tree's physical-consistency checks
    and its ns-domain identities (pinned so edits can't sneak in an
    unbuildable device)."""
    preset = get_preset(name)
    SimConfig(dram_timing=preset.timing, dram_org=preset.org)  # validates
    t = preset.timing
    assert t.tras_ns >= t.trcd_ns + t.trtp_ns
    assert t.trc_ns >= t.tras_ns + t.trp_ns
    # NOTE: no ps-domain tFAW >= 4*tRRD check — ck rounding legitimately
    # breaks it (GDDR5: 35ck < 4*9ck); the engine enforces tFAW directly.


@pytest.mark.parametrize("name", ["ddr3", "gddr5", "gddr6", "hbm2"])
def test_preset_derived_ps_are_ck_aligned(name):
    """All derived picosecond timings are integer multiples of tCK."""
    t = get_preset(name).timing
    for field in _NS_FIELDS:
        ps = getattr(t, field.replace("_ns", "_ps"))
        assert ps % t.tck_ps == 0, field
        assert ps >= getattr(t, field) * 1000 - 1e-6, field  # ceil, not floor


def test_gddr6_preset_shape():
    assert GDDR6_TIMING.tck_ns == 0.5  # faster clock than GDDR5
    assert GDDR6_TIMING.tccdl_ck > GDDR6_TIMING.tccds_ck  # bank groups
    assert GDDR6_ORG.banks_per_group == 4
    assert GDDR6_ORG.bursts_per_access == 2


def test_hbm2_preset_shape():
    assert HBM2_ORG.num_channels == 8  # wide, slow stacks
    assert HBM2_ORG.row_size_bytes == 1024  # small rows
    assert HBM2_ORG.bytes_per_burst == 32
    assert HBM2_ORG.bursts_per_access == 4  # 128B line = 4 bursts
    assert HBM2_TIMING.tck_ns > GDDR6_TIMING.tck_ns


@pytest.mark.parametrize("name", ["ddr3", "gddr6", "hbm2"])
def test_preset_channels_run(name):
    preset = get_preset(name)
    org = preset.org
    ch = Channel(org, preset.timing)
    t = ch.earliest_act(0, 0)
    ch.issue_act(0, 3, t)
    tc = ch.earliest_col(0, False, t)
    end = ch.issue_col(0, False, tc)
    assert end > tc > t >= 0


@pytest.mark.parametrize("name", ["ddr3", "gddr5", "gddr6", "hbm2"])
def test_preset_simulation_is_bit_deterministic(name):
    """Two TINY runs of the same benchmark on one preset are identical."""
    from repro import simulate
    from repro.workloads.suite import Scale, build_benchmark

    preset = get_preset(name)
    cfg = SimConfig(dram_timing=preset.timing, dram_org=preset.org)
    trace = build_benchmark("sad", cfg, Scale.TINY, seed=3)
    a = simulate(cfg, trace).summary()
    b = simulate(cfg, trace).summary()
    assert a == b
    assert a["ipc"] > 0


# ---------------------------------------------------------------------------
# table-driven command legality (core.config.TimingLegality)
# ---------------------------------------------------------------------------
import random

from repro.core.config import TimingLegality
from repro.dram.commands import CommandKind

_PRESET_TIMINGS = {
    "ddr3": DDR3_TIMING,
    "gddr5": GDDR5_TIMING,
    "gddr6": GDDR6_TIMING,
    "hbm2": HBM2_TIMING,
}


def test_legality_indices_mirror_command_kinds():
    """The matrix indices are duplicated from CommandKind (the config
    layer must not import dram); this pin keeps them aligned."""
    assert TimingLegality.ACT == int(CommandKind.ACT)
    assert TimingLegality.PRE == int(CommandKind.PRE)
    assert TimingLegality.RD == int(CommandKind.RD)
    assert TimingLegality.WR == int(CommandKind.WR)


def test_legality_is_built_once_per_config():
    t = GDDR5_TIMING
    assert t.legality is t.legality  # cached_property


@pytest.mark.parametrize("name", sorted(_PRESET_TIMINGS))
def test_legality_matrix_equals_branchy_check(name):
    """Every pair entry equals the branchy parameter comparison the
    command scheduler used to run inline, for every preset."""
    t = _PRESET_TIMINGS[name]
    leg = t.legality
    tck = t.tck_ps
    col = (TimingLegality.RD, TimingLegality.WR)
    for prev in range(4):
        for nxt in range(4):
            if prev == TimingLegality.ACT and nxt == TimingLegality.ACT:
                expect = (max(tck, t.trrd_ps), max(tck, t.trrd_ps))
            elif prev in col and nxt in col:
                expect = (max(tck, t.tccds_ps), max(tck, t.tccdl_ps))
            else:
                expect = (tck, tck)  # command bus only
            assert leg.pair_ps[prev][nxt] == expect, (name, prev, nxt)
            assert leg.min_delta_ps(prev, nxt, False) == expect[0]
            assert leg.min_delta_ps(prev, nxt, True) == expect[1]


@pytest.mark.parametrize("name", sorted(_PRESET_TIMINGS))
def test_legality_data_bus_scalars(name):
    t = _PRESET_TIMINGS[name]
    leg = t.legality
    assert leg.faw_window_ps == t.tfaw_ps
    assert leg.faw_depth == 4
    assert leg.read_cmd_lead_ps == t.tcas_ps
    assert leg.write_cmd_lead_ps == t.twl_ps
    assert leg.rd_data_to_wr_cmd_ps == t.trtrs_ps - t.twl_ps
    assert leg.wr_data_to_rd_cmd_ps == t.twtr_ps


@pytest.mark.parametrize("name", sorted(_PRESET_TIMINGS))
def test_legality_every_entry_at_least_command_bus(name):
    """Folding tCK into every entry is what lets the channel drop its
    separate command-bus comparisons; an entry below tCK would be a bug."""
    leg = _PRESET_TIMINGS[name].legality
    for row in leg.pair_ps:
        for diff, same in row:
            assert diff >= leg.pair_ps[0][1][0]  # tck
            assert same >= diff or same >= leg.pair_ps[0][1][0]


# ---------------------------------------------------------------------------
# channel queries == branchy reference under randomized command streams
# ---------------------------------------------------------------------------
def _ref_earliest_act(ch, bank_idx, now):
    """Pre-table semantics: raw parameters, explicit branches + guards."""
    t = ch.t
    b = ch.banks[bank_idx]
    e = max(now, b.earliest_act, ch.next_cmd_free)
    if ch.last_act_any >= 0:
        e = max(e, ch.last_act_any + max(t.tck_ps, t.trrd_ps))
    if len(ch.act_window) >= 4:
        e = max(e, ch.act_window[-4] + t.tfaw_ps)
    return e


def _ref_earliest_col(ch, bank_idx, is_write, now):
    t = ch.t
    b = ch.banks[bank_idx]
    e = max(now, b.earliest_col, ch.next_cmd_free)
    if ch.last_col_group >= 0:
        if b.group == ch.last_col_group:
            e = max(e, ch.last_col_cmd + max(t.tck_ps, t.tccdl_ps))
        else:
            e = max(e, ch.last_col_cmd + max(t.tck_ps, t.tccds_ps))
    if is_write:
        e = max(e, ch.data_bus_free - t.twl_ps)
        if ch.last_read_data_end >= 0:
            e = max(e, ch.last_read_data_end + (t.trtrs_ps - t.twl_ps))
    else:
        e = max(e, ch.data_bus_free - t.tcas_ps)
        if ch.last_write_data_end >= 0:
            e = max(e, ch.last_write_data_end + t.twtr_ps)
    return e


def _assert_queries_match_reference(ch, now):
    terms = ch.scan_terms(now)
    base, act, col_rd, col_wr, ccd_same_t, ccd_diff_t, col_group = terms
    for bank_idx, b in enumerate(ch.banks):
        assert ch.earliest_act(bank_idx, now) == _ref_earliest_act(ch, bank_idx, now)
        for is_write in (False, True):
            assert ch.earliest_col(bank_idx, is_write, now) == _ref_earliest_col(
                ch, bank_idx, is_write, now
            )
        # scan_terms + per-bank state folds to exactly the earliest_* calls.
        assert max(base, b.earliest_pre) == ch.earliest_pre(bank_idx, now)
        assert max(act, b.earliest_act) == ch.earliest_act(bank_idx, now)
        ccd_t = ccd_same_t if b.group == col_group else ccd_diff_t
        assert max(col_rd, ccd_t, b.earliest_col) == ch.earliest_col(
            bank_idx, False, now
        )
        assert max(col_wr, ccd_t, b.earliest_col) == ch.earliest_col(
            bank_idx, True, now
        )


@pytest.mark.parametrize("name", sorted(_PRESET_TIMINGS))
def test_channel_queries_match_branchy_reference(name):
    """Drive each preset's channel with a randomized legal command stream
    and check, at every step and for every bank, that the table-driven
    earliest-issue queries and the hoisted scan_terms combination both
    equal the branchy reference implementation they replaced."""
    preset = get_preset(name)
    ch = Channel(preset.org, preset.timing)
    rng = random.Random(0xC0FFEE + hash(name) % 1000)
    now = 0
    _assert_queries_match_reference(ch, now)  # cold state, sentinels live
    for _ in range(120):
        bank_idx = rng.randrange(len(ch.banks))
        b = ch.banks[bank_idx]
        if b.open_row is None:
            t = ch.earliest_act(bank_idx, now)
            ch.issue_act(bank_idx, rng.randrange(64), t)
        elif rng.random() < 0.25:
            t = ch.earliest_pre(bank_idx, now)
            ch.issue_pre(bank_idx, t)
        else:
            is_write = rng.random() < 0.4
            t = ch.earliest_col(bank_idx, is_write, now)
            ch.issue_col(bank_idx, is_write, t)
        now = t + rng.randrange(0, 3 * preset.timing.tck_ps)
        _assert_queries_match_reference(ch, now)
