"""Tests for DRAM timing presets and the DDR3 ablation configuration."""

from repro.core.config import DRAMOrgConfig
from repro.dram.channel import Channel
from repro.dram.timing import DDR3_TIMING, GDDR5_ORG, GDDR5_TIMING, ddr3_org


def test_gddr5_org_matches_table2():
    assert GDDR5_ORG.num_channels == 6
    assert GDDR5_ORG.banks_per_channel == 16
    assert GDDR5_ORG.banks_per_group == 4


def test_ddr3_is_slower_where_it_matters():
    assert DDR3_TIMING.tck_ns > GDDR5_TIMING.tck_ns
    assert DDR3_TIMING.tfaw_ns > GDDR5_TIMING.tfaw_ns
    # DDR3 has no bank-group advantage.
    assert DDR3_TIMING.tccdl_ck == DDR3_TIMING.tccds_ck


def test_ddr3_org_has_8_flat_banks():
    org = ddr3_org()
    assert org.banks_per_channel == 8
    assert org.num_bank_groups == 1


def test_ddr3_channel_runs():
    org = ddr3_org(num_channels=1)
    ch = Channel(org, DDR3_TIMING)
    t = ch.earliest_act(0, 0)
    ch.issue_act(0, 3, t)
    tc = ch.earliest_col(0, False, t)
    end = ch.issue_col(0, False, tc)
    assert end > tc > t >= 0


def test_bursts_per_access_scales_with_line_size():
    wide = DRAMOrgConfig(bytes_per_burst=128)
    assert wide.bursts_per_access == 1
    assert GDDR5_ORG.bursts_per_access == 2


def test_single_channel_throughput_bound():
    """A saturated GDDR5 channel moves one 128B line per 4 tCK."""
    org = ddr3_org(num_channels=1)  # shape irrelevant; use GDDR5 timing
    ch = Channel(GDDR5_ORG, GDDR5_TIMING)
    t = ch.earliest_act(0, 1, )
    ch.issue_act(0, 1, t)
    now = ch.banks[0].earliest_col
    starts = []
    for _ in range(10):
        tc = ch.earliest_col(0, False, now)
        ch.issue_col(0, False, tc)
        starts.append(tc)
        now = tc
    gaps = [b - a for a, b in zip(starts, starts[1:])]
    burst = GDDR5_ORG.bursts_per_access * GDDR5_TIMING.tburst_ps
    assert all(g >= burst for g in gaps)
    # Back-to-back row hits reach full bus occupancy (no extra bubbles).
    assert min(gaps) == burst
