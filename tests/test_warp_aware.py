"""Behavioral tests for WG-M coordination, WG-Bw MERB gating and WG-W
write-aware draining."""

import dataclasses

from repro.core.config import SimConfig
from repro.core.engine import Engine
from repro.core.stats import ChannelStats
from repro.mc.coordination import CoordinationNetwork
from repro.mc.registry import controller_class

from helpers import MCHarness, make_request
from test_schedulers import send_group


# ---------------------------------------------------------------------------
# WG-M coordination (§IV-C)
# ---------------------------------------------------------------------------
def build_pair(scheduler: str = "wg-m"):
    cfg = SimConfig()
    eng = Engine()
    net = CoordinationNetwork(eng)
    mcs, stats, delivered = [], [], []
    for ch in range(2):
        st = ChannelStats()
        mc = controller_class(scheduler)(eng, ch, cfg, st, delivered.append)
        mc.attach_network(net)
        mcs.append(mc)
        stats.append(st)
    return eng, net, mcs, stats, delivered


def test_selection_broadcasts_to_peers():
    eng, net, mcs, stats, _ = build_pair()
    req = make_request(bank=0, row=1, warp_id=1)
    mcs[0].receive_read(req)
    eng.run(max_events=100_000)
    assert stats[0].coordination_msgs_sent == 1
    assert net.messages_sent == 1


def test_remote_score_discount_promotes_laggard_group():
    eng, net, mcs, stats, _ = build_pair()
    from repro.core.request import LoadTransaction

    # Backlog of foreign singleton groups on channel 1, bank 0, at t=0.
    backlog = []
    for i in range(8):
        r = make_request(bank=0, row=10 + i, warp_id=50 + i, channel=1)
        mcs[1].receive_read(r)
        backlog.append(r)

    r0 = make_request(bank=0, row=1, warp_id=1, channel=0)
    r1 = make_request(bank=0, row=99, warp_id=1, channel=1)

    def inject_warp1():
        # Warp 1 spans both channels, arriving after the backlog has
        # occupied channel 1's command queues.
        txn = LoadTransaction(
            0, 1, n_requests=2, t_issue=eng.now,
            on_group_complete=lambda ch, key, n: mcs[ch].receive_group_complete(key, n),
        )
        for r, ch in ((r0, 0), (r1, 1)):
            r.transaction = txn
            txn.note_dispatched(ch)
        mcs[0].receive_read(r0)
        mcs[1].receive_read(r1)
        txn.finish_dispatch()

    eng.schedule_at(2000, inject_warp1)
    eng.run(max_events=300_000)
    # Channel 0 selects warp 1 immediately (its only group), broadcasts a
    # low score; channel 1 — where the group would otherwise wait behind
    # the backlog — applies the discount and promotes it.
    assert stats[1].coordination_msgs_applied >= 1
    assert r1.t_scheduled < max(b.t_scheduled for b in backlog)
    assert r0.t_data > 0 and r1.t_data > 0


def test_discount_ignored_when_local_score_lower():
    eng, net, mcs, stats, _ = build_pair()
    # A message about a warp the peer doesn't hold is a no-op.
    mcs[1].receive_coordination((0, 123), remote_score=5)
    assert stats[1].coordination_msgs_applied == 0


# ---------------------------------------------------------------------------
# WG-Bw MERB gate (§IV-D)
# ---------------------------------------------------------------------------
def test_merb_gate_defers_row_miss_behind_pending_hits(harness):
    h = harness("wg-bw")
    # Prime bank 0 on row 1 via an initial group.
    send_group(h, warp_id=1, specs=[(0, 1)])
    h.run()
    h.delivered.clear()
    # Pending row hits from an incomplete background warp...
    from repro.core.request import LoadTransaction

    bg = LoadTransaction(
        0, 9, n_requests=8, t_issue=h.engine.now,
        on_group_complete=lambda ch, key, n: h.mc.receive_group_complete(key, n),
    )
    hit_reqs = []
    for i in range(6):
        r = make_request(bank=0, row=1, col=i, warp_id=9)
        r.transaction = bg
        bg.note_dispatched(0)
        h.mc.receive_read(r)
        hit_reqs.append(r)
    # ...and a complete single-request group that misses the row.
    miss = send_group(h, warp_id=2, specs=[(0, 77)])[0]
    h.run(max_events=200_000)
    # The MERB gate schedules (some of) the pending hits before the miss.
    assert h.stats.merb_deferrals > 0
    serviced_before_miss = sum(1 for r in hit_reqs if 0 < r.t_data < miss.t_data)
    assert serviced_before_miss > 0


def test_orphan_control_rescues_stranded_hits():
    """Direct-state test of the orphan rule: when the MERB threshold is
    already met and only 1-2 hits remain on the open row, they are
    scheduled ahead of the row change."""
    h = MCHarness("wg-bw")
    mc = h.mc
    # Bank 0's queue tail is on row 1 with a saturated hit counter (the
    # MERB threshold can't defer further), other banks busy.
    mc.cq.last_sched_row[0] = 1
    mc.cq.hits_since_row_change[0] = 31
    # Two stranded row-1 hits from an incomplete background group.
    from repro.core.request import LoadTransaction

    bg = LoadTransaction(0, 9, n_requests=4, t_issue=0)
    orphans = []
    for i in range(2):
        r = make_request(bank=0, row=1, col=i, warp_id=9)
        r.transaction = bg
        mc.sorter.add(r, 0)
        orphans.append(r)
    # Insert a row-miss request: orphan control must pull both hits first.
    miss = make_request(bank=0, row=77, warp_id=2)
    miss.transaction = LoadTransaction(0, 2, n_requests=1, t_issue=0)
    mc.sorter.add(miss, 0)
    mc._insert_request(miss, 0)
    assert h.stats.orphan_rescues == 2
    order = [e.req for e in mc.cq.queues[0]]
    assert order == orphans + [miss]


# ---------------------------------------------------------------------------
# WG-W write-aware drain (§IV-E)
# ---------------------------------------------------------------------------
def test_wgw_promotes_unit_groups_near_drain(harness):
    h = harness("wg-w")
    guard = h.config.mc.write_high_watermark - h.config.mc.wgw_drain_guard_entries
    # Fill the write queue up to the guard band (no drain yet).
    for i in range(guard):
        h.write(bank=4 + i % 4, row=i)
    # A big low-priority group and a unit-size group with a *worse* score.
    big = send_group(h, warp_id=1, specs=[(0, 1), (0, 1), (0, 1)])
    unit = send_group(h, warp_id=2, specs=[(0, 50)])[0]  # row miss: higher score
    h.run(max_events=400_000)
    assert h.stats.wgw_promotions >= 1
    assert unit.t_scheduled <= min(r.t_scheduled for r in big)


def test_wgw_behaves_like_wgbw_without_write_pressure(harness):
    ha, hb = harness("wg-w"), harness("wg-bw")
    for h in (ha, hb):
        send_group(h, warp_id=1, specs=[(0, 1), (1, 2)])
        send_group(h, warp_id=2, specs=[(0, 3)])
        h.run()
    assert [r.t_data for r in ha.delivered] == [r.t_data for r in hb.delivered]
    assert ha.stats.wgw_promotions == 0
