"""Behavioral tests for WG-M coordination, WG-Bw MERB gating and WG-W
write-aware draining."""

import dataclasses

from repro.core.config import SimConfig
from repro.core.engine import Engine
from repro.core.stats import ChannelStats
from repro.mc.coordination import CoordinationNetwork
from repro.mc.registry import controller_class

from helpers import MCHarness, make_request
from test_schedulers import send_group


# ---------------------------------------------------------------------------
# WG-M coordination (§IV-C)
# ---------------------------------------------------------------------------
def build_pair(scheduler: str = "wg-m"):
    cfg = SimConfig()
    eng = Engine()
    net = CoordinationNetwork(eng)
    mcs, stats, delivered = [], [], []
    for ch in range(2):
        st = ChannelStats()
        mc = controller_class(scheduler)(eng, ch, cfg, st, delivered.append)
        mc.attach_network(net)
        mcs.append(mc)
        stats.append(st)
    return eng, net, mcs, stats, delivered


def test_selection_broadcasts_to_peers():
    eng, net, mcs, stats, _ = build_pair()
    req = make_request(bank=0, row=1, warp_id=1)
    mcs[0].receive_read(req)
    eng.run(max_events=100_000)
    assert stats[0].coordination_msgs_sent == 1
    assert net.messages_sent == 1


def test_remote_score_discount_promotes_laggard_group():
    eng, net, mcs, stats, _ = build_pair()
    from repro.core.request import LoadTransaction

    # Backlog of foreign singleton groups on channel 1, bank 0, at t=0.
    backlog = []
    for i in range(8):
        r = make_request(bank=0, row=10 + i, warp_id=50 + i, channel=1)
        mcs[1].receive_read(r)
        backlog.append(r)

    r0 = make_request(bank=0, row=1, warp_id=1, channel=0)
    r1 = make_request(bank=0, row=99, warp_id=1, channel=1)

    def inject_warp1():
        # Warp 1 spans both channels, arriving after the backlog has
        # occupied channel 1's command queues.
        txn = LoadTransaction(
            0, 1, n_requests=2, t_issue=eng.now,
            on_group_complete=lambda ch, key, n: mcs[ch].receive_group_complete(key, n),
        )
        for r, ch in ((r0, 0), (r1, 1)):
            r.transaction = txn
            txn.note_dispatched(ch)
        mcs[0].receive_read(r0)
        mcs[1].receive_read(r1)
        txn.finish_dispatch()

    eng.schedule_at(2000, inject_warp1)
    eng.run(max_events=300_000)
    # Channel 0 selects warp 1 immediately (its only group), broadcasts a
    # low score; channel 1 — where the group would otherwise wait behind
    # the backlog — applies the discount and promotes it.
    assert stats[1].coordination_msgs_applied >= 1
    assert r1.t_scheduled < max(b.t_scheduled for b in backlog)
    assert r0.t_data > 0 and r1.t_data > 0


def test_discount_ignored_when_local_score_lower():
    eng, net, mcs, stats, _ = build_pair()
    # A message about a warp the peer doesn't hold is a no-op.
    mcs[1].receive_coordination((0, 123), remote_score=5)
    assert stats[1].coordination_msgs_applied == 0


# ---------------------------------------------------------------------------
# WG-Bw MERB gate (§IV-D)
# ---------------------------------------------------------------------------
def test_merb_gate_defers_row_miss_behind_pending_hits(harness):
    h = harness("wg-bw")
    # Prime bank 0 on row 1 via an initial group.
    send_group(h, warp_id=1, specs=[(0, 1)])
    h.run()
    h.delivered.clear()
    # Pending row hits from an incomplete background warp...
    from repro.core.request import LoadTransaction

    bg = LoadTransaction(
        0, 9, n_requests=8, t_issue=h.engine.now,
        on_group_complete=lambda ch, key, n: h.mc.receive_group_complete(key, n),
    )
    hit_reqs = []
    for i in range(6):
        r = make_request(bank=0, row=1, col=i, warp_id=9)
        r.transaction = bg
        bg.note_dispatched(0)
        h.mc.receive_read(r)
        hit_reqs.append(r)
    # ...and a complete single-request group that misses the row.
    miss = send_group(h, warp_id=2, specs=[(0, 77)])[0]
    h.run(max_events=200_000)
    # The MERB gate schedules (some of) the pending hits before the miss.
    assert h.stats.merb_deferrals > 0
    serviced_before_miss = sum(1 for r in hit_reqs if 0 < r.t_data < miss.t_data)
    assert serviced_before_miss > 0


def test_orphan_control_rescues_stranded_hits():
    """Direct-state test of the orphan rule: when the MERB threshold is
    already met and only 1-2 hits remain on the open row, they are
    scheduled ahead of the row change."""
    h = MCHarness("wg-bw")
    mc = h.mc
    # Bank 0's queue tail is on row 1 with a saturated hit counter (the
    # MERB threshold can't defer further), other banks busy.
    mc.cq.last_sched_row[0] = 1
    mc.cq.hits_since_row_change[0] = 31
    # Two stranded row-1 hits from an incomplete background group.
    from repro.core.request import LoadTransaction

    bg = LoadTransaction(0, 9, n_requests=4, t_issue=0)
    orphans = []
    for i in range(2):
        r = make_request(bank=0, row=1, col=i, warp_id=9)
        r.transaction = bg
        mc.sorter.add(r, 0)
        orphans.append(r)
    # Insert a row-miss request: orphan control must pull both hits first.
    miss = make_request(bank=0, row=77, warp_id=2)
    miss.transaction = LoadTransaction(0, 2, n_requests=1, t_issue=0)
    mc.sorter.add(miss, 0)
    mc._insert_request(miss, 0)
    assert h.stats.orphan_rescues == 2
    order = [e.req for e in mc.cq.queues[0]]
    assert order == orphans + [miss]


def test_merb_gate_respects_command_queue_depth():
    """Regression: the MERB gate must not push a bank's command queue past
    ``command_queue_depth``.  Pre-fix it inserted fillers until the MERB
    threshold (up to 31 hit-bursts) was met, even though ``_room_for``
    only guaranteed one free slot."""
    h = MCHarness("wg-bw")
    mc = h.mc
    depth = mc.cq.depth
    mc.cq.last_sched_row[0] = 1  # planning-time open row on bank 0
    from repro.core.request import LoadTransaction

    bg = LoadTransaction(0, 9, n_requests=32, t_issue=0)
    for i in range(3 * depth):  # far more pending hits than queue space
        r = make_request(bank=0, row=1, col=i, warp_id=9)
        r.transaction = bg
        mc.sorter.add(r, 0)
    miss = make_request(bank=0, row=77, warp_id=2)
    miss.transaction = LoadTransaction(0, 2, n_requests=1, t_issue=0)
    mc.sorter.add(miss, 0)
    mc._insert_request(miss, 0)
    # Pre-fix: 3*depth fillers + the miss in a `depth`-deep queue.
    assert mc.cq.occupancy(0) <= depth
    # The gate still made progress: it used every slot it could while
    # reserving one for the row-miss itself.
    assert h.stats.merb_deferrals == depth - 1
    assert mc.cq.queues[0][-1].req is miss


def test_merb_gate_noop_when_queue_full():
    """With no free slot beyond the miss's own, the gate defers nothing."""
    h = MCHarness("wg-bw")
    mc = h.mc
    from repro.core.request import LoadTransaction

    filler_txn = LoadTransaction(0, 9, n_requests=32, t_issue=0)
    for i in range(mc.cq.depth - 1):  # leave exactly one slot
        seed = make_request(bank=0, row=1, col=i, warp_id=7)
        mc.sorter.add(seed, 0)
        mc._insert_request(seed, 0)
    stray = make_request(bank=0, row=1, col=14, warp_id=9)
    stray.transaction = filler_txn
    mc.sorter.add(stray, 0)
    before = h.stats.merb_deferrals
    miss = make_request(bank=0, row=77, warp_id=2)
    miss.transaction = LoadTransaction(0, 2, n_requests=1, t_issue=0)
    mc.sorter.add(miss, 0)
    mc._insert_request(miss, 0)
    assert h.stats.merb_deferrals == before
    assert mc.cq.occupancy(0) == mc.cq.depth


def test_wgbw_command_queues_never_exceed_depth_end_to_end(harness):
    """System-level guard: with singleton foreground groups (so the base
    scheduler itself never overshoots), the MERB gate must keep bank 0's
    queue within its configured depth at every insert."""
    h = harness("wg-bw")
    depth = h.mc.cq.depth
    send_group(h, warp_id=1, specs=[(0, 1)])  # prime bank 0 on row 1
    h.run()
    h.delivered.clear()
    from repro.core.request import LoadTransaction

    bg = LoadTransaction(0, 9, n_requests=16, t_issue=h.engine.now)
    for i in range(12):  # incomplete background hits: filler candidates
        r = make_request(bank=0, row=1, col=i, warp_id=9)
        r.transaction = bg
        bg.note_dispatched(0)
        h.mc.receive_read(r)
    original_insert = h.mc.cq.insert
    max_seen = 0

    def checked_insert(req, now_ps):
        nonlocal max_seen
        entry = original_insert(req, now_ps)
        max_seen = max(max_seen, h.mc.cq.occupancy(req.bank))
        return entry

    h.mc.cq.insert = checked_insert
    send_group(h, warp_id=2, specs=[(0, 77)])  # row miss triggers the gate
    h.run(max_events=400_000)
    # Pre-fix the gate pulled all 12 hits at once (occupancy 13 > depth).
    assert max_seen <= depth
    # Post-fix: depth-1 fillers plus the miss were serviced.
    assert len(h.delivered) == depth


# ---------------------------------------------------------------------------
# WG pressure fallback (read queue full, no complete group)
# ---------------------------------------------------------------------------
def incomplete_singleton(h, warp_id: int, bank: int, row: int):
    """A one-request group whose size announcement never arrives (the
    transaction claims a second request that is never dispatched)."""
    from repro.core.request import LoadTransaction

    txn = LoadTransaction(
        0, warp_id, n_requests=2, t_issue=h.engine.now,
        on_group_complete=lambda ch, key, n: h.mc.receive_group_complete(key, n),
    )
    req = make_request(bank=bank, row=row, warp_id=warp_id)
    req.transaction = txn
    txn.note_dispatched(0)
    h.mc.receive_read(req)
    return req


def test_pressure_fallback_services_incomplete_groups(harness):
    """With the read queue full and no complete group, the fallback must
    partially service the oldest groups instead of deadlocking."""
    cfg = dataclasses.replace(
        SimConfig(), mc=dataclasses.replace(SimConfig().mc, read_queue_entries=4)
    )
    h = harness("wg", cfg)
    reqs = [incomplete_singleton(h, warp_id=i, bank=i % 4, row=i) for i in range(6)]
    assert h.stats.read_queue_full_events > 0  # backpressure reached
    h.run(max_events=400_000)
    assert len(h.delivered) == 6  # nothing deadlocked
    assert {r.req_id for r in h.delivered} == {r.req_id for r in reqs}
    assert h.mc.pending_work() == 0
    # Oldest-first: the fallback drains groups in arrival order.
    assert reqs[0].t_scheduled <= reqs[-1].t_scheduled


def test_no_fallback_below_queue_pressure(harness):
    """Incomplete groups wait for their stragglers while the read queue
    has room: the fallback must NOT fire."""
    h = harness("wg")
    incomplete_singleton(h, warp_id=1, bank=0, row=1)
    incomplete_singleton(h, warp_id=2, bank=1, row=2)
    h.run()
    assert len(h.delivered) == 0  # still waiting, by design
    assert h.mc.pending_work() == 2
    assert not h.mc.sorter.empty()


def test_fallback_unblocks_arrival_of_completions(harness):
    """After a pressure spill, a late size announcement still completes
    the remaining groups normally."""
    cfg = dataclasses.replace(
        SimConfig(), mc=dataclasses.replace(SimConfig().mc, read_queue_entries=4)
    )
    h = harness("wg", cfg)
    reqs = [incomplete_singleton(h, warp_id=i, bank=i % 4, row=i) for i in range(5)]
    # One group's announcement eventually arrives (size = what it holds).
    h.engine.schedule_at(500, lambda: h.mc.receive_group_complete((0, 4), 1))
    h.run(max_events=400_000)
    assert len(h.delivered) == 5
    assert all(r.t_data > 0 for r in reqs)


# ---------------------------------------------------------------------------
# WG-W write-aware drain (§IV-E)
# ---------------------------------------------------------------------------
def test_wgw_promotes_unit_groups_near_drain(harness):
    h = harness("wg-w")
    guard = h.config.mc.write_high_watermark - h.config.mc.wgw_drain_guard_entries
    # Fill the write queue up to the guard band (no drain yet).
    for i in range(guard):
        h.write(bank=4 + i % 4, row=i)
    # A big low-priority group and a unit-size group with a *worse* score.
    big = send_group(h, warp_id=1, specs=[(0, 1), (0, 1), (0, 1)])
    unit = send_group(h, warp_id=2, specs=[(0, 50)])[0]  # row miss: higher score
    h.run(max_events=400_000)
    assert h.stats.wgw_promotions >= 1
    assert unit.t_scheduled <= min(r.t_scheduled for r in big)


def test_wgw_no_promotion_below_guard_band(harness):
    """One write short of the guard band: unit groups keep their normal
    rank and no promotion is counted."""
    h = harness("wg-w")
    guard = h.config.mc.write_high_watermark - h.config.mc.wgw_drain_guard_entries
    for i in range(guard - 1):
        h.write(bank=4 + i % 4, row=i)
    send_group(h, warp_id=1, specs=[(0, 1), (0, 1), (0, 1)])
    unit = send_group(h, warp_id=2, specs=[(0, 50)])[0]
    h.run(max_events=400_000)
    assert h.stats.wgw_promotions == 0
    assert unit.t_data > 0
    assert h.mc.pending_work() == 0


def test_wgw_behaves_like_wgbw_without_write_pressure(harness):
    ha, hb = harness("wg-w"), harness("wg-bw")
    for h in (ha, hb):
        send_group(h, warp_id=1, specs=[(0, 1), (1, 2)])
        send_group(h, warp_id=2, specs=[(0, 3)])
        h.run()
    assert [r.t_data for r in ha.delivered] == [r.t_data for r in hb.delivered]
    assert ha.stats.wgw_promotions == 0


# ---------------------------------------------------------------------------
# Adversarial coordination orderings: late, duplicated and useless
# messages must be no-ops, never corruption (see docs/robustness.md).
# ---------------------------------------------------------------------------
def incomplete_group(mc, channel=0, warp_id=5):
    """Park one request of a still-dispatching warp in the sorter."""
    from repro.core.request import LoadTransaction

    txn = LoadTransaction(0, warp_id, n_requests=4, t_issue=0)
    r = make_request(bank=0, row=1, warp_id=warp_id, channel=channel)
    r.transaction = txn
    txn.note_dispatched(channel)
    mc.receive_read(r)
    return (0, warp_id)


def test_coordination_message_for_completed_warp_is_noop():
    """A broadcast that arrives after the warp drained locally is dropped."""
    eng, net, mcs, stats, delivered = build_pair()
    req = make_request(bank=0, row=1, warp_id=1, channel=1)
    mcs[1].receive_read(req)
    eng.run(max_events=100_000)
    assert req.t_data > 0  # the warp's only request completed
    applied_before = stats[1].coordination_msgs_applied
    mcs[1].receive_coordination((0, 1), remote_score=0)
    assert stats[1].coordination_msgs_applied == applied_before
    assert mcs[1].sorter.get((0, 1)) is None  # nothing resurrected
    eng.run(max_events=100_000)  # and the controller stays healthy


def test_duplicate_broadcasts_apply_once():
    eng, net, mcs, stats, _ = build_pair()
    key = incomplete_group(mcs[1], channel=1)
    mcs[1].receive_coordination(key, remote_score=7)
    mcs[1].receive_coordination(key, remote_score=7)  # exact duplicate
    mcs[1].receive_coordination(key, remote_score=9)  # stale (worse) score
    assert stats[1].coordination_msgs_applied == 1
    assert mcs[1].sorter.get(key).remote_score == 7
    mcs[1].receive_coordination(key, remote_score=3)  # genuinely better
    assert stats[1].coordination_msgs_applied == 2
    assert mcs[1].sorter.get(key).remote_score == 3


def test_remote_score_above_local_never_promotes():
    """LC <= RC: a peer that would finish *later* must not change our
    ranking (the clamp only ever lowers the local score)."""
    from repro.mc.warp_sorter import WarpSorter

    eng, net, mcs, stats, _ = build_pair()
    key = incomplete_group(mcs[1], channel=1)
    entry = mcs[1].sorter.get(key)
    score_before, hits_before = WarpSorter.score(entry, mcs[1].cq)
    mcs[1].receive_coordination(key, remote_score=score_before + 10**6)
    assert WarpSorter.score(entry, mcs[1].cq) == (score_before, hits_before)
    # ...whereas a lower remote score clamps the local one down to it.
    mcs[1].receive_coordination(key, remote_score=0)
    assert WarpSorter.score(entry, mcs[1].cq) == (0, hits_before)
