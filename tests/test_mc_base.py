"""Controller-shell tests: queues, drain FSM, forwarding, backpressure."""

import dataclasses

from repro.core.config import SimConfig

from helpers import MCHarness, make_request


def test_reads_complete_and_deliver(harness):
    h = harness("gmc")
    reqs = [h.read(bank=b % 4, row=1) for b in range(8)]
    h.run()
    assert len(h.delivered) == 8
    assert {r.req_id for r in h.delivered} == {r.req_id for r in reqs}
    for r in reqs:
        assert r.t_data > r.t_mc_arrival
    assert h.stats.reads == 8


def test_read_forwarded_from_write_queue(harness):
    h = harness("gmc")
    w = h.write(bank=0, row=1, col=3)
    r = h.read(bank=0, row=1, col=3, addr=w.addr)
    h.run()
    assert r.serviced_by == "wq"
    # Forwarding answers at CAS latency without a DRAM read.
    assert h.stats.reads == 0
    assert len(h.delivered) == 1


def test_watermark_drain_triggers_and_stops(harness):
    h = harness("gmc")
    hw = h.config.mc.write_high_watermark
    lw = h.config.mc.write_low_watermark
    for i in range(hw):
        h.write(bank=i % 4, row=i % 3)
    # Keep a read stream alive so the idle-drain path is not what fires.
    for i in range(4):
        h.read(bank=8 + i % 2, row=1)
    h.run()
    assert h.stats.write_drains >= 1
    assert h.stats.drain_writes >= hw - lw
    assert h.stats.writes >= hw - lw


def test_idle_drain_flushes_writes_without_watermark(harness):
    h = harness("gmc")
    for i in range(4):  # far below the high watermark
        h.write(bank=i, row=2)
    h.run()
    assert h.stats.writes == 4
    assert h.mc.pending_work() == 0
    # Opportunistic drains don't count as watermark drains.
    assert h.stats.write_drains == 0


def test_read_queue_backpressure_overflow(harness):
    cfg = dataclasses.replace(
        SimConfig(), mc=dataclasses.replace(SimConfig().mc, read_queue_entries=4)
    )
    h = harness("gmc", cfg)
    for i in range(12):
        h.read(bank=i % 2, row=i)
    assert h.stats.read_queue_full_events > 0
    h.run()
    assert len(h.delivered) == 12  # everything still completes
    assert h.mc.pending_work() == 0


def test_read_forwarded_from_overflowed_write(harness):
    """Regression: a write parked in the overflow buffer must still be
    visible to write-to-read forwarding.  Pre-fix, only writes admitted to
    the write queue were indexed, so a read to an overflowed write's line
    went to DRAM instead of being answered from the buffer."""
    cfg = dataclasses.replace(
        SimConfig(), mc=dataclasses.replace(SimConfig().mc, write_queue_entries=4)
    )
    h = harness("gmc", cfg)
    for i in range(4):  # fill the write queue
        h.write(bank=0, row=i)
    parked = h.write(bank=1, row=9)  # lands in _write_overflow
    assert len(h.mc._write_overflow) == 1
    r = h.read(bank=1, row=9, addr=parked.addr)
    assert r.serviced_by == "wq"  # pre-fix: "dram"
    h.run()
    assert h.stats.writes == 5  # every buffered write still drains
    assert h.mc.pending_work() == 0


def test_forwarding_prefers_newest_write_across_overflow(harness):
    """With the same line buffered both in the queue and in overflow, the
    overflow entry is newer and must win the forwarding index."""
    cfg = dataclasses.replace(
        SimConfig(), mc=dataclasses.replace(SimConfig().mc, write_queue_entries=2)
    )
    h = harness("gmc", cfg)
    first = h.write(bank=0, row=1, col=3)
    h.write(bank=0, row=2)
    newest = h.write(bank=0, row=1, col=3, addr=first.addr)  # overflows
    assert h.mc._wq_index[first.addr] is newest
    r = h.read(bank=0, row=1, col=3, addr=first.addr)
    assert r.serviced_by == "wq"
    h.run()
    assert h.mc.pending_work() == 0
    assert h.mc._wq_index == {}  # drained writes are fully de-indexed


def test_write_overflow_drains_in_fifo_order(harness):
    """A write arriving while the overflow buffer is non-empty must queue
    behind it (not jump into freed write-queue space out of order)."""
    cfg = dataclasses.replace(
        SimConfig(), mc=dataclasses.replace(SimConfig().mc, write_queue_entries=2)
    )
    h = harness("gmc", cfg)
    for i in range(3):
        h.write(bank=0, row=i)
    late = h.write(bank=0, row=7)
    assert list(h.mc._write_overflow)[-1] is late
    h.run()
    assert h.stats.writes == 4
    assert h.mc.pending_work() == 0


def test_row_hit_stream_counted(harness):
    h = harness("gmc")
    for i in range(6):
        h.read(bank=0, row=7, col=i)
    h.run()
    assert h.stats.row_misses == 1  # first access opens the row
    assert h.stats.row_hits == 5


def test_bank_interleaving_uses_bank_groups(harness):
    """With one request per bank across groups, all four activates issue
    within a tFAW window (bank-group round-robin, tRRD-limited)."""
    h = harness("gmc")
    for b in (0, 4, 8, 12):  # one bank per bank group
        h.read(bank=b, row=1)
    h.run()
    t = h.config.dram_timing
    span = max(r.t_data for r in h.delivered) - min(r.t_data for r in h.delivered)
    # Row cycles overlap: total span far below 4 serial row misses.
    assert span < 2 * t.row_miss_penalty_ps


def test_write_then_read_same_bank_round_trip(harness):
    h = harness("gmc")
    h.write(bank=0, row=1)
    r = h.read(bank=0, row=2)
    h.run()
    assert h.stats.writes == 1
    assert r.t_data > 0


def test_pending_work_accounting(harness):
    h = harness("gmc")
    assert h.mc.pending_work() == 0
    h.read(bank=0, row=1)
    h.write(bank=1, row=1)
    assert h.mc.pending_work() == 2
    h.run()
    assert h.mc.pending_work() == 0


def test_deterministic_replay():
    def run_once():
        h = MCHarness("gmc")
        reqs = [h.read(bank=i % 5, row=(i * 7) % 3, col=i % 16) for i in range(20)]
        h.run()
        return [r.t_data for r in reqs]  # by submission order

    assert run_once() == run_once()
