"""Unit tests for the SM <-> partition crossbar."""

from repro.core.config import GPUConfig
from repro.core.engine import Engine
from repro.gpu.interconnect import Crossbar


def make(num_parts: int = 2) -> tuple[Engine, Crossbar]:
    eng = Engine()
    return eng, Crossbar(eng, GPUConfig(num_sms=4), num_parts)


def test_base_latency_applied():
    eng, xbar = make()
    seen = []
    deliver = xbar.to_partition(0, lambda: seen.append(eng.now))
    eng.run()
    assert seen == [deliver]
    assert deliver >= int(GPUConfig().xbar_latency_ns * 1000)


def test_per_port_serialization_preserves_order():
    eng, xbar = make()
    seen = []
    for i in range(5):
        xbar.to_partition(0, lambda i=i: seen.append(i))
    eng.run()
    assert seen == [0, 1, 2, 3, 4]


def test_port_contention_delays_later_messages():
    eng, xbar = make()
    t1 = xbar.to_partition(0, lambda: None)
    t2 = xbar.to_partition(0, lambda: None)
    assert t2 - t1 == xbar.transfer_ps


def test_distinct_ports_do_not_contend():
    eng, xbar = make()
    t1 = xbar.to_partition(0, lambda: None)
    t2 = xbar.to_partition(1, lambda: None)
    assert t1 == t2


def test_return_path_independent_of_forward():
    eng, xbar = make()
    tf = xbar.to_partition(0, lambda: None)
    tr = xbar.to_sm(0, lambda: None)
    assert tf == tr
    assert xbar.messages_forward == 1
    assert xbar.messages_return == 1


def test_control_messages_have_no_payload_occupancy():
    eng, xbar = make()
    t1 = xbar.to_partition(0, lambda: None, payload=False)
    t2 = xbar.to_partition(0, lambda: None, payload=False)
    assert t1 == t2
