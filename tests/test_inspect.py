"""Tests for offline trace inspection and the parallel sweep runner."""

import dataclasses

import pytest

from repro.core.config import SimConfig
from repro.workloads.inspect import trace_signature
from repro.workloads.profiles import IRREGULAR_PROFILES, REGULAR_PROFILES
from repro.workloads.synthetic import synthetic_trace
from repro.workloads.trace import KernelTrace, MemOp, Segment, WarpTrace

CFG = SimConfig()


def test_signature_of_handmade_trace():
    trace = KernelTrace("t", [
        WarpTrace(0, 0, [
            Segment(5, MemOp(False, [0, 4096] + [None] * 30)),  # 2 lines
            Segment(1, MemOp(False, [8192] + [None] * 31)),  # 1 line
            Segment(2, MemOp(True, [0] + [None] * 31)),  # 1 store line
        ])
    ])
    sig = trace_signature(trace, CFG)
    assert sig.warps == 1
    assert sig.loads == 2
    assert sig.stores == 1
    assert sig.requests_per_load == 1.5
    assert sig.frac_divergent_loads == 0.5
    assert sig.store_request_ratio == pytest.approx(1 / 3)
    assert sig.footprint_bytes == 8192 + 128
    assert sig.instructions == 11


def test_signature_matches_profile_without_simulation():
    p = dataclasses.replace(IRREGULAR_PROFILES["spmv"], warps=48, loads_per_warp=6)
    sig = trace_signature(synthetic_trace(p, CFG, seed=2), CFG)
    assert abs(sig.requests_per_load - p.reqs_per_load) < 1.5
    assert abs(sig.frac_divergent_loads - p.frac_divergent) < 0.12
    assert sig.distinct_rows > 50


def test_signature_regular_vs_irregular_ordering():
    irr = dataclasses.replace(IRREGULAR_PROFILES["bh"], warps=32, loads_per_warp=5)
    reg = dataclasses.replace(
        REGULAR_PROFILES["streamcluster"], warps=32, loads_per_warp=5
    )
    s_irr = trace_signature(synthetic_trace(irr, CFG, seed=3), CFG)
    s_reg = trace_signature(synthetic_trace(reg, CFG, seed=3), CFG)
    assert s_irr.requests_per_load > 2 * s_reg.requests_per_load
    assert s_irr.channels_per_divergent_load >= 1.0


def test_signature_empty_trace():
    sig = trace_signature(KernelTrace("empty", []), CFG)
    assert sig.loads == 0
    assert sig.requests_per_load == 0.0
    assert sig.footprint_bytes == 0
    assert set(sig.as_dict()) >= {"requests_per_load", "footprint_bytes"}


# -- parallel sweep -------------------------------------------------------------
def test_run_one_job_roundtrip(tmp_path):
    from repro.analysis.runner import run_one_job

    key, summary, meta = run_one_job(
        (SimConfig(), "TINY", "synthetic", "sad", "gmc", 1, False, str(tmp_path))
    )
    assert key == ("sad", "gmc", 1, False)
    assert summary["ipc"] > 0
    assert meta["simulated"] and meta["sim_events"] > 0
    # A second invocation is served from the disk cache.
    _key, _summary, meta2 = run_one_job(
        (SimConfig(), "TINY", "synthetic", "sad", "gmc", 1, False, str(tmp_path))
    )
    assert not meta2["simulated"]


def test_prefetch_parallel_fills_cache(tmp_path):
    from repro.analysis.runner import ExperimentRunner, prefetch_parallel
    from repro.workloads.suite import Scale

    r = ExperimentRunner(scale=Scale.TINY, seeds=(1,), cache_dir=str(tmp_path))
    n = prefetch_parallel(r, ["sad"], ["gmc", "wg"], workers=2)
    assert n == 2
    files = [p for p in tmp_path.iterdir() if p.suffix == ".json"]
    assert len(files) == 2 + 1  # two results + the sweep manifest
    # The runner now serves results without simulating.
    assert r.mean("sad", "gmc")["ipc"] > 0
    assert r.last_outcome == "disk"


def test_prefetch_requires_cache_dir():
    from repro.analysis.runner import ExperimentRunner, prefetch_parallel
    from repro.workloads.suite import Scale

    r = ExperimentRunner(scale=Scale.TINY, seeds=(1,))
    with pytest.raises(ValueError):
        prefetch_parallel(r, ["sad"], ["gmc"])
