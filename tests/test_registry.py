"""Tests for the scheduler registry."""

import pytest

from repro.mc.base import MemoryController
from repro.mc.registry import (
    PAPER_SCHEDULERS,
    SCHEDULERS,
    controller_class,
    coordinated_schedulers,
)


def test_all_paper_schedulers_registered():
    for name in ("gmc", "fcfs", "frfcfs", "wafcfs", "sbwas", "wg", "wg-m", "wg-bw", "wg-w"):
        cls = controller_class(name)
        assert issubclass(cls, MemoryController)
        assert cls.name == name


def test_unknown_scheduler_raises_with_choices():
    with pytest.raises(ValueError, match="unknown scheduler"):
        controller_class("lru")


def test_paper_order():
    assert PAPER_SCHEDULERS == ("gmc", "wg", "wg-m", "wg-bw", "wg-w")


def test_coordinated_set():
    assert coordinated_schedulers() == {"wg-m", "wg-bw", "wg-w", "wg-share"}
    # Coordinated policies expose the network hook.
    for name in coordinated_schedulers():
        assert hasattr(SCHEDULERS[name], "attach_network")


def test_registry_names_match_classes():
    for name, cls in SCHEDULERS.items():
        assert cls.name == name
