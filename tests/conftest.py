"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))  # make `helpers` importable

# Simulations inside tests must not append run-history records into the
# working tree (results/history/).  Tests of the history machinery opt
# back in with monkeypatch.setenv("REPRO_HISTORY", "1") + a tmp dir, or
# pass a store explicitly.
os.environ.setdefault("REPRO_HISTORY", "0")

from repro.core.config import SimConfig  # noqa: E402

from helpers import MCHarness  # noqa: E402


@pytest.fixture
def config() -> SimConfig:
    return SimConfig()


@pytest.fixture
def small_config() -> SimConfig:
    return SimConfig().small()


@pytest.fixture
def harness():
    return MCHarness
