"""End-to-end integration tests of the full GPU system."""

import dataclasses

import pytest

from repro.core.config import SimConfig
from repro.gpu.system import GPUSystem, simulate
from repro.mc.registry import SCHEDULERS
from repro.workloads.profiles import IRREGULAR_PROFILES
from repro.workloads.synthetic import synthetic_trace
from repro.workloads.trace import KernelTrace, MemOp, Segment, WarpTrace

import repro.idealized  # noqa: F401  (registers zero-div)


def tiny_trace(cfg: SimConfig, n_warps: int = 24, seed: int = 5) -> KernelTrace:
    profile = dataclasses.replace(
        IRREGULAR_PROFILES["bfs"], warps=n_warps, loads_per_warp=4
    )
    return synthetic_trace(profile, cfg, seed=seed, scale=1.0)


@pytest.fixture(scope="module")
def small_cfg():
    return SimConfig().small()


@pytest.mark.parametrize("sched", sorted(SCHEDULERS))
def test_every_scheduler_completes_and_balances(sched, small_cfg):
    cfg = small_cfg.with_scheduler(sched)
    trace = tiny_trace(cfg)
    sys_ = GPUSystem(cfg, trace)
    stats = sys_.run(max_events=5_000_000)
    assert sys_.warps_done == len(trace.warps)
    # Conservation: every issued request is answered exactly once.
    assert stats.loads_issued == len(stats.load_records)
    total_reqs = sum(r.n_requests for r in stats.load_records)
    assert stats.requests_issued == total_reqs
    # Every DRAM-bound read was serviced by some channel.
    dram_reads = sum(c.reads for c in stats.channels)
    dram_noted = sum(r.dram_requests for r in stats.load_records)
    assert dram_reads == dram_noted
    # Controllers fully drained.
    for mc in sys_.mcs:
        assert mc.pending_work() == 0
    assert stats.elapsed_ps > 0
    assert stats.ipc() > 0


def test_determinism_same_seed(small_cfg):
    cfg = small_cfg.with_scheduler("wg-w")
    a = simulate(cfg, tiny_trace(cfg, seed=7)).summary()
    b = simulate(cfg, tiny_trace(cfg, seed=7)).summary()
    assert a == b


def test_different_seeds_differ(small_cfg):
    cfg = small_cfg.with_scheduler("gmc")
    a = simulate(cfg, tiny_trace(cfg, seed=7)).summary()
    b = simulate(cfg, tiny_trace(cfg, seed=8)).summary()
    assert a != b


def test_caches_reduce_dram_traffic(small_cfg):
    trace = tiny_trace(small_cfg)
    with_cache = simulate(small_cfg, trace).summary()
    nocache_cfg = dataclasses.replace(small_cfg, use_l1=False, use_l2=False)
    without = simulate(nocache_cfg, tiny_trace(nocache_cfg)).summary()
    assert with_cache["l1_hits"] > 0 or with_cache["l2_hits"] > 0
    reads_with = with_cache["requests_issued"]
    assert reads_with > 0 and without["requests_issued"] > 0


def test_write_traffic_reaches_dram(small_cfg):
    profile = dataclasses.replace(
        IRREGULAR_PROFILES["nw"], warps=32, loads_per_warp=8
    )
    trace = synthetic_trace(profile, small_cfg, seed=3, scale=1.0)
    stats = simulate(small_cfg, trace)
    assert sum(c.writes for c in stats.channels) > 0
    assert stats.write_intensity() > 0


def test_stall_detection_raises(small_cfg):
    # A trace referencing an SM beyond the configuration must fail fast.
    bad = KernelTrace(
        "bad", [WarpTrace(99, 0, [Segment(1, MemOp(False, [0] * 32))])]
    )
    with pytest.raises(ValueError):
        GPUSystem(small_cfg, bad)


def test_full_config_six_channels():
    cfg = SimConfig()
    trace = tiny_trace(cfg, n_warps=30)
    stats = simulate(cfg, trace)
    touched = sum(1 for c in stats.channels if c.reads > 0)
    assert touched == 6  # address hashing spreads across all channels


def test_zero_divergence_scheduler_runs(small_cfg):
    cfg = small_cfg.with_scheduler("zero-div")
    stats = simulate(cfg, tiny_trace(cfg))
    base = simulate(small_cfg.with_scheduler("gmc"), tiny_trace(small_cfg))
    # The idealized system cannot be slower than the baseline.
    assert stats.ipc() >= base.ipc() * 0.95
    assert stats.mean_divergence_ns() <= base.mean_divergence_ns()
