"""Unit and property tests for the physical address mapping (§II-C)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.config import DRAMOrgConfig
from repro.core.request import MemoryRequest
from repro.gpu.address_map import AddressMap

ORG = DRAMOrgConfig()
MAP = AddressMap(ORG)
CAPACITY = (
    ORG.num_channels * ORG.banks_per_channel * ORG.rows_per_bank * ORG.row_size_bytes
)


def test_fields_in_range():
    for addr in range(0, 1 << 22, 128):
        ch, bank, row, col = MAP.decompose(addr)
        assert 0 <= ch < ORG.num_channels
        assert 0 <= bank < ORG.banks_per_channel
        assert 0 <= row < ORG.rows_per_bank
        assert 0 <= col < ORG.lines_per_row


def test_256b_blocks_stay_together():
    """Both 128B lines of a 256B block map to the same (ch, bank, row)."""
    for block in range(0, 4096):
        a = MAP.decompose(block * 256)
        b = MAP.decompose(block * 256 + 128)
        assert a[:3] == b[:3]
        assert b[3] == a[3] + 1


def test_consecutive_blocks_spread_channels():
    """256B interleaving: a 16KB streaming region touches every channel."""
    channels = {MAP.channel_of(a) for a in range(0, 16384, 256)}
    assert channels == set(range(ORG.num_channels))


def test_channel_xor_breaks_2kb_stride_camping():
    """Without the XOR fold, a 2KB*num_channels stride camps on one
    channel; the hash must spread it."""
    stride = 2048 * ORG.num_channels
    channels = {MAP.channel_of(i * stride) for i in range(64)}
    assert len(channels) > 1


def test_bank_permutation_breaks_row_stride_camping():
    """Power-of-two row strides must not land in a single bank."""
    stride = ORG.row_size_bytes * ORG.banks_per_channel * ORG.num_channels
    banks = {MAP.decompose(i * stride)[1] for i in range(64)}
    assert len(banks) > 4


def test_route_fills_request():
    req = MemoryRequest(addr=123456 * 128, is_write=False, sm_id=0, warp_id=0)
    MAP.route(req)
    assert (req.channel, req.bank, req.row, req.col) == MAP.decompose(req.addr)


def test_line_address():
    assert MAP.line_address(1000) == 896  # 1000 & ~127


@settings(max_examples=300, deadline=None)
@given(
    st.integers(0, ORG.num_channels - 1),
    st.integers(0, ORG.banks_per_channel - 1),
    st.integers(0, ORG.rows_per_bank - 1),
    st.integers(0, ORG.lines_per_row - 1),
)
def test_property_compose_decompose_roundtrip(ch, bank, row, col):
    addr = MAP.compose(ch, bank, row, col)
    assert addr < CAPACITY
    assert MAP.decompose(addr) == (ch, bank, row, col)


@settings(max_examples=300, deadline=None)
@given(st.integers(0, CAPACITY // 128 - 1))
def test_property_decompose_compose_roundtrip(line_idx):
    addr = line_idx * 128
    ch, bank, row, col = MAP.decompose(addr)
    assert MAP.compose(ch, bank, row, col) == addr


def test_compose_validates_ranges():
    import pytest

    with pytest.raises(ValueError):
        MAP.compose(ORG.num_channels, 0, 0, 0)
    with pytest.raises(ValueError):
        MAP.compose(0, ORG.banks_per_channel, 0, 0)
    with pytest.raises(ValueError):
        MAP.compose(0, 0, ORG.rows_per_bank, 0)
    with pytest.raises(ValueError):
        MAP.compose(0, 0, 0, ORG.lines_per_row)


def test_distribution_is_roughly_uniform():
    rng = np.random.default_rng(3)
    addrs = rng.integers(0, CAPACITY // 256, size=20000) * 256
    chans = np.array([MAP.channel_of(int(a)) for a in addrs])
    counts = np.bincount(chans, minlength=ORG.num_channels)
    assert counts.min() > 0.8 * counts.mean()
