"""Unit and property tests for channel-level DRAM timing."""

from hypothesis import given, settings, strategies as st

from repro.core.config import DRAMOrgConfig, DRAMTimingConfig
from repro.dram.channel import Channel

ORG = DRAMOrgConfig()
T = DRAMTimingConfig()


def fresh() -> Channel:
    return Channel(ORG, T)


def test_trrd_spacing_across_banks():
    ch = fresh()
    t0 = ch.earliest_act(0, 0)
    ch.issue_act(0, 1, t0)
    t1 = ch.earliest_act(1, t0)
    assert t1 - t0 >= T.trrd_ps


def test_tfaw_limits_fifth_activate():
    ch = fresh()
    times = []
    for b in range(5):
        t = ch.earliest_act(b, times[-1] if times else 0)
        ch.issue_act(b, 1, t)
        times.append(t)
    assert times[4] - times[0] >= T.tfaw_ps


def test_bank_group_ccd_long_vs_short():
    ch = fresh()
    # Activate one bank in group 0 and one in group 1 far in the past.
    t = 0
    for b in (0, 4, 1):
        ta = ch.earliest_act(b, t)
        ch.issue_act(b, 1, ta)
        t = ta
    start = max(ch.banks[b].earliest_col for b in (0, 1, 4)) + 10 * T.tck_ps
    t0 = ch.earliest_col(0, False, start)
    ch.issue_col(0, False, t0)
    # Different group: tCCDS; same group: tCCDL.
    diff_group = ch.earliest_col(4, False, t0)
    same_group = ch.earliest_col(1, False, t0)
    assert same_group - t0 >= T.tccdl_ps
    assert same_group >= diff_group


def test_data_bus_serializes_bursts():
    ch = fresh()
    for b in (0, 4):
        t = ch.earliest_act(b, ch.next_cmd_free)
        ch.issue_act(b, 1, t)
    t0 = ch.earliest_col(0, False, ch.banks[4].earliest_col)
    end0 = ch.issue_col(0, False, t0)
    t1 = ch.earliest_col(4, False, t0)
    end1 = ch.issue_col(4, False, t1)
    # Second read's data must start after the first finishes.
    assert end1 - (ch.bursts_per_access * T.tburst_ps) >= end0


def test_write_to_read_turnaround():
    ch = fresh()
    t = ch.earliest_act(0, 0)
    ch.issue_act(0, 1, t)
    tw = ch.earliest_col(0, True, t)
    wend = ch.issue_col(0, True, tw)
    tr = ch.earliest_col(0, False, tw)
    assert tr >= wend + T.twtr_ps


def test_command_bus_one_per_tck():
    ch = fresh()
    t0 = ch.earliest_act(0, 0)
    ch.issue_act(0, 1, t0)
    assert ch.earliest_pre(1, t0) >= t0 + T.tck_ps


def test_busy_accounting():
    ch = fresh()
    t = ch.earliest_act(0, 0)
    ch.issue_act(0, 1, t)
    tc = ch.earliest_col(0, False, t)
    ch.issue_col(0, False, tc)
    assert ch.data_bus_busy_ps == ch.bursts_per_access * T.tburst_ps
    assert ch.commands_issued == 2


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 3)), min_size=1, max_size=60))
def test_property_legal_sequences_never_violate_bank_state(ops):
    """Drive random (bank, op) sequences through the earliest-issue API;
    the channel must accept every command at its advertised earliest time
    without raising, and the clock never goes backwards."""
    ch = fresh()
    now = 0
    for bank, op in ops:
        b = ch.banks[bank]
        if b.open_row is None:
            t = ch.earliest_act(bank, now)
            ch.issue_act(bank, row=op, now=t)
        elif op == 3:
            t = ch.earliest_pre(bank, now)
            ch.issue_pre(bank, t)
        else:
            is_write = op == 2
            t = ch.earliest_col(bank, is_write, now)
            ch.issue_col(bank, is_write, t)
        assert t >= now
        now = t
