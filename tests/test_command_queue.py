"""Unit tests for the per-bank command queues and score bookkeeping."""

from repro.core.config import DRAMOrgConfig
from repro.mc.command_queue import SCORE_HIT, SCORE_MISS, CommandQueues

from helpers import make_request

ORG = DRAMOrgConfig()


def fresh(depth: int = 8) -> CommandQueues:
    return CommandQueues(ORG, depth)


def test_first_insert_scores_as_miss():
    cq = fresh()
    entry = cq.insert(make_request(bank=0, row=5), 0)
    assert entry.score == SCORE_MISS
    assert cq.queue_score[0] == SCORE_MISS
    assert cq.last_sched_row[0] == 5


def test_same_row_scores_as_hit():
    cq = fresh()
    cq.insert(make_request(bank=0, row=5), 0)
    entry = cq.insert(make_request(bank=0, row=5), 0)
    assert entry.score == SCORE_HIT
    assert cq.queue_score[0] == SCORE_MISS + SCORE_HIT


def test_row_change_resets_hit_counter():
    cq = fresh()
    cq.insert(make_request(bank=0, row=5), 0)
    cq.insert(make_request(bank=0, row=5), 0)
    assert cq.hits_since_row_change[0] == ORG.bursts_per_access
    cq.insert(make_request(bank=0, row=6), 0)
    assert cq.hits_since_row_change[0] == 0


def test_pop_restores_score():
    cq = fresh()
    cq.insert(make_request(bank=0, row=5), 0)
    cq.insert(make_request(bank=0, row=5), 0)
    e = cq.pop(0)
    assert e.score == SCORE_MISS
    assert cq.queue_score[0] == SCORE_HIT
    cq.pop(0)
    assert cq.queue_score[0] == 0


def test_space_and_occupancy():
    cq = fresh(depth=2)
    assert cq.space(0) == 2
    cq.insert(make_request(bank=0, row=1), 0)
    assert cq.space(0) == 1
    assert cq.occupancy(0) == 1
    cq.insert(make_request(bank=0, row=1), 0)
    cq.insert(make_request(bank=0, row=1), 0)  # soft overflow allowed
    assert cq.space(0) == 0
    assert cq.total_occupancy() == 3


def test_busy_banks_and_pending_reads():
    cq = fresh()
    cq.insert(make_request(bank=0, row=1), 0)
    cq.insert(make_request(bank=3, row=1, is_write=True), 0)
    assert cq.busy_banks() == 2
    assert cq.pending_reads() == 1
    assert not cq.empty()


def test_head_and_timestamps():
    cq = fresh()
    req = make_request(bank=2, row=9)
    cq.insert(req, 1234)
    assert cq.head(2).req is req
    assert req.t_scheduled == 1234
    assert cq.head(3) is None


def test_predicted_hit_tracks_queue_tail():
    cq = fresh()
    assert not cq.predicted_hit(0, 7)
    cq.insert(make_request(bank=0, row=7), 0)
    assert cq.predicted_hit(0, 7)
    assert cq.request_score(0, 7) == SCORE_HIT
    assert cq.request_score(0, 8) == SCORE_MISS
