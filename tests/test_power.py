"""Unit tests for the GDDR5 power model (§VI-B)."""

import pytest

from repro.core.config import DRAMTimingConfig
from repro.dram.power import GDDR5PowerParams, estimate_channel_power

T = DRAMTimingConfig()
US = 1_000_000  # ps


def estimate(activates, busy_frac, reads=1000, writes=0, elapsed=100 * US):
    return estimate_channel_power(
        activates=activates,
        reads=reads,
        writes=writes,
        data_bus_busy_ps=int(busy_frac * elapsed),
        elapsed_ps=elapsed,
        timing=T,
    )


def test_io_power_dominates_at_high_utilization():
    p = estimate(activates=2000, busy_frac=0.6)
    assert p.io_w > p.activate_w
    assert p.io_w > p.background_w
    assert p.total_w == pytest.approx(
        p.background_w + p.activate_w + p.array_rw_w + p.io_w
    )


def test_power_monotone_in_activates():
    lo = estimate(activates=1000, busy_frac=0.5)
    hi = estimate(activates=2000, busy_frac=0.5)
    assert hi.total_w > lo.total_w
    assert hi.activate_w == pytest.approx(2 * lo.activate_w)


def test_row_hit_rate_sensitivity_is_small():
    """The §VI-B claim: ~16% fewer row hits costs only a few % power.

    At a fixed access count, a 16% row-hit-rate drop raises the activate
    count by roughly 1/(1-0.16) = 19%; total power must move by well under
    10% because I/O dominates GDDR5 power.
    """
    base = estimate(activates=2000, busy_frac=0.55)
    worse = estimate(activates=int(2000 * 1.19), busy_frac=0.55)
    delta = worse.total_w / base.total_w - 1.0
    assert 0.0 < delta < 0.10


def test_zero_elapsed_rejected():
    with pytest.raises(ValueError):
        estimate_channel_power(0, 0, 0, 0, 0, T)


def test_utilization_clamped():
    p = estimate(activates=0, busy_frac=2.0)  # busy > elapsed is clamped
    q = estimate(activates=0, busy_frac=1.0)
    assert p.io_w == pytest.approx(q.io_w)


def test_params_energy_positive():
    params = GDDR5PowerParams()
    assert params.activate_energy_j > 0
    assert params.io_w_at_full_bw > 1.0  # I/O is watts-scale at 6 Gbps


def test_as_dict_keys():
    p = estimate(activates=100, busy_frac=0.2)
    d = p.as_dict()
    assert set(d) == {"background_w", "activate_w", "array_rw_w", "io_w", "total_w"}
