"""Shared helpers for the test suite (importable as ``helpers``)."""

from __future__ import annotations

from repro.core.config import SimConfig
from repro.core.engine import Engine
from repro.core.request import MemoryRequest
from repro.core.stats import ChannelStats
from repro.mc.registry import controller_class


def make_request(
    bank: int = 0,
    row: int = 0,
    col: int = 0,
    channel: int = 0,
    is_write: bool = False,
    sm_id: int = 0,
    warp_id: int = 0,
    addr: int | None = None,
) -> MemoryRequest:
    """A raw, pre-routed request for controller-level tests."""
    if addr is None:
        # Unique synthetic address: identity is all the tests need.
        addr = (((channel * 16 + bank) * 4096 + row) * 16 + col) * 128
    req = MemoryRequest(addr=addr, is_write=is_write, sm_id=sm_id, warp_id=warp_id)
    req.channel, req.bank, req.row, req.col = channel, bank, row, col
    return req


class MCHarness:
    """Engine + one controller + reply capture, for scheduler unit tests."""

    def __init__(self, scheduler: str, config: SimConfig | None = None) -> None:
        self.config = config or SimConfig()
        self.engine = Engine()
        self.stats = ChannelStats()
        self.delivered: list[MemoryRequest] = []
        self.mc = controller_class(scheduler)(
            self.engine, 0, self.config, self.stats, self.delivered.append
        )
        if hasattr(self.mc, "attach_network"):
            from repro.mc.coordination import CoordinationNetwork

            self.network = CoordinationNetwork(self.engine)
            self.mc.attach_network(self.network)

    def read(self, **kwargs) -> MemoryRequest:
        req = make_request(**kwargs)
        self.mc.receive_read(req)
        return req

    def write(self, **kwargs) -> MemoryRequest:
        req = make_request(is_write=True, **kwargs)
        self.mc.receive_write(req)
        return req

    def run(self, max_events: int = 500_000) -> None:
        self.engine.run(max_events=max_events)

    def order_delivered(self) -> list[int]:
        return [r.req_id for r in self.delivered]
