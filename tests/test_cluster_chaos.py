"""Chaos harness: every fleet fault class is injected, detected, recovered.

Each test breaks the distributed backend the way production breaks —
SIGKILL mid-protocol-step, heartbeats that freeze while the simulation
keeps running, lease files torn by failing disks, leases that vanish,
writers killed inside an atomic write — and asserts the lease protocol's
specific detector fires *and* the sweep still completes with complete,
uncorrupted artifacts.  The fault classes and their detectors are
tabulated in ``docs/distributed.md``.

Process-level faults use real subprocesses armed via ``REPRO_CHAOS``
(never set in this test process's own environment unless the arm is
``!once``-consumed by a controlled thread); in-process faults use
threads so the test can vandalize files at exact protocol moments.
"""

from __future__ import annotations

import json
import os
import pickle
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.analysis.runner import ExperimentRunner
from repro.analysis.sweep import (
    cluster_job_records,
    cluster_run_meta,
    run_sweep,
)
from repro.cluster.chaos import corrupt_file
from repro.cluster.lease import Lease
from repro.cluster.store import JobStore, compact_manifest
from repro.cluster.worker import ClusterWorker
from repro.guardrails.checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointError,
    peek_checkpoint,
)
from repro.workloads.suite import Scale

SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def tiny_runner(path, **kw) -> ExperimentRunner:
    return ExperimentRunner(
        scale=Scale.TINY, seeds=(1,), cache_dir=str(path), **kw
    )


def cache_entries(path) -> dict[str, dict]:
    """Cache JSONs keyed by name, minus wall-clock (non-deterministic)."""
    from repro.analysis.sweep import MANIFEST_NAME

    return {
        p.name: {
            k: v
            for k, v in json.loads(p.read_text()).items()
            if k != "sim_wall_s"
        }
        for p in path.iterdir()
        if p.suffix == ".json" and p.name != MANIFEST_NAME
    }


def chaos_env(**arms) -> dict:
    """A subprocess environment with ``REPRO_CHAOS`` arms (and nothing
    chaotic inherited by this test process)."""
    env = {k: v for k, v in os.environ.items()
           if k not in ("REPRO_CHAOS", "REPRO_CHAOS_MARK_DIR")}
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.update(arms)
    return env


def fast_store(tmp_path, schedulers=("gmc",), **meta_kw) -> JobStore:
    """A store over real TINY jobs with chaos-friendly lease timings."""
    from repro.analysis.sweep import SweepJob

    cache = tmp_path / "cache"
    cache.mkdir(exist_ok=True)
    runner = tiny_runner(cache, **meta_kw.pop("runner_kw", {}))
    meta = cluster_run_meta(
        runner,
        heartbeat_s=meta_kw.pop("heartbeat_s", 0.2),
        lease_expiry_s=meta_kw.pop("lease_expiry_s", 1.0),
        **meta_kw,
    )
    store = JobStore.create(str(tmp_path / "run"), meta)
    store.ensure_jobs(cluster_job_records([
        SweepJob(kind="synthetic", bench="sad", scheduler=s, scale="TINY",
                 seed=1, perfect=False, config_hash=runner.config_hash)
        for s in schedulers
    ]))
    return store


# ----------------------------------------------------------------------
# fault class: worker SIGKILLed mid-protocol (the OOM-killer scenario)
# ----------------------------------------------------------------------
def test_sigkill_mid_lease_creation_leaves_no_lease(tmp_path):
    """Satellite: killed between the lease tmp-write and the link — a
    partial lease is unrepresentable, the job stays claimable."""
    path = str(tmp_path / "leases" / "job.lease")
    proc = subprocess.run(
        [sys.executable, "-c",
         "import sys\n"
         "from repro.cluster.lease import Lease\n"
         "Lease(sys.argv[1], 10.0).try_claim('victim', 1)\n",
         path],
        env=chaos_env(REPRO_CHAOS="lease-tmp=kill"), timeout=60,
    )
    assert proc.returncode == -9  # SIGKILL landed inside the claim
    assert not os.path.exists(path)  # no lease, partial or otherwise
    leftovers = os.listdir(tmp_path / "leases")
    assert all(name.startswith(".tmp-") for name in leftovers)
    # the slot is immediately claimable by anyone else
    assert Lease(path, 10.0).try_claim("rescuer", 1)


def test_sigkill_just_after_claim_expires_and_is_reclaimed(tmp_path):
    """Killed one instruction after the link: the lease is complete
    (atomicity), orphaned, and ages out on the heartbeat schedule."""
    path = str(tmp_path / "job.lease")
    proc = subprocess.run(
        [sys.executable, "-c",
         "import sys\n"
         "from repro.cluster.lease import Lease\n"
         "Lease(sys.argv[1], 10.0).try_claim('victim', 1)\n",
         path],
        env=chaos_env(REPRO_CHAOS="lease-claimed=kill"), timeout=60,
    )
    assert proc.returncode == -9
    lease = Lease(path, 0.4)
    info = lease.read()
    assert info is not None and info.owner == "victim" and not info.corrupt
    assert not lease.try_claim("rescuer", 2)  # not expired yet: protected
    time.sleep(0.5)
    assert lease.expired()
    assert lease.try_claim("rescuer", 2)  # orphan reclaimed


def test_sigkill_worker_mid_job_fleet_completes_bit_identical(tmp_path):
    """The tentpole acceptance: a worker is SIGKILLed after claiming a
    job; the survivor reclaims the orphaned lease, finishes the whole
    sweep, and the results are bit-identical to a local run."""
    store = fast_store(
        tmp_path, schedulers=("gmc", "wg"), lease_expiry_s=1.5
    )
    victim = subprocess.run(
        [sys.executable, "-m", "repro", "cluster", "worker",
         store.root, "--worker-id", "victim", "--no-wait"],
        env=chaos_env(REPRO_CHAOS="worker-claimed=kill"),
        timeout=120, capture_output=True,
    )
    assert victim.returncode == -9  # died owning a lease, job unfinished
    first = store.job_ids()[0]
    orphan = store.lease(first).read()
    assert orphan is not None and orphan.owner == "victim"
    assert store.outcome(first) is None
    # The rescuer must wait out the expiry, then take over everything.
    stats = ClusterWorker(store, worker_id="rescuer").drain()
    assert stats.reclaims == 1  # the orphaned lease, detected as held
    assert stats.done == 2 and stats.failed_attempts == 0
    assert store.all_terminal()
    manifest = compact_manifest(store)
    assert all(row["status"] == "done" for row in manifest.values())
    assert all(row["worker"] == "rescuer" for row in manifest.values())
    # Bit-identity against an uninterrupted single-process sweep.
    ref = tmp_path / "ref"
    ref.mkdir()
    run_sweep(tiny_runner(ref), ["sad"], ["gmc", "wg"], workers=0,
              history=False)
    assert cache_entries(tmp_path / "cache") == cache_entries(ref)


# ----------------------------------------------------------------------
# fault class: live-but-stalled worker (heartbeat freeze / stall)
# ----------------------------------------------------------------------
def drain_in_thread(store, worker_id):
    worker = ClusterWorker(store, worker_id=worker_id)
    thread = threading.Thread(
        target=worker.drain, kwargs={"max_jobs": 1, "wait": False},
        daemon=True,
    )
    thread.start()
    return worker, thread


def test_frozen_heartbeat_is_taken_over(tmp_path, monkeypatch):
    """``heartbeat=freeze``: the victim keeps simulating but silently
    stops renewing — the livelock case.  Detection is the takeover."""
    store = fast_store(tmp_path)
    job = store.job_ids()[0]
    monkeypatch.setenv("REPRO_CHAOS_MARK_DIR", str(tmp_path / "marks"))
    monkeypatch.setenv(
        "REPRO_CHAOS", "heartbeat=freeze!once,job-start=stall:2.5!once"
    )
    victim, thread = drain_in_thread(store, "victim")
    deadline = time.time() + 10
    while store.lease(job).read() is None and time.time() < deadline:
        time.sleep(0.01)
    assert store.lease(job).read().owner == "victim"
    # Frozen victim's heartbeat never advances: the lease expires under
    # it and the rescuer (chaos arms already consumed) takes the job.
    rescuer = ClusterWorker(store, worker_id="rescuer").drain()
    assert rescuer.reclaims == 1 and rescuer.done == 1
    thread.join(timeout=30)
    assert not thread.is_alive()
    # Exactly one outcome exists; the duplicate publisher lost cleanly.
    assert victim.stats.done + rescuer.done == 1
    assert store.outcome(job)["status"] == "done"
    assert store.all_terminal()


def test_stalled_worker_detects_its_lost_lease(tmp_path, monkeypatch):
    """``heartbeat=stall``: renewal resumes *after* the takeover and
    must report the loss to its worker, not overwrite the new owner."""
    store = fast_store(tmp_path)
    job = store.job_ids()[0]
    monkeypatch.setenv("REPRO_CHAOS_MARK_DIR", str(tmp_path / "marks"))
    monkeypatch.setenv(
        "REPRO_CHAOS", "heartbeat=stall:2!once,job-start=stall:2.5!once"
    )
    victim, thread = drain_in_thread(store, "victim")
    deadline = time.time() + 10
    while store.lease(job).read() is None and time.time() < deadline:
        time.sleep(0.01)
    rescuer = ClusterWorker(store, worker_id="rescuer").drain()
    assert rescuer.reclaims == 1 and rescuer.done == 1
    thread.join(timeout=30)
    assert not thread.is_alive()
    # The victim's late renewal saw the new owner and flagged the loss.
    assert victim.stats.lost_leases == 1
    assert store.lease(job).read() is None or \
        store.lease(job).read().owner != "victim"
    assert store.outcome(job)["status"] == "done"


def test_corrupted_live_lease_is_detected_and_reclaimed(tmp_path, monkeypatch):
    """A torn lease file (failing disk): the owner's renewal fails, the
    mtime stands in for the heartbeat, and the job is reclaimed."""
    store = fast_store(tmp_path)
    job = store.job_ids()[0]
    monkeypatch.setenv("REPRO_CHAOS_MARK_DIR", str(tmp_path / "marks"))
    monkeypatch.setenv("REPRO_CHAOS", "job-start=stall:2.5!once")
    victim, thread = drain_in_thread(store, "victim")
    deadline = time.time() + 10
    while store.lease(job).read() is None and time.time() < deadline:
        time.sleep(0.01)
    corrupt_file(store.lease(job).path)
    assert store.lease(job).read().corrupt
    rescuer = ClusterWorker(store, worker_id="rescuer").drain()
    assert rescuer.reclaims == 1  # corrupt slot counted as held
    assert rescuer.done == 1
    thread.join(timeout=30)
    # The victim could not renew a corrupt lease: ownership loss detected.
    assert victim.stats.lost_leases == 1
    assert store.outcome(job)["status"] == "done"


def test_vanished_lease_duplicate_execution_single_outcome(tmp_path, monkeypatch):
    """Deleting a live lease invites a duplicate claimer on purpose:
    both workers run the job, exactly one outcome is published, and the
    cache entry stays complete (deterministic sim + exclusive create)."""
    store = fast_store(tmp_path)
    job = store.job_ids()[0]
    monkeypatch.setenv("REPRO_CHAOS_MARK_DIR", str(tmp_path / "marks"))
    monkeypatch.setenv("REPRO_CHAOS", "job-start=stall:2.5!once")
    victim, thread = drain_in_thread(store, "victim")
    deadline = time.time() + 10
    while store.lease(job).read() is None and time.time() < deadline:
        time.sleep(0.01)
    os.unlink(store.lease(job).path)
    rescuer = ClusterWorker(store, worker_id="rescuer").drain()
    assert rescuer.claims == 1 and rescuer.reclaims == 0  # fresh claim
    thread.join(timeout=30)
    assert victim.stats.lost_leases == 1  # its renewal found nothing
    assert victim.stats.done + rescuer.done == 1  # one publisher won
    outcome = store.outcome(job)
    assert outcome is not None and outcome["status"] == "done"
    names = os.listdir(store.outcomes_dir)
    assert len([n for n in names if n.endswith(".json")]) == 1


# ----------------------------------------------------------------------
# fault class: crash inside an atomic write (satellite 4)
# ----------------------------------------------------------------------
def test_crash_mid_atomic_write_never_exposes_partial_file(tmp_path):
    target = str(tmp_path / "doc.json")
    code = (
        "import sys\n"
        "from repro.core.atomic import atomic_write_json\n"
        "atomic_write_json(sys.argv[1], {'huge': 'x' * 100000})\n"
    )
    env = chaos_env(REPRO_CHAOS="atomic-write=kill")
    proc = subprocess.run([sys.executable, "-c", code, target],
                          env=env, timeout=60)
    assert proc.returncode == -9
    assert not os.path.exists(target)  # never materialized partially
    # A pre-existing document survives the same crash untouched.
    with open(target, "w") as fh:
        json.dump({"old": True}, fh)
    proc = subprocess.run([sys.executable, "-c", code, target],
                          env=env, timeout=60)
    assert proc.returncode == -9
    assert json.load(open(target)) == {"old": True}
    # Without chaos the exact same call lands the new document whole.
    proc = subprocess.run([sys.executable, "-c", code, target],
                          env=chaos_env(), timeout=60)
    assert proc.returncode == 0
    assert json.load(open(target))["huge"].startswith("x")


def test_crash_mid_append_never_garbles_the_log(tmp_path):
    log = str(tmp_path / "log.jsonl")
    code = (
        "import sys\n"
        "from repro.core.atomic import atomic_append_line\n"
        "atomic_append_line(sys.argv[1], '{\"n\": 3}')\n"
    )
    for n in (1, 2):
        subprocess.run(
            [sys.executable, "-c", code.replace('"n": 3', f'"n": {n}'), log],
            env=chaos_env(), timeout=60, check=True,
        )
    proc = subprocess.run(
        [sys.executable, "-c", code, log],
        env=chaos_env(REPRO_CHAOS="append-line=kill"), timeout=60,
    )
    assert proc.returncode == -9
    lines = open(log).read().splitlines()
    assert [json.loads(ln)["n"] for ln in lines] == [1, 2]  # nothing torn


# ----------------------------------------------------------------------
# fault class: mid-simulation crash -> checkpoint-backed recovery
# ----------------------------------------------------------------------
def test_cluster_retry_resumes_from_checkpoint_bit_identical(tmp_path, monkeypatch):
    """A job that dies mid-simulation in cluster mode is retried from
    its last snapshot (PR 3's restore) and matches an unbroken run."""
    from repro.cluster.retry import RetryPolicy

    store = fast_store(
        tmp_path, schedulers=("wg",), retries=1,
        policy=RetryPolicy(base_s=0.01, cap_s=0.02),
        runner_kw={"checkpoint_period_ns": 500.0},
    )
    job = store.job_ids()[0]
    monkeypatch.setenv("REPRO_SWEEP_CRASH_AT", "sad:wg:1:1500")
    stats = ClusterWorker(store, worker_id="w1").drain()
    assert stats.failed_attempts == 1 and stats.done == 1
    fails = store.failures(job)
    assert len(fails) == 1
    assert fails[0]["error_type"] == "FaultInjectionError"
    assert fails[0]["checkpoint"]  # the snapshot was found and recorded
    outcome = store.outcome(job)
    assert outcome["status"] == "done" and outcome["retries"] == 1
    assert outcome["resumed"] is True  # finished from the snapshot
    # Reference: the same job, no crash, fresh cache — identical result.
    monkeypatch.delenv("REPRO_SWEEP_CRASH_AT")
    ref = tmp_path / "ref"
    ref.mkdir()
    run_sweep(
        ExperimentRunner(scale=Scale.TINY, seeds=(1,), cache_dir=str(ref),
                         checkpoint_period_ns=500.0),
        ["sad"], ["wg"], workers=0, history=False,
    )
    assert cache_entries(tmp_path / "cache") == cache_entries(ref)


# ----------------------------------------------------------------------
# fault class: corrupt / truncated checkpoint files
# ----------------------------------------------------------------------
def test_corrupt_checkpoints_surface_as_checkpoint_error(tmp_path):
    """Every flavor of damaged snapshot raises ``CheckpointError`` —
    never a raw pickle exception the sweep would misclassify."""
    cases = {
        "garbage.ckpt": b"\x93NUMPY\x01\x00 this is not a pickle",
        "empty.ckpt": b"",
        "truncated.ckpt": pickle.dumps({
            "format": CHECKPOINT_FORMAT, "version": 1,
            "config_hash": "x", "next_req_id": 1,
            "system": list(range(10000)),
        })[:80],
        "not-a-dict.ckpt": pickle.dumps([1, 2, 3]),
        "wrong-format.ckpt": pickle.dumps({"format": "other", "version": 1}),
        "wrong-version.ckpt": pickle.dumps(
            {"format": CHECKPOINT_FORMAT, "version": 999}),
        "missing-keys.ckpt": pickle.dumps(
            {"format": CHECKPOINT_FORMAT, "version": 1}),
    }
    for name, blob in cases.items():
        path = tmp_path / name
        path.write_bytes(blob)
        with pytest.raises(CheckpointError):
            peek_checkpoint(str(path))
    with pytest.raises(CheckpointError, match="no checkpoint"):
        peek_checkpoint(str(tmp_path / "never-written.ckpt"))
