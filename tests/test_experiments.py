"""Tests for the experiment runner, drivers and reporting."""

import dataclasses

import pytest

from repro.analysis.experiments import (
    fig2_coalescing,
    fig3_divergence,
    fig8_ipc,
    table1_merb,
)
from repro.analysis.report import bar, format_table, geomean, rows_to_csv
from repro.analysis.runner import ExperimentRunner
from repro.core.config import SimConfig
from repro.workloads.suite import Scale


def tiny_runner(**kw) -> ExperimentRunner:
    return ExperimentRunner(scale=Scale.TINY, seeds=(1,), **kw)


# -- report helpers ------------------------------------------------------------
def test_format_table_alignment():
    out = format_table(["a", "bb"], [[1, 2.5], ["x", 3.25]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "bb" in lines[2]
    assert "3.250" in out


def test_rows_to_csv():
    csv_text = rows_to_csv(["x", "y"], [[1, 2], [3, 4]])
    assert csv_text.splitlines() == ["x,y", "1,2", "3,4"]


def test_geomean():
    assert geomean([1.0, 4.0]) == pytest.approx(2.0)
    assert geomean([]) == 0.0
    assert geomean([0.0, 2.0]) == pytest.approx(2.0)  # non-positives skipped


def test_bar():
    assert bar(2.0, scale=10, maximum=2.0) == "#" * 10
    assert bar(-1.0) == ""


# -- runner ---------------------------------------------------------------------
def test_runner_rejects_bad_kind():
    with pytest.raises(ValueError):
        ExperimentRunner(kind="bogus")


def test_runner_memoizes_runs():
    r = tiny_runner()
    a = r.run("sad", "gmc", seed=1)
    b = r.run("sad", "gmc", seed=1)
    assert a is b  # cached object


def test_runner_disk_cache(tmp_path):
    r1 = ExperimentRunner(scale=Scale.TINY, seeds=(1,), cache_dir=str(tmp_path))
    a = r1.run("sad", "gmc", seed=1)
    r2 = ExperimentRunner(scale=Scale.TINY, seeds=(1,), cache_dir=str(tmp_path))
    b = r2.run("sad", "gmc", seed=1)
    assert a == b
    assert any(p.suffix == ".json" for p in tmp_path.iterdir())


def test_runner_extras_present():
    r = tiny_runner()
    s = r.run("sad", "gmc", seed=1)
    for key in ("unit_group_frac", "activates", "reads", "writes", "ipc"):
        assert key in s


def test_speedup_is_relative():
    r = tiny_runner()
    assert r.speedup("sad", "gmc") == pytest.approx(1.0)


def test_seed_spread():
    r = ExperimentRunner(scale=Scale.TINY, seeds=(1, 2))
    mean, spread = r.seed_spread("sad", "gmc")
    assert mean > 0
    assert spread >= 0
    one = ExperimentRunner(scale=Scale.TINY, seeds=(1,))
    assert one.seed_spread("sad", "gmc")[1] == 0.0


def test_distinct_configs_get_distinct_cache_entries(tmp_path):
    """Regression: two different SimConfigs must never share a cache entry.

    Pre-fix, the cache was keyed by a manual tag, so two runners with
    different configs (and no tag) silently read each other's results.
    Content-hash keys make the collision impossible.
    """
    base = ExperimentRunner(scale=Scale.TINY, seeds=(1,), cache_dir=str(tmp_path))
    alpha = ExperimentRunner(
        config=dataclasses.replace(
            SimConfig(), mc=dataclasses.replace(SimConfig().mc, sbwas_alpha=0.25)
        ),
        scale=Scale.TINY,
        seeds=(1,),
        cache_dir=str(tmp_path),
    )
    assert base.config_hash != alpha.config_hash
    a = base.run("sad", "sbwas", seed=1)
    b = alpha.run("sad", "sbwas", seed=1)
    assert a["ipc"] != b["ipc"]  # the alpha change is visible, not masked
    names = [p.name for p in tmp_path.iterdir() if p.suffix == ".json"]
    assert len(names) == 2
    assert any(base.config_hash in n for n in names)
    assert any(alpha.config_hash in n for n in names)
    # A fresh runner with the tweaked config reloads its own entry.
    alpha2 = ExperimentRunner(
        config=alpha.config, scale=Scale.TINY, seeds=(1,), cache_dir=str(tmp_path)
    )
    assert alpha2.run("sad", "sbwas", seed=1) == b
    assert alpha2.last_outcome == "disk"


def test_config_hash_is_stable_and_sensitive():
    from repro.analysis.runner import config_hash

    assert config_hash(SimConfig()) == config_hash(SimConfig())
    tweaked = dataclasses.replace(
        SimConfig(), mc=dataclasses.replace(SimConfig().mc, command_queue_depth=8)
    )
    assert config_hash(SimConfig()) != config_hash(tweaked)


def test_atomic_write_json_leaves_no_temp_files(tmp_path):
    from repro.analysis.runner import atomic_write_json

    path = tmp_path / "sub" / "x.json"
    atomic_write_json(str(path), {"a": 1})
    atomic_write_json(str(path), {"a": 2})  # overwrite in place
    import json

    assert json.loads(path.read_text()) == {"a": 2}
    assert [p.name for p in path.parent.iterdir()] == ["x.json"]


# -- drivers ---------------------------------------------------------------------
def test_table1_driver():
    res = table1_merb()
    assert res.rows[0] == [1, 31]
    assert res.rows[1] == [2, 20]
    assert "MERB" in res.table
    assert res.headline["single_bank_util_at_31"] == pytest.approx(0.62, abs=0.005)


def test_fig2_fig3_shapes():
    r = tiny_runner()
    f2 = fig2_coalescing(r)
    assert len(f2.rows) == 12  # 11 benchmarks + MEAN
    assert 0.3 < f2.headline["frac_divergent"] < 0.8
    assert 3.0 < f2.headline["requests_per_load"] < 9.0
    f3 = fig3_divergence(r)
    assert f3.headline["last_over_first"] > 1.0
    assert 1.0 < f3.headline["channels_per_warp"] < 4.0


def test_fig8_normalized_to_gmc():
    r = tiny_runner()
    res = fig8_ipc(r, schedulers=("wg",))
    assert res.rows[-1][0] == "GEOMEAN"
    assert "speedup_wg" in res.headline
    for row in res.rows[:-1]:
        assert row[1] > 0
