"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "bfs" in out and "wg-w" in out


def test_run_prints_summary(capsys):
    assert main(["run", "sad", "--scale", "tiny", "--scheduler", "gmc"]) == 0
    out = capsys.readouterr().out
    assert "ipc" in out
    assert "row_hit_rate" in out


def test_run_algorithmic_kind(capsys):
    assert main(
        ["run", "sad", "--scale", "tiny", "--kind", "algorithmic"]
    ) == 0
    assert "ipc" in capsys.readouterr().out


def test_compare_table(capsys):
    assert main(["compare", "sad", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    for sched in ("gmc", "wg", "wg-m", "wg-bw", "wg-w"):
        assert sched in out


def test_rejects_unknown_benchmark():
    with pytest.raises(SystemExit):
        main(["run", "not-a-benchmark"])


def test_run_json_output(capsys):
    assert main(["run", "sad", "--scale", "tiny", "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert {"ipc", "row_hit_rate", "effective_latency_ns"} <= set(summary)
    assert all(isinstance(v, (int, float)) for v in summary.values())


def test_run_exports_metrics_and_trace(tmp_path, capsys):
    mpath = tmp_path / "m.json"
    tpath = tmp_path / "t.json"
    assert main([
        "run", "sad", "--scale", "tiny",
        "--metrics-out", str(mpath), "--trace-out", str(tpath),
    ]) == 0
    captured = capsys.readouterr()
    assert "events/s" in captured.err  # wall-clock report on stderr
    bundle = json.loads(mpath.read_text())
    assert bundle["schema_version"] == 1
    assert len(bundle["intervals"]) >= 2
    trace = json.loads(tpath.read_text())
    assert any(e["ph"] == "X" for e in trace["traceEvents"])


def test_run_metrics_csv(tmp_path):
    cpath = tmp_path / "m.csv"
    assert main([
        "run", "sad", "--scale", "tiny", "--metrics-out", str(cpath),
    ]) == 0
    header, *rows = cpath.read_text().strip().splitlines()
    assert "t_ps" in header.split(",")
    assert len(rows) >= 2


def test_run_profile_report(capsys):
    assert main(["run", "sad", "--scale", "tiny", "--profile"]) == 0
    err = capsys.readouterr().err
    assert "component" in err and "SMCore" in err


def test_trace_subcommand_defaults_output(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["trace", "sad", "--scale", "tiny"]) == 0
    trace = json.loads((tmp_path / "trace.json").read_text())
    assert trace["displayTimeUnit"] == "ns"
    assert any(e["ph"] == "X" for e in trace["traceEvents"])


# ---------------------------------------------------------------------------
# runtime guardrail flags (docs/robustness.md)
# ---------------------------------------------------------------------------
def test_run_with_guardrails_enabled(capsys):
    assert main(
        ["run", "sad", "--scale", "tiny", "--invariants", "--audit", "--json"]
    ) == 0
    assert json.loads(capsys.readouterr().out)["ipc"] > 0


def test_run_checkpoint_then_restore_is_identical(tmp_path, capsys):
    ckpt = tmp_path / "snap.ckpt"
    assert main([
        "run", "sad", "--scale", "tiny", "--json",
        "--checkpoint-period", "1500", "--checkpoint-out", str(ckpt),
    ]) == 0
    full = json.loads(capsys.readouterr().out)
    assert ckpt.exists()  # a mid-run snapshot was left behind
    assert main(["run", "--restore-from", str(ckpt), "--json"]) == 0
    captured = capsys.readouterr()
    assert json.loads(captured.out) == full  # resumed == uninterrupted
    assert "restoring" in captured.err


@pytest.mark.parametrize(
    "argv",
    [
        ["run", "sad", "--checkpoint-period", "100"],  # no --checkpoint-out
        ["run", "sad", "--checkpoint-out", "x.ckpt"],  # no period
        ["run", "sad", "--checkpoint-period", "100", "--checkpoint-out",
         "x.ckpt", "--metrics-out", "m.json"],  # telemetry can't checkpoint
        ["run", "sad", "--restore-from", "x.ckpt"],  # benchmark + restore
        ["run", "--restore-from", "x.ckpt", "--seed", "3"],  # baked-in knob
        ["run", "--restore-from", "x.ckpt", "--scheduler", "wg"],
        ["run", "--restore-from", "x.ckpt", "--audit"],  # mid-run guardrail
        ["run", "--restore-from", "x.ckpt", "--profile"],  # mid-run telemetry
        ["run"],  # no benchmark, no snapshot
        ["run", "--restore-from", "does-not-exist.ckpt"],  # missing file
    ],
    ids=lambda argv: " ".join(argv[1:]),
)
def test_run_rejects_nonsensical_flag_combinations(argv, capsys):
    assert main(argv) == 2
    assert "error" in capsys.readouterr().err


def test_checkpoint_period_must_be_positive():
    with pytest.raises(SystemExit):
        main(["run", "sad", "--checkpoint-period", "0",
              "--checkpoint-out", "x.ckpt"])


@pytest.mark.parametrize(
    "override, fragment",
    [
        ("dram_timing.tras_ns=5", "tRAS"),
        ("dram_timing.trc_ns=20", "tRC"),
        ("dram_timing.tfaw_ns=10", "tFAW"),
        ("mc.command_queue_depth=0", "positive queue size"),
        ("mc.write_queue_entries=-4", "positive queue size"),
        ("nonsense.field=1", "unknown config field"),
        ("dram_timing.tras_ns", "section.field=value"),
    ],
    ids=lambda v: v if "=" in str(v) else str(v),
)
def test_run_set_rejects_invalid_configs(override, fragment, capsys):
    assert main(["run", "sad", "--scale", "tiny", "--set", override]) == 2
    err = capsys.readouterr().err
    assert "invalid configuration" in err and fragment in err


def test_run_set_applies_valid_overrides(capsys):
    assert main([
        "run", "sad", "--scale", "tiny", "--json",
        "--set", "use_l1=false", "--set", "mc.command_queue_depth=2",
    ]) == 0
    assert "ipc" in capsys.readouterr().out


@pytest.mark.parametrize(
    "override, fragment",
    [
        # Three-level nested paths used to be rejected outright ("at most
        # one dot"); now they resolve through the whole config tree.
        ("gpu.l1.nonsense=1", "valid fields under 'gpu.l1'"),
        ("gpu.l1.size_bytes.extra=1", "goes one level too deep"),
        ("gpu.l1=8", "names a whole section"),
        ("dram_timing.tras_ps=30", "derived"),
    ],
)
def test_run_set_nested_path_errors_name_field_tree(override, fragment, capsys):
    assert main(["run", "sad", "--scale", "tiny", "--set", override]) == 2
    assert fragment in capsys.readouterr().err


def test_run_set_applies_three_level_override(capsys):
    assert main([
        "run", "sad", "--scale", "tiny", "--json",
        "--set", "gpu.l1.size_bytes=32768",
        "--set", "gpu.l2_slice.ways=16",
    ]) == 0
    assert "ipc" in capsys.readouterr().out


def test_run_set_sibling_watermarks_validate_together(capsys):
    """Regression: lowering both watermarks below their old values used
    to fail transiently when edits were applied one at a time."""
    assert main([
        "run", "sad", "--scale", "tiny", "--json",
        "--set", "mc.write_low_watermark=4",
        "--set", "mc.write_high_watermark=8",
    ]) == 0
    assert "ipc" in capsys.readouterr().out
