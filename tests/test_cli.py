"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "bfs" in out and "wg-w" in out


def test_run_prints_summary(capsys):
    assert main(["run", "sad", "--scale", "tiny", "--scheduler", "gmc"]) == 0
    out = capsys.readouterr().out
    assert "ipc" in out
    assert "row_hit_rate" in out


def test_run_algorithmic_kind(capsys):
    assert main(
        ["run", "sad", "--scale", "tiny", "--kind", "algorithmic"]
    ) == 0
    assert "ipc" in capsys.readouterr().out


def test_compare_table(capsys):
    assert main(["compare", "sad", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    for sched in ("gmc", "wg", "wg-m", "wg-bw", "wg-w"):
        assert sched in out


def test_rejects_unknown_benchmark():
    with pytest.raises(SystemExit):
        main(["run", "not-a-benchmark"])


def test_run_json_output(capsys):
    assert main(["run", "sad", "--scale", "tiny", "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert {"ipc", "row_hit_rate", "effective_latency_ns"} <= set(summary)
    assert all(isinstance(v, (int, float)) for v in summary.values())


def test_run_exports_metrics_and_trace(tmp_path, capsys):
    mpath = tmp_path / "m.json"
    tpath = tmp_path / "t.json"
    assert main([
        "run", "sad", "--scale", "tiny",
        "--metrics-out", str(mpath), "--trace-out", str(tpath),
    ]) == 0
    captured = capsys.readouterr()
    assert "events/s" in captured.err  # wall-clock report on stderr
    bundle = json.loads(mpath.read_text())
    assert bundle["schema_version"] == 1
    assert len(bundle["intervals"]) >= 2
    trace = json.loads(tpath.read_text())
    assert any(e["ph"] == "X" for e in trace["traceEvents"])


def test_run_metrics_csv(tmp_path):
    cpath = tmp_path / "m.csv"
    assert main([
        "run", "sad", "--scale", "tiny", "--metrics-out", str(cpath),
    ]) == 0
    header, *rows = cpath.read_text().strip().splitlines()
    assert "t_ps" in header.split(",")
    assert len(rows) >= 2


def test_run_profile_report(capsys):
    assert main(["run", "sad", "--scale", "tiny", "--profile"]) == 0
    err = capsys.readouterr().err
    assert "component" in err and "SMCore" in err


def test_trace_subcommand_defaults_output(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["trace", "sad", "--scale", "tiny"]) == 0
    trace = json.loads((tmp_path / "trace.json").read_text())
    assert trace["displayTimeUnit"] == "ns"
    assert any(e["ph"] == "X" for e in trace["traceEvents"])
