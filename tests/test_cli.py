"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "bfs" in out and "wg-w" in out


def test_run_prints_summary(capsys):
    assert main(["run", "sad", "--scale", "tiny", "--scheduler", "gmc"]) == 0
    out = capsys.readouterr().out
    assert "ipc" in out
    assert "row_hit_rate" in out


def test_run_algorithmic_kind(capsys):
    assert main(
        ["run", "sad", "--scale", "tiny", "--kind", "algorithmic"]
    ) == 0
    assert "ipc" in capsys.readouterr().out


def test_compare_table(capsys):
    assert main(["compare", "sad", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    for sched in ("gmc", "wg", "wg-m", "wg-bw", "wg-w"):
        assert sched in out


def test_rejects_unknown_benchmark():
    with pytest.raises(SystemExit):
        main(["run", "not-a-benchmark"])
