"""Unit and property tests for the memory coalescer (§III-A)."""

from hypothesis import given, strategies as st

from repro.gpu.coalescer import CoalescerStats, coalesce


def test_perfectly_coalesced_load_is_one_request():
    lanes = [1024 + 4 * i for i in range(32)]
    assert coalesce(lanes) == [1024]


def test_unaligned_contiguous_load_spans_two_lines():
    lanes = [1000 + 4 * i for i in range(32)]
    assert coalesce(lanes) == [896, 1024]


def test_fully_divergent_load():
    lanes = [i * 4096 for i in range(32)]
    assert len(coalesce(lanes)) == 32


def test_masked_lanes_skipped():
    lanes = [None] * 30 + [256, 512]
    assert coalesce(lanes) == [256, 512]


def test_all_masked_returns_empty_and_no_stats():
    stats = CoalescerStats()
    assert coalesce([None] * 32, stats=stats) == []
    assert stats.loads == 0


def test_first_appearance_order_preserved():
    lanes = [512, 0, 513, 128, 1]
    assert coalesce(lanes) == [512, 0, 128]


def test_stats_accumulate():
    stats = CoalescerStats()
    coalesce([0, 4, 8], stats=stats)
    coalesce([0, 4096], stats=stats)
    assert stats.loads == 2
    assert stats.requests == 3
    assert stats.divergent_loads == 1
    assert stats.requests_per_load == 1.5
    assert stats.frac_divergent == 0.5


def test_empty_stats_are_zero():
    stats = CoalescerStats()
    assert stats.requests_per_load == 0.0
    assert stats.frac_divergent == 0.0


@given(st.lists(st.one_of(st.none(), st.integers(0, 1 << 30)), max_size=32))
def test_property_results_are_unique_aligned_lines(lanes):
    lines = coalesce(lanes)
    assert len(lines) == len(set(lines))
    for line in lines:
        assert line % 128 == 0
    active = {a & ~127 for a in lanes if a is not None}
    assert set(lines) == active


@given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=32))
def test_property_count_bounded_by_lanes(lanes):
    assert 1 <= len(coalesce(lanes)) <= len(lanes)
