"""Unit tests for LoadTransaction group bookkeeping."""

import pytest

from repro.core.request import LoadTransaction, MemoryRequest, warp_key


def _req(channel: int, addr: int = 0, t_data: int = -1) -> MemoryRequest:
    r = MemoryRequest(addr=addr, is_write=False, sm_id=0, warp_id=0)
    r.channel = channel
    r.bank = 0
    r.t_data = t_data
    return r


def test_completion_callback_and_timing():
    done = []
    txn = LoadTransaction(0, 1, n_requests=3, t_issue=100, on_complete=done.append)
    txn.note_return(200)
    txn.note_return(300)
    assert not txn.complete
    txn.note_return(450)
    assert txn.complete
    assert done == [txn]
    assert txn.effective_latency_ps() == 350
    assert txn.first_latency_ps() == 100


def test_dram_divergence_tracks_memory_served_replies_only():
    txn = LoadTransaction(0, 1, n_requests=3, t_issue=0)
    txn.note_return(50)  # L1 hit: no request object
    txn.note_return(200, _req(0, t_data=190))
    txn.note_return(500, _req(1, t_data=480))
    assert txn.divergence_ps() == 300  # 500 - 200, ignoring the L1 hit
    assert txn.t_first_return == 50


def test_extra_reply_raises():
    txn = LoadTransaction(0, 1, n_requests=1, t_issue=0)
    txn.note_return(10)
    with pytest.raises(ValueError):
        txn.note_return(20)


def test_zero_requests_rejected():
    with pytest.raises(ValueError):
        LoadTransaction(0, 1, n_requests=0, t_issue=0)


def test_group_complete_fires_per_channel_with_counts():
    fired = []
    txn = LoadTransaction(
        0, 7, n_requests=4, t_issue=0,
        on_group_complete=lambda ch, key, n: fired.append((ch, key, n)),
    )
    for ch in (0, 0, 1):
        txn.note_dispatched(ch)
    txn.note_dispatched(2)
    txn.finish_dispatch()
    # channel 1's only request resolves as an L2 hit: no group there.
    txn.note_resolved(1, to_dram=False)
    assert fired == []
    # channel 0: one L2 hit + one DRAM admission -> group of size 1.
    txn.note_resolved(0, to_dram=True)
    assert fired == []  # still waiting for channel 0's second lookup
    txn.note_resolved(0, to_dram=False)
    assert fired == [(0, (0, 7), 1)]
    txn.note_resolved(2, to_dram=True)
    assert fired == [(0, (0, 7), 1), (2, (0, 7), 1)]


def test_group_complete_waits_for_dispatch_finish():
    fired = []
    txn = LoadTransaction(
        0, 7, n_requests=2, t_issue=0,
        on_group_complete=lambda ch, key, n: fired.append(ch),
    )
    txn.note_dispatched(0)
    txn.note_resolved(0, to_dram=True)
    assert fired == []  # the SM may still dispatch more to channel 0
    txn.finish_dispatch()
    assert fired == [0]


def test_dispatch_after_finish_rejected():
    txn = LoadTransaction(0, 1, n_requests=2, t_issue=0)
    txn.finish_dispatch()
    with pytest.raises(ValueError):
        txn.note_dispatched(0)


def test_note_dram_bound_statistics():
    txn = LoadTransaction(0, 1, n_requests=3, t_issue=0)
    a = _req(0)
    b = _req(2)
    b.bank = 5
    txn.note_dram_bound(a)
    txn.note_dram_bound(b)
    assert txn.dram_requests == 2
    assert txn.channels_touched == {0, 2}
    assert txn.banks_touched == {(0, 0), (2, 5)}


def test_warp_key_helper():
    assert warp_key(3, 9) == (3, 9)
