"""Tests for the profile-driven synthetic workload generator."""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import SimConfig
from repro.gpu.address_map import AddressMap
from repro.gpu.coalescer import coalesce
from repro.workloads.profiles import ALL_PROFILES, IRREGULAR_PROFILES, BenchmarkProfile
from repro.workloads.synthetic import HotRowStreams, _sample_group_size, synthetic_trace

CFG = SimConfig()


def small(profile: BenchmarkProfile) -> BenchmarkProfile:
    return dataclasses.replace(profile, warps=48, loads_per_warp=6)


def trace_signature(profile, seed=1):
    trace = synthetic_trace(small(profile), CFG, seed=seed)
    rpls = []
    for w in trace.warps:
        for s in w.segments:
            if s.mem is not None and not s.mem.is_write:
                rpls.append(len(coalesce(s.mem.lane_addrs)))
    return trace, np.asarray(rpls)


def test_requests_per_load_matches_profile():
    p = IRREGULAR_PROFILES["bfs"]
    _, rpls = trace_signature(p)
    assert abs(rpls.mean() - p.reqs_per_load) < 1.2
    frac_div = (rpls > 1).mean()
    assert abs(frac_div - p.frac_divergent) < 0.1


def test_regular_profile_coalesces_to_one():
    p = ALL_PROFILES["streamcluster"]
    _, rpls = trace_signature(p)
    assert rpls.mean() < 1.1


def test_channel_spread_respects_profile():
    amap = AddressMap(CFG.dram_org)
    for name in ("sad", "sssp"):
        p = IRREGULAR_PROFILES[name]
        trace, _ = trace_signature(p)
        spreads = []
        for w in trace.warps:
            for s in w.segments:
                if s.mem is None or s.mem.is_write:
                    continue
                lines = coalesce(s.mem.lane_addrs)
                if len(lines) < 2:
                    continue
                spreads.append(len({amap.channel_of(a) for a in lines}))
        assert spreads
        mean = float(np.mean(spreads))
        assert abs(mean - min(p.channels_per_warp, 6)) < 1.2, (name, mean)
    # Relative ordering: sssp spreads across more channels than sad.


def test_determinism_and_seed_sensitivity():
    p = IRREGULAR_PROFILES["spmv"]
    a = synthetic_trace(small(p), CFG, seed=3)
    b = synthetic_trace(small(p), CFG, seed=3)
    c = synthetic_trace(small(p), CFG, seed=4)
    flat = lambda t: [
        s.mem.lane_addrs
        for w in t.warps
        for s in w.segments
        if s.mem is not None
    ]
    assert flat(a) == flat(b)
    assert flat(a) != flat(c)


def test_scale_changes_loads_not_warps():
    p = IRREGULAR_PROFILES["bfs"]
    full = synthetic_trace(p, CFG, seed=1, scale=1.0)
    quick = synthetic_trace(p, CFG, seed=1, scale=0.3)
    assert len(full.warps) == len(quick.warps) == p.warps
    assert full.total_memory_ops() > quick.total_memory_ops()


def test_write_heavy_profiles_emit_stores():
    p = IRREGULAR_PROFILES["nw"]
    trace = synthetic_trace(small(p), CFG, seed=2)
    stores = sum(
        1 for w in trace.warps for s in w.segments if s.mem and s.mem.is_write
    )
    loads = sum(
        1 for w in trace.warps for s in w.segments if s.mem and not s.mem.is_write
    )
    assert stores > 0.5 * loads * p.write_ratio


def test_addresses_within_capacity():
    org = CFG.dram_org
    cap = org.num_channels * org.banks_per_channel * org.rows_per_bank * org.row_size_bytes
    trace = synthetic_trace(small(IRREGULAR_PROFILES["PVC"]), CFG, seed=5)
    for w in trace.warps:
        for s in w.segments:
            if s.mem is None:
                continue
            for a in s.mem.lane_addrs:
                assert a is None or 0 <= a < cap


def test_hot_row_streams_rotate_banks():
    amap = AddressMap(CFG.dram_org)
    rng = np.random.default_rng(1)
    hot = HotRowStreams(amap, n_streams=1, rng=rng)
    banks = []
    for _ in range(CFG.dram_org.lines_per_row * 4):
        ch, bank, row, col = amap.decompose(hot.next_line())
        banks.append(bank)
    # One row's worth of lines per bank, then the stream moves on.
    assert len(set(banks)) >= 3


@settings(max_examples=60, deadline=None)
@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=1.0, max_value=12.0),
    st.integers(0, 2**31 - 1),
)
def test_property_group_size_in_range(frac_div, mean_rpl, seed):
    rng = np.random.default_rng(seed)
    profile = dataclasses.replace(
        IRREGULAR_PROFILES["bfs"],
        frac_divergent=frac_div,
        reqs_per_load=max(mean_rpl, 1.0 + frac_div),
    )
    for _ in range(20):
        n = _sample_group_size(rng, profile, 32)
        assert 1 <= n <= 32
