"""Unit tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.core.engine import Engine, SimulationError


def test_events_fire_in_time_order():
    eng = Engine()
    seen = []
    eng.schedule_at(30, lambda: seen.append(30))
    eng.schedule_at(10, lambda: seen.append(10))
    eng.schedule_at(20, lambda: seen.append(20))
    eng.run()
    assert seen == [10, 20, 30]
    assert eng.now == 30


def test_ties_break_by_insertion_order():
    eng = Engine()
    seen = []
    for i in range(5):
        eng.schedule_at(7, lambda i=i: seen.append(i))
    eng.run()
    assert seen == [0, 1, 2, 3, 4]


def test_schedule_relative_delay():
    eng = Engine()
    seen = []
    eng.schedule(5, lambda: eng.schedule(5, lambda: seen.append(eng.now)))
    eng.run()
    assert seen == [10]


def test_scheduling_in_past_raises():
    eng = Engine()
    eng.schedule_at(10, lambda: None)
    eng.run()
    with pytest.raises(SimulationError):
        eng.schedule_at(5, lambda: None)


def test_negative_delay_raises():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.schedule(-1, lambda: None)


def test_run_until_stops_clock_at_bound():
    eng = Engine()
    seen = []
    eng.schedule_at(10, lambda: seen.append("a"))
    eng.schedule_at(100, lambda: seen.append("b"))
    eng.run(until_ps=50)
    assert seen == ["a"]
    assert eng.now == 50
    eng.run()
    assert seen == ["a", "b"]


def test_max_events_guards_against_livelock():
    eng = Engine()

    def rearm():
        eng.schedule(0, rearm)

    eng.schedule(0, rearm)
    with pytest.raises(SimulationError):
        eng.run(max_events=100)


def test_stop_predicate():
    eng = Engine()
    seen = []
    for t in (1, 2, 3, 4):
        eng.schedule_at(t, lambda t=t: seen.append(t))
    eng.run(stop=lambda: len(seen) >= 2)
    assert seen == [1, 2]


def test_step_and_peek():
    eng = Engine()
    assert eng.peek_time() is None
    assert not eng.step()
    eng.schedule_at(42, lambda: None)
    assert eng.peek_time() == 42
    assert eng.step()
    assert eng.now == 42
    assert eng.empty()


def test_events_processed_counter():
    eng = Engine()
    for t in range(10):
        eng.schedule_at(t, lambda: None)
    eng.run()
    assert eng.events_processed == 10


@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=50))
def test_property_clock_monotonic(times):
    eng = Engine()
    observed = []
    for t in times:
        eng.schedule_at(t, lambda: observed.append(eng.now))
    eng.run()
    assert observed == sorted(times)
