"""Unit tests for the discrete-event engine."""

import pickle

import pytest
from hypothesis import given, strategies as st

from repro.core.engine import NEAR_HORIZON_PS, Engine, SimulationError


def test_events_fire_in_time_order():
    eng = Engine()
    seen = []
    eng.schedule_at(30, lambda: seen.append(30))
    eng.schedule_at(10, lambda: seen.append(10))
    eng.schedule_at(20, lambda: seen.append(20))
    eng.run()
    assert seen == [10, 20, 30]
    assert eng.now == 30


def test_ties_break_by_insertion_order():
    eng = Engine()
    seen = []
    for i in range(5):
        eng.schedule_at(7, lambda i=i: seen.append(i))
    eng.run()
    assert seen == [0, 1, 2, 3, 4]


def test_schedule_relative_delay():
    eng = Engine()
    seen = []
    eng.schedule(5, lambda: eng.schedule(5, lambda: seen.append(eng.now)))
    eng.run()
    assert seen == [10]


def test_scheduling_in_past_raises():
    eng = Engine()
    eng.schedule_at(10, lambda: None)
    eng.run()
    with pytest.raises(SimulationError):
        eng.schedule_at(5, lambda: None)


def test_negative_delay_raises():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.schedule(-1, lambda: None)


def test_run_until_stops_clock_at_bound():
    eng = Engine()
    seen = []
    eng.schedule_at(10, lambda: seen.append("a"))
    eng.schedule_at(100, lambda: seen.append("b"))
    eng.run(until_ps=50)
    assert seen == ["a"]
    assert eng.now == 50
    eng.run()
    assert seen == ["a", "b"]


def test_max_events_guards_against_livelock():
    eng = Engine()

    def rearm():
        eng.schedule(0, rearm)

    eng.schedule(0, rearm)
    with pytest.raises(SimulationError):
        eng.run(max_events=100)


def test_stop_predicate():
    eng = Engine()
    seen = []
    for t in (1, 2, 3, 4):
        eng.schedule_at(t, lambda t=t: seen.append(t))
    eng.run(stop=lambda: len(seen) >= 2)
    assert seen == [1, 2]


def test_step_and_peek():
    eng = Engine()
    assert eng.peek_time() is None
    assert not eng.step()
    eng.schedule_at(42, lambda: None)
    assert eng.peek_time() == 42
    assert eng.step()
    assert eng.now == 42
    assert eng.empty()


def test_events_processed_counter():
    eng = Engine()
    for t in range(10):
        eng.schedule_at(t, lambda: None)
    eng.run()
    assert eng.events_processed == 10


def test_stop_predicate_halts_mid_queue_and_preserves_remainder():
    eng = Engine()
    seen = []
    for t in (1, 2, 3, 4, 5):
        eng.schedule_at(t, lambda t=t: seen.append(t))
    eng.run(stop=lambda: len(seen) >= 3)
    # The predicate halted the run with events still queued...
    assert seen == [1, 2, 3]
    assert not eng.empty()
    assert eng.peek_time() == 4
    assert eng.now == 3  # clock stays at the last processed event
    # ...and the engine resumes cleanly from where it stopped.
    eng.run()
    assert seen == [1, 2, 3, 4, 5]
    assert eng.empty()


def test_stop_predicate_checked_before_first_event():
    eng = Engine()
    seen = []
    eng.schedule_at(5, lambda: seen.append(5))
    eng.run(stop=lambda: True)
    assert seen == []
    assert eng.now == 0
    assert not eng.empty()


def test_max_events_exact_boundary():
    # The budget is a safety valve: hitting it raises even if the Nth
    # event happened to be the last one queued. One spare event suffices.
    eng = Engine()
    for t in range(10):
        eng.schedule_at(t, lambda: None)
    eng.run(max_events=11)  # budget above the queue length: must not raise
    assert eng.events_processed == 10
    assert eng.empty()
    for t in range(10):
        eng.schedule_at(eng.now + 1 + t, lambda: None)
    with pytest.raises(SimulationError) as exc:
        eng.run(max_events=10)
    assert "max_events" in str(exc.value)
    # All ten events did run before the budget check tripped.
    assert eng.events_processed == 20
    assert eng.empty()


def test_until_ps_between_events_advances_clock_exactly():
    eng = Engine()
    seen = []
    eng.schedule_at(10, lambda: seen.append(10))
    eng.schedule_at(40, lambda: seen.append(40))
    eng.run(until_ps=25)  # lands strictly between the two events
    assert seen == [10]
    assert eng.now == 25  # clock parked at the bound, not at 10 or 40
    # Scheduling relative to the advanced clock works as expected.
    eng.schedule(5, lambda: seen.append(eng.now))
    eng.run(until_ps=30)
    assert seen == [10, 30]
    eng.run()
    assert seen == [10, 30, 40]


def test_until_ps_inclusive_of_event_at_bound():
    eng = Engine()
    seen = []
    eng.schedule_at(50, lambda: seen.append(50))
    eng.run(until_ps=50)  # events exactly at the bound still fire
    assert seen == [50]
    assert eng.now == 50


def test_until_ps_with_empty_queue_leaves_clock_unchanged():
    eng = Engine()
    eng.run(until_ps=1000)
    # No event to process and nothing to cut short: the bound is not a
    # time-warp, the clock only moves when events (or a cut) demand it.
    assert eng.now == 0


def test_until_ps_when_queue_drains_before_bound_parks_at_bound():
    # The guardrails' segmented drive loop slices a run into
    # run(until_ps=...) windows; the terminal clock must be *consistent*
    # whether the last window still holds events or drained early.
    eng = Engine()
    seen = []
    eng.schedule_at(10, lambda: seen.append(10))
    eng.schedule_at(20, lambda: seen.append(20))
    eng.run(until_ps=100)  # queue drains well before the bound
    assert seen == [10, 20]
    assert eng.now == 100  # parked at the bound, same as the events-remain case
    # A follow-up bound on the now-empty engine is a no-op (no time-warp).
    eng.run(until_ps=500)
    assert eng.now == 100


def test_until_ps_drain_exactly_at_bound():
    eng = Engine()
    eng.schedule_at(50, lambda: None)
    eng.run(until_ps=50)
    assert eng.now == 50


def test_until_ps_never_moves_clock_backward():
    eng = Engine()
    eng.schedule_at(100, lambda: None)
    eng.run()
    assert eng.now == 100
    eng.schedule_at(150, lambda: None)
    eng.run(until_ps=40)  # bound already in the past: nothing fires...
    assert eng.now == 100  # ...and the clock does not rewind
    eng.run()
    assert eng.now == 150


def test_stop_predicate_suppresses_until_ps_jump():
    # A stop-predicate halt means "freeze where we are", not "pretend we
    # reached the window boundary".
    eng = Engine()
    seen = []
    for t in (1, 2, 3):
        eng.schedule_at(t, lambda t=t: seen.append(t))
    eng.run(until_ps=100, stop=lambda: len(seen) >= 2)
    assert seen == [1, 2]
    assert eng.now == 2


def test_schedule_now_runs_this_instant_in_insertion_order():
    eng = Engine()
    seen = []
    eng.schedule_at(10, lambda: seen.append("event"))

    def driver():
        seen.append("driver")
        eng.schedule_now(lambda: seen.append("kick1"))
        eng.schedule_at(eng.now, lambda: seen.append("slow-path"))
        eng.schedule_now(lambda: seen.append("kick2"))

    eng.schedule_at(5, driver)
    eng.run()
    # schedule_now and schedule_at(now) interleave by insertion order, and
    # all fire before the strictly-later event.
    assert seen == ["driver", "kick1", "slow-path", "kick2", "event"]
    assert eng.now == 10


def test_tie_ordering_across_near_ring_and_far_heap():
    # Two events at the same instant, one routed to the far heap (beyond
    # the horizon at scheduling time), one to the near ring (scheduled
    # later, from closer in): insertion order must still win.
    eng = Engine()
    t = NEAR_HORIZON_PS * 3
    seen = []
    eng.schedule_at(t, lambda: seen.append("far-first"))  # heap tier
    eng.schedule_at(
        t - 10, lambda: eng.schedule_at(t, lambda: seen.append("near-second"))
    )
    eng.run()
    assert seen == ["far-first", "near-second"]

    # And the mirror image: the near-ring event inserted before the far
    # event arrives at the same instant via the heap.
    eng2 = Engine()
    t2 = eng2.now + NEAR_HORIZON_PS * 6
    seen2 = []

    def plant_near():
        eng2.schedule_at(t2, lambda: seen2.append("near-first"))  # ring tier
        eng2.schedule_at(t2 + NEAR_HORIZON_PS * 2,
                         lambda: seen2.append("far-later"))

    eng2.schedule_at(t2 - 10, plant_near)
    eng2.schedule_at(t2, lambda: seen2.append("far-second"))  # heap tier
    eng2.run()
    assert seen2 == ["far-second", "near-first", "far-later"]


@given(
    st.lists(
        st.integers(min_value=0, max_value=3 * NEAR_HORIZON_PS),
        min_size=1,
        max_size=60,
    )
)
def test_property_two_tier_order_matches_single_heap_semantics(times):
    # Times straddle the near/far horizon; firing order must equal a
    # stable sort by time (ties by insertion), exactly like one big heap.
    eng = Engine()
    fired = []
    for i, t in enumerate(times):
        eng.schedule_at(t, lambda i=i: fired.append(i))
    eng.run()
    expected = [i for i, _ in sorted(enumerate(times), key=lambda p: p[1])]
    assert fired == expected


class _PickleProbe:
    """Bound methods of module-level classes pickle; lambdas do not."""

    def __init__(self):
        self.calls = 0

    def hit(self):
        self.calls += 1


def test_engine_pickles_with_events_in_both_tiers():
    eng = Engine()
    probe = _PickleProbe()
    eng.schedule_at(10, probe.hit)  # near ring
    eng.schedule_at(NEAR_HORIZON_PS * 4, probe.hit)  # far heap
    clone = pickle.loads(pickle.dumps(eng))
    clone.run()
    assert clone.events_processed == 2
    assert clone.now == NEAR_HORIZON_PS * 4
    # The original engine is untouched and still runs its own copies.
    eng.run()
    assert probe.calls == 2


def test_profiler_hook_times_each_event():
    class Recorder:
        def __init__(self):
            self.notes = []

        def note(self, fn, seconds):
            self.notes.append((fn, seconds))

    eng = Engine()
    eng.profiler = Recorder()
    eng.schedule_at(1, lambda: None)
    eng.schedule_at(2, lambda: None)
    eng.run()
    assert len(eng.profiler.notes) == 2
    assert all(sec >= 0 for _, sec in eng.profiler.notes)


def test_profiler_attributes_both_dispatch_tiers():
    # EngineProfiler.note must see near-ring and far-heap callbacks alike:
    # component attribution is a property of the callback, not of which
    # tier dispatched it.
    from repro.telemetry.profiler import EngineProfiler

    class Component:
        def __init__(self, eng):
            self.eng = eng

        def tick(self):
            # Re-arm via the schedule_now fast path (the MC pump idiom).
            if self.eng.events_processed < 3:
                self.eng.schedule_now(self.tick)

    eng = Engine()
    eng.profiler = EngineProfiler()
    comp = Component(eng)
    eng.schedule_at(NEAR_HORIZON_PS * 4, comp.tick)  # far-heap dispatch
    eng.run()
    rows = {name: calls for name, calls, _sec in eng.profiler.rows()}
    key = "test_profiler_attributes_both_dispatch_tiers"
    assert rows == {key: 3}  # 1 far + 2 near, one component


@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=50))
def test_property_clock_monotonic(times):
    eng = Engine()
    observed = []
    for t in times:
        eng.schedule_at(t, lambda: observed.append(eng.now))
    eng.run()
    assert observed == sorted(times)
