"""Unit tests for the row sorter (baseline) and warp sorter (§IV-B)."""

import pytest

from repro.core.config import DRAMOrgConfig
from repro.mc.command_queue import SCORE_HIT, SCORE_MISS, CommandQueues
from repro.mc.row_sorter import RowSorter
from repro.mc.warp_sorter import WarpSorter

from helpers import make_request

ORG = DRAMOrgConfig()


# -- RowSorter ---------------------------------------------------------------
def test_row_sorter_streams_fifo():
    rs = RowSorter(4)
    a = make_request(bank=0, row=1)
    b = make_request(bank=0, row=1)
    rs.add(a)
    rs.add(b)
    assert rs.stream_len(0, 1) == 2
    assert rs.pop(0, 1) is a
    assert rs.pop(0, 1) is b
    assert not rs.has_row(0, 1)
    assert rs.empty()


def test_row_sorter_oldest_in_bank():
    rs = RowSorter(4)
    a = make_request(bank=0, row=1)
    b = make_request(bank=0, row=2)
    a.t_mc_arrival, b.t_mc_arrival = 20, 10
    rs.add(a)
    rs.add(b)
    assert rs.oldest_in_bank(0) is b
    assert rs.oldest_in_bank(1) is None


def test_row_sorter_remove_mid_fifo():
    rs = RowSorter(4)
    a, b, c = (make_request(bank=1, row=3) for _ in range(3))
    for r in (a, b, c):
        rs.add(r)
    rs.remove(b)
    assert rs.pop(1, 3) is a
    assert rs.pop(1, 3) is c
    assert len(rs) == 0


# -- WarpSorter ---------------------------------------------------------------
def _txn_req(warp_id: int, bank: int = 0, row: int = 0):
    """A request that looks transaction-backed (not auto-complete)."""
    req = make_request(bank=bank, row=row, warp_id=warp_id)
    req.transaction = object()  # sentinel: not None
    return req


def test_group_completes_only_at_expected_count():
    ws = WarpSorter()
    r1 = _txn_req(1, bank=0, row=5)
    r2 = _txn_req(1, bank=2, row=7)
    e = ws.add(r1, 10)
    assert not e.complete
    ws.mark_complete((0, 1), expected=2, now_ps=20)
    assert not e.complete  # only one of two admitted
    ws.add(r2, 30)
    assert e.complete
    assert e.completed_ps == 30
    assert list(ws.complete_groups()) == [e]


def test_expected_before_any_request():
    ws = WarpSorter()
    ws.mark_complete((0, 1), expected=1, now_ps=5)
    e = ws.add(_txn_req(1), 10)
    assert e.complete


def test_raw_requests_always_schedulable():
    ws = WarpSorter()
    e = ws.add(make_request(warp_id=3), 0)
    assert e.complete
    ws.add(make_request(warp_id=3), 1)
    assert e.complete and e.n_requests == 2


def test_remove_request_drops_finished_groups():
    ws = WarpSorter()
    r = _txn_req(1)
    ws.add(r, 0)
    ws.mark_complete((0, 1), expected=1, now_ps=0)
    ws.remove_request(r)
    assert ws.get((0, 1)) is None
    assert ws.empty()


def test_remove_unknown_request_raises():
    ws = WarpSorter()
    with pytest.raises(KeyError):
        ws.remove_request(make_request(warp_id=9))


def test_mark_complete_prunes_drained_incomplete_group():
    """Fillers can drain a group before its size announcement arrives."""
    ws = WarpSorter()
    r = _txn_req(1)
    ws.add(r, 0)
    ws.remove_request(r)  # pulled as a MERB filler
    assert ws.get((0, 1)) is not None  # lingers: might get more requests
    ws.mark_complete((0, 1), expected=1, now_ps=50)
    assert ws.get((0, 1)) is None


def test_pending_hits_index():
    ws = WarpSorter()
    a = _txn_req(1, bank=3, row=9)
    b = _txn_req(2, bank=3, row=9)
    c = _txn_req(3, bank=3, row=8)
    for r in (a, b, c):
        ws.add(r, 0)
    assert ws.pending_hits(3, 9) == [a, b]
    ws.remove_request(a)
    assert ws.pending_hits(3, 9) == [b]
    assert ws.pending_hits(0, 0) == []


# -- scoring (§IV-B) -----------------------------------------------------------
def test_score_threads_rows_within_group():
    cq = CommandQueues(ORG, 8)
    ws = WarpSorter()
    # Four requests to the same fresh row on one bank: 3 + 1 + 1 + 1.
    for _ in range(4):
        ws.add(_txn_req(1, bank=0, row=5), 0)
    e = ws.get((0, 1))
    score, hits = WarpSorter.score(e, cq)
    assert score == SCORE_MISS + 3 * SCORE_HIT
    assert hits == 3


def test_score_includes_queue_backlog_and_max_over_banks():
    cq = CommandQueues(ORG, 8)
    # Bank 0 carries two queued misses (backlog 6); bank 1 is empty.
    cq.insert(make_request(bank=0, row=1), 0)
    cq.insert(make_request(bank=0, row=2), 0)
    ws = WarpSorter()
    ws.add(_txn_req(1, bank=0, row=3), 0)  # 6 backlog + 3 = 9
    ws.add(_txn_req(1, bank=1, row=3), 0)  # 0 backlog + 3 = 3
    e = ws.get((0, 1))
    score, _ = WarpSorter.score(e, cq)
    assert score == 2 * SCORE_MISS + SCORE_MISS  # max over banks = bank 0


def test_score_discount_applies_and_floors_at_zero():
    cq = CommandQueues(ORG, 8)
    ws = WarpSorter()
    ws.add(_txn_req(1, bank=0, row=5), 0)
    e = ws.get((0, 1))
    base, _ = WarpSorter.score(e, cq)
    e.score_discount = base - 1
    assert WarpSorter.score(e, cq)[0] == 1
    e.score_discount = base + 100
    assert WarpSorter.score(e, cq)[0] == 0


def test_remote_score_clamps_ranking():
    """§IV-C: a peer's completion score caps the local score."""
    cq = CommandQueues(ORG, 8)
    cq.insert(make_request(bank=0, row=1), 0)
    cq.insert(make_request(bank=0, row=2), 0)  # backlog 6
    ws = WarpSorter()
    ws.add(_txn_req(1, bank=0, row=3), 0)
    e = ws.get((0, 1))
    base, _ = WarpSorter.score(e, cq)
    assert base == 9
    e.remote_score = 4
    assert WarpSorter.score(e, cq)[0] == 4
    e.remote_score = 100  # peer slower than us: no effect
    assert WarpSorter.score(e, cq)[0] == 9


def test_score_predicted_hit_against_queue_tail():
    cq = CommandQueues(ORG, 8)
    cq.insert(make_request(bank=0, row=7), 0)  # bank 0 will be on row 7
    ws = WarpSorter()
    ws.add(_txn_req(1, bank=0, row=7), 0)
    e = ws.get((0, 1))
    score, hits = WarpSorter.score(e, cq)
    assert hits == 1
    assert score == SCORE_MISS + SCORE_HIT  # backlog 3 + hit 1
