"""Tests for the repro.telemetry subsystem.

Covers the acceptance criteria of the observability PR:

* probes are zero-cost and inert until subscribed;
* with telemetry disabled, a run executes the same number of engine
  events and produces bit-identical summary metrics;
* enabling the full telemetry stack does not perturb the simulated
  machine (summary metrics stay bit-identical);
* the interval time-series has >= 2 samples with the stable schema;
* the Chrome trace export is schema-valid and carries per-warp
  request-lifecycle spans.
"""

import json

import pytest

from repro import Scale, SimConfig, TelemetryHub, build_benchmark, simulate
from repro.telemetry import NULL_PROBE, EngineProfiler, Probe, RequestTracer
from repro.telemetry.sampler import IntervalSampler


def tiny_run(telemetry=None, scheduler="wg-w", bench="bfs"):
    cfg = SimConfig(scheduler=scheduler)
    trace = build_benchmark(bench, cfg, Scale.TINY, seed=1)
    return simulate(cfg, trace, telemetry=telemetry)


# ---------------------------------------------------------------------------
# probe / hub unit behavior
# ---------------------------------------------------------------------------
def test_probe_is_falsy_until_subscribed():
    p = Probe("x")
    assert not p
    seen = []
    p.subscribe(seen.append)
    assert p
    p.emit(42)
    assert seen == [42]
    p.unsubscribe(seen.append)
    assert not p


def test_null_probe_is_inert():
    assert not NULL_PROBE
    NULL_PROBE.emit("anything")  # must be a no-op, not an error


def test_hub_returns_same_probe_per_name():
    hub = TelemetryHub()
    assert hub.probe("a") is hub.probe("a")
    assert hub.probe("a") is not hub.probe("b")
    assert not hub.enabled
    hub.probe("a").subscribe(lambda *a: None)
    assert hub.enabled


def test_hub_feature_construction():
    hub = TelemetryHub(sample_period_ns=10.0, trace=True, profile=True)
    assert hub.sampling and hub.sample_period_ps == 10_000
    assert hub.tracer is not None and hub.profiler is not None
    assert hub.enabled
    with pytest.raises(ValueError):
        TelemetryHub(sample_period_ns=-1.0)


# ---------------------------------------------------------------------------
# non-perturbation (acceptance criterion)
# ---------------------------------------------------------------------------
def test_disabled_telemetry_is_bit_identical_to_no_telemetry():
    base = tiny_run(telemetry=None)
    off = tiny_run(telemetry=TelemetryHub())  # hub present, all features off
    assert off.events_processed == base.events_processed
    assert off.summary() == base.summary()


def test_enabled_telemetry_does_not_perturb_summary():
    base = tiny_run(telemetry=None)
    hub = TelemetryHub(sample_period_ns=100.0, trace=True, profile=True)
    tele = tiny_run(telemetry=hub)
    # Sampler events are extra engine events, but the simulated machine
    # must be untouched: every summary metric bit-identical.
    assert tele.summary() == base.summary()
    assert tele.events_processed >= base.events_processed


# ---------------------------------------------------------------------------
# interval sampler
# ---------------------------------------------------------------------------
def test_interval_series_schema_and_coverage():
    hub = TelemetryHub(sample_period_ns=100.0)
    stats = tiny_run(telemetry=hub)
    samples = stats.intervals
    assert len(samples) >= 2
    assert stats.interval_period_ps == 100_000
    num_ch = len(stats.channels)
    schema = set(IntervalSampler.SCHEMA_KEYS)
    for s in samples:
        assert set(s) == schema
        for key in ("queue_depth", "write_queue_depth", "cmdq_occupancy",
                    "drain_active", "reads", "writes", "row_hits",
                    "row_misses", "merb_deferrals", "bus_busy_ps"):
            assert len(s[key]) == num_ch
        assert len(s["bank_occupancy"]) == num_ch
        banks_per_channel = SimConfig().dram_org.banks_per_channel
        for per_bank in s["bank_occupancy"]:
            assert len(per_bank) == banks_per_channel
    # time axis strictly increasing, starting at 0
    times = [s["t_ps"] for s in samples]
    assert times[0] == 0
    assert times == sorted(times) and len(set(times)) == len(times)
    # interval deltas sum to the run totals
    assert sum(sum(s["reads"]) for s in samples) == sum(
        c.reads for c in stats.channels
    )
    assert sum(sum(s["row_hits"]) for s in samples) == sum(
        c.row_hits for c in stats.channels
    )


def test_interval_latency_histograms_roll_into_total():
    cfg = SimConfig(scheduler="gmc")
    trace = build_benchmark("bfs", cfg, Scale.TINY, seed=1)
    hub = TelemetryHub(sample_period_ns=100.0)
    from repro.gpu.system import GPUSystem

    system = GPUSystem(cfg, trace, telemetry=hub)
    stats = system.run()
    sampler = system.sampler
    # Every serviced DRAM read passed through the per-interval histograms
    # and was merged into the run total.
    total_reads = sum(c.reads for c in stats.channels)
    assert sampler.latency_total.count == total_reads
    assert sampler.latency_total.count == sum(
        s["lat_count"] for s in stats.intervals
    )
    assert sampler.latency_total.percentile(50) > 0


def test_metrics_json_and_csv_export(tmp_path):
    hub = TelemetryHub(sample_period_ns=100.0)
    stats = tiny_run(telemetry=hub)
    jpath = tmp_path / "m.json"
    stats.write_metrics(str(jpath))
    bundle = json.loads(jpath.read_text())
    assert bundle["schema_version"] == 1
    assert bundle["summary"] == stats.summary()
    assert len(bundle["intervals"]) == len(stats.intervals)
    cpath = tmp_path / "m.csv"
    stats.write_metrics(str(cpath))
    lines = cpath.read_text().strip().splitlines()
    assert len(lines) == len(stats.intervals) + 1  # header + rows
    header = lines[0].split(",")
    assert "t_ps" in header and "queue_depth_0" in header
    assert "bank_occupancy_0_0" in header
    assert all(len(line.split(",")) == len(header) for line in lines[1:])


# ---------------------------------------------------------------------------
# request tracer / chrome trace export
# ---------------------------------------------------------------------------
def test_chrome_trace_schema():
    hub = TelemetryHub(sample_period_ns=100.0, trace=True)
    stats = tiny_run(telemetry=hub)
    doc = hub.tracer.chrome_trace(stats.intervals)
    assert set(doc) == {"traceEvents", "displayTimeUnit", "metadata"}
    events = doc["traceEvents"]
    assert events
    json.dumps(doc)  # must be serializable as-is
    slices = [e for e in events if e["ph"] == "X"]
    counters = [e for e in events if e["ph"] == "C"]
    meta = [e for e in events if e["ph"] == "M"]
    assert slices and counters and meta
    for e in slices:
        assert e["cat"] == "request"
        assert e["ts"] >= 0 and e["dur"] >= 0
        assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
        assert e["name"] in {
            "xbar+l2", "mc-queue", "cmd-queue", "return",
            "l2-hit", "l2-merge", "wq-forward",
        }
    # DRAM-serviced requests contribute the full 4-phase lifecycle.
    names = {e["name"] for e in slices}
    assert {"xbar+l2", "mc-queue", "cmd-queue", "return"} <= names
    # Per-warp lanes: thread metadata names every (pid, tid) used by slices.
    named_tids = {
        (e["pid"], e["tid"]) for e in meta if e["name"] == "thread_name"
    }
    assert {(e["pid"], e["tid"]) for e in slices} <= named_tids


def test_trace_phases_are_contiguous_per_request():
    hub = TelemetryHub(trace=True)
    tiny_run(telemetry=hub)
    for req in hub.tracer.requests[:200]:
        phases = RequestTracer._phases(req)
        for (_, end, _), (start, _, _) in zip(phases, phases[1:]):
            assert end == start  # lifecycle phases tile the request's span
        for t0, t1, _ in phases:
            assert t1 >= t0 >= 0


def test_tracer_lane_assignment_separates_concurrent_requests():
    hub = TelemetryHub(trace=True)
    tiny_run(telemetry=hub)
    doc = hub.tracer.chrome_trace()
    busy: dict[tuple, list] = {}
    for e in doc["traceEvents"]:
        if e["ph"] != "X":
            continue
        busy.setdefault((e["pid"], e["tid"]), []).append(
            (e["ts"], e["ts"] + e["dur"], e["args"]["req"])
        )
    for spans in busy.values():
        spans.sort()
        for (s0, e0, r0), (s1, e1, r1) in zip(spans, spans[1:]):
            if r0 != r1:  # different requests on one lane must not overlap
                assert s1 >= e0 - 1e-9


# ---------------------------------------------------------------------------
# engine profiler
# ---------------------------------------------------------------------------
def test_profiler_attributes_time_to_components():
    hub = TelemetryHub(profile=True)
    tiny_run(telemetry=hub)
    prof = hub.profiler
    assert prof.total_seconds() > 0
    components = dict((name, calls) for name, calls, _ in prof.rows())
    # The SM issue loop and the controller pump dominate any run.
    assert any("SMCore" in name for name in components)
    assert any("MemoryController._pump" in name for name in components)
    # Lambda trampolines are charged to their enclosing method.
    assert not any("<locals>" in name for name in components)
    table = prof.format()
    assert "component" in table and "share" in table


def test_profiler_component_labels():
    from repro.telemetry.profiler import component_of

    def outer():
        return lambda: None

    # Closures and nested functions collapse to the enclosing callable.
    assert component_of(outer()) == "test_profiler_component_labels"
    assert component_of(outer) == "test_profiler_component_labels"
    prof = EngineProfiler()
    prof.note(outer(), 0.5)
    prof.note(outer(), 0.25)
    ((name, calls, sec),) = prof.rows()
    assert name == "test_profiler_component_labels"
    assert calls == 2 and abs(sec - 0.75) < 1e-12
