"""Dashboard: every figure recipe renders from a tiny fixture history,
the build is self-contained, and the CLI gates on hollow builds."""

from __future__ import annotations

import json
import re
import xml.etree.ElementTree as ET

import pytest

from repro.__main__ import main
from repro.analysis.experiments import accuracy_doc
from repro.dashboard import REQUIRED_FIGURES, build_dashboard
from repro.dashboard.figures import (
    accuracy_figure,
    fuzz_figure,
    scheduler_matrix_figure,
    trajectory_figure,
)
from repro.dashboard.svg import (
    CATEGORICAL_SLOTS,
    fmt_num,
    grouped_hbar_svg,
    line_chart_svg,
    nice_ticks,
    series_var,
)
from repro.history.store import HistoryStore


# ----------------------------------------------------------------------
# fixture history
# ----------------------------------------------------------------------
def _bench_payload(base_eps: float) -> dict:
    jobs = []
    for sched, mult in (("gmc", 1.0), ("wg", 0.8), ("wg-w", 0.7)):
        for scale in ("TINY", "SMALL"):
            eps = base_eps * mult * (1.0 if scale == "TINY" else 0.9)
            jobs.append({
                "id": f"core/bfs/{sched}/{scale.lower()}/s1",
                "scheduler": sched, "scale": scale, "sim_events": 10_000,
                "sim_wall_s": round(10_000 / eps, 4),
                "events_per_sec": round(eps, 1),
            })
    return {
        "schema_version": 1, "kind": "core",
        "calibration_ops_per_sec": 8.0e6,
        "events_per_sec": base_eps, "jobs_total": len(jobs), "jobs": jobs,
    }


def _fuzz_payload(clean: bool) -> dict:
    return {
        "schema_version": 1, "campaign_seed": 3,
        "schedulers": ["gmc", "wg", "wg-m", "wg-bw", "wg-w"],
        "cases_run": 120, "wall_seconds": 30.0, "cases_per_sec": 4.0,
        "clean": clean,
        "failures": [] if clean else [
            {"case_index": 5, "oracle": "conservation", "scheduler": "wg",
             "detail": "lost request", "artifact_path": "a.json",
             "minimized_warps": 2},
        ],
    }


@pytest.fixture
def store(tmp_path, monkeypatch) -> HistoryStore:
    monkeypatch.setenv("REPRO_GIT_SHA", "feedc0de1234567")
    s = HistoryStore(str(tmp_path / "history"))
    for eps in (40_000.0, 60_000.0, 90_000.0):
        s.append("bench", _bench_payload(eps))
    s.append("fuzz", _fuzz_payload(clean=True))
    s.append("fuzz", _fuzz_payload(clean=False))
    return s


def _assert_valid_svg(svg: str) -> ET.Element:
    assert svg.startswith("<svg")
    return ET.fromstring(svg)


# ----------------------------------------------------------------------
# figure recipes
# ----------------------------------------------------------------------
def test_trajectory_figure_renders(store):
    fig = trajectory_figure(store.records("bench"))
    assert not fig.empty
    _assert_valid_svg(fig.svg)
    # one marker per (record, scheduler): 3 records x 3 schedulers
    assert fig.svg.count("<circle") == 9
    # normalized value: 40k eps / 8M cal * 1000 = 5.0 for gmc@TINY
    assert "5" in fig.svg
    assert fig.legend_html and "gmc" in fig.legend_html
    assert fig.table_html.count("<tr>") == 1 + 3  # header + one per record
    assert "TINY" in fig.note


def test_trajectory_folds_series_past_palette(store):
    payload = _bench_payload(50_000.0)
    extra = [
        dict(payload["jobs"][0], id=f"core/bfs/x{i}/tiny/s1", scheduler=f"x{i}")
        for i in range(10)
    ]
    payload["jobs"].extend(extra)
    store.append("bench", payload)
    fig = trajectory_figure(store.records("bench"))
    assert not fig.empty
    assert "not plotted" in fig.note
    # never more series than palette slots
    assert fig.legend_html.count("swatch") <= len(CATEGORICAL_SLOTS)


def test_trajectory_empty(store):
    fig = trajectory_figure([])
    assert fig.empty and "repro bench" in fig.empty_reason


def test_scheduler_matrix_renders(store):
    fig = scheduler_matrix_figure(store.latest("bench"))
    assert not fig.empty
    _assert_valid_svg(fig.svg)
    assert fig.legend_html and "TINY" in fig.legend_html
    assert "gmc" in fig.svg and "wg-w" in fig.svg
    assert "k events/s" in fig.svg
    assert fig.note.startswith("record bench-0003")


def test_scheduler_matrix_empty():
    fig = scheduler_matrix_figure(None)
    assert fig.empty


def test_accuracy_figure_renders_real_export():
    fig = accuracy_figure(accuracy_doc())
    assert not fig.empty
    _assert_valid_svg(fig.svg)
    # signed tip labels survive the magnitude plot
    assert "-9.1" in fig.svg or "−9.1" in fig.svg or "+8.1" in fig.svg
    assert "paper" in fig.legend_html and "measured" in fig.legend_html
    # every entry lands in the table, charted or not
    assert fig.table_html.count("<tr>") == 1 + len(accuracy_doc()["entries"])
    assert "table-only" in fig.note


def test_accuracy_figure_empty():
    for doc in (None, {}, {"entries": []}):
        fig = accuracy_figure(doc)
        assert fig.empty and "repro accuracy" in fig.empty_reason


def test_fuzz_figure_renders(store):
    fig = fuzz_figure(store.records("fuzz"))
    assert not fig.empty
    _assert_valid_svg(fig.svg)
    # outcome is icon + label, never color alone
    assert "✓ clean" in fig.svg and "✗ 1 failed" in fig.svg
    assert "1 oracle failure" in fig.note
    assert fig.table_html.count("<tr>") == 1 + 2


def test_fuzz_figure_empty():
    fig = fuzz_figure([])
    assert fig.empty and "repro fuzz" in fig.empty_reason


# ----------------------------------------------------------------------
# build
# ----------------------------------------------------------------------
def test_build_dashboard_self_contained(store, tmp_path):
    acc = tmp_path / "accuracy.json"
    acc.write_text(json.dumps(accuracy_doc()))
    out = tmp_path / "dash"
    build = build_dashboard(store.root, str(out), accuracy_path=str(acc))
    assert build.ok, build.problems
    html = (out / "index.html").read_text()
    # one portable file: no scripts, no network fetches, inline SVG only
    assert "<script" not in html
    assert "http://" not in html and "https://" not in html.replace(
        "https://ui.perfetto.dev", ""
    )
    assert html.count("<svg") == 4
    for figure_id in ("trajectory", "schedulers", "accuracy", "fuzz"):
        assert f'id="{figure_id}"' in html
    # dark mode ships as its own validated steps, not an automatic flip
    assert "prefers-color-scheme: dark" in html
    assert "#2a78d6" in html and "#3987e5" in html
    # hero tiles and provenance stamp
    assert "history records" in html
    assert "feedc0de" in html


def test_build_dashboard_hollow_store_fails_check(tmp_path):
    build = build_dashboard(
        str(tmp_path / "nohistory"), str(tmp_path / "dash")
    )
    assert not build.ok
    flagged = {p.split("'")[1] for p in build.problems if "'" in p}
    assert flagged == set(REQUIRED_FIGURES)
    # the page is still written (with empty-state reasons) for debugging
    assert (tmp_path / "dash" / "index.html").exists()
    assert "EMPTY" in build.summary()


def test_build_dashboard_surfaces_skipped_lines(store, tmp_path):
    with open(store.path("bench"), "a") as fh:
        fh.write("not json at all\n")
    build = build_dashboard(store.root, str(tmp_path / "dash"))
    html = (tmp_path / "dash" / "index.html").read_text()
    assert "Skipped history lines" in html
    assert "unparsable" in html


def test_build_dashboard_bad_accuracy_is_a_problem(store, tmp_path):
    acc = tmp_path / "accuracy.json"
    acc.write_text("{broken")
    build = build_dashboard(
        store.root, str(tmp_path / "dash"), accuracy_path=str(acc)
    )
    assert any("unreadable" in p for p in build.problems)


# ----------------------------------------------------------------------
# SVG primitives
# ----------------------------------------------------------------------
def test_palette_is_never_cycled():
    with pytest.raises(ValueError):
        series_var(len(CATEGORICAL_SLOTS))
    too_many = {f"s{i}": [1.0] for i in range(len(CATEGORICAL_SLOTS) + 1)}
    with pytest.raises(ValueError, match="fold"):
        line_chart_svg(too_many, ["x"])
    with pytest.raises(ValueError, match="fold"):
        grouped_hbar_svg(["a"], too_many)


def test_line_chart_handles_gaps_and_escaping():
    svg = line_chart_svg(
        {"a<b": [1.0, None, 3.0]}, ["t0", "t1", "t2"], y_label="<v>"
    )
    root = ET.fromstring(svg)
    assert svg.count("<circle") == 2  # the None point draws nothing
    assert "a&lt;b" in svg and "&lt;v&gt;" in svg
    assert root.get("viewBox")


def test_grouped_hbar_value_texts_and_tooltips():
    svg = grouped_hbar_svg(
        ["row"], {"s": [2.0]},
        tooltips={"s": ["custom tip"]},
        value_texts={"s": ["+2.0%"]},
    )
    ET.fromstring(svg)
    assert "custom tip" in svg and "+2.0%" in svg
    assert "<title>" in svg


def test_empty_inputs_render_nothing():
    assert line_chart_svg({}, []) == ""
    assert grouped_hbar_svg([], {}) == ""


def test_nice_ticks_cover_range():
    for vmax in (0.013, 0.9, 1.0, 7.3, 42.0, 123_456.0):
        ticks = nice_ticks(vmax)
        assert ticks[0] == 0.0
        assert ticks[-1] >= vmax
        assert ticks == sorted(ticks)
        assert 3 <= len(ticks) <= 8
    assert nice_ticks(0.0) == [0.0, 1.0]


def test_fmt_num():
    assert fmt_num(0) == "0"
    assert fmt_num(7.25) == "7.25"
    assert fmt_num(950) == "950"
    assert fmt_num(12_500) == "12.5k"
    assert fmt_num(3_200_000) == "3.2M"
    assert fmt_num(0.013) == "0.013"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_dashboard_check_gates(store, tmp_path, capsys):
    acc = tmp_path / "accuracy.json"
    acc.write_text(json.dumps(accuracy_doc()))
    out = str(tmp_path / "dash")
    assert main([
        "dashboard", "--out", out, "--history-dir", store.root,
        "--accuracy", str(acc), "--check",
    ]) == 0
    err = capsys.readouterr().err
    assert re.search(r"trajectory\s+ok", err)

    empty = str(tmp_path / "empty-history")
    assert main([
        "dashboard", "--out", out, "--history-dir", empty, "--check",
    ]) == 1
    assert "hollow" in capsys.readouterr().err


def test_cli_history_list_show_diff(store, capsys):
    assert main(["history", "--dir", store.root, "list"]) == 0
    out = capsys.readouterr().out
    assert "bench-0003" in out and "fuzz-0002" in out

    assert main(["history", "--dir", store.root, "list",
                 "--kind", "fuzz", "--limit", "1"]) == 0
    out = capsys.readouterr().out
    assert "fuzz-0002" in out and "bench" not in out

    assert main(["history", "--dir", store.root, "show", "bench-0002"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["id"] == "bench-0002"

    # faster new record vs older baseline: no regression, exit 0
    assert main(["history", "--dir", store.root,
                 "diff", "bench-0001", "bench-0003"]) == 0
    assert "2.25x baseline" in capsys.readouterr().out
    # slower new record: regression, exit 1
    assert main(["history", "--dir", store.root,
                 "diff", "bench-0003", "bench-0001"]) == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_cli_history_errors(store, capsys):
    assert main(["history", "--dir", store.root, "show", "nope-0001"]) == 2
    assert "no record" in capsys.readouterr().err
    assert main(["history", "--dir", store.root,
                 "diff", "bench-0001", "fuzz-0001"]) == 2
    assert "cannot diff" in capsys.readouterr().err


def test_cli_accuracy_export(tmp_path, capsys):
    out = tmp_path / "acc.json"
    assert main(["accuracy", "--out", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert doc["entries"] and doc["kind"] == "accuracy"
    assert "19 paper-vs-measured" in capsys.readouterr().err


# ----------------------------------------------------------------------
# scenario matrix (sweeps stamped by repro scenario run / sweep --spec)
# ----------------------------------------------------------------------
def _sweep_payload(name, spec_hash, *, done=4, cached=0, failed=0):
    return {
        "schema_version": 1, "kind": "synthetic", "scale": "TINY",
        "scenario_name": name, "scenario_hash": spec_hash,
        "jobs_total": done + failed, "jobs_done": done,
        "jobs_failed": failed, "jobs_cached": cached, "jobs_skipped": 0,
        "events_per_sec": 52_000.0,
        "config_hash": "de61331da800", "jobs": [],
    }


def test_scenario_matrix_renders(store):
    from repro.dashboard.figures import scenario_matrix_figure

    store.append("sweep", _sweep_payload("fig8-baseline", "aaaaaaaaaaaa"))
    store.append("sweep", _sweep_payload("ci-tiny", "bbbbbbbbbbbb", cached=2))
    # Unstamped sweeps (plain `repro sweep`) are ignored, not an error.
    store.append("sweep", {
        "schema_version": 1, "jobs_done": 1,
        "config_hash": "de61331da800", "jobs": [],
    })
    fig = scenario_matrix_figure(store.records("sweep"))
    assert not fig.empty
    _assert_valid_svg(fig.svg)
    assert "fig8-baseline" in fig.svg and "ci-tiny" in fig.svg
    assert fig.table_html.count("<tr>") == 1 + 2  # header + one per scenario
    assert "aaaaaaaaaaaa" in fig.table_html
    assert not fig.note  # no spec drift


def test_scenario_matrix_flags_spec_hash_drift(store):
    from repro.dashboard.figures import scenario_matrix_figure

    store.append("sweep", _sweep_payload("fig8-baseline", "aaaaaaaaaaaa"))
    store.append("sweep", _sweep_payload("fig8-baseline", "cccccccccccc"))
    fig = scenario_matrix_figure(store.records("sweep"))
    assert "spec hash changed" in fig.note
    assert "fig8-baseline" in fig.note
    # The latest run's hash is the one shown in the table.
    assert "cccccccccccc" in fig.table_html


def test_scenario_matrix_empty(store):
    from repro.dashboard.figures import scenario_matrix_figure

    fig = scenario_matrix_figure(store.records("sweep"))
    assert fig.empty and "scenario run" in fig.empty_reason
    # An empty scenario view must not hollow the build: it is not required.
    assert "scenarios" not in REQUIRED_FIGURES
