"""Tests for the DRAM protocol auditor — including the end-to-end proof
that every scheduler's command stream is timing-legal."""

import dataclasses

import pytest

from repro.core.config import DRAMOrgConfig, DRAMTimingConfig, SimConfig
from repro.dram.commands import CommandKind
from repro.dram.validate import CommandLog, audit_command_log
from repro.gpu.system import GPUSystem
from repro.workloads.profiles import IRREGULAR_PROFILES
from repro.workloads.synthetic import synthetic_trace

T = DRAMTimingConfig()
ORG = DRAMOrgConfig()


def log_of(*cmds) -> CommandLog:
    log = CommandLog()
    for c in cmds:
        log.record(*c)
    return log


def test_clean_sequence_passes():
    t0 = 0
    rd = t0 + T.trcd_ps
    log = log_of(
        (t0, CommandKind.ACT, 0, 5),
        (rd, CommandKind.RD, 0, 5, rd + T.tcas_ps, rd + T.tcas_ps + T.tburst_ps),
        (max(t0 + T.tras_ps, rd + T.trtp_ps), CommandKind.PRE, 0),
    )
    assert audit_command_log(log, T, ORG) == []


def test_detects_trcd_violation():
    log = log_of(
        (0, CommandKind.ACT, 0, 5),
        (T.tck_ps, CommandKind.RD, 0, 5),
    )
    rules = {v.rule for v in audit_command_log(log, T, ORG)}
    assert "ACT_TO_COL" in rules


def test_detects_trrd_violation():
    log = log_of(
        (0, CommandKind.ACT, 0, 5),
        (T.tck_ps, CommandKind.ACT, 1, 5),
    )
    rules = {v.rule for v in audit_command_log(log, T, ORG)}
    assert "ACT_TO_ACT_DIFF" in rules


def test_detects_faw_violation():
    gap = (T.tfaw_ps // 4) - T.tck_ps  # five ACTs squeezed into one window
    cmds = [(i * gap, CommandKind.ACT, i, 1) for i in range(5)]
    rules = {v.rule for v in audit_command_log(log_of(*cmds), T, ORG)}
    assert "FAW" in rules


def test_detects_row_state_errors():
    log = log_of(
        (0, CommandKind.RD, 0, 5),  # closed bank
        (T.tck_ps * 10, CommandKind.PRE, 1),  # no row open
    )
    rules = [v.rule for v in audit_command_log(log, T, ORG)]
    assert rules.count("ROW_STATE") == 2


def test_detects_wrong_row_column():
    rd = T.trcd_ps
    log = log_of(
        (0, CommandKind.ACT, 0, 5),
        (rd, CommandKind.RD, 0, 6),  # row 6 not open
    )
    rules = {v.rule for v in audit_command_log(log, T, ORG)}
    assert "ROW_STATE" in rules


def test_detects_data_bus_overlap():
    t1 = T.trcd_ps
    log = log_of(
        (0, CommandKind.ACT, 0, 5),
        (t1, CommandKind.RD, 0, 5, t1 + T.tcas_ps, t1 + T.tcas_ps + 4 * T.tburst_ps),
        (t1 + T.tccdl_ps, CommandKind.RD, 0, 5,
         t1 + T.tccdl_ps + T.tcas_ps, t1 + T.tccdl_ps + T.tcas_ps + T.tburst_ps),
    )
    rules = {v.rule for v in audit_command_log(log, T, ORG)}
    assert "DATA_BUS" in rules


def test_detects_early_precharge_after_write():
    wr = T.trcd_ps
    data_end = wr + T.twl_ps + T.tburst_ps
    log = log_of(
        (0, CommandKind.ACT, 0, 5),
        (wr, CommandKind.WR, 0, 5, wr + T.twl_ps, data_end),
        (data_end + T.tck_ps, CommandKind.PRE, 0),  # tWR not elapsed
    )
    rules = {v.rule for v in audit_command_log(log, T, ORG)}
    assert "WR_TO_PRE" in rules


def test_violation_formatting():
    log = log_of((0, CommandKind.RD, 0, 5))
    v = audit_command_log(log, T, ORG)[0]
    assert "ROW_STATE" in str(v)


@pytest.mark.parametrize("sched", ["gmc", "wg-w", "sbwas", "wafcfs", "fcfs"])
def test_end_to_end_command_streams_are_legal(sched):
    """Attach the audit log to every channel of a full simulation and
    verify the scheduler never violates a timing constraint."""
    cfg = SimConfig().small().with_scheduler(sched)
    profile = dataclasses.replace(
        IRREGULAR_PROFILES["nw"], warps=24, loads_per_warp=4
    )
    trace = synthetic_trace(profile, cfg, seed=6, scale=1.0)
    sys_ = GPUSystem(cfg, trace)
    logs = []
    for mc in sys_.mcs:
        mc.channel.log = CommandLog()
        logs.append(mc.channel.log)
    sys_.run()
    total = 0
    for log in logs:
        total += len(log)
        violations = audit_command_log(log, cfg.dram_timing, cfg.dram_org)
        assert violations == [], violations[:5]
    assert total > 100  # the audit actually saw a real command stream
