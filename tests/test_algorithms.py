"""Tests for the algorithmic workload generators (real-algorithm traces)."""

import numpy as np
import pytest

from repro.core.config import SimConfig
from repro.gpu.coalescer import coalesce
from repro.workloads.algorithms import (
    bfs_trace,
    bh_trace,
    cfd_trace,
    kmeans_trace,
    nw_trace,
    pvc_trace,
    random_csr,
    sad_trace,
    sp_trace,
    spmv_trace,
    ss_trace,
    sssp_trace,
    stencil_trace,
    stream_trace,
)
from repro.workloads.suite import IRREGULAR_SUITE, REGULAR_SUITE, Scale, build_benchmark

CFG = SimConfig()


def stats_of(trace):
    rpl, loads, stores = [], 0, 0
    for w in trace.warps:
        for s in w.segments:
            if s.mem is None:
                continue
            if s.mem.is_write:
                stores += 1
            else:
                loads += 1
                rpl.append(len(coalesce(s.mem.lane_addrs)))
    return np.asarray(rpl), loads, stores


def test_random_csr_well_formed():
    rng = np.random.default_rng(0)
    row_ptr, col = random_csr(1000, 4.0, rng)
    assert len(row_ptr) == 1001
    assert row_ptr[0] == 0
    assert np.all(np.diff(row_ptr) >= 1)
    assert row_ptr[-1] == len(col)
    assert col.min() >= 0 and col.max() < 1000


def test_bfs_emits_divergent_gathers():
    t = bfs_trace(CFG, n_vertices=30_000, seed=1, max_frontier_warps=120)
    rpl, loads, _ = stats_of(t)
    assert loads > 100
    assert rpl.mean() > 1.5  # MAI present
    assert (rpl > 1).mean() > 0.3


def test_bfs_deterministic():
    a = bfs_trace(CFG, n_vertices=5_000, seed=9, max_frontier_warps=40)
    b = bfs_trace(CFG, n_vertices=5_000, seed=9, max_frontier_warps=40)
    assert a.total_memory_ops() == b.total_memory_ops()
    assert a.total_instructions() == b.total_instructions()


def test_sssp_has_writes():
    t = sssp_trace(CFG, n_vertices=20_000, seed=2, max_warps=100)
    _, loads, stores = stats_of(t)
    assert stores > 0 and loads > 0


def test_bh_walks_diverge_with_depth():
    t = bh_trace(CFG, n_bodies=20_000, seed=3, max_warps=60)
    # Per warp: first tree-level gathers coalesce (few nodes), deep ones diverge.
    w = t.warps[0]
    gathers = [s.mem for s in w.segments if s.mem and not s.mem.is_write]
    first_level = len(coalesce(gathers[1].lane_addrs))
    deepest = len(coalesce(gathers[-1].lane_addrs))
    assert first_level <= 2
    assert deepest > first_level


def test_spmv_row_pointer_coalesced_x_gather_divergent():
    t = spmv_trace(CFG, n_rows=20_000, seed=4, max_warps=80)
    w = t.warps[0]
    mems = [s.mem for s in w.segments if s.mem is not None]
    # First op is the row_ptr stream: one or two requests.
    assert len(coalesce(mems[0].lane_addrs)) <= 2
    rpl, _, _ = stats_of(t)
    assert rpl.mean() > 2.0


def test_cfd_touches_many_channels():
    from repro.gpu.address_map import AddressMap

    amap = AddressMap(CFG.dram_org)
    t = cfd_trace(CFG, n_cells=30_000, seed=5, max_warps=60)
    spreads = []
    for w in t.warps[:20]:
        chans = set()
        for s in w.segments:
            if s.mem is None or s.mem.is_write:
                continue
            for a in coalesce(s.mem.lane_addrs):
                chans.add(amap.channel_of(a))
        spreads.append(len(chans))
    assert np.mean(spreads) >= 3


def test_kmeans_strided_features():
    t = kmeans_trace(CFG, n_points=10_000, seed=6, max_warps=40)
    rpl, _, _ = stats_of(t)
    assert 2.0 < rpl.mean() < 10.0


def test_pvc_write_traffic():
    t = pvc_trace(CFG, n_records=20_000, seed=7, max_warps=80)
    _, loads, stores = stats_of(t)
    assert stores >= loads * 0.3


def test_ss_gathers_cluster_in_windows():
    t = ss_trace(CFG, n_docs=20_000, n_pairs=20_000, seed=8, max_warps=60)
    rpl, _, _ = stats_of(t)
    assert 2.0 < rpl.mean() < 12.0


def test_sad_write_heavy_low_spread():
    t = sad_trace(CFG, frame_h=64, seed=9, max_warps=60)
    rpl, loads, stores = stats_of(t)
    assert stores > 0.4 * loads
    assert rpl.mean() < 5.0


def test_nw_wavefront_writes():
    t = nw_trace(CFG, n=512, seed=10, max_warps=80)
    _, loads, stores = stats_of(t)
    assert stores >= loads * 0.5


def test_sp_clause_gathers():
    t = sp_trace(CFG, n_vars=20_000, n_clauses=40_000, seed=11, max_warps=60)
    rpl, _, _ = stats_of(t)
    assert rpl.mean() > 3.0


def test_regular_generators_coalesce():
    for gen in (stream_trace, stencil_trace):
        t = gen(CFG, seed=12, max_warps=40)
        rpl, _, _ = stats_of(t)
        assert rpl.mean() < 1.3, gen.__name__


def test_suite_builders_cover_all_benchmarks():
    assert len(IRREGULAR_SUITE) == 11
    assert len(REGULAR_SUITE) == 6


def test_build_benchmark_cache_roundtrip(tmp_path):
    a = build_benchmark("sad", CFG, Scale.TINY, seed=1, cache_dir=str(tmp_path))
    b = build_benchmark("sad", CFG, Scale.TINY, seed=1, cache_dir=str(tmp_path))
    assert a.total_memory_ops() == b.total_memory_ops()
    assert (tmp_path / "sad-TINY-s1.npz").exists()


def test_build_benchmark_unknown_name():
    with pytest.raises(ValueError):
        build_benchmark("nope", CFG, Scale.TINY)
