"""Tests for the vectorized SM front end (repro.gpu.frontend).

The pool's one contract is *bit-identity by construction*: for every
memory op it must hand the runtime exactly the line list the scalar
coalescer would have computed at issue time, with exactly the routes the
scalar address decomposition would have produced at injection time.  The
property tests drive that contract over adversarial lane masks
(hypothesis) and the whole-system test pins scalar-vs-vectorized summary
equality on a real workload.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.request as request_mod
from repro.core.config import DRAMOrgConfig, SimConfig
from repro.gpu.address_map import AddressMap
from repro.gpu.coalescer import coalesce
from repro.gpu.frontend import (
    MAX_POOL_ADDRESS,
    OP_ISSUED,
    OP_PENDING,
    FrontEndPool,
    FrontendUnsupported,
    build_frontend_pools,
    coalesce_many,
    scalar_frontend_enabled,
)
from repro.gpu.system import GPUSystem
from repro.workloads.suite import Scale, build_benchmark
from repro.workloads.trace import KernelTrace, MemOp, Segment, WarpTrace

LINE = 128


def _as_pool_array(op_lanes: list[list]) -> np.ndarray:
    max_lanes = max(len(lanes) for lanes in op_lanes)
    arr = np.full((len(op_lanes), max_lanes), -1, dtype=np.int64)
    for i, lanes in enumerate(op_lanes):
        for j, a in enumerate(lanes):
            if a is not None:
                arr[i, j] = a
    return arr


def _assert_matches_scalar(op_lanes: list[list]) -> None:
    lines, offsets = coalesce_many(_as_pool_array(op_lanes), LINE)
    assert int(offsets[0]) == 0
    assert int(offsets[-1]) == len(lines)
    for i, lanes in enumerate(op_lanes):
        got = lines[offsets[i]:offsets[i + 1]].tolist()
        assert got == coalesce(lanes, LINE), f"op {i} diverged"


# ---------------------------------------------------------------------------
# batched coalescer == scalar coalescer
# ---------------------------------------------------------------------------
# Small addresses collide on cache lines constantly: the duplicate-line
# merge path gets exercised in nearly every example.
_colliding_lanes = st.lists(
    st.one_of(st.none(), st.integers(min_value=0, max_value=4 * LINE - 1)),
    min_size=1,
    max_size=8,
)
# Wide addresses exercise ordering over many distinct lines and ragged
# lane counts up to a full 32-lane warp.
_wide_lanes = st.lists(
    st.one_of(st.none(), st.integers(min_value=0, max_value=2**40)),
    min_size=1,
    max_size=32,
)


@settings(max_examples=200, deadline=None)
@given(st.lists(_colliding_lanes, min_size=1, max_size=6))
def test_coalesce_many_matches_scalar_on_colliding_lines(op_lanes):
    _assert_matches_scalar(op_lanes)


@settings(max_examples=200, deadline=None)
@given(st.lists(_wide_lanes, min_size=1, max_size=6))
def test_coalesce_many_matches_scalar_on_wide_addresses(op_lanes):
    _assert_matches_scalar(op_lanes)


def test_coalesce_many_named_edge_cases():
    _assert_matches_scalar([[None] * 32])  # fully masked-off op
    _assert_matches_scalar([[640]])  # single live lane
    _assert_matches_scalar([[0, 1, 127, 128]])  # duplicate-segment mask
    _assert_matches_scalar([[LINE * 3] * 32])  # every lane on one line
    # First-appearance order: lane 0 touches the *higher* line first.
    _assert_matches_scalar([[LINE * 9, LINE * 2, None, LINE * 9]])
    # Mixed ops in one batch, including empties between live ops.
    _assert_matches_scalar([[None], [LINE, 0], [None, None], [5, 5, 5]])


def test_coalesce_many_empty_batch():
    lines, offsets = coalesce_many(np.empty((0, 32), dtype=np.int64), LINE)
    assert lines.size == 0
    assert offsets.tolist() == [0]


def test_coalesce_many_returns_plain_line_bases():
    lines, _ = coalesce_many(_as_pool_array([[LINE + 5, 2 * LINE]]), LINE)
    assert lines.tolist() == [LINE, 2 * LINE]


# ---------------------------------------------------------------------------
# vectorized address decomposition == scalar decomposition
# ---------------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=2**48), min_size=1, max_size=64),
    st.sampled_from(
        [
            DRAMOrgConfig(),
            DRAMOrgConfig(num_channels=1),
            DRAMOrgConfig(num_channels=8, banks_per_channel=8, banks_per_group=8),
        ]
    ),
)
def test_decompose_many_matches_scalar(addrs, org):
    amap = AddressMap(org)
    ch, bank, row, col = amap.decompose_many(np.asarray(addrs, dtype=np.int64))
    for i, addr in enumerate(addrs):
        assert (
            int(ch[i]), int(bank[i]), int(row[i]), int(col[i])
        ) == amap.decompose(addr)


# ---------------------------------------------------------------------------
# the pool against a scalar walk of a real kernel
# ---------------------------------------------------------------------------
def _walk_and_compare(bucket, pool, amap, line_bytes):
    n_mem_ops = 0
    for pos, wt in enumerate(bucket):
        for seg_idx, seg in enumerate(wt.segments):
            entry = pool.op(pos, seg_idx)
            if seg.mem is None:
                assert entry is None
                continue
            n_mem_ops += 1
            op_id, lines, routes = entry
            assert pool.warp_ids[op_id] == wt.warp_id
            assert bool(pool.is_write[op_id]) == seg.mem.is_write
            assert lines == coalesce(seg.mem.lane_addrs, line_bytes)
            assert routes == [amap.decompose(line) for line in lines]
            assert all(type(line) is int for line in lines)  # JSON-safe
    assert pool.n_ops == n_mem_ops


def test_pool_matches_scalar_walk_on_bfs_tiny():
    config = SimConfig()
    trace = build_benchmark("bfs", config, Scale.TINY, seed=1)
    amap = AddressMap(config.dram_org)
    buckets = trace.by_sm(config.gpu.num_sms)
    pools = build_frontend_pools(buckets, config, amap)
    assert pools is not None and len(pools) == config.gpu.num_sms
    for bucket, pool in zip(buckets, pools):
        _walk_and_compare(bucket, pool, amap, config.dram_org.line_bytes)


def test_pool_pickles_for_checkpoints():
    config = SimConfig()
    trace = build_benchmark("bfs", config, Scale.TINY, seed=1)
    amap = AddressMap(config.dram_org)
    bucket = trace.by_sm(config.gpu.num_sms)[0]
    pool = FrontEndPool(bucket, config.dram_org.line_bytes, amap)
    clone = pickle.loads(pickle.dumps(pool))
    _walk_and_compare(bucket, clone, amap, config.dram_org.line_bytes)


def _one_warp_trace(lane_addrs) -> KernelTrace:
    seg = Segment(compute_cycles=1, mem=MemOp(is_write=False, lane_addrs=lane_addrs))
    return KernelTrace(
        name="frontend-test", warps=[WarpTrace(sm_id=0, warp_id=0, segments=[seg])]
    )


def test_oversized_addresses_fall_back_to_scalar():
    config = SimConfig()
    amap = AddressMap(config.dram_org)
    trace = _one_warp_trace([MAX_POOL_ADDRESS])
    buckets = trace.by_sm(config.gpu.num_sms)
    with pytest.raises(FrontendUnsupported):
        FrontEndPool(buckets[0], config.dram_org.line_bytes, amap)
    assert build_frontend_pools(buckets, config, amap) is None


def test_scalar_escape_hatch(monkeypatch):
    config = SimConfig()
    amap = AddressMap(config.dram_org)
    buckets = _one_warp_trace([0]).by_sm(config.gpu.num_sms)
    monkeypatch.setenv("REPRO_SCALAR_FRONTEND", "1")
    assert scalar_frontend_enabled()
    assert build_frontend_pools(buckets, config, amap) is None
    monkeypatch.delenv("REPRO_SCALAR_FRONTEND")
    assert not scalar_frontend_enabled()
    assert build_frontend_pools(buckets, config, amap) is not None


# ---------------------------------------------------------------------------
# whole-system: scalar and vectorized front ends are bit-identical
# ---------------------------------------------------------------------------
def _summary_with(monkeypatch, scalar: bool):
    if scalar:
        monkeypatch.setenv("REPRO_SCALAR_FRONTEND", "1")
    else:
        monkeypatch.delenv("REPRO_SCALAR_FRONTEND", raising=False)
    # Request ids come from a process-global cursor; pin it so both modes
    # allocate identical ids.
    request_mod._req_ids.next_id = 0
    config = SimConfig(scheduler="wg").small()
    trace = build_benchmark("bfs", config, Scale.TINY, seed=1)
    system = GPUSystem(config, trace)
    assert (system.frontends is None) == scalar
    if not scalar:
        for sm, pool in zip(system.sms, system.frontends):
            assert sm.frontend is pool
    stats = system.run()
    return stats.summary(), system.engine.events_processed


def test_scalar_and_vectorized_runs_are_bit_identical(monkeypatch):
    vec_summary, vec_events = _summary_with(monkeypatch, scalar=False)
    sc_summary, sc_events = _summary_with(monkeypatch, scalar=True)
    assert vec_summary == sc_summary
    assert vec_events == sc_events


def test_pool_state_is_marked_issued_after_a_run(monkeypatch):
    monkeypatch.delenv("REPRO_SCALAR_FRONTEND", raising=False)
    config = SimConfig(scheduler="wg").small()
    trace = build_benchmark("bfs", config, Scale.TINY, seed=1)
    system = GPUSystem(config, trace)
    pools = system.frontends
    assert pools is not None
    assert all((pool.state == OP_PENDING).all() for pool in pools)
    system.run()
    assert all((pool.state == OP_ISSUED).all() for pool in pools)


# ---------------------------------------------------------------------------
# bench payload records the front-end mode
# ---------------------------------------------------------------------------
def test_bench_payload_records_frontend_mode(monkeypatch):
    from repro.analysis.bench import BenchReport

    report = BenchReport(jobs=[], calibration_ops_per_sec=1.0)
    monkeypatch.delenv("REPRO_SCALAR_FRONTEND", raising=False)
    assert report.to_dict()["frontend"] == "vectorized"
    monkeypatch.setenv("REPRO_SCALAR_FRONTEND", "1")
    assert report.to_dict()["frontend"] == "scalar"
