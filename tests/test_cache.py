"""Unit and property tests for the cache and MSHR substrates."""

from hypothesis import given, settings, strategies as st

from repro.core.config import CacheConfig
from repro.gpu.cache import MSHR, Cache


def small_cache(ways: int = 2, sets: int = 4) -> Cache:
    return Cache(CacheConfig(size_bytes=128 * ways * sets, ways=ways))


def test_miss_then_hit_after_fill():
    c = small_cache()
    assert not c.lookup(0)
    c.fill(0)
    assert c.lookup(0)
    assert c.hits == 1 and c.misses == 1


def test_lru_eviction_order():
    c = small_cache(ways=2, sets=1)
    c.fill(0)
    c.fill(128)
    c.lookup(0)  # 0 becomes MRU
    victim = c.fill(256)  # evicts 128 (LRU), clean -> no writeback
    assert victim is None
    assert c.contains(0) and c.contains(256) and not c.contains(128)


def test_dirty_eviction_returns_victim():
    c = small_cache(ways=1, sets=1)
    c.fill(0, dirty=True)
    victim = c.fill(128)
    assert victim == 0
    assert c.dirty_evictions == 1


def test_write_hit_marks_dirty():
    c = small_cache(ways=1, sets=1)
    c.fill(0)
    c.lookup(0, mark_dirty=True)
    assert c.fill(128) == 0  # dirty writeback


def test_fill_existing_line_is_idempotent():
    c = small_cache(ways=2, sets=1)
    c.fill(0)
    assert c.fill(0) is None
    assert c.occupancy() == 1


def test_invalidate():
    c = small_cache()
    c.fill(0)
    c.invalidate(0)
    assert not c.contains(0)
    c.invalidate(0)  # idempotent


def test_hit_rate():
    c = small_cache()
    c.fill(0)
    c.lookup(0)
    c.lookup(128)
    assert c.hit_rate() == 0.5


def test_set_isolation():
    c = small_cache(ways=1, sets=4)
    # Lines mapping to different sets must not evict each other.
    c.fill(0 * 128)
    c.fill(1 * 128)
    c.fill(2 * 128)
    c.fill(3 * 128)
    assert c.occupancy() == 4


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 63), min_size=1, max_size=300))
def test_property_occupancy_bounded(line_indices):
    c = small_cache(ways=2, sets=4)
    for idx in line_indices:
        if not c.lookup(idx * 128):
            c.fill(idx * 128)
    assert c.occupancy() <= 8
    # A just-filled line is always resident.
    assert c.contains(line_indices[-1] * 128)


# -- MSHR -------------------------------------------------------------------
def test_mshr_primary_and_merge():
    m = MSHR(entries=4)
    assert m.allocate(0, "a") is True
    assert m.allocate(0, "b") is False  # merged
    assert m.pending(0)
    assert m.complete(0) == ["a", "b"]
    assert not m.pending(0)
    assert m.merges == 1


def test_mshr_complete_unknown_line_is_empty():
    m = MSHR(entries=4)
    assert m.complete(999) == []


def test_mshr_overflow_counted_but_tracked():
    m = MSHR(entries=1)
    m.allocate(0, "a")
    assert m.allocate(128, "b") is True
    assert m.overflows == 1
    assert m.complete(128) == ["b"]


def test_mshr_len():
    m = MSHR(entries=8)
    m.allocate(0, "a")
    m.allocate(128, "b")
    assert len(m) == 2
