"""Tests for declarative scenario specs (repro.scenarios).

Covers the whole tentpole path: YAML/JSON loading with file/line-accurate
errors, preset + override resolution through the real config validators,
the committed ``scenarios/`` library, sweep execution with scenario
stamping into the history store, cache bit-identity with hand-coded
sweeps, and the CLI surfaces (``repro scenario ...``, ``sweep --spec``).
"""

import json
import os
import textwrap

import pytest

from repro.__main__ import main
from repro.analysis.runner import ExperimentRunner, config_hash
from repro.analysis.sweep import load_manifest, run_sweep
from repro.core.config import SimConfig
from repro.scenarios import (
    KNOWN_METRICS,
    ScenarioSpec,
    SpecError,
    find_specs,
    load_spec,
    run_scenario,
    validate_spec_file,
)
from repro.workloads.suite import Scale

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LIBRARY = os.path.join(REPO, "scenarios")


def write_spec(tmp_path, body: str, name: str = "spec.yaml") -> str:
    path = tmp_path / name
    path.write_text(textwrap.dedent(body))
    return str(path)


TINY_SPEC = """\
spec_version: 1
name: t-tiny
workload:
  kind: synthetic
  benchmarks: [sad]
schedulers: [gmc, wg]
scale: tiny
seeds: [1]
figure:
  metric: ipc
  normalize_to: gmc
"""


# ---------------------------------------------------------------------------
# spec model
# ---------------------------------------------------------------------------
def test_known_metrics_exist_in_real_summaries(tmp_path):
    """Every spec-selectable metric is a key the runner actually emits."""
    r = ExperimentRunner(scale=Scale.TINY, seeds=(1,), cache_dir=str(tmp_path))
    summary = r.run("sad", "gmc", 1)
    missing = [m for m in KNOWN_METRICS if m not in summary]
    assert not missing, f"spec metrics without a summary key: {missing}"


def test_spec_hash_covers_resolved_semantics(tmp_path):
    spec = load_spec(write_spec(tmp_path, TINY_SPEC))
    base = spec.spec_hash()
    assert len(base) == 12
    # Spelling the preset's own default as an explicit override changes
    # nothing semantically -> identical hash (it hashes the *resolved*
    # config, not the spelling).
    spelled = load_spec(write_spec(
        tmp_path,
        TINY_SPEC + "preset: gddr5\noverrides:\n  dram_timing.tras_ns: 28.0\n",
        "spelled.yaml",
    ))
    assert SimConfig().dram_timing.tras_ns == 28.0
    assert spelled.spec_hash() == base
    # A semantic change re-keys.
    changed = load_spec(write_spec(
        tmp_path,
        TINY_SPEC + "overrides:\n  mc.read_queue_entries: 96\n",
        "changed.yaml",
    ))
    assert changed.spec_hash() != base


def test_resolved_config_applies_preset_and_overrides(tmp_path):
    spec = load_spec(write_spec(
        tmp_path,
        TINY_SPEC + "preset: hbm2\noverrides:\n  mc.read_queue_entries: 96\n",
    ))
    cfg = spec.resolved_config()
    assert cfg.dram_org.row_size_bytes == 1024  # hbm2
    assert cfg.mc.read_queue_entries == 96


# ---------------------------------------------------------------------------
# loader validation: file/line-accurate one-line errors
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "mutation, line, field, fragment",
    [
        ("spec_version: 2", 1, "spec_version", "must be 1"),
        ("name: 'bad name'", 2, "name", "slug"),
        ("schedulers: [gmc, nope]", 6, r"schedulers\[1\]", "unknown scheduler"),
        ("scale: huge", 7, "scale", "tiny, quick"),
        ("seeds: [1, true]", 8, r"seeds\[1\]", "integer"),
    ],
)
def test_spec_errors_carry_file_line_and_field(
    tmp_path, mutation, line, field, fragment
):
    lines = [
        "spec_version: 1",
        "name: ok",
        "workload:",
        "  kind: synthetic",
        "  benchmarks: [sad]",
        "schedulers: [gmc]",
        "scale: tiny",
        "seeds: [1]",
    ]
    key = mutation.split(":")[0]
    body = "\n".join(
        mutation if ln.split(":")[0] == key else ln for ln in lines
    )
    path = write_spec(tmp_path, body + "\n")
    with pytest.raises(SpecError, match=fragment) as err:
        load_spec(path)
    rendered = str(err.value)
    assert rendered.startswith(f"{path}:{line}:")
    assert rendered.count("\n") == 0  # strictly one line
    import re

    assert re.search(field, rendered)


def test_bad_override_value_reports_spec_location_not_traceback(tmp_path):
    """Satellite: an invalid config *value* surfaces as a located spec
    error carrying the constructor's one-line physics message."""
    path = write_spec(
        tmp_path, TINY_SPEC + "overrides:\n  dram_timing.tras_ns: 1\n"
    )
    with pytest.raises(SpecError, match="tRAS") as err:
        load_spec(path)
    assert f"{path}:" in str(err.value)
    assert "Traceback" not in str(err.value)


def test_bad_override_path_names_field_tree(tmp_path):
    path = write_spec(
        tmp_path, TINY_SPEC + "overrides:\n  dram_timing.trasns: 3\n"
    )
    with pytest.raises(SpecError, match="valid fields under 'dram_timing'"):
        load_spec(path)


def test_unknown_top_level_key_is_rejected(tmp_path):
    path = write_spec(tmp_path, TINY_SPEC + "figgure: {}\n")
    with pytest.raises(SpecError, match="unknown key 'figgure'"):
        load_spec(path)


def test_synthetic_kind_rejects_unprofiled_benchmark(tmp_path):
    path = write_spec(
        tmp_path, TINY_SPEC.replace("[sad]", "[embgather]")
    )
    with pytest.raises(SpecError, match="kind: algorithmic"):
        load_spec(path)


def test_missing_trace_file_is_located(tmp_path):
    path = write_spec(tmp_path, """\
        spec_version: 1
        name: t
        workload:
          kind: trace
          traces:
            x: nowhere.trace.json
        schedulers: [gmc]
        """)
    with pytest.raises(SpecError, match="not found") as err:
        load_spec(path)
    assert ":6:" in str(err.value)  # the trace entry's own line


def test_json_specs_load_without_yaml(tmp_path):
    doc = {
        "spec_version": 1,
        "name": "from-json",
        "workload": {"kind": "synthetic", "benchmarks": ["sad"]},
        "schedulers": ["gmc"],
        "scale": "tiny",
    }
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(doc))
    spec = load_spec(str(path))
    assert spec.name == "from-json"
    # Malformed JSON still yields a located one-line SpecError.
    bad = tmp_path / "bad.json"
    bad.write_text('{"spec_version": 1,,}')
    with pytest.raises(SpecError, match="not valid JSON"):
        load_spec(str(bad))


def test_find_specs_skips_trace_payloads(tmp_path):
    (tmp_path / "a.yaml").write_text("x")
    (tmp_path / "b.json").write_text("x")
    (tmp_path / "c.trace.json").write_text("x")
    (tmp_path / "notes.txt").write_text("x")
    names = [os.path.basename(p) for p in find_specs(str(tmp_path))]
    assert names == ["a.yaml", "b.json"]


# ---------------------------------------------------------------------------
# committed library
# ---------------------------------------------------------------------------
def test_committed_library_is_valid():
    paths = find_specs(LIBRARY)
    assert len(paths) >= 9
    bad = {p: validate_spec_file(p) for p in paths}
    assert not {p: str(e) for p, e in bad.items() if e is not None}


def test_fig8_spec_resolves_to_default_config_hash():
    """Acceptance: the fig8 spec's cache identity is bit-identical to the
    Python-coded reproduce path (same config_hash -> same cache files)."""
    spec = load_spec(os.path.join(LIBRARY, "fig8_baseline.yaml"))
    assert config_hash(spec.resolved_config()) == config_hash(SimConfig())
    assert spec.workload.kind == "synthetic"
    assert spec.scale == "QUICK" and spec.seeds == (1, 2)
    assert spec.schedulers == ("gmc", "wg", "wg-m", "wg-bw", "wg-w")
    assert len(spec.workload.benchmarks) == 11


# ---------------------------------------------------------------------------
# execution: sweep integration, caching, history stamping
# ---------------------------------------------------------------------------
def test_run_scenario_reuses_hand_coded_sweep_cache(tmp_path):
    """A scenario resolving to a config some plain sweep already ran is
    served 100% from cache — bit-identical results, zero simulation."""
    cache = tmp_path / "cache"
    runner = ExperimentRunner(
        scale=Scale.TINY, seeds=(1,), cache_dir=str(cache)
    )
    run_sweep(runner, ["sad"], ["gmc", "wg"], workers=0)
    from repro.analysis.sweep import MANIFEST_NAME

    entries_before = {
        p.name: p.read_bytes()
        for p in cache.iterdir()
        if p.suffix == ".json" and p.name != MANIFEST_NAME
    }
    spec = load_spec(write_spec(tmp_path, TINY_SPEC))
    result = run_scenario(
        spec, cache_dir=str(cache), workers=0, history=False
    )
    assert result.report.n_simulated == 0
    assert result.report.n_cached == 2
    assert result.config_hash == runner.config_hash
    for name, blob in entries_before.items():
        assert (cache / name).read_bytes() == blob  # untouched, reused
    # Figure recipe: gmc normalizes to exactly 1.0.
    assert result.figure["sad"]["gmc"] == pytest.approx(1.0)
    assert result.figure["sad"]["wg"] > 0


def test_run_scenario_stamps_history_record(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_HISTORY", "1")
    monkeypatch.setenv("REPRO_HISTORY_DIR", str(tmp_path / "hist"))
    spec = load_spec(write_spec(tmp_path, TINY_SPEC))
    result = run_scenario(spec, cache_dir=str(tmp_path / "c"), workers=0)
    from repro.history import default_store

    records = default_store().records("sweep")
    assert records
    payload = records[-1].payload
    assert payload["scenario_name"] == "t-tiny"
    assert payload["scenario_hash"] == result.spec_hash == spec.spec_hash()


def test_trace_kind_scenario_runs_and_fingerprints_cache(tmp_path):
    spec_dir = tmp_path / "specs"
    spec_dir.mkdir()
    from repro.workloads.trace import KernelTrace, MemOp, Segment, WarpTrace

    trace = KernelTrace("ext", [
        WarpTrace(s, w, [
            Segment(3, MemOp(False, [(w * 37 + i) * 128 for i in range(32)])),
            Segment(5, MemOp(True, [w * 4096 + i * 128 for i in range(32)])),
        ])
        for s in range(2) for w in range(6)
    ])
    trace.save_json(str(spec_dir / "ext.trace.json"))
    path = write_spec(spec_dir, """\
        spec_version: 1
        name: ext-replay
        workload:
          kind: trace
          traces:
            ext: ext.trace.json
        schedulers: [gmc]
        scale: tiny
        """)
    result = run_scenario(
        spec := load_spec(path), cache_dir=str(tmp_path / "c"),
        workers=0, history=False,
    )
    assert result.report.n_done == 1
    assert spec.workload.names == ("ext",)
    entry = [
        p for p in (tmp_path / "c").iterdir()
        if p.name.startswith("trace-ext@")
    ]
    assert entry, "cache entry must embed the trace content fingerprint"
    assert result.metrics["ext"]["gmc"]["ipc"] > 0


def test_run_scenario_scale_override(tmp_path):
    from repro.scenarios import build_runner

    spec = load_spec(write_spec(tmp_path, TINY_SPEC.replace("tiny", "paper")))
    assert build_runner(spec, cache_dir=".").scale is Scale.PAPER
    assert build_runner(spec, cache_dir=".", scale="tiny").scale is Scale.TINY


# ---------------------------------------------------------------------------
# CLI surfaces
# ---------------------------------------------------------------------------
def test_cli_scenario_validate_library_ok(capsys):
    assert main(["scenario", "validate", LIBRARY]) == 0
    out = capsys.readouterr().out
    assert "OK" in out and "INVALID" not in out


def test_cli_scenario_validate_broken_spec_fails(tmp_path, capsys):
    path = write_spec(
        tmp_path, TINY_SPEC + "overrides:\n  dram_timing.tras_ns: 1\n"
    )
    assert main(["scenario", "validate", path]) == 1
    out = capsys.readouterr().out
    assert "INVALID" in out and "tRAS" in out and f"{path}:" in out


def test_cli_scenario_run_and_sweep_spec_share_cache(tmp_path, capsys):
    spec = write_spec(tmp_path, TINY_SPEC)
    out_json = tmp_path / "res.json"
    rc = main([
        "scenario", "run", spec, "--cache-dir", str(tmp_path / "c"),
        "--workers", "0", "--out", str(out_json),
    ])
    assert rc == 0
    doc = json.loads(out_json.read_text())
    assert doc["scenario"] == "t-tiny"
    assert doc["sweep"]["jobs_simulated"] == 2
    capsys.readouterr()
    # Same spec through `sweep --spec` + --resume: everything is reused.
    rc = main([
        "sweep", "--spec", spec, "--cache-dir", str(tmp_path / "c"),
        "--workers", "0", "--resume", "--bench-out", "",
    ])
    assert rc == 0
    manifest = load_manifest(str(tmp_path / "c"))
    assert len(manifest) == 2


def test_cli_sweep_spec_rejects_grid_flags(tmp_path, capsys):
    spec = write_spec(tmp_path, TINY_SPEC)
    rc = main(["sweep", "--spec", spec, "--benchmarks", "sad"])
    assert rc == 2
    assert "--benchmarks" in capsys.readouterr().err


def test_cli_sweep_spec_bad_spec_is_usage_error(tmp_path, capsys):
    path = write_spec(tmp_path, TINY_SPEC + "schedulers: [zzz]\n")
    rc = main(["sweep", "--spec", path])
    assert rc == 2
    err = capsys.readouterr().err
    assert "unknown scheduler" in err and f"{path}:" in err


def test_cli_sweep_synthetic_rejects_modern_bench(capsys):
    rc = main(["sweep", "--benchmarks", "embgather", "--workers", "0"])
    assert rc == 2
    assert "algorithmic" in capsys.readouterr().err


def test_cli_run_modern_bench_defaults_to_algorithmic(tmp_path, capsys):
    rc = main(["run", "embgather", "--scale", "tiny", "--json"])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["ipc"] > 0


def test_cli_run_modern_bench_synthetic_kind_is_usage_error(capsys):
    rc = main(["run", "embgather", "--scale", "tiny", "--kind", "synthetic"])
    assert rc == 2
    assert "no synthetic profile" in capsys.readouterr().err


def test_cli_scenario_list_renders_table(capsys):
    assert main(["scenario", "list", LIBRARY]) == 0
    out = capsys.readouterr().out
    assert "fig8-baseline" in out and "trace-replay-example" in out


# ---------------------------------------------------------------------------
# programmatic specs
# ---------------------------------------------------------------------------
def test_programmatic_spec_skips_loader(tmp_path):
    from repro.scenarios import WorkloadSpec

    spec = ScenarioSpec(
        name="inline",
        workload=WorkloadSpec(kind="synthetic", benchmarks=("sad",)),
        schedulers=("gmc",),
        scale="TINY",
        seeds=(1,),
    )
    result = run_scenario(
        spec, cache_dir=str(tmp_path), workers=0, history=False
    )
    assert result.report.n_done == 1
    assert result.metrics["sad"]["gmc"]["ipc"] > 0
