"""Setup shim: enables legacy editable installs on toolchains without
the `wheel` package (modern PEP 660 editable builds need bdist_wheel)."""

from setuptools import setup

setup()
