# Convenience targets for the repro package.

PYTHON ?= python

.PHONY: install test bench bench-quick reproduce reproduce-paper examples clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-quick:
	REPRO_BENCH_SCALE=quick $(PYTHON) -m pytest benchmarks/ --benchmark-only

reproduce:
	$(PYTHON) examples/reproduce_paper.py --scale quick

reproduce-paper:
	$(PYTHON) examples/reproduce_paper.py --scale paper --out results/

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/scheduler_comparison.py spmv --synthetic
	$(PYTHON) examples/dram_design_space.py

clean:
	rm -rf .repro-results benchmarks/.benchcache .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
