#!/usr/bin/env python3
"""Regenerate the paper's evaluation: every table and figure.

Runs the experiment drivers of ``repro.analysis.experiments`` and prints
each result as an ASCII table (one row per benchmark, one column per
series), with the paper's reported numbers noted underneath.

Run:
    python examples/reproduce_paper.py                      # quick scale
    python examples/reproduce_paper.py --scale paper        # full scale
    python examples/reproduce_paper.py --only fig8 fig11    # subset
    python examples/reproduce_paper.py --kind algorithmic   # real-algorithm traces
    python examples/reproduce_paper.py --workers 8          # parallel prefetch
                                                            # (resumable: rerun
                                                            # after an interrupt)
"""

import argparse
import os
import time

import sys

from repro.analysis import run_all
from repro.analysis.sweep import run_sweep
from repro.workloads.profiles import ALL_PROFILES
from repro.analysis.experiments import (
    fig2_coalescing,
    fig3_divergence,
    fig4_opportunity,
    fig8_ipc,
    fig9_latency,
    fig10_divergence,
    fig11_bandwidth,
    fig12_writes,
    sec6a_regular,
    sec6b_power,
    sec6c_comparison,
    table1_merb,
)
from repro.analysis.runner import ExperimentRunner
from repro.workloads.suite import Scale

DRIVERS = {
    "fig2": fig2_coalescing,
    "fig3": fig3_divergence,
    "fig4": fig4_opportunity,
    "table1": lambda r: table1_merb(r.config),
    "fig8": fig8_ipc,
    "fig9": fig9_latency,
    "fig10": fig10_divergence,
    "fig11": fig11_bandwidth,
    "fig12": fig12_writes,
    "sec6a": sec6a_regular,
    "sec6b": sec6b_power,
    "sec6c": sec6c_comparison,
}


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", choices=[s.name.lower() for s in Scale],
                    default="quick")
    ap.add_argument("--seeds", type=int, nargs="+", default=[1, 2])
    ap.add_argument("--kind", choices=["synthetic", "algorithmic"],
                    default="synthetic")
    ap.add_argument("--only", nargs="+", choices=sorted(DRIVERS),
                    help="run a subset of experiments")
    ap.add_argument("--cache-dir", default=".repro-results",
                    help="simulation result cache (JSON per run)")
    ap.add_argument("--out", help="also write each table to this directory")
    ap.add_argument("--workers", type=int, default=0,
                    help="prefetch the sweep with N worker processes first "
                         "(interrupted runs resume from the sweep manifest)")
    args = ap.parse_args()

    scale = Scale[args.scale.upper()]
    t0 = time.time()
    if args.workers > 0:
        # One resumable parallel sweep over the combinations the figure
        # drivers consume; the drivers below then run from the cache.
        prefetch = ExperimentRunner(
            scale=scale, seeds=tuple(args.seeds), kind=args.kind,
            cache_dir=args.cache_dir,
        )
        say = lambda msg: print(msg, file=sys.stderr)  # noqa: E731
        run_sweep(
            prefetch, sorted(ALL_PROFILES),
            ("gmc", "wg", "wg-m", "wg-bw", "wg-w", "wafcfs", "zero-div"),
            workers=args.workers, resume=True, progress=say,
        ).raise_on_failure()
        run_sweep(
            prefetch, sorted(ALL_PROFILES), ("gmc",), perfect=True,
            workers=args.workers, resume=True, progress=say,
        ).raise_on_failure()
    if args.only:
        runner = ExperimentRunner(
            scale=scale, seeds=tuple(args.seeds), kind=args.kind,
            cache_dir=args.cache_dir, verbose=True,
        )
        results = {name: DRIVERS[name](runner) for name in args.only}
    else:
        results = run_all(
            scale=scale, seeds=tuple(args.seeds), kind=args.kind,
            cache_dir=args.cache_dir, verbose=True,
        )

    for rid, res in results.items():
        print()
        print(res)
        if args.out:
            os.makedirs(args.out, exist_ok=True)
            with open(os.path.join(args.out, f"{rid}.txt"), "w") as fh:
                fh.write(str(res) + "\n")

    print(f"\nDone in {time.time() - t0:.0f}s "
          f"(scale={scale.name}, kind={args.kind}, seeds={args.seeds}).")


if __name__ == "__main__":
    main()
