#!/usr/bin/env python3
"""Quickstart: simulate one irregular kernel under two memory schedulers.

Builds the BFS benchmark trace, runs it against the throughput-optimized
baseline controller (GMC) and the paper's best warp-aware policy (WG-W),
and prints the headline metrics side by side.

Run:  python examples/quickstart.py
"""

from repro import ALL_PROFILES, SimConfig, Scale, simulate, synthetic_trace
from repro.analysis import format_table


def main() -> None:
    cfg = SimConfig()
    print("Building the bfs workload (profile-driven trace; see "
          "examples/graph_analytics.py for traces from the real algorithm)...")
    trace = synthetic_trace(ALL_PROFILES["bfs"], cfg, seed=1,
                            scale=Scale.QUICK.factor)
    print(f"  {len(trace.warps)} warps, {trace.total_memory_ops()} memory instructions\n")

    rows = []
    results = {}
    for sched in ("gmc", "wg-w"):
        print(f"Simulating with the {sched!r} scheduler ...")
        stats = simulate(cfg.with_scheduler(sched), trace)
        s = stats.summary()
        results[sched] = s
        rows.append(
            [
                sched,
                s["ipc"],
                s["effective_latency_ns"],
                s["divergence_ns"],
                s["row_hit_rate"],
                s["bandwidth_utilization"],
            ]
        )

    print()
    print(
        format_table(
            ["scheduler", "IPC (inst/ns)", "warp stall (ns)", "divergence (ns)",
             "row-hit rate", "bus util"],
            rows,
            title="bfs: baseline vs warp-aware scheduling",
        )
    )
    speedup = results["wg-w"]["ipc"] / results["gmc"]["ipc"]
    dd = 1 - results["wg-w"]["divergence_ns"] / results["gmc"]["divergence_ns"]
    print(f"\nWG-W speedup over GMC: {speedup:.3f}x "
          f"(latency divergence reduced by {dd:.0%})")


if __name__ == "__main__":
    main()
