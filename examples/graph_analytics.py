#!/usr/bin/env python3
"""Domain scenario: GPU graph analytics under warp-aware scheduling.

The paper's motivation is HPC/enterprise irregular workloads — graph
traversals being the canonical case.  This example builds *real* traces by
running BFS and SSSP over a synthetic scale-free graph, characterizes
their memory-access irregularity (the Fig. 2/3 statistics), and measures
how much of the divergence penalty warp-aware scheduling recovers.

Run:  python examples/graph_analytics.py
"""

from repro import Scale, SimConfig, simulate
from repro.analysis import format_table
from repro.workloads.algorithms import bfs_trace, sssp_trace


def characterize(name: str, trace, cfg: SimConfig):
    print(f"--- {name}: {len(trace.warps)} warps, "
          f"{trace.total_memory_ops()} memory instructions")
    out = {}
    for sched in ("gmc", "wg", "wg-w"):
        stats = simulate(cfg.with_scheduler(sched), trace)
        out[sched] = stats.summary()
    s = out["gmc"]
    print(f"  irregularity: {s['requests_per_load']:.1f} requests/load, "
          f"{s['frac_divergent_loads']:.0%} divergent loads, "
          f"{s['channels_per_warp']:.1f} controllers/warp, "
          f"last/first latency {s['last_over_first']:.2f}x")
    return out


def main() -> None:
    cfg = SimConfig()
    scale = Scale.QUICK

    print("Generating graph workloads (running BFS/SSSP on the host)...\n")
    bfs = bfs_trace(cfg, n_vertices=150_000, seed=1,
                    max_frontier_warps=int(1200 * scale.factor))
    sssp = sssp_trace(cfg, n_vertices=120_000, seed=1,
                      max_warps=int(1400 * scale.factor))

    rows = []
    for name, trace in (("bfs", bfs), ("sssp", sssp)):
        out = characterize(name, trace, cfg)
        base = out["gmc"]
        for sched in ("wg", "wg-w"):
            s = out[sched]
            rows.append([
                name, sched,
                s["ipc"] / base["ipc"],
                1 - s["divergence_ns"] / base["divergence_ns"]
                if base["divergence_ns"] else 0.0,
                1 - s["effective_latency_ns"] / base["effective_latency_ns"],
            ])
        print()

    print(format_table(
        ["kernel", "scheduler", "speedup vs GMC", "divergence cut", "stall cut"],
        rows,
        title="Warp-aware scheduling on graph analytics",
    ))
    print("\nTakeaway: the data-dependent neighbor gathers of graph kernels"
          "\nspread each warp's requests across rows, banks and channels;"
          "\nservicing them as warp-groups returns them in close succession.")


if __name__ == "__main__":
    main()
