#!/usr/bin/env python3
"""Compare every memory scheduler on one benchmark.

Runs the full policy family of the paper — naive FCFS, FR-FCFS, the GMC
baseline, the prior warp-aware proposals (WAFCFS, SBWAS) and the paper's
WG / WG-M / WG-Bw / WG-W — plus the zero-latency-divergence upper bound,
on a benchmark of your choice.

Run:  python examples/scheduler_comparison.py [benchmark] [--synthetic]
      (default benchmark: spmv)
"""

import argparse

import repro.idealized  # noqa: F401  (registers the zero-div bound)
from repro import (
    ALL_PROFILES,
    Scale,
    SimConfig,
    benchmark_names,
    build_benchmark,
    simulate,
    synthetic_trace,
)
from repro.analysis import format_table

ORDER = (
    "fcfs", "frfcfs", "wafcfs", "sbwas", "gmc",
    "wg", "wg-m", "wg-bw", "wg-w", "zero-div",
)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("benchmark", nargs="?", default="spmv",
                    choices=sorted(benchmark_names()))
    ap.add_argument("--synthetic", action="store_true",
                    help="use the profile-driven synthetic trace instead of "
                         "the algorithmic generator")
    ap.add_argument("--seed", type=int, default=1)
    args = ap.parse_args()

    cfg = SimConfig()
    if args.synthetic:
        trace = synthetic_trace(ALL_PROFILES[args.benchmark], cfg,
                                seed=args.seed, scale=Scale.QUICK.factor)
    else:
        trace = build_benchmark(args.benchmark, cfg, Scale.QUICK, seed=args.seed)
    kind = "synthetic" if args.synthetic else "algorithmic"
    print(f"{args.benchmark} ({kind}): {len(trace.warps)} warps, "
          f"{trace.total_memory_ops()} memory instructions\n")

    rows = []
    base_ipc = None
    for sched in ORDER:
        stats = simulate(cfg.with_scheduler(sched), trace)
        s = stats.summary()
        if sched == "gmc":
            base_ipc = s["ipc"]
        rows.append([sched, s["ipc"], s["effective_latency_ns"],
                     s["divergence_ns"], s["row_hit_rate"],
                     s["bandwidth_utilization"]])
        print(f"  {sched:8s} done")

    print()
    table_rows = [
        [r[0], r[1], f"{r[1] / base_ipc:.3f}", r[2], r[3], r[4], r[5]]
        for r in rows
    ]
    print(format_table(
        ["scheduler", "IPC", "vs GMC", "stall ns", "divergence ns",
         "row hit", "bus util"],
        table_rows,
        title=f"{args.benchmark}: scheduler comparison",
    ))


if __name__ == "__main__":
    main()
