#!/usr/bin/env python3
"""Ablations over the DRAM design space called out in DESIGN.md.

Three studies:

1. MERB is technology-specific: print the boot-time MERB tables for GDDR5
   and a DDR3-like device (Table I only holds for GDDR5 timing).
2. Command-queue depth: the transaction scheduler's look-ahead window
   trades row locality against scheduling agility.
3. Write-drain watermarks: hysteresis width vs. read stall time.

Run:  python examples/dram_design_space.py
"""

import dataclasses

from repro import SimConfig, Scale, synthetic_trace, simulate
from repro.analysis import format_table
from repro.dram.timing import DDR3_TIMING, GDDR5_TIMING
from repro.mc.merb import merb_table, single_bank_utilization
from repro.workloads.profiles import IRREGULAR_PROFILES


def merb_study() -> None:
    g5 = merb_table(GDDR5_TIMING, 16)
    d3 = merb_table(DDR3_TIMING, 8)
    rows = [[b, g5[b], d3[min(b, 8)]] for b in range(1, 9)]
    print(format_table(
        ["busy banks", "GDDR5 MERB", "DDR3 MERB"], rows,
        title="Ablation 1 - MERB tables per DRAM technology",
    ))
    print(f"  GDDR5 single-bank streak utilization at MERB=31: "
          f"{single_bank_utilization(31, GDDR5_TIMING):.0%}\n")


def depth_study(trace, cfg) -> None:
    rows = []
    for depth in (2, 4, 8, 16):
        mc = dataclasses.replace(cfg.mc, command_queue_depth=depth)
        c = dataclasses.replace(cfg, mc=mc)
        for sched in ("gmc", "wg-w"):
            s = simulate(c.with_scheduler(sched), trace).summary()
            rows.append([depth, sched, s["ipc"], s["row_hit_rate"],
                         s["divergence_ns"]])
    print(format_table(
        ["cq depth", "scheduler", "IPC", "row hit", "divergence ns"], rows,
        title="Ablation 2 - per-bank command queue depth",
    ))
    print()


def watermark_study(trace, cfg) -> None:
    rows = []
    for hw, lw in ((16, 8), (32, 16), (48, 24)):
        mc = dataclasses.replace(
            cfg.mc, write_high_watermark=hw, write_low_watermark=lw
        )
        c = dataclasses.replace(cfg, mc=mc)
        s = simulate(c.with_scheduler("wg-w"), trace).summary()
        rows.append([f"{hw}/{lw}", s["ipc"], s["effective_latency_ns"],
                     s["write_intensity"]])
    print(format_table(
        ["HW/LW", "IPC", "stall ns", "write intensity"], rows,
        title="Ablation 3 - write-drain watermarks (WG-W)",
    ))


def main() -> None:
    cfg = SimConfig()
    profile = IRREGULAR_PROFILES["nw"]  # write-heavy: exercises all three
    trace = synthetic_trace(profile, cfg, seed=1, scale=Scale.QUICK.factor)
    merb_study()
    depth_study(trace, cfg)
    watermark_study(trace, cfg)


if __name__ == "__main__":
    main()
