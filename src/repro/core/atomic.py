"""Crash-safe filesystem primitives shared by every store in the repo.

Three writers live on shared directories — the content-hash result
cache, the cluster job store (:mod:`repro.cluster`), and the run-history
JSONL store — and all of them assume these two primitives:

* :func:`atomic_write_json` — temp file + ``os.replace``: readers never
  observe a partial document, concurrent writers of one path race
  benignly (last full document wins);
* :func:`atomic_append_line` — one ``O_APPEND`` ``os.write`` of a whole
  line: concurrent appenders interleave whole lines, never bytes, and a
  crash can at worst truncate the final line (which readers skip).

Both call :func:`repro.cluster.chaos.chaos_point` at their
crash-windows, so the chaos harness can SIGKILL a process *between* the
temp-file write and the rename and the test suite can prove the
invariants above actually hold under mid-write death.
"""

from __future__ import annotations

import json
import os
import tempfile

from repro.cluster.chaos import chaos_point

__all__ = ["atomic_append_line", "atomic_write_json"]


def atomic_write_json(path: str, obj) -> None:
    """Write ``obj`` as JSON so readers never see a partial file.

    The payload goes to a unique temp file in the destination directory
    and is renamed into place (``os.replace`` is atomic on POSIX and
    Windows).  Concurrent writers of the same path race benignly: the
    last full document wins.  A process killed mid-write leaves only a
    ``.tmp-*`` orphan, never a partial ``path``.
    """
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-", suffix=".json")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(obj, fh)
        chaos_point("atomic-write")  # crash window: tmp written, not yet live
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_append_line(path: str, line: str) -> None:
    """Append one line with a single ``O_APPEND`` write.

    POSIX guarantees the kernel serializes ``O_APPEND`` writes, so
    concurrent appenders (sweep workers on a shared filesystem, parallel
    history producers) produce whole interleaved lines — never spliced
    bytes.  The caller's ``line`` must not itself contain newlines.
    """
    if "\n" in line:
        raise ValueError("atomic_append_line takes a single line")
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    data = (line + "\n").encode("utf-8")
    fd = os.open(path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644)
    try:
        chaos_point("append-line")
        os.write(fd, data)
    finally:
        os.close(fd)
