"""Core simulation infrastructure: event engine, configuration, requests, stats."""

from repro.core.config import (
    CacheConfig,
    DRAMOrgConfig,
    DRAMTimingConfig,
    GPUConfig,
    MCConfig,
    SimConfig,
)
from repro.core.engine import Engine, SimulationError
from repro.core.request import LoadTransaction, MemoryRequest, warp_key
from repro.core.stats import ChannelStats, Histogram, LoadRecord, SimStats

__all__ = [
    "CacheConfig",
    "ChannelStats",
    "DRAMOrgConfig",
    "DRAMTimingConfig",
    "Engine",
    "GPUConfig",
    "Histogram",
    "LoadRecord",
    "LoadTransaction",
    "MCConfig",
    "MemoryRequest",
    "SimConfig",
    "SimStats",
    "SimulationError",
    "warp_key",
]
