"""Memory request and warp-group bookkeeping shared by GPU and controllers.

A *warp-group* (paper §IV-A) is the set of memory requests one warp's vector
load contributes to one memory controller.  Because a warp blocks on each
divergent load, a warp has at most one group in flight per controller at a
time; the group key is therefore ``(sm_id, warp_id)``.

The paper closes a group at a controller by tagging the warp's *last
request to that controller* (the SM knows the per-channel counts after
coalescing and address routing, and the interconnect preserves per-SM
order).  L2 lookups filter requests on the way, so the equivalent condition
is: all requests of the load destined for channel *c* have resolved (L2 hit
or controller admission).  :class:`LoadTransaction` tracks this per channel
and announces the group's size to the controller the moment its subset is
fully admitted — see ``note_dispatched`` / ``note_resolved``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["MemoryRequest", "LoadTransaction", "warp_key"]


class _ReqIdSource:
    """Monotonic request-id generator whose cursor can be saved/restored.

    Request ids break ties in scheduler sort keys, so a checkpointed run
    must resume issuing ids exactly where it left off to stay bit-identical
    with an uninterrupted run (see ``repro.guardrails.checkpoint``).
    """

    __slots__ = ("next_id",)

    def __init__(self) -> None:
        self.next_id = 0

    def __call__(self) -> int:
        value = self.next_id
        self.next_id += 1
        return value


_req_ids = _ReqIdSource()


def warp_key(sm_id: int, warp_id: int) -> tuple[int, int]:
    """Identity of a warp-group owner at a memory controller."""
    return (sm_id, warp_id)


@dataclass(slots=True, eq=False)  # identity semantics: hashable, unique
class MemoryRequest:
    """A single coalesced 128B memory access as seen below the coalescer.

    Address decomposition fields (channel/bank/row/col) are filled by the
    address mapper before the request enters the interconnect.
    """

    addr: int
    is_write: bool
    sm_id: int
    warp_id: int
    req_id: int = field(default_factory=_req_ids)

    # Address decomposition (set by repro.gpu.address_map.AddressMap.route)
    channel: int = -1
    bank: int = -1
    row: int = -1
    col: int = -1

    # Lifecycle timestamps, picoseconds (-1 = not reached)
    t_issue: int = -1  # left the coalescer
    t_mc_arrival: int = -1  # entered the controller read/write queue
    t_scheduled: int = -1  # picked by the transaction scheduler
    t_data: int = -1  # DRAM data burst complete
    t_return: int = -1  # arrived back at the SM

    transaction: Optional["LoadTransaction"] = None

    # Outcome annotations used by statistics
    serviced_by: str = ""  # "l1" | "l2" | "dram" | "wq" (write-queue hit)
    was_row_hit: bool = False

    @property
    def warp(self) -> tuple[int, int]:
        return (self.sm_id, self.warp_id)

    def mc_latency_ps(self) -> int:
        """Queue-arrival to data-ready latency at the controller."""
        if self.t_data < 0 or self.t_mc_arrival < 0:
            raise ValueError("request never completed at a controller")
        return self.t_data - self.t_mc_arrival

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "W" if self.is_write else "R"
        return (
            f"Req#{self.req_id}[{kind} sm{self.sm_id} w{self.warp_id} "
            f"ch{self.channel} b{self.bank} r{self.row}]"
        )


class LoadTransaction:
    """Tracks one warp vector-load from issue until the last reply returns.

    Responsibilities:

    * count outstanding replies so the SM knows when to unblock the warp;
    * record first/last reply times (overall and main-memory-only) for the
      latency-divergence statistics;
    * detect, per memory channel, when no further requests of this load
      can arrive at that controller, and announce the warp-group's size
      there (the paper's last-request tag).
    """

    __slots__ = (
        "sm_id",
        "warp_id",
        "n_requests",
        "outstanding",
        "t_issue",
        "t_first_return",
        "t_last_return",
        "t_first_dram",
        "t_last_dram",
        "dram_requests",
        "channels_touched",
        "banks_touched",
        "on_complete",
        "on_group_complete",
        "row_hits",
        "_dispatched",
        "_resolved",
        "_dram_bound",
        "_dispatch_done",
    )

    def __init__(
        self,
        sm_id: int,
        warp_id: int,
        n_requests: int,
        t_issue: int,
        on_complete: Optional[Callable[["LoadTransaction"], None]] = None,
        on_group_complete: Optional[Callable[[int, tuple[int, int], int], None]] = None,
    ) -> None:
        if n_requests <= 0:
            raise ValueError("a load must carry at least one request")
        self.sm_id = sm_id
        self.warp_id = warp_id
        self.n_requests = n_requests
        self.outstanding = n_requests  # replies still owed to the SM
        self.t_issue = t_issue
        self.t_first_return = -1
        self.t_last_return = -1
        self.t_first_dram = -1  # replies serviced by the memory system only
        self.t_last_dram = -1
        self.dram_requests = 0
        self.channels_touched: set[int] = set()
        self.banks_touched: set[tuple[int, int]] = set()
        self.on_complete = on_complete
        self.on_group_complete = on_group_complete
        self.row_hits = 0
        # Per-channel group accounting (the last-request tag).
        self._dispatched: dict[int, int] = {}
        self._resolved: dict[int, int] = {}
        self._dram_bound: dict[int, int] = {}
        self._dispatch_done = False

    # -- dispatch-side bookkeeping (at the SM) -------------------------------
    def note_dispatched(self, channel: int) -> None:
        """A request of this load left the SM toward ``channel``."""
        if self._dispatch_done:
            raise ValueError("dispatch after finish_dispatch()")
        self._dispatched[channel] = self._dispatched.get(channel, 0) + 1

    def finish_dispatch(self) -> None:
        """The SM issued the load's last request; per-channel counts final."""
        self._dispatch_done = True
        for ch in list(self._dispatched):
            self._check_channel(ch)

    # -- resolution-side bookkeeping (at L2 slices and controllers) -----------
    def note_resolved(self, channel: int, to_dram: bool) -> None:
        """A request finished its L2 lookup on ``channel``.

        ``to_dram`` is True when it was admitted to the controller (and so
        joined the warp-group there) — L2 hits, MSHR merges and write-queue
        forwards resolve with ``to_dram=False``.
        """
        self._resolved[channel] = self._resolved.get(channel, 0) + 1
        if to_dram:
            self._dram_bound[channel] = self._dram_bound.get(channel, 0) + 1
        self._check_channel(channel)

    def _check_channel(self, channel: int) -> None:
        if not self._dispatch_done or self.on_group_complete is None:
            return
        dispatched = self._dispatched.get(channel, 0)
        if self._resolved.get(channel, 0) != dispatched:
            return
        count = self._dram_bound.get(channel, 0)
        if count > 0:
            self.on_group_complete(channel, (self.sm_id, self.warp_id), count)

    def note_dram_bound(self, req: MemoryRequest) -> None:
        """Statistics: a request joined channel ``req.channel``'s group."""
        self.dram_requests += 1
        self.channels_touched.add(req.channel)
        self.banks_touched.add((req.channel, req.bank))

    # -- reply bookkeeping ---------------------------------------------------
    def note_return(self, now_ps: int, req: Optional[MemoryRequest] = None) -> None:
        """A reply reached the SM at ``now_ps``."""
        if self.outstanding <= 0:
            raise ValueError("reply for an already-complete load")
        if self.t_first_return < 0:
            self.t_first_return = now_ps
        self.t_last_return = now_ps
        if req is not None and req.t_data >= 0:
            # Serviced by the main memory system (DRAM or write-queue
            # forward) — the population Fig. 3's divergence gap measures.
            if self.t_first_dram < 0:
                self.t_first_dram = now_ps
            self.t_last_dram = now_ps
        if req is not None and req.was_row_hit:
            self.row_hits += 1
        self.outstanding -= 1
        if self.outstanding == 0 and self.on_complete is not None:
            self.on_complete(self)

    # -- statistics -----------------------------------------------------------
    @property
    def complete(self) -> bool:
        return self.outstanding == 0

    def divergence_ps(self) -> int:
        """Gap between first and last main-memory reply (0 if none)."""
        if not self.complete:
            raise ValueError("load not complete")
        if self.t_first_dram < 0:
            return 0
        return self.t_last_dram - self.t_first_dram

    def effective_latency_ps(self) -> int:
        """Issue-to-last-reply latency: the warp's memory stall time."""
        if not self.complete:
            raise ValueError("load not complete")
        return self.t_last_return - self.t_issue

    def first_latency_ps(self) -> int:
        if self.t_first_return < 0:
            raise ValueError("no reply recorded")
        return self.t_first_return - self.t_issue
