"""Configuration dataclasses for the GPU + GDDR5 memory-system model.

Defaults reproduce Table II of the paper (GTX-480-class GPU, six 64-bit
GDDR5 channels built from Hynix H5GQ1H24AFR-class parts).  All DRAM timing
parameters are given in nanoseconds or command-clock cycles (tCK) and are
converted once, at construction, to integer picoseconds aligned to command
clock edges.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from functools import cached_property

__all__ = [
    "DRAMTimingConfig",
    "DRAMOrgConfig",
    "MCConfig",
    "CacheConfig",
    "GPUConfig",
    "SimConfig",
    "TimingLegality",
    "PS_PER_NS",
]

PS_PER_NS = 1000


def _to_ps(ns: float) -> int:
    """Convert nanoseconds to integer picoseconds."""
    return int(round(ns * PS_PER_NS))


@dataclass(frozen=True)
class DRAMTimingConfig:
    """GDDR5 timing parameters (Table II of the paper).

    Durations are expressed in nanoseconds except the ``*_ck`` fields which
    are in command-clock cycles.  Derived ``*_ps`` attributes are integer
    picoseconds rounded up to command-clock edges so that command scheduling
    happens on clock boundaries like real hardware.
    """

    tck_ns: float = 0.667  # command clock period (1.5 GHz)
    trc_ns: float = 40.0  # ACT -> ACT, same bank
    trcd_ns: float = 12.0  # ACT -> column command
    trp_ns: float = 12.0  # PRE -> ACT
    tcas_ns: float = 12.0  # RD -> first data (CL)
    tras_ns: float = 28.0  # ACT -> PRE
    trrd_ns: float = 5.5  # ACT -> ACT, different banks
    twtr_ns: float = 5.0  # end of write data -> RD
    tfaw_ns: float = 23.0  # four-activate window
    trtp_ns: float = 2.0  # RD -> PRE
    twr_ns: float = 12.0  # end of write data -> PRE (write recovery)
    twl_ck: int = 4  # WR -> first data (write latency)
    tburst_ck: int = 2  # data burst duration per column access
    trtrs_ck: int = 1  # rank-to-rank / bus turnaround bubble
    tccdl_ck: int = 3  # column-to-column, same bank group
    tccds_ck: int = 2  # column-to-column, different bank group
    # Refresh (disabled by default: the paper's USIMM configuration omits
    # it, and it affects every scheduler identically; enable for the
    # fidelity ablation).
    refresh_enabled: bool = False
    trefi_ns: float = 3900.0  # average refresh interval
    trfc_ns: float = 160.0  # refresh cycle time (1Gb-class device)

    def __post_init__(self) -> None:
        if self.tck_ns <= 0:
            raise ValueError("tCK must be positive")

    # -- derived integer-picosecond values ---------------------------------
    @cached_property
    def tck_ps(self) -> int:
        return _to_ps(self.tck_ns)

    def _ck_align(self, ns: float) -> int:
        """ns -> ps, rounded *up* to a whole number of command clocks."""
        cycles = math.ceil(round(ns / self.tck_ns, 9))
        return cycles * self.tck_ps

    @cached_property
    def trc_ps(self) -> int:
        return self._ck_align(self.trc_ns)

    @cached_property
    def trcd_ps(self) -> int:
        return self._ck_align(self.trcd_ns)

    @cached_property
    def trp_ps(self) -> int:
        return self._ck_align(self.trp_ns)

    @cached_property
    def tcas_ps(self) -> int:
        return self._ck_align(self.tcas_ns)

    @cached_property
    def tras_ps(self) -> int:
        return self._ck_align(self.tras_ns)

    @cached_property
    def trrd_ps(self) -> int:
        return self._ck_align(self.trrd_ns)

    @cached_property
    def twtr_ps(self) -> int:
        return self._ck_align(self.twtr_ns)

    @cached_property
    def tfaw_ps(self) -> int:
        return self._ck_align(self.tfaw_ns)

    @cached_property
    def trtp_ps(self) -> int:
        return self._ck_align(self.trtp_ns)

    @cached_property
    def twr_ps(self) -> int:
        return self._ck_align(self.twr_ns)

    @cached_property
    def twl_ps(self) -> int:
        return self.twl_ck * self.tck_ps

    @cached_property
    def tburst_ps(self) -> int:
        return self.tburst_ck * self.tck_ps

    @cached_property
    def trtrs_ps(self) -> int:
        return self.trtrs_ck * self.tck_ps

    @cached_property
    def tccdl_ps(self) -> int:
        return self.tccdl_ck * self.tck_ps

    @cached_property
    def tccds_ps(self) -> int:
        return self.tccds_ck * self.tck_ps

    @cached_property
    def trefi_ps(self) -> int:
        return self._ck_align(self.trefi_ns)

    @cached_property
    def trfc_ps(self) -> int:
        return self._ck_align(self.trfc_ns)

    @cached_property
    def row_miss_penalty_ps(self) -> int:
        """tRP + tRCD + tCAS: array latency of a row-buffer miss (~36 ns)."""
        return self.trp_ps + self.trcd_ps + self.tcas_ps

    @cached_property
    def row_hit_latency_ps(self) -> int:
        """tCAS: array latency of a row-buffer hit (~12 ns)."""
        return self.tcas_ps

    @cached_property
    def legality(self) -> "TimingLegality":
        """Precomputed command-pair legality table (see TimingLegality)."""
        return TimingLegality(self)


class TimingLegality:
    """Table-driven minimum command spacing for one GDDR5 channel.

    ``pair_ps[prev][next]`` holds the channel-global minimum delta (in
    picoseconds) between issuing ``prev`` and ``next``, as a
    ``(different_bank_group, same_bank_group)`` tuple — so a command
    scheduler's pairwise legality check is one table index plus a
    ``max()`` against the per-bank state, instead of a chain of branchy
    parameter comparisons.  Built once per :class:`DRAMTimingConfig`
    (``timing.legality``), i.e. once per preset at config time.

    The command-bus floor (tCK, one command per command clock) is folded
    into every entry: ``max(tck, x)`` is bit-identical to tracking tCK
    separately because the channel's ``next_cmd_free`` (= last command of
    *any* kind + tCK) always dominates ``last_<prev>`` + tCK.  Folding it
    makes each entry the *total* pairwise floor, so the table is also
    queryable standalone (property tests compare it per preset against
    the branchy formulas it replaced).

    Data-bus interactions are command-to-*data* constraints and keep
    their own scalars: a column command leads its data by
    ``read_cmd_lead_ps`` (tCAS) or ``write_cmd_lead_ps`` (tWL), read
    data must clear a ``rd_data_to_wr_cmd_ps`` turnaround bubble before
    a WR command, and write data a ``wr_data_to_rd_cmd_ps`` (tWTR)
    window before a RD command.  tFAW is a 4-deep sliding window, not a
    pair constraint.
    """

    # Matrix indices.  These mirror repro.dram.commands.CommandKind's
    # values (asserted by tests) but are duplicated as plain ints so the
    # core config layer does not import the dram package.
    ACT = 0
    PRE = 1
    RD = 2
    WR = 3

    __slots__ = (
        "pair_ps",
        "faw_window_ps",
        "faw_depth",
        "read_cmd_lead_ps",
        "write_cmd_lead_ps",
        "rd_data_to_wr_cmd_ps",
        "wr_data_to_rd_cmd_ps",
    )

    def __init__(self, t: DRAMTimingConfig) -> None:
        tck = t.tck_ps
        free = (tck, tck)  # command bus only
        act_act = (max(tck, t.trrd_ps),) * 2  # tRRD is group-blind
        col_col = (max(tck, t.tccds_ps), max(tck, t.tccdl_ps))
        col = (TimingLegality.RD, TimingLegality.WR)
        self.pair_ps: tuple = tuple(
            tuple(
                act_act
                if prev == TimingLegality.ACT and nxt == TimingLegality.ACT
                else col_col
                if prev in col and nxt in col
                else free
                for nxt in range(4)
            )
            for prev in range(4)
        )
        self.faw_window_ps = t.tfaw_ps
        self.faw_depth = 4
        self.read_cmd_lead_ps = t.tcas_ps
        self.write_cmd_lead_ps = t.twl_ps
        self.rd_data_to_wr_cmd_ps = t.trtrs_ps - t.twl_ps
        self.wr_data_to_rd_cmd_ps = t.twtr_ps

    def min_delta_ps(self, prev: int, nxt: int, same_group: bool) -> int:
        """Minimum issue delta between two commands (one table lookup)."""
        return self.pair_ps[prev][nxt][1 if same_group else 0]


@dataclass(frozen=True)
class DRAMOrgConfig:
    """Channel organization: one rank of two x32 GDDR5 chips per channel."""

    num_channels: int = 6
    banks_per_channel: int = 16
    banks_per_group: int = 4
    row_size_bytes: int = 2048  # row-buffer footprint per channel
    rows_per_bank: int = 4096
    line_bytes: int = 128  # transfer / cache-line granularity
    interleave_bytes: int = 256  # consecutive-line block mapped together
    # One GDDR5 burst (BL8 on a 64-bit channel, WCK at 2x CK) moves 64 bytes
    # in tBURST = 2 tCK; a 128B line therefore needs two back-to-back bursts.
    bytes_per_burst: int = 64

    def __post_init__(self) -> None:
        if self.banks_per_channel % self.banks_per_group:
            raise ValueError("banks_per_channel must be a multiple of banks_per_group")
        if self.row_size_bytes % self.line_bytes:
            raise ValueError("row_size_bytes must be a multiple of line_bytes")

    @property
    def num_bank_groups(self) -> int:
        return self.banks_per_channel // self.banks_per_group

    @property
    def lines_per_row(self) -> int:
        return self.row_size_bytes // self.line_bytes

    @property
    def bursts_per_access(self) -> int:
        """Data-bus bursts one line-sized access occupies."""
        return max(1, self.line_bytes // self.bytes_per_burst)


@dataclass(frozen=True)
class MCConfig:
    """Per-controller queueing and scheduling parameters."""

    read_queue_entries: int = 64
    write_queue_entries: int = 64
    write_high_watermark: int = 32
    write_low_watermark: int = 16
    row_sorter_entries: int = 128
    warp_sorter_entries: int = 128
    command_queue_depth: int = 4  # per-bank
    age_threshold_ns: float = 1000.0  # GMC starvation guard
    max_row_hit_streak: int = 16  # GMC streak limit
    wgw_drain_guard_entries: int = 8  # WG-W: distance from high watermark
    sbwas_alpha: float = 0.5  # SBWAS bias parameter


@dataclass(frozen=True)
class CacheConfig:
    """A set-associative cache level."""

    size_bytes: int
    line_bytes: int = 128
    ways: int = 8
    hit_latency_ns: float = 5.0
    mshr_entries: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_bytes * self.ways):
            raise ValueError("cache size must be divisible by line*ways")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)


@dataclass(frozen=True)
class GPUConfig:
    """SM-side parameters (Table II)."""

    num_sms: int = 30
    warp_size: int = 32
    max_warps_per_sm: int = 32  # 1024 threads / 32 lanes
    core_clock_ghz: float = 1.4
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=32 * 1024, ways=8, hit_latency_ns=5.0)
    )
    l2_slice: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=128 * 1024, ways=16, hit_latency_ns=20.0, mshr_entries=128
        )
    )
    xbar_latency_ns: float = 15.0
    xbar_bytes_per_ns: float = 64.0  # per-partition injection bandwidth
    # Optional per-SM TLB (see repro.gpu.tlb; enabled via SimConfig.use_tlb).
    tlb_entries: int = 32
    page_bytes: int = 64 * 1024

    @property
    def core_cycle_ps(self) -> int:
        return int(round(1000.0 / self.core_clock_ghz))


@dataclass(frozen=True)
class SimConfig:
    """Top-level simulation configuration."""

    gpu: GPUConfig = field(default_factory=GPUConfig)
    dram_timing: DRAMTimingConfig = field(default_factory=DRAMTimingConfig)
    dram_org: DRAMOrgConfig = field(default_factory=DRAMOrgConfig)
    mc: MCConfig = field(default_factory=MCConfig)
    scheduler: str = "gmc"
    use_l1: bool = True
    use_l2: bool = True
    use_tlb: bool = False  # §V extension: per-SM TLB with page walks
    seed: int = 1

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Reject physically inconsistent parameter combinations.

        The component dataclasses check their own local shape (power-of-two
        bank counts, positive tCK); the cross-parameter GDDR5 identities
        only make sense on the composed config, so they live here.  Runs on
        every construction (``__post_init__``), which covers ``replace()``
        and therefore every config the fuzzer's generator produces.
        """
        t = self.dram_timing
        if t.tras_ns < t.trcd_ns + t.trtp_ns:
            raise ValueError(
                f"tRAS ({t.tras_ns}ns) < tRCD + tRTP "
                f"({t.trcd_ns}+{t.trtp_ns}ns): a row would close before its "
                "first column access could complete; raise tRAS"
            )
        if t.trc_ns < t.tras_ns + t.trp_ns:
            raise ValueError(
                f"tRC ({t.trc_ns}ns) < tRAS + tRP ({t.tras_ns}+{t.trp_ns}ns): "
                "the ACT-to-ACT window cannot fit the row cycle; raise tRC"
            )
        if t.tfaw_ns < 4 * t.trrd_ns:
            raise ValueError(
                f"tFAW ({t.tfaw_ns}ns) < 4*tRRD ({4 * t.trrd_ns}ns): the "
                "four-activate window would never bind; raise tFAW or lower tRRD"
            )
        mc = self.mc
        for name, value in (
            ("read_queue_entries", mc.read_queue_entries),
            ("write_queue_entries", mc.write_queue_entries),
            ("row_sorter_entries", mc.row_sorter_entries),
            ("warp_sorter_entries", mc.warp_sorter_entries),
            ("command_queue_depth", mc.command_queue_depth),
        ):
            if value <= 0:
                raise ValueError(
                    f"mc.{name} must be a positive queue size, got {value}"
                )
        if not 0 <= mc.write_low_watermark < mc.write_high_watermark:
            raise ValueError(
                f"write watermarks must satisfy 0 <= low < high, got "
                f"low={mc.write_low_watermark} high={mc.write_high_watermark}"
            )
        if self.gpu.num_sms <= 0:
            raise ValueError(f"num_sms must be positive, got {self.gpu.num_sms}")
        if self.dram_org.num_channels <= 0:
            raise ValueError(
                f"num_channels must be positive, got {self.dram_org.num_channels}"
            )

    def with_scheduler(self, name: str) -> "SimConfig":
        """Return a copy configured for a different memory scheduler."""
        return replace(self, scheduler=name)

    def small(self) -> "SimConfig":
        """A reduced configuration for unit tests (fewer SMs/channels)."""
        return replace(
            self,
            gpu=replace(self.gpu, num_sms=4),
            dram_org=replace(self.dram_org, num_channels=2),
        )
