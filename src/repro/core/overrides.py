"""Dotted-path overrides over the frozen :class:`SimConfig` tree.

One override addresses one leaf field by its dotted path — any depth, so
``use_l1``, ``dram_timing.tras_ns`` and ``gpu.l1.size_bytes`` are all
valid.  All overrides are applied in a *single* bottom-up rebuild (one
:func:`dataclasses.replace` per touched node), so sibling edits validate
together: lowering both write watermarks at once cannot trip the
``low < high`` check on a half-applied intermediate.  The rebuild re-runs
every ``__post_init__`` and therefore :meth:`SimConfig.validate` — an
override can never produce a config the constructor would have rejected.

Shared by the CLI's ``--set section.field=value`` flags and the scenario
spec's ``overrides:`` mapping (:mod:`repro.scenarios`), so both report
the same field-tree errors.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

from repro.core.config import SimConfig

__all__ = [
    "OverrideError",
    "apply_override",
    "apply_overrides",
    "field_paths",
    "parse_assignment",
    "parse_value",
]


class OverrideError(ValueError):
    """An override names an unknown/non-leaf field (bad *path*, as opposed
    to a bad *value*, which surfaces as the config tree's own errors)."""


def parse_value(raw: str) -> object:
    """``"true"``/``"false"`` -> bool, then int, then float, else str."""
    if raw.lower() in ("true", "false"):
        return raw.lower() == "true"
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        return raw


def parse_assignment(item: str) -> tuple[str, object]:
    """Split one ``field=value`` argument into ``(dotted_key, value)``."""
    key, sep, raw = item.partition("=")
    if not sep or not key:
        raise OverrideError(
            f"expected an assignment like section.field=value, got {item!r}"
        )
    return key, parse_value(raw)


def field_paths(config: SimConfig | None = None) -> list[str]:
    """Every settable dotted leaf path of the config tree, sorted."""
    cfg = config if config is not None else SimConfig()
    out: list[str] = []

    def walk(obj, prefix: str) -> None:
        for f in dataclasses.fields(obj):
            value = getattr(obj, f.name)
            if dataclasses.is_dataclass(value):
                walk(value, f"{prefix}{f.name}.")
            else:
                out.append(f"{prefix}{f.name}")

    walk(cfg, "")
    return sorted(out)


def _options(obj, prefix: str) -> str:
    """One-line menu of the fields available at this node."""
    names = []
    for f in dataclasses.fields(obj):
        sub = dataclasses.is_dataclass(getattr(obj, f.name))
        names.append(f.name + (".*" if sub else ""))
    where = f"under {prefix.rstrip('.')!r}" if prefix else "at the top level"
    return f"valid fields {where}: {', '.join(sorted(names))}"


def apply_overrides(
    cfg: SimConfig, overrides: Mapping[str, object]
) -> SimConfig:
    """Return a copy of ``cfg`` with every ``{dotted_path: value}`` applied.

    Raises :class:`OverrideError` for a bad path; value errors (a string
    where a float belongs, a physically inconsistent timing) propagate
    from the dataclass constructors unchanged.
    """
    # Fold the flat dotted keys into a tree of per-node assignments.
    tree: dict = {}
    for dotted in sorted(overrides):
        parts = dotted.split(".")
        if not all(parts):
            raise OverrideError(f"malformed config field path {dotted!r}")
        node = tree
        for part in parts[:-1]:
            node = node.setdefault(part, {})
            if not isinstance(node, dict):
                raise OverrideError(
                    f"conflicting overrides: {dotted!r} descends into a "
                    "field another override sets directly"
                )
        node[parts[-1]] = (dotted, overrides[dotted])

    def rebuild(obj, subtree: dict, prefix: str):
        names = {f.name for f in dataclasses.fields(obj)}
        kwargs = {}
        for name, entry in subtree.items():
            if name not in names:
                dotted = _first_path(entry, f"{prefix}{name}")
                if hasattr(obj, name):
                    raise OverrideError(
                        f"config field {dotted!r} is derived/read-only; set "
                        f"the underlying *_ns/*_ck fields instead "
                        f"({_options(obj, prefix)})"
                    )
                raise OverrideError(
                    f"unknown config field {dotted!r} ({_options(obj, prefix)})"
                )
            current = getattr(obj, name)
            if isinstance(entry, dict):
                if not dataclasses.is_dataclass(current):
                    dotted = _first_path(entry, f"{prefix}{name}")
                    raise OverrideError(
                        f"config field {prefix + name!r} is a value, not a "
                        f"section: {dotted!r} goes one level too deep"
                    )
                kwargs[name] = rebuild(current, entry, f"{prefix}{name}.")
            else:
                dotted, value = entry
                if dataclasses.is_dataclass(current):
                    raise OverrideError(
                        f"{dotted!r} names a whole section; set one of its "
                        f"leaves ({_options(current, prefix + name + '.')})"
                    )
                kwargs[name] = value
        return dataclasses.replace(obj, **kwargs)

    return rebuild(cfg, tree, "")


def _first_path(entry, fallback: str) -> str:
    """Recover a representative user-supplied dotted path from a subtree."""
    while isinstance(entry, dict):
        if not entry:
            return fallback
        entry = next(iter(entry.values()))
    return entry[0]


def apply_override(cfg: SimConfig, dotted: str, value: object) -> SimConfig:
    """Single-override convenience wrapper over :func:`apply_overrides`."""
    return apply_overrides(cfg, {dotted: value})
