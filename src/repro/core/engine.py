"""Discrete-event simulation engine.

The whole simulator shares a single global clock measured in integer
picoseconds.  Components never poll: they schedule callbacks at the next
instant their state can change, which keeps Python overhead proportional to
the number of *events* (DRAM commands, request hops) rather than cycles.

Ties in time are broken by insertion order, which makes runs fully
deterministic for a given seed.

Callbacks are stored as ``(fn, args)`` pairs rather than closures so the
pending-event queue is *serializable*: when every scheduled ``fn`` is a
bound method of a model component (the convention throughout the
simulator), the whole engine — queue included — pickles, which is what
the checkpoint/restore machinery in :mod:`repro.guardrails` relies on.

Two-tier event store (the hot-path optimization of docs/performance.md):

* **near ring** — events within :data:`NEAR_HORIZON_PS` of ``now`` land in
  per-instant buckets (a dict keyed by absolute time plus a tiny heap of
  the active instants).  Same-instant and short-delay events — the
  dominant case: command-to-command hops within one tCCD/tBURST window,
  and the memory controllers' ``schedule_now`` pump kicks — cost one dict
  append instead of an O(log n) ``heapq`` percolation through the whole
  pending set.
* **far heap** — everything beyond the horizon uses the classic
  ``(time, seq, fn, args)`` heap.

Both tiers order events by ``(time, seq)``; :meth:`Engine.step` merges
them at pop time, so the observable event order is *identical* to the
single-heap implementation (pinned by ``tests/test_bit_identity.py``).
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Callable, Optional

__all__ = ["Engine", "SimulationError", "NEAR_HORIZON_PS"]

#: Near-ring window.  Sized to cover command-clock hops (tCK ~ 667 ps),
#: column-to-column spacing (tCCDL ~ 2 ns) and burst chaining (tBURST
#: ~ 1.3 ns) for any plausible GDDR5 timing config; data returns (tCAS
#: ~ 12 ns) and crossbar hops (~15 ns) intentionally stay on the heap so
#: the active-instant set in the ring remains tiny.
NEAR_HORIZON_PS = 4096


class SimulationError(RuntimeError):
    """Raised for inconsistent engine usage (e.g. scheduling in the past)."""


class Engine:
    """A minimal but fast event-driven simulation kernel.

    Attributes
    ----------
    now:
        Current simulation time in picoseconds.
    profiler:
        Optional :class:`repro.telemetry.profiler.EngineProfiler` (any
        object with a ``note(fn, seconds)`` method).  When set, every
        callback is timed and attributed to its component; when ``None``
        (the default) the only cost is one identity check per event.
        Both dispatch tiers (near ring and far heap) report through the
        same hook, so attribution is dispatch-path independent.
    """

    __slots__ = (
        "now",
        "_queue",
        "_near",
        "_near_times",
        "_seq",
        "_running",
        "events_processed",
        "profiler",
    )

    def __init__(self) -> None:
        self.now: int = 0
        # Far tier: heap of (time, seq, fn, args).
        self._queue: list[tuple[int, int, Callable[..., None], tuple]] = []
        # Near tier: absolute time -> [(seq, fn, args), ...] in seq order,
        # plus a heap of the bucket times (each pushed exactly once).
        self._near: dict[int, list[tuple[int, Callable[..., None], tuple]]] = {}
        self._near_times: list[int] = []
        self._seq: int = 0
        self._running = False
        self.events_processed: int = 0
        self.profiler = None

    def schedule(self, delay_ps: int, fn: Callable[..., None], *args) -> None:
        """Run ``fn(*args)`` ``delay_ps`` picoseconds from now (delay >= 0)."""
        if delay_ps < 0:
            raise SimulationError(f"negative delay {delay_ps}")
        self.schedule_at(self.now + delay_ps, fn, *args)

    def schedule_at(self, time_ps: int, fn: Callable[..., None], *args) -> None:
        """Run ``fn(*args)`` at absolute ``time_ps`` (must not be in the past)."""
        if time_ps < self.now:
            raise SimulationError(
                f"scheduling at {time_ps} ps but now is {self.now} ps"
            )
        seq = self._seq
        self._seq = seq + 1
        if time_ps - self.now <= NEAR_HORIZON_PS:
            bucket = self._near.get(time_ps)
            if bucket is None:
                self._near[time_ps] = [(seq, fn, args)]
                heapq.heappush(self._near_times, time_ps)
            else:
                bucket.append((seq, fn, args))
        else:
            heapq.heappush(self._queue, (time_ps, seq, fn, args))

    def schedule_now(self, fn: Callable[..., None], *args) -> None:
        """Fast path for ``schedule_at(self.now, ...)`` (pump kicks)."""
        now = self.now
        seq = self._seq
        self._seq = seq + 1
        bucket = self._near.get(now)
        if bucket is None:
            self._near[now] = [(seq, fn, args)]
            heapq.heappush(self._near_times, now)
        else:
            bucket.append((seq, fn, args))

    def peek_time(self) -> Optional[int]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        nt = self._near_times
        q = self._queue
        if nt:
            return min(nt[0], q[0][0]) if q else nt[0]
        return q[0][0] if q else None

    def _pop_near(self, time_ps: int):
        bucket = self._near[time_ps]
        entry = bucket.pop(0)
        if not bucket:
            del self._near[time_ps]
            heapq.heappop(self._near_times)
        return entry

    def step(self) -> bool:
        """Process one event.  Returns False when the queue is empty."""
        nt = self._near_times
        q = self._queue
        if nt:
            t_near = nt[0]
            if q:
                t_far = q[0][0]
                # Same instant: the globally smaller seq wins, preserving
                # the single-heap insertion-order tie-break exactly.
                if t_far < t_near or (
                    t_far == t_near and q[0][1] < self._near[t_near][0][0]
                ):
                    time_ps, _, fn, args = heapq.heappop(q)
                else:
                    time_ps = t_near
                    _, fn, args = self._pop_near(t_near)
            else:
                time_ps = t_near
                _, fn, args = self._pop_near(t_near)
        elif q:
            time_ps, _, fn, args = heapq.heappop(q)
        else:
            return False
        self.now = time_ps
        self.events_processed += 1
        if self.profiler is None:
            fn(*args)
        else:
            t0 = perf_counter()
            fn(*args)
            self.profiler.note(fn, perf_counter() - t0)
        return True

    def run(
        self,
        until_ps: Optional[int] = None,
        max_events: Optional[int] = None,
        stop: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Drain the event queue.

        Parameters
        ----------
        until_ps:
            Stop once the next event would be later than this time.  The
            clock then parks *exactly* at ``until_ps`` whether the queue
            still holds later events or drained at (or before) the
            boundary — the one terminal-``now`` contract the guardrails'
            segmented drive loop depends on.  The clock never moves
            backward, and a call on an engine with nothing pending at all
            leaves it untouched.
        max_events:
            Safety valve against runaway simulations.
        stop:
            Optional predicate checked between events; ``True`` halts the
            run at the last processed event (no jump to ``until_ps``).
        """
        processed = 0
        had_work = not self.empty()
        reached_bound = False
        self._running = True
        # The dispatch loop below fuses peek_time() + step() — one tier
        # inspection per event instead of two, no per-event method calls.
        # Selection order and every tie-break are identical to step()'s
        # (the bit-identity suite pins this); step() remains the
        # single-event entry point for external drive loops.
        near = self._near
        near_times = self._near_times
        far = self._queue
        heappop = heapq.heappop
        try:
            while True:
                if near_times:
                    t_next = near_times[0]
                    from_far = False
                    if far:
                        t_far = far[0][0]
                        # Same instant: the globally smaller seq wins,
                        # preserving the single-heap insertion-order
                        # tie-break exactly.
                        if t_far < t_next or (
                            t_far == t_next and far[0][1] < near[t_next][0][0]
                        ):
                            t_next = t_far
                            from_far = True
                elif far:
                    t_next = far[0][0]
                    from_far = True
                else:
                    reached_bound = had_work
                    break
                if until_ps is not None and t_next > until_ps:
                    reached_bound = True
                    break
                if stop is not None and stop():
                    break
                if from_far:
                    _, _, fn, args = heappop(far)
                else:
                    bucket = near[t_next]
                    _, fn, args = bucket.pop(0)
                    if not bucket:
                        del near[t_next]
                        heappop(near_times)
                self.now = t_next
                self.events_processed += 1
                if self.profiler is None:
                    fn(*args)
                else:
                    t0 = perf_counter()
                    fn(*args)
                    self.profiler.note(fn, perf_counter() - t0)
                processed += 1
                if max_events is not None and processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} (possible livelock)"
                    )
        finally:
            self._running = False
        if reached_bound and until_ps is not None and until_ps > self.now:
            self.now = until_ps

    def empty(self) -> bool:
        return not self._queue and not self._near_times

    # -- pending-event surgery (fault injection / introspection) ----------
    def iter_pending(self):
        """Yield every pending event as ``(time_ps, seq, fn, args)``.

        Unordered; spans both tiers.  For tooling (the fault injector's
        response targeting) — not a hot path.
        """
        yield from self._queue
        for t, bucket in self._near.items():
            for seq, fn, args in bucket:
                yield (t, seq, fn, args)

    def remove_event(self, time_ps: int, seq: int) -> bool:
        """Remove the pending event with this ``(time, seq)``; False if absent."""
        bucket = self._near.get(time_ps)
        if bucket is not None:
            for i, (s, _fn, _args) in enumerate(bucket):
                if s == seq:
                    bucket.pop(i)
                    if not bucket:
                        del self._near[time_ps]
                        self._near_times.remove(time_ps)
                        heapq.heapify(self._near_times)
                    return True
        for entry in self._queue:
            if entry[0] == time_ps and entry[1] == seq:
                self._queue.remove(entry)
                heapq.heapify(self._queue)
                return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pending = len(self._queue) + sum(len(b) for b in self._near.values())
        return f"Engine(now={self.now} ps, pending={pending})"
