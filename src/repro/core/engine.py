"""Discrete-event simulation engine.

The whole simulator shares a single global clock measured in integer
picoseconds.  Components never poll: they schedule callbacks at the next
instant their state can change, which keeps Python overhead proportional to
the number of *events* (DRAM commands, request hops) rather than cycles.

Ties in time are broken by insertion order, which makes runs fully
deterministic for a given seed.

Callbacks are stored as ``(fn, args)`` pairs rather than closures so the
pending-event queue is *serializable*: when every scheduled ``fn`` is a
bound method of a model component (the convention throughout the
simulator), the whole engine — queue included — pickles, which is what
the checkpoint/restore machinery in :mod:`repro.guardrails` relies on.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Callable, Optional

__all__ = ["Engine", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for inconsistent engine usage (e.g. scheduling in the past)."""


class Engine:
    """A minimal but fast event-driven simulation kernel.

    Attributes
    ----------
    now:
        Current simulation time in picoseconds.
    profiler:
        Optional :class:`repro.telemetry.profiler.EngineProfiler` (any
        object with a ``note(fn, seconds)`` method).  When set, every
        callback is timed and attributed to its component; when ``None``
        (the default) the only cost is one identity check per event.
    """

    __slots__ = ("now", "_queue", "_seq", "_running", "events_processed", "profiler")

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: list[tuple[int, int, Callable[..., None], tuple]] = []
        self._seq: int = 0
        self._running = False
        self.events_processed: int = 0
        self.profiler = None

    def schedule(self, delay_ps: int, fn: Callable[..., None], *args) -> None:
        """Run ``fn(*args)`` ``delay_ps`` picoseconds from now (delay >= 0)."""
        if delay_ps < 0:
            raise SimulationError(f"negative delay {delay_ps}")
        self.schedule_at(self.now + delay_ps, fn, *args)

    def schedule_at(self, time_ps: int, fn: Callable[..., None], *args) -> None:
        """Run ``fn(*args)`` at absolute ``time_ps`` (must not be in the past)."""
        if time_ps < self.now:
            raise SimulationError(
                f"scheduling at {time_ps} ps but now is {self.now} ps"
            )
        heapq.heappush(self._queue, (time_ps, self._seq, fn, args))
        self._seq += 1

    def peek_time(self) -> Optional[int]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        return self._queue[0][0] if self._queue else None

    def step(self) -> bool:
        """Process one event.  Returns False when the queue is empty."""
        if not self._queue:
            return False
        time_ps, _, fn, args = heapq.heappop(self._queue)
        self.now = time_ps
        self.events_processed += 1
        if self.profiler is None:
            fn(*args)
        else:
            t0 = perf_counter()
            fn(*args)
            self.profiler.note(fn, perf_counter() - t0)
        return True

    def run(
        self,
        until_ps: Optional[int] = None,
        max_events: Optional[int] = None,
        stop: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Drain the event queue.

        Parameters
        ----------
        until_ps:
            Stop once the next event would be later than this time.
        max_events:
            Safety valve against runaway simulations.
        stop:
            Optional predicate checked between events; ``True`` halts the run.
        """
        processed = 0
        self._running = True
        try:
            while self._queue:
                if until_ps is not None and self._queue[0][0] > until_ps:
                    self.now = until_ps
                    break
                if stop is not None and stop():
                    break
                self.step()
                processed += 1
                if max_events is not None and processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} (possible livelock)"
                    )
        finally:
            self._running = False

    def empty(self) -> bool:
        return not self._queue

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Engine(now={self.now} ps, pending={len(self._queue)})"
