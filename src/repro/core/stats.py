"""Statistics collection for simulations.

Three layers:

* :class:`Histogram` — cheap streaming summary (count/sum/min/max + sample
  reservoir for percentiles);
* :class:`ChannelStats` — per-memory-controller counters (row hits, drains,
  bus occupancy);
* :class:`SimStats` — whole-run aggregation, including the per-load records
  that Figs. 3, 9 and 10 of the paper are computed from.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = ["Histogram", "ChannelStats", "LoadRecord", "SimStats"]


class Histogram:
    """Streaming mean/min/max with a bounded reservoir for percentiles.

    The sorted reservoir is cached between :meth:`percentile` calls and
    invalidated by :meth:`add` / :meth:`merge`, so reading several
    percentiles off a settled histogram sorts once.
    """

    __slots__ = (
        "count", "total", "min", "max", "_reservoir", "_capacity", "_rng",
        "_sorted",
    )

    def __init__(self, capacity: int = 4096, seed: int = 12345) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._reservoir: list[float] = []
        self._capacity = capacity
        self._rng = random.Random(seed)
        self._sorted: Optional[list[float]] = None

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        self._sorted = None
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._reservoir) < self._capacity:
            self._reservoir.append(value)
        else:
            j = self._rng.randrange(self.count)
            if j < self._capacity:
                self._reservoir[j] = value

    def extend(self, values: Iterable[float]) -> None:
        for v in values:
            self.add(v)

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this histogram; returns ``self``.

        Count/sum/min/max combine exactly.  The merged reservoir keeps
        every sample when the union fits ``capacity``; otherwise each
        source contributes slots proportional to the *population* it
        represents (``count``, not reservoir length), chosen with this
        histogram's seeded generator — so merging the same sequence of
        interval histograms into a run total is fully reproducible.
        """
        if other.count == 0:
            return self
        self.total += other.total
        if self.min is None or (other.min is not None and other.min < self.min):
            self.min = other.min
        if self.max is None or (other.max is not None and other.max > self.max):
            self.max = other.max
        mine, theirs = self._reservoir, other._reservoir
        cap = self._capacity
        if len(mine) + len(theirs) <= cap:
            mine.extend(theirs)
        else:
            n_total = self.count + other.count
            k_self = round(cap * self.count / n_total)
            # Clamp so both shares are satisfiable from the actual pools.
            k_self = max(cap - len(theirs), min(len(mine), k_self))
            k_other = cap - k_self
            self._reservoir = (
                self._rng.sample(mine, k_self) + self._rng.sample(theirs, k_other)
            )
        self.count += other.count
        self._sorted = None
        return self

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate percentile from the reservoir (q in [0, 100])."""
        if not self._reservoir:
            return 0.0
        if self._sorted is None:
            self._sorted = sorted(self._reservoir)
        data = self._sorted
        idx = min(len(data) - 1, max(0, int(round(q / 100.0 * (len(data) - 1)))))
        return data[idx]

    def __len__(self) -> int:
        return self.count


@dataclass
class ChannelStats:
    """Counters maintained by one memory controller / DRAM channel."""

    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    activates: int = 0
    precharges: int = 0
    write_drains: int = 0
    drain_writes: int = 0
    refreshes: int = 0
    data_bus_busy_ps: int = 0
    read_queue_full_events: int = 0
    coordination_msgs_sent: int = 0
    coordination_msgs_applied: int = 0
    merb_deferrals: int = 0
    orphan_rescues: int = 0
    wgw_promotions: int = 0
    read_latency: Histogram = field(default_factory=Histogram)
    queue_depth: Histogram = field(default_factory=Histogram)
    # Latency breakdown (ns): time waiting for the transaction scheduler
    # vs. time from command-queue insertion to data.
    sorter_wait: Histogram = field(default_factory=Histogram)
    service_time: Histogram = field(default_factory=Histogram)
    # Per-bank column-access counts (bank-imbalance diagnostics).
    bank_columns: list[int] = field(default_factory=list)

    def note_bank_column(self, bank: int) -> None:
        if len(self.bank_columns) <= bank:
            self.bank_columns.extend([0] * (bank + 1 - len(self.bank_columns)))
        self.bank_columns[bank] += 1

    def bank_imbalance(self) -> float:
        """Max over mean per-bank column accesses, **busy banks only**.

        Banks that saw zero column accesses are excluded from the mean:
        the metric measures how unevenly traffic spreads across the banks
        a workload actually uses, not how many banks it touches.  A
        workload hammering 4 of 16 banks *equally* therefore reports 1.0
        (perfectly balanced among its banks), and 1.0 is also returned
        when no bank saw any traffic.
        """
        busy = [c for c in self.bank_columns if c > 0]
        if not busy:
            return 1.0
        return max(busy) / (sum(busy) / len(busy))

    @property
    def column_accesses(self) -> int:
        return self.reads + self.writes

    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    def bandwidth_utilization(self, elapsed_ps: int) -> float:
        """Fraction of wall-clock time the data bus moved data."""
        return self.data_bus_busy_ps / elapsed_ps if elapsed_ps > 0 else 0.0


@dataclass(slots=True)
class LoadRecord:
    """Per-vector-load record used by the divergence/latency figures."""

    sm_id: int
    warp_id: int
    n_requests: int
    dram_requests: int
    channels_touched: int
    banks_touched: int
    t_issue: int
    t_first_return: int
    t_last_return: int
    t_first_dram: int = -1
    t_last_dram: int = -1

    @property
    def divergence_ps(self) -> int:
        """Gap between first and last *main-memory* reply (Fig. 3/10)."""
        if self.t_first_dram < 0:
            return 0
        return self.t_last_dram - self.t_first_dram

    @property
    def effective_latency_ps(self) -> int:
        """Issue to last reply: the warp's memory stall time (Fig. 9)."""
        return self.t_last_return - self.t_issue

    @property
    def first_latency_ps(self) -> int:
        return self.t_first_return - self.t_issue

    @property
    def last_over_first(self) -> float:
        """Last/first main-memory request latency ratio (Fig. 3)."""
        if self.t_first_dram < 0:
            return 1.0
        first = self.t_first_dram - self.t_issue
        last = self.t_last_dram - self.t_issue
        return last / first if first > 0 else 1.0


class SimStats:
    """Whole-run aggregation."""

    def __init__(self, num_channels: int) -> None:
        self.channels = [ChannelStats() for _ in range(num_channels)]
        self.load_records: list[LoadRecord] = []
        self.warp_instructions = 0
        self.loads_issued = 0
        self.requests_issued = 0
        self.l1_hits = 0
        self.l2_hits = 0
        self.elapsed_ps = 0
        # Observability side-channels (not part of summary(): its key set
        # and values are pinned by the telemetry non-perturbation tests).
        self.intervals: list[dict] = []  # IntervalSampler time-series
        self.interval_period_ps = 0
        self.events_processed = 0  # engine events of the producing run
        self.wall_seconds = 0.0  # host wall-clock of the producing run

    # -- recording ----------------------------------------------------------
    def record_load(self, rec: LoadRecord) -> None:
        self.load_records.append(rec)

    # -- summary metrics ------------------------------------------------------
    def ipc(self) -> float:
        """Warp instructions retired per nanosecond (relative-IPC proxy).

        The paper reports IPC normalized to the GMC baseline; any fixed
        time unit cancels in the normalization, so instructions/ns is used.
        """
        return self.warp_instructions / (self.elapsed_ps / 1000.0) if self.elapsed_ps else 0.0

    def dram_loads(self) -> list[LoadRecord]:
        """Loads that touched DRAM at least once (the divergence population)."""
        return [r for r in self.load_records if r.dram_requests > 0]

    def mean_effective_latency_ns(self) -> float:
        recs = self.dram_loads()
        if not recs:
            return 0.0
        return sum(r.effective_latency_ps for r in recs) / len(recs) / 1000.0

    def mean_divergence_ns(self) -> float:
        recs = [r for r in self.dram_loads() if r.dram_requests > 1]
        if not recs:
            return 0.0
        return sum(r.divergence_ps for r in recs) / len(recs) / 1000.0

    def mean_last_over_first(self) -> float:
        """Mean last-reply latency over mean first-reply latency (Fig. 3).

        A ratio of means, as the paper phrases it ("the last request's
        latency is 1.6x the latency of the first request"); a mean of
        per-load ratios would be dominated by loads whose first reply was
        nearly instant.
        """
        recs = [
            r
            for r in self.dram_loads()
            if r.dram_requests > 1 and r.t_first_dram >= 0
        ]
        if not recs:
            return 1.0
        first = sum(r.t_first_dram - r.t_issue for r in recs)
        last = sum(r.t_last_dram - r.t_issue for r in recs)
        return last / first if first > 0 else 1.0

    def mean_channels_per_divergent_warp(self) -> float:
        recs = [r for r in self.dram_loads() if r.dram_requests > 1]
        if not recs:
            return 0.0
        return sum(r.channels_touched for r in recs) / len(recs)

    def mean_requests_per_load(self) -> float:
        if not self.load_records:
            return 0.0
        return sum(r.n_requests for r in self.load_records) / len(self.load_records)

    def frac_divergent_loads(self) -> float:
        """Fraction of loads producing more than one coalesced request (Fig. 2)."""
        if not self.load_records:
            return 0.0
        return sum(1 for r in self.load_records if r.n_requests > 1) / len(self.load_records)

    def total_row_hit_rate(self) -> float:
        hits = sum(c.row_hits for c in self.channels)
        total = hits + sum(c.row_misses for c in self.channels)
        return hits / total if total else 0.0

    def total_bandwidth_utilization(self) -> float:
        if not self.elapsed_ps:
            return 0.0
        busy = sum(c.data_bus_busy_ps for c in self.channels)
        return busy / (self.elapsed_ps * len(self.channels))

    def write_intensity(self) -> float:
        """Fraction of DRAM traffic that is writes (Fig. 12)."""
        reads = sum(c.reads for c in self.channels)
        writes = sum(c.writes for c in self.channels)
        total = reads + writes
        return writes / total if total else 0.0

    def summary(self) -> dict[str, float]:
        """Flat dictionary of the headline metrics (stable keys)."""
        return {
            "ipc": self.ipc(),
            "elapsed_ns": self.elapsed_ps / 1000.0,
            "effective_latency_ns": self.mean_effective_latency_ns(),
            "divergence_ns": self.mean_divergence_ns(),
            "last_over_first": self.mean_last_over_first(),
            "channels_per_warp": self.mean_channels_per_divergent_warp(),
            "requests_per_load": self.mean_requests_per_load(),
            "frac_divergent_loads": self.frac_divergent_loads(),
            "row_hit_rate": self.total_row_hit_rate(),
            "bandwidth_utilization": self.total_bandwidth_utilization(),
            "write_intensity": self.write_intensity(),
            "l1_hits": float(self.l1_hits),
            "l2_hits": float(self.l2_hits),
            "requests_issued": float(self.requests_issued),
        }

    # -- metrics export -------------------------------------------------------
    def metrics_dict(self) -> dict:
        """Machine-readable bundle: summary + interval time-series.

        Schema (stable; the version constant is
        ``repro.analysis.schema.METRICS_SCHEMA`` and bumps on breaking
        changes)::

            {"schema_version": 1,
             "summary": {...},                # exactly summary()
             "events_processed": int,
             "wall_seconds": float,
             "interval_period_ps": int,
             "intervals": [{...}, ...]}       # IntervalSampler.SCHEMA_KEYS
        """
        # Imported lazily: repro.core must not import repro.analysis at
        # module load (analysis builds on core).
        from repro.analysis.schema import METRICS_SCHEMA

        return {
            "schema_version": METRICS_SCHEMA,
            "summary": self.summary(),
            "events_processed": self.events_processed,
            "wall_seconds": self.wall_seconds,
            "interval_period_ps": self.interval_period_ps,
            "intervals": self.intervals,
        }

    def intervals_csv(self) -> str:
        """The interval time-series as CSV, one row per sample.

        List-valued fields are flattened with an index suffix
        (``queue_depth_0`` … per channel; ``bank_occupancy_1_4`` for
        channel 1, bank 4).
        """
        if not self.intervals:
            return ""

        def flatten(sample: dict) -> dict[str, object]:
            flat: dict[str, object] = {}
            for key, value in sample.items():
                if isinstance(value, list):
                    for i, v in enumerate(value):
                        if isinstance(v, list):
                            for j, vv in enumerate(v):
                                flat[f"{key}_{i}_{j}"] = vv
                        else:
                            flat[f"{key}_{i}"] = v
                else:
                    flat[key] = value
            return flat

        rows = [flatten(s) for s in self.intervals]
        header = list(rows[0])
        lines = [",".join(header)]
        for row in rows:
            lines.append(",".join(str(row.get(col, "")) for col in header))
        return "\n".join(lines) + "\n"

    def write_metrics(self, path: str) -> None:
        """Write the metrics bundle to ``path`` (JSON, or CSV for ``.csv``)."""
        if path.endswith(".csv"):
            with open(path, "w") as fh:
                fh.write(self.intervals_csv())
            return
        import json

        with open(path, "w") as fh:
            json.dump(self.metrics_dict(), fh, indent=1)
