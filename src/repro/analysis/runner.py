"""Shared experiment runner with result caching.

Figures 8-12 all derive from the same (benchmark x scheduler) sweep, so
experiments share one :class:`ExperimentRunner`: each simulation runs once
per (workload kind, benchmark, scheduler, scale, seed) and its summary
dict is cached in memory and optionally as JSON on disk.

Workload kinds:

* ``synthetic``   — profile-driven traces whose memory signatures are
  calibrated to the per-benchmark statistics the paper reports (default
  for figure regeneration);
* ``algorithmic`` — traces emitted by actually running each algorithm
  (secondary validation; see DESIGN.md).
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.core.config import SimConfig
from repro.gpu.system import simulate
from repro.idealized import perfect_coalescing
from repro.workloads.profiles import ALL_PROFILES, IRREGULAR_BENCHMARKS, REGULAR_BENCHMARKS
from repro.workloads.suite import Scale, build_benchmark
from repro.workloads.synthetic import synthetic_trace
from repro.workloads.trace import KernelTrace

__all__ = ["ExperimentRunner", "run_one_job", "prefetch_parallel"]

_CACHE_VERSION = 7  # bump to invalidate stale on-disk results


def run_one_job(job: tuple) -> tuple:
    """Worker entry point for parallel sweeps (must be module-level for
    pickling).  ``job`` = (config, scale_name, kind, bench, scheduler,
    seed, perfect, cache_dir, tag); returns (job key fields, summary)."""
    config, scale_name, kind, bench, scheduler, seed, perfect, cache_dir, tag = job
    runner = ExperimentRunner(
        config=config,
        scale=Scale[scale_name],
        seeds=(seed,),
        kind=kind,
        cache_dir=cache_dir,
        tag=tag,
    )
    summary = runner.run(bench, scheduler, seed, perfect)
    return (bench, scheduler, seed, perfect), summary


def prefetch_parallel(
    runner: "ExperimentRunner",
    benchmarks,
    schedulers,
    workers: int = 4,
    perfect: bool = False,
) -> int:
    """Fill the runner's disk cache with a (benchmark x scheduler x seed)
    sweep using a process pool.  Requires ``cache_dir`` (workers
    communicate through it).  Returns the number of simulations run.

    The subsequent ``runner.mean(...)`` calls then hit the disk cache, so
    figure generation after a parallel prefetch is effectively free.
    """
    if runner.cache_dir is None:
        raise ValueError("parallel prefetch requires a cache_dir")
    from concurrent.futures import ProcessPoolExecutor

    jobs = [
        (
            runner.config,
            runner.scale.name,
            runner.kind,
            bench,
            sched,
            seed,
            perfect,
            runner.cache_dir,
            runner.tag,
        )
        for bench in benchmarks
        for sched in schedulers
        for seed in runner.seeds
    ]
    count = 0
    with ProcessPoolExecutor(max_workers=workers) as pool:
        for _key, _summary in pool.map(run_one_job, jobs):
            count += 1
    return count


class ExperimentRunner:
    """Runs (benchmark, scheduler) pairs once and caches their summaries."""

    def __init__(
        self,
        config: Optional[SimConfig] = None,
        scale: Scale = Scale.QUICK,
        seeds: tuple[int, ...] = (1, 2),
        kind: str = "synthetic",
        cache_dir: Optional[str] = None,
        verbose: bool = False,
        tag: str = "",
    ) -> None:
        if kind not in ("synthetic", "algorithmic"):
            raise ValueError("kind must be 'synthetic' or 'algorithmic'")
        self.config = config or SimConfig()
        self.scale = scale
        self.seeds = seeds
        self.kind = kind
        self.cache_dir = cache_dir
        self.verbose = verbose
        self.tag = tag  # distinguishes non-default configs in the cache
        self._traces: dict[tuple[str, int, bool], KernelTrace] = {}
        self._results: dict[tuple, dict[str, float]] = {}

    # ------------------------------------------------------------------
    # workload construction
    # ------------------------------------------------------------------
    def trace(self, bench: str, seed: int, perfect: bool = False) -> KernelTrace:
        key = (bench, seed, perfect)
        if key not in self._traces:
            if self.kind == "synthetic":
                profile = ALL_PROFILES[bench]
                t = synthetic_trace(
                    profile, self.config, seed=seed, scale=self.scale.factor
                )
            else:
                t = build_benchmark(bench, self.config, self.scale, seed=seed)
            if perfect:
                t = perfect_coalescing(t)
            self._traces[key] = t
        return self._traces[key]

    # ------------------------------------------------------------------
    # simulation with caching
    # ------------------------------------------------------------------
    def _cache_path(self, key: tuple) -> Optional[str]:
        if self.cache_dir is None:
            return None
        name = "-".join(str(k) for k in key) + f"-v{_CACHE_VERSION}.json"
        return os.path.join(self.cache_dir, name)

    def run(
        self, bench: str, scheduler: str, seed: int, perfect: bool = False
    ) -> dict[str, float]:
        key = (self.kind, bench, scheduler, self.scale.name, seed, int(perfect), self.tag)
        if key in self._results:
            return self._results[key]
        path = self._cache_path(key)
        if path and os.path.exists(path):
            with open(path) as fh:
                result = json.load(fh)
            self._results[key] = result
            return result
        if self.verbose:
            print(f"  simulating {bench} / {scheduler} (seed {seed}) ...", flush=True)
        trace = self.trace(bench, seed, perfect)
        stats = simulate(self.config.with_scheduler(scheduler), trace)
        result = stats.summary()
        # Extras the figures need beyond the headline summary.
        recs = stats.dram_loads()
        result["unit_group_frac"] = (
            sum(1 for r in recs if r.dram_requests == 1) / len(recs) if recs else 0.0
        )
        result["banks_per_warp"] = (
            sum(r.banks_touched for r in recs if r.dram_requests > 1)
            / max(1, sum(1 for r in recs if r.dram_requests > 1))
        )
        result["activates"] = float(sum(c.activates for c in stats.channels))
        result["reads"] = float(sum(c.reads for c in stats.channels))
        result["writes"] = float(sum(c.writes for c in stats.channels))
        result["coord_msgs"] = float(
            sum(c.coordination_msgs_applied for c in stats.channels)
        )
        result["merb_deferrals"] = float(
            sum(c.merb_deferrals for c in stats.channels)
        )
        result["wgw_promotions"] = float(
            sum(c.wgw_promotions for c in stats.channels)
        )
        self._results[key] = result
        if path:
            os.makedirs(self.cache_dir, exist_ok=True)
            with open(path, "w") as fh:
                json.dump(result, fh)
        return result

    def mean(self, bench: str, scheduler: str, perfect: bool = False) -> dict[str, float]:
        """Summary averaged over the runner's seeds."""
        runs = [self.run(bench, scheduler, s, perfect) for s in self.seeds]
        keys = set().union(*(r.keys() for r in runs))
        return {k: sum(r.get(k, 0.0) for r in runs) / len(runs) for k in keys}

    def seed_spread(self, bench: str, scheduler: str, metric: str = "ipc") -> tuple[float, float]:
        """(mean, max absolute deviation) of a metric across seeds — the
        noise floor to quote next to small scheduler deltas."""
        vals = [self.run(bench, scheduler, s)[metric] for s in self.seeds]
        mean = sum(vals) / len(vals)
        spread = max(abs(v - mean) for v in vals) if len(vals) > 1 else 0.0
        return mean, spread

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------
    def speedup(self, bench: str, scheduler: str, base: str = "gmc") -> float:
        """IPC normalized to the baseline scheduler (Fig. 8's y-axis)."""
        return self.mean(bench, scheduler)["ipc"] / self.mean(bench, base)["ipc"]

    @staticmethod
    def irregular_benchmarks() -> tuple[str, ...]:
        return IRREGULAR_BENCHMARKS

    @staticmethod
    def regular_benchmarks() -> tuple[str, ...]:
        return REGULAR_BENCHMARKS
