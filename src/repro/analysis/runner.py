"""Shared experiment runner with content-addressed result caching.

Figures 8-12 all derive from the same (benchmark x scheduler) sweep, so
experiments share one :class:`ExperimentRunner`: each simulation runs once
per (workload kind, benchmark, scheduler, scale, seed) and its summary
dict is cached in memory and optionally as JSON on disk.

Disk-cache keying
-----------------
Cache entries are keyed by a **content hash of the full** ``SimConfig``
(:func:`config_hash`) alongside the run coordinates, so *any* config
change — a timing parameter, a queue depth, an SBWAS alpha — lands in a
fresh cache entry automatically.  There is no manual tag or cache-version
counter to forget to bump: stale results cannot survive a config change.
Writes go through :func:`atomic_write_json` (temp file + ``os.replace``),
so concurrent sweep workers never observe a partially written entry.

Workload kinds:

* ``synthetic``   — profile-driven traces whose memory signatures are
  calibrated to the per-benchmark statistics the paper reports (default
  for figure regeneration);
* ``algorithmic`` — traces emitted by actually running each algorithm
  (secondary validation; see DESIGN.md);
* ``trace``       — externally supplied trace files replayed as-is
  (``trace_paths`` maps benchmark names to ``.json``/``.npz`` files; the
  cache key folds in a content fingerprint of each file, so editing a
  trace invalidates its entries like any config change would).

The parallel sweep harness built on top of this runner (worker dispatch,
retries, resume manifest, progress) lives in :mod:`repro.analysis.sweep`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from typing import Optional

from repro.core.atomic import atomic_write_json
from repro.core.config import SimConfig
from repro.gpu.system import GPUSystem, simulate
from repro.guardrails.checkpoint import CheckpointError, load_checkpoint
from repro.guardrails.config import GuardrailConfig
from repro.guardrails.faults import FaultSpec
from repro.idealized import perfect_coalescing
from repro.workloads.profiles import ALL_PROFILES, IRREGULAR_BENCHMARKS, REGULAR_BENCHMARKS
from repro.workloads.suite import Scale, build_benchmark
from repro.workloads.synthetic import synthetic_trace
from repro.workloads.trace import KernelTrace, load_trace_file

__all__ = [
    "ExperimentRunner",
    "atomic_write_json",
    "config_hash",
    "prefetch_parallel",
    "run_one_job",
]

# Folded into the hash input so a change to the *cache layout* (not the
# config) can also invalidate old entries without a rename convention.
_CACHE_SCHEMA = 1


def config_hash(config: SimConfig) -> str:
    """Stable 12-hex-digit content hash of a full :class:`SimConfig`.

    Derived from the canonical JSON of every field (nested dataclasses
    included), so two configs hash equal iff they are equal.
    """
    payload = json.dumps(
        {"schema": _CACHE_SCHEMA, "config": dataclasses.asdict(config)},
        sort_keys=True,
        separators=(",", ":"),
        default=repr,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


# atomic_write_json moved to repro.core.atomic (every store shares it
# now — results, history, cluster); re-exported here because this module
# is its historical home and external callers import it from here.


def _file_fingerprint(path: str) -> str:
    """12-hex content hash of a file (external-trace cache identity)."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()[:12]


def run_one_job(job: tuple) -> tuple:
    """Worker entry point for parallel sweeps (must be module-level for
    pickling).  ``job`` = (config, scale_name, kind, bench, scheduler,
    seed, perfect, cache_dir[, checkpoint_period_ns[, trace_paths]]);
    returns
    ((bench, scheduler, seed, perfect), summary, meta) where ``meta``
    records whether the job actually simulated (and whether it resumed
    from a checkpoint) plus its wall time and engine event count.
    """
    config, scale_name, kind, bench, scheduler, seed, perfect, cache_dir = job[:8]
    checkpoint_period_ns = job[8] if len(job) > 8 else 0.0
    trace_paths = job[9] if len(job) > 9 else None
    # Chaos window at job entry (inert unless REPRO_CHAOS arms it): lets
    # the fault tests hang or SIGKILL a worker at a defined protocol
    # step — the timeout supervisor and the cluster's lease reclaim are
    # both proven against exactly this point.
    from repro.cluster.chaos import chaos_point

    chaos_point("job-start")
    _maybe_inject_crash(cache_dir, bench, scheduler, seed)
    runner = ExperimentRunner(
        config=config,
        scale=Scale[scale_name],
        seeds=(seed,),
        kind=kind,
        cache_dir=cache_dir,
        checkpoint_period_ns=checkpoint_period_ns,
        trace_paths=trace_paths,
    )
    t0 = time.time()
    summary = runner.run(bench, scheduler, seed, perfect)
    meta = {
        "simulated": runner.last_outcome in ("simulated", "resumed"),
        "resumed": runner.last_outcome == "resumed",
        "wall_s": time.time() - t0,
        "sim_events": summary.get("sim_events", 0.0),
        "sim_wall_s": summary.get("sim_wall_s", 0.0),
    }
    return (bench, scheduler, seed, perfect), summary, meta


def _maybe_inject_crash(cache_dir, bench: str, scheduler: str, seed: int) -> None:
    """Test hook: ``REPRO_SWEEP_CRASH=bench:scheduler:seed`` makes the
    matching job raise exactly once (a marker file in the cache dir keeps
    the retry alive).  Used to exercise the harness's failure path."""
    target = os.environ.get("REPRO_SWEEP_CRASH")
    if not target or cache_dir is None:
        return
    if target != f"{bench}:{scheduler}:{seed}":
        return
    marker = os.path.join(cache_dir, f".crashed-{bench}-{scheduler}-{seed}")
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return  # already crashed once; let the retry succeed
    os.close(fd)
    raise RuntimeError(f"injected crash for {bench}/{scheduler}/{seed}")


def _crash_mid_run_faults(
    cache_dir, bench: str, scheduler: str, seed: int
) -> tuple[FaultSpec, ...]:
    """Test hook: ``REPRO_SWEEP_CRASH_AT=bench:scheduler:seed:at_ns`` makes
    the matching job die *mid-simulation* exactly once, after any
    checkpoints written before ``at_ns`` — so the retry proves the
    resume-from-checkpoint path.  A marker file keeps the retry alive."""
    target = os.environ.get("REPRO_SWEEP_CRASH_AT")
    if not target or cache_dir is None:
        return ()
    ident, _, at_ns = target.rpartition(":")
    if ident != f"{bench}:{scheduler}:{seed}":
        return ()
    marker = os.path.join(cache_dir, f".crashed-at-{bench}-{scheduler}-{seed}")
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return ()  # already crashed once; the retry runs fault-free
    os.close(fd)
    return (FaultSpec("crash", at_ns=float(at_ns)),)


def prefetch_parallel(
    runner: "ExperimentRunner",
    benchmarks,
    schedulers,
    workers: int = 4,
    perfect: bool = False,
) -> int:
    """Fill the runner's disk cache with a (benchmark x scheduler x seed)
    sweep using a process pool.  Requires ``cache_dir`` (workers
    communicate through it).  Returns the number of jobs executed.

    Thin compatibility wrapper over :func:`repro.analysis.sweep.run_sweep`,
    which adds retries, per-job timeouts, progress and a resume manifest.
    """
    from repro.analysis.sweep import run_sweep

    report = run_sweep(
        runner, benchmarks, schedulers, workers=workers, perfect=perfect
    )
    report.raise_on_failure()
    return report.n_done


class ExperimentRunner:
    """Runs (benchmark, scheduler) pairs once and caches their summaries."""

    def __init__(
        self,
        config: Optional[SimConfig] = None,
        scale: Scale = Scale.QUICK,
        seeds: tuple[int, ...] = (1, 2),
        kind: str = "synthetic",
        cache_dir: Optional[str] = None,
        verbose: bool = False,
        checkpoint_period_ns: float = 0.0,
        trace_paths: Optional[dict[str, str]] = None,
    ) -> None:
        if kind not in ("synthetic", "algorithmic", "trace"):
            raise ValueError(
                "kind must be 'synthetic', 'algorithmic' or 'trace'"
            )
        if kind == "trace" and not trace_paths:
            raise ValueError(
                "kind='trace' needs trace_paths mapping names to files"
            )
        if kind != "trace" and trace_paths:
            raise ValueError("trace_paths only applies to kind='trace'")
        if checkpoint_period_ns > 0 and cache_dir is None:
            raise ValueError("checkpoint_period_ns requires a cache_dir")
        self.config = config or SimConfig()
        self.scale = scale
        self.seeds = seeds
        self.kind = kind
        self.cache_dir = cache_dir
        self.verbose = verbose
        self.checkpoint_period_ns = checkpoint_period_ns
        self.trace_paths = dict(trace_paths) if trace_paths else {}
        # Content fingerprint per external trace, folded into cache names:
        # an edited trace file can never serve a stale cached summary.
        self._trace_fps = {
            name: _file_fingerprint(path)
            for name, path in self.trace_paths.items()
        }
        self.config_hash = config_hash(self.config)
        # "memo" | "disk" | "simulated" | "resumed" (last run())
        self.last_outcome = ""
        self._traces: dict[tuple[str, int, bool], KernelTrace] = {}
        self._results: dict[tuple, dict[str, float]] = {}

    # ------------------------------------------------------------------
    # workload construction
    # ------------------------------------------------------------------
    def trace(self, bench: str, seed: int, perfect: bool = False) -> KernelTrace:
        key = (bench, seed, perfect)
        if key not in self._traces:
            if self.kind == "synthetic":
                try:
                    profile = ALL_PROFILES[bench]
                except KeyError:
                    raise ValueError(
                        f"benchmark {bench!r} has no synthetic profile; "
                        "run it with kind='algorithmic'"
                    ) from None
                t = synthetic_trace(
                    profile, self.config, seed=seed, scale=self.scale.factor
                )
            elif self.kind == "trace":
                try:
                    path = self.trace_paths[bench]
                except KeyError:
                    raise ValueError(
                        f"no trace file registered for {bench!r}; known: "
                        f"{sorted(self.trace_paths)}"
                    ) from None
                t = load_trace_file(path)
            else:
                t = build_benchmark(bench, self.config, self.scale, seed=seed)
            if perfect:
                t = perfect_coalescing(t)
            self._traces[key] = t
        return self._traces[key]

    # ------------------------------------------------------------------
    # simulation with caching
    # ------------------------------------------------------------------
    def cache_name(
        self, bench: str, scheduler: str, seed: int, perfect: bool = False
    ) -> str:
        """Cache file name for one run (config identity via content hash;
        external traces also carry their file's content fingerprint)."""
        bench_key = bench
        if self.kind == "trace" and bench in self._trace_fps:
            bench_key = f"{bench}@{self._trace_fps[bench]}"
        return (
            f"{self.kind}-{bench_key}-{scheduler}-{self.scale.name}"
            f"-s{seed}-p{int(perfect)}-{self.config_hash}.json"
        )

    def _cache_path(
        self, bench: str, scheduler: str, seed: int, perfect: bool
    ) -> Optional[str]:
        if self.cache_dir is None:
            return None
        return os.path.join(
            self.cache_dir, self.cache_name(bench, scheduler, seed, perfect)
        )

    def checkpoint_path(
        self, bench: str, scheduler: str, seed: int, perfect: bool = False
    ) -> Optional[str]:
        """Checkpoint file for one run (same identity as its cache entry).

        The snapshot outlives a crashed/timed-out job so its retry can
        resume; it is deleted once the run completes and its summary is
        safely in the cache.
        """
        if self.cache_dir is None:
            return None
        name = self.cache_name(bench, scheduler, seed, perfect)
        return os.path.join(self.cache_dir, name[: -len(".json")] + ".ckpt")

    def run(
        self, bench: str, scheduler: str, seed: int, perfect: bool = False
    ) -> dict[str, float]:
        key = (self.kind, bench, scheduler, self.scale.name, seed, int(perfect))
        if key in self._results:
            self.last_outcome = "memo"
            return self._results[key]
        path = self._cache_path(bench, scheduler, seed, perfect)
        if path and os.path.exists(path):
            with open(path) as fh:
                result = json.load(fh)
            self._results[key] = result
            self.last_outcome = "disk"
            return result
        if self.verbose:
            print(f"  simulating {bench} / {scheduler} (seed {seed}) ...", flush=True)
        t0 = time.time()
        stats, resumed = self._simulate(bench, scheduler, seed, perfect)
        result = stats.summary()
        # Extras the figures need beyond the headline summary.
        recs = stats.dram_loads()
        result["unit_group_frac"] = (
            sum(1 for r in recs if r.dram_requests == 1) / len(recs) if recs else 0.0
        )
        result["banks_per_warp"] = (
            sum(r.banks_touched for r in recs if r.dram_requests > 1)
            / max(1, sum(1 for r in recs if r.dram_requests > 1))
        )
        result["activates"] = float(sum(c.activates for c in stats.channels))
        result["reads"] = float(sum(c.reads for c in stats.channels))
        result["writes"] = float(sum(c.writes for c in stats.channels))
        result["coord_msgs"] = float(
            sum(c.coordination_msgs_applied for c in stats.channels)
        )
        result["merb_deferrals"] = float(
            sum(c.merb_deferrals for c in stats.channels)
        )
        result["wgw_promotions"] = float(
            sum(c.wgw_promotions for c in stats.channels)
        )
        # Host-side cost of producing this entry (the sweep harness reports
        # events/sec per job from these).
        result["sim_events"] = float(stats.events_processed)
        result["sim_wall_s"] = stats.wall_seconds
        self._results[key] = result
        self.last_outcome = "resumed" if resumed else "simulated"
        if path:
            atomic_write_json(path, result)
        ckpt = self.checkpoint_path(bench, scheduler, seed, perfect)
        if ckpt and self.checkpoint_period_ns > 0 and os.path.exists(ckpt):
            os.unlink(ckpt)  # run finished; the snapshot served its purpose
        return result

    def _simulate(
        self, bench: str, scheduler: str, seed: int, perfect: bool
    ):
        """One simulation, checkpoint-aware.

        With ``checkpoint_period_ns`` set, the run writes periodic
        snapshots next to its cache entry, and — if a snapshot from a
        crashed or timed-out earlier attempt exists and matches this
        config — resumes from it instead of starting over.  Returns
        ``(stats, resumed)``.
        """
        sched_config = self.config.with_scheduler(scheduler)
        if self.checkpoint_period_ns <= 0:
            trace = self.trace(bench, seed, perfect)
            return simulate(sched_config, trace), False
        ckpt = self.checkpoint_path(bench, scheduler, seed, perfect)
        guardrails = GuardrailConfig(
            checkpoint_period_ns=self.checkpoint_period_ns,
            checkpoint_path=ckpt,
            faults=_crash_mid_run_faults(self.cache_dir, bench, scheduler, seed),
        )
        if os.path.exists(ckpt):
            try:
                system = load_checkpoint(
                    ckpt, expected_config_hash=config_hash(sched_config)
                )
            except CheckpointError:
                pass  # stale/foreign snapshot: fall through to a fresh run
            else:
                # Adopt the *current* guardrail settings: a crash fault
                # from the attempt that wrote this snapshot must not
                # re-fire on the resume.
                system.guardrails = guardrails
                system.injector = None
                return system.resume(), True
        trace = self.trace(bench, seed, perfect)
        system = GPUSystem(sched_config, trace, guardrails=guardrails)
        return system.run(), False

    def mean(self, bench: str, scheduler: str, perfect: bool = False) -> dict[str, float]:
        """Summary averaged over the runner's seeds."""
        runs = [self.run(bench, scheduler, s, perfect) for s in self.seeds]
        keys = set().union(*(r.keys() for r in runs))
        return {k: sum(r.get(k, 0.0) for r in runs) / len(runs) for k in keys}

    def seed_spread(self, bench: str, scheduler: str, metric: str = "ipc") -> tuple[float, float]:
        """(mean, max absolute deviation) of a metric across seeds — the
        noise floor to quote next to small scheduler deltas."""
        vals = [self.run(bench, scheduler, s)[metric] for s in self.seeds]
        mean = sum(vals) / len(vals)
        spread = max(abs(v - mean) for v in vals) if len(vals) > 1 else 0.0
        return mean, spread

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------
    def speedup(self, bench: str, scheduler: str, base: str = "gmc") -> float:
        """IPC normalized to the baseline scheduler (Fig. 8's y-axis)."""
        return self.mean(bench, scheduler)["ipc"] / self.mean(bench, base)["ipc"]

    @staticmethod
    def irregular_benchmarks() -> tuple[str, ...]:
        return IRREGULAR_BENCHMARKS

    @staticmethod
    def regular_benchmarks() -> tuple[str, ...]:
        return REGULAR_BENCHMARKS
