"""Per-figure experiment drivers.

Each ``figN_*``/``secN_*`` function regenerates one table or figure of the
paper's evaluation from an :class:`ExperimentRunner` sweep and returns an
:class:`ExperimentResult` whose ``table`` is ready to print and whose
``headline`` dict carries the numbers EXPERIMENTS.md records against the
paper's.  ``run_all`` produces the complete evaluation in one call.

Paper targets (for orientation; see EXPERIMENTS.md for measured values):

=========  ==============================================================
Fig. 2     56% of irregular loads issue >1 request; mean 5.9 reqs/load
Fig. 3     last/first DRAM latency ~1.6x; 2.5 controllers per warp
Fig. 4     perfect coalescing ~5x; zero latency divergence +43%
Table I    MERB(1..6+) = 31, 20, 10, 7, 5, 5
Fig. 8     WG +3.4%, WG-M +6.2%, WG-Bw +8.4%, WG-W +10.1% (vs GMC)
Fig. 9     effective latency: WG -9.1%, WG-M -16.9%
Fig. 10    divergence shrinks under WG/WG-M, most for multi-channel warps
Fig. 11    WG-Bw recovers >14% bandwidth over WG-M
Fig. 12    WG-W wins where write intensity and unit groups are high
§VI-A      regular apps: ~+1.8% with WG-W, no slowdowns
§VI-B      16% lower row-hit rate -> ~+1.8% GDDR5 power
§VI-C      SBWAS ~+2.5%; WAFCFS ~-11%
=========  ==============================================================
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.analysis.report import format_table, geomean
from repro.analysis.runner import ExperimentRunner
from repro.core.config import SimConfig
from repro.dram.power import estimate_channel_power
from repro.mc.merb import merb_table, single_bank_utilization
from repro.workloads.suite import Scale

__all__ = [
    "ACCURACY_ENTRIES",
    "ExperimentResult",
    "accuracy_doc",
    "write_accuracy",
    "fig2_coalescing",
    "fig3_divergence",
    "fig4_opportunity",
    "table1_merb",
    "fig8_ipc",
    "fig9_latency",
    "fig10_divergence",
    "fig11_bandwidth",
    "fig12_writes",
    "sec6a_regular",
    "sec6b_power",
    "sec6c_comparison",
    "run_all",
]

PAPER_SCHEDULERS = ("wg", "wg-m", "wg-bw", "wg-w")


@dataclass
class ExperimentResult:
    experiment: str
    headers: list[str]
    rows: list[list]
    headline: dict[str, float] = field(default_factory=dict)
    notes: str = ""

    @property
    def table(self) -> str:
        return format_table(self.headers, self.rows, title=self.experiment)

    def __str__(self) -> str:  # pragma: no cover - convenience
        extra = "\n".join(f"  {k}: {v:.4g}" for k, v in self.headline.items())
        return f"{self.table}\n{extra}\n{self.notes}".rstrip()


# ---------------------------------------------------------------------------
# Motivation figures
# ---------------------------------------------------------------------------
def fig2_coalescing(runner: ExperimentRunner) -> ExperimentResult:
    """Fig. 2: coalescing efficiency of the irregular suite (GMC runs)."""
    rows = []
    for b in runner.irregular_benchmarks():
        s = runner.mean(b, "gmc")
        rows.append([b, s["frac_divergent_loads"], s["requests_per_load"]])
    mean_div = sum(r[1] for r in rows) / len(rows)
    mean_rpl = sum(r[2] for r in rows) / len(rows)
    rows.append(["MEAN", mean_div, mean_rpl])
    return ExperimentResult(
        "Fig. 2 - Coalescing efficiency",
        ["benchmark", "frac loads >1 request", "requests/load"],
        rows,
        {"frac_divergent": mean_div, "requests_per_load": mean_rpl},
        "paper: 56% of loads divergent, 5.9 requests/load",
    )


def fig3_divergence(runner: ExperimentRunner) -> ExperimentResult:
    """Fig. 3: extent of main-memory latency divergence (GMC runs)."""
    rows = []
    for b in runner.irregular_benchmarks():
        s = runner.mean(b, "gmc")
        rows.append([b, s["last_over_first"], s["channels_per_warp"]])
    mean_lf = sum(r[1] for r in rows) / len(rows)
    mean_ch = sum(r[2] for r in rows) / len(rows)
    rows.append(["MEAN", mean_lf, mean_ch])
    return ExperimentResult(
        "Fig. 3 - Main-memory latency divergence",
        ["benchmark", "last/first latency", "controllers/warp"],
        rows,
        {"last_over_first": mean_lf, "channels_per_warp": mean_ch},
        "paper: last request ~1.6x first; 2.5 controllers per warp",
    )


def fig4_opportunity(runner: ExperimentRunner) -> ExperimentResult:
    """Fig. 4: perfect coalescing and zero-latency-divergence bounds."""
    rows = []
    pc_speedups = []
    zd_speedups = []
    for b in runner.irregular_benchmarks():
        base = runner.mean(b, "gmc")["ipc"]
        pc = runner.mean(b, "gmc", perfect=True)["ipc"] / base
        zd = runner.mean(b, "zero-div")["ipc"] / base
        pc_speedups.append(pc)
        zd_speedups.append(zd)
        rows.append([b, pc, zd])
    rows.append(["GEOMEAN", geomean(pc_speedups), geomean(zd_speedups)])
    return ExperimentResult(
        "Fig. 4 - Room for improvement (speedup vs GMC)",
        ["benchmark", "perfect coalescing", "zero latency divergence"],
        rows,
        {
            "perfect_coalescing_x": geomean(pc_speedups),
            "zero_divergence_x": geomean(zd_speedups),
        },
        "paper: ~5x perfect coalescing; +43% zero divergence",
    )


def table1_merb(config: Optional[SimConfig] = None) -> ExperimentResult:
    """Table I: MERB values for GDDR5 timing."""
    cfg = config or SimConfig()
    table = merb_table(cfg.dram_timing, cfg.dram_org.banks_per_channel)
    rows = [[b, table[b]] for b in range(1, 7)]
    rows.append(["6-16", table[6]])
    util = single_bank_utilization(31, cfg.dram_timing)
    return ExperimentResult(
        "Table I - MERB values (GDDR5)",
        ["busy banks", "MERB"],
        rows,
        {"single_bank_util_at_31": util},
        "paper: 31, 20, 10, 7, 5, 5...; 62% single-bank utilization",
    )


# ---------------------------------------------------------------------------
# Evaluation figures
# ---------------------------------------------------------------------------
def _per_scheduler_metric(
    runner: ExperimentRunner,
    metric: str,
    schedulers: Sequence[str],
    benchmarks: Sequence[str],
    normalize_to_gmc: bool = False,
) -> tuple[list[list], dict[str, float]]:
    rows = []
    agg: dict[str, list[float]] = {s: [] for s in schedulers}
    for b in benchmarks:
        base = runner.mean(b, "gmc")[metric] if normalize_to_gmc else 1.0
        row = [b]
        for s in schedulers:
            v = runner.mean(b, s)[metric]
            v = v / base if normalize_to_gmc and base else v
            row.append(v)
            agg[s].append(v)
        rows.append(row)
    summary = {s: geomean(agg[s]) for s in schedulers}
    rows.append(["GEOMEAN"] + [summary[s] for s in schedulers])
    return rows, summary


def fig8_ipc(
    runner: ExperimentRunner, schedulers: Sequence[str] = PAPER_SCHEDULERS
) -> ExperimentResult:
    """Fig. 8: IPC normalized to the GMC baseline."""
    rows, summary = _per_scheduler_metric(
        runner, "ipc", schedulers, runner.irregular_benchmarks(), normalize_to_gmc=True
    )
    return ExperimentResult(
        "Fig. 8 - IPC normalized to GMC",
        ["benchmark", *schedulers],
        rows,
        {f"speedup_{s}": v for s, v in summary.items()},
        "paper geomeans: WG +3.4%, WG-M +6.2%, WG-Bw +8.4%, WG-W +10.1%",
    )


def fig9_latency(
    runner: ExperimentRunner, schedulers: Sequence[str] = ("gmc", *PAPER_SCHEDULERS)
) -> ExperimentResult:
    """Fig. 9: effective main-memory latency experienced by warps (ns)."""
    rows, _ = _per_scheduler_metric(
        runner, "effective_latency_ns", schedulers, runner.irregular_benchmarks()
    )
    base = rows[-1][1]
    headline = {
        f"latency_reduction_{s}": 1.0 - rows[-1][i + 1] / base
        for i, s in enumerate(schedulers)
        if s != "gmc"
    }
    return ExperimentResult(
        "Fig. 9 - Effective memory latency (ns)",
        ["benchmark", *schedulers],
        rows,
        headline,
        "paper: WG -9.1%, WG-M -16.9% average effective latency",
    )


def fig10_divergence(
    runner: ExperimentRunner, schedulers: Sequence[str] = ("gmc", "wg", "wg-m")
) -> ExperimentResult:
    """Fig. 10: first-to-last DRAM reply gap per warp (ns)."""
    rows, summary = _per_scheduler_metric(
        runner, "divergence_ns", schedulers, runner.irregular_benchmarks()
    )
    return ExperimentResult(
        "Fig. 10 - DRAM latency divergence (ns)",
        ["benchmark", *schedulers],
        rows,
        {f"divergence_{s}": v for s, v in summary.items()},
        "paper: WG-M lowest for multi-controller warps (cfd/spmv/sssp/sp); "
        "WG sufficient for sad/nw/SS/bfs",
    )


def fig11_bandwidth(
    runner: ExperimentRunner,
    schedulers: Sequence[str] = ("gmc", "wg-m", "wg-bw", "wg-w"),
) -> ExperimentResult:
    """Fig. 11: DRAM data-bus utilization."""
    rows, summary = _per_scheduler_metric(
        runner, "bandwidth_utilization", schedulers, runner.irregular_benchmarks()
    )
    gain = (
        (summary["wg-bw"] / summary["wg-m"]) - 1.0
        if "wg-bw" in summary and "wg-m" in summary
        else 0.0
    )
    return ExperimentResult(
        "Fig. 11 - Bandwidth utilization",
        ["benchmark", *schedulers],
        rows,
        {**{f"bw_{s}": v for s, v in summary.items()}, "wgbw_over_wgm": gain},
        "paper: WG-Bw improves WG-M's utilization by >14%",
    )


def fig12_writes(runner: ExperimentRunner) -> ExperimentResult:
    """Fig. 12: write intensity and unit-size groups; WG-W gains."""
    rows = []
    for b in runner.irregular_benchmarks():
        s = runner.mean(b, "gmc")
        gain = runner.mean(b, "wg-w")["ipc"] / runner.mean(b, "wg-bw")["ipc"] - 1.0
        rows.append([b, s["write_intensity"], s["unit_group_frac"], gain])
    return ExperimentResult(
        "Fig. 12 - Write intensity and WG-W benefit",
        ["benchmark", "write intensity", "unit-size group frac", "WG-W gain over WG-Bw"],
        rows,
        {
            "mean_write_intensity": sum(r[1] for r in rows) / len(rows),
            "mean_wgw_gain": sum(r[3] for r in rows) / len(rows),
        },
        "paper: WG-W helps most where write intensity and stalled unit-size "
        "groups are both high (nw, SS)",
    )


# ---------------------------------------------------------------------------
# Section VI subsections
# ---------------------------------------------------------------------------
def sec6a_regular(runner: ExperimentRunner) -> ExperimentResult:
    """§VI-A: impact on non-divergent (regular) applications."""
    rows = []
    speedups = []
    worst = 10.0
    for b in runner.regular_benchmarks():
        sp = runner.speedup(b, "wg-w")
        speedups.append(sp)
        worst = min(worst, sp)
        rows.append([b, sp])
    g = geomean(speedups)
    rows.append(["GEOMEAN", g])
    return ExperimentResult(
        "Sec VI-A - Regular applications (WG-W speedup vs GMC)",
        ["benchmark", "speedup"],
        rows,
        {"regular_speedup": g, "worst_case": worst},
        "paper: +1.8% average, no application slows down",
    )


def sec6b_power(runner: ExperimentRunner) -> ExperimentResult:
    """§VI-B: GDDR5 power impact of the row-hit-rate change under WG-W.

    The paper feeds access counts into the Micron power calculator, i.e.
    it compares power for *the same work*.  We therefore evaluate both
    schedulers' energy over their runs and compare energy-per-access
    (equivalently, power over a common time base) — the activate-count
    difference, set by the row-hit rates, is the only array-side term
    that moves.
    """
    timing = runner.config.dram_timing
    nch = runner.config.dram_org.num_channels
    rows = []
    deltas = []
    hit_deltas = []
    for b in runner.irregular_benchmarks():
        out = {}
        for sched in ("gmc", "wg-w"):
            s = runner.mean(b, sched)
            elapsed_ps = s["elapsed_ns"] * 1000
            busy_ps = s["bandwidth_utilization"] * elapsed_ps
            p = estimate_channel_power(
                activates=int(s["activates"] / nch),
                reads=int(s["reads"] / nch),
                writes=int(s["writes"] / nch),
                data_bus_busy_ps=int(busy_ps),
                elapsed_ps=int(elapsed_ps),
                timing=timing,
            )
            energy_j = p.total_w * elapsed_ps * 1e-12
            accesses = max(1.0, s["reads"] + s["writes"])
            out[sched] = (energy_j / accesses, s["row_hit_rate"])
        delta = out["wg-w"][0] / out["gmc"][0] - 1.0
        hit_delta = out["wg-w"][1] - out["gmc"][1]
        deltas.append(delta)
        hit_deltas.append(hit_delta)
        rows.append(
            [b, out["gmc"][1], out["wg-w"][1], out["gmc"][0] * 1e9, out["wg-w"][0] * 1e9, delta]
        )
    rows.append(
        [
            "MEAN",
            sum(r[1] for r in rows) / len(rows),
            sum(r[2] for r in rows) / len(rows),
            sum(r[3] for r in rows) / len(rows),
            sum(r[4] for r in rows) / len(rows),
            sum(deltas) / len(deltas),
        ]
    )
    return ExperimentResult(
        "Sec VI-B - GDDR5 energy per access",
        ["benchmark", "hit rate gmc", "hit rate wg-w", "nJ/acc gmc", "nJ/acc wg-w", "delta"],
        rows,
        {
            "mean_energy_delta": sum(deltas) / len(deltas),
            "mean_hit_rate_change": sum(hit_deltas) / len(hit_deltas),
        },
        "paper: 16% lower row-hit rate costs only ~1.8% GDDR5 power "
        "(I/O power dominates; array power is a small slice)",
    )


def sec6c_comparison(
    runner: ExperimentRunner, alphas: tuple[float, ...] = (0.25, 0.5, 0.75)
) -> ExperimentResult:
    """§VI-C: SBWAS (best alpha per benchmark, as the paper profiles) and
    WAFCFS versus the GMC baseline, alongside WG-W."""
    alpha_runners = {
        a: ExperimentRunner(
            config=dataclasses.replace(
                runner.config,
                mc=dataclasses.replace(runner.config.mc, sbwas_alpha=a),
            ),
            scale=runner.scale,
            seeds=runner.seeds,
            kind=runner.kind,
            cache_dir=runner.cache_dir,
            verbose=runner.verbose,
        )
        for a in alphas
    }
    rows = []
    sbwas_speedups = []
    wafcfs_speedups = []
    wgw_speedups = []
    for b in runner.irregular_benchmarks():
        base = runner.mean(b, "gmc")["ipc"]
        best_alpha, best = None, 0.0
        for a, r in alpha_runners.items():
            v = r.mean(b, "sbwas")["ipc"] / base
            if v > best:
                best_alpha, best = a, v
        waf = runner.mean(b, "wafcfs")["ipc"] / base
        wgw = runner.mean(b, "wg-w")["ipc"] / base
        sbwas_speedups.append(best)
        wafcfs_speedups.append(waf)
        wgw_speedups.append(wgw)
        rows.append([b, best, best_alpha, waf, wgw])
    rows.append(
        ["GEOMEAN", geomean(sbwas_speedups), "-", geomean(wafcfs_speedups), geomean(wgw_speedups)]
    )
    return ExperimentResult(
        "Sec VI-C - Prior schedulers vs GMC",
        ["benchmark", "SBWAS (best a)", "alpha", "WAFCFS", "WG-W"],
        rows,
        {
            "sbwas_speedup": geomean(sbwas_speedups),
            "wafcfs_speedup": geomean(wafcfs_speedups),
            "wgw_speedup": geomean(wgw_speedups),
        },
        "paper: SBWAS +2.5%; WAFCFS -11.2%; WG-W beats SBWAS by 7.3%",
    )


def run_all(
    config: Optional[SimConfig] = None,
    scale: Scale = Scale.QUICK,
    seeds: tuple[int, ...] = (1, 2),
    kind: str = "synthetic",
    cache_dir: Optional[str] = None,
    verbose: bool = False,
) -> dict[str, ExperimentResult]:
    """Regenerate every table and figure; returns {experiment id: result}."""
    runner = ExperimentRunner(
        config=config, scale=scale, seeds=seeds, kind=kind,
        cache_dir=cache_dir, verbose=verbose,
    )
    results = {
        "fig2": fig2_coalescing(runner),
        "fig3": fig3_divergence(runner),
        "fig4": fig4_opportunity(runner),
        "table1": table1_merb(runner.config),
        "fig8": fig8_ipc(runner),
        "fig9": fig9_latency(runner),
        "fig10": fig10_divergence(runner),
        "fig11": fig11_bandwidth(runner),
        "fig12": fig12_writes(runner),
        "sec6a": sec6a_regular(runner),
        "sec6b": sec6b_power(runner),
        "sec6c": sec6c_comparison(runner),
    }
    return results


# ----------------------------------------------------------------------
# paper-accuracy export (results/accuracy.json)
# ----------------------------------------------------------------------
#: Machine-readable mirror of the EXPERIMENTS.md paper-vs-measured table.
#: Each entry's ``paper_text``/``measured_text`` is a literal snippet of
#: that table's row — tests/test_accuracy.py asserts the doc and this
#: export never drift apart.  ``delta`` is measured - paper in the
#: entry's own unit; percent entries feed the dashboard's accuracy chart.
ACCURACY_ENTRIES: tuple[dict, ...] = (
    {"id": "fig2-divergent", "figure": "Fig. 2",
     "metric": "loads issuing >1 request", "unit": "pct",
     "paper": 56.0, "measured": 59.0, "delta": 3.0,
     "paper_text": "56%", "measured_text": "59% divergent"},
    {"id": "fig2-requests", "figure": "Fig. 2",
     "metric": "requests per load", "unit": "count",
     "paper": 5.9, "measured": 5.39, "delta": -0.51,
     "paper_text": "5.9 requests/load", "measured_text": "5.39 requests/load"},
    {"id": "fig3-ratio", "figure": "Fig. 3",
     "metric": "last/first main-memory latency", "unit": "x",
     "paper": 1.6, "measured": 6.1, "delta": 4.5,
     "paper_text": "≈1.6×", "measured_text": "6.1×"},
    {"id": "fig3-controllers", "figure": "Fig. 3",
     "metric": "controllers per warp", "unit": "count",
     "paper": 2.5, "measured": 2.17, "delta": -0.33,
     "paper_text": "2.5 controllers/warp",
     "measured_text": "2.17 controllers/warp"},
    {"id": "fig4-coalescing", "figure": "Fig. 4",
     "metric": "perfect-coalescing speedup", "unit": "x",
     "paper": 5.0, "measured": 4.55, "delta": -0.45,
     "paper_text": "≈5×", "measured_text": "4.55×"},
    {"id": "fig4-zerodiv", "figure": "Fig. 4",
     "metric": "zero-divergence speedup", "unit": "pct",
     "paper": 43.0, "measured": 60.0, "delta": 17.0,
     "paper_text": "+43%", "measured_text": "+60%"},
    {"id": "table1-util", "figure": "Table I",
     "metric": "single-bank utilization bound", "unit": "pct",
     "paper": 62.0, "measured": 62.0, "delta": 0.0,
     "paper_text": "62% single-bank util", "measured_text": "62.0%"},
    {"id": "fig8-wg", "figure": "Fig. 8",
     "metric": "WG speedup", "unit": "pct",
     "paper": 3.4, "measured": 8.1, "delta": 4.7,
     "paper_text": "WG +3.4%", "measured_text": "WG +8.1%"},
    {"id": "fig8-wgm", "figure": "Fig. 8",
     "metric": "WG-M speedup", "unit": "pct",
     "paper": 6.2, "measured": 7.2, "delta": 1.0,
     "paper_text": "WG-M +6.2%", "measured_text": "WG-M +7.2%"},
    {"id": "fig8-wgbw", "figure": "Fig. 8",
     "metric": "WG-Bw speedup", "unit": "pct",
     "paper": 8.4, "measured": 9.2, "delta": 0.8,
     "paper_text": "WG-Bw +8.4%", "measured_text": "WG-Bw +9.2%"},
    {"id": "fig8-wgw", "figure": "Fig. 8",
     "metric": "WG-W speedup", "unit": "pct",
     "paper": 10.1, "measured": 9.2, "delta": -0.9,
     "paper_text": "WG-W +10.1%", "measured_text": "WG-W +9.2%"},
    {"id": "fig9-wg", "figure": "Fig. 9",
     "metric": "WG effective-latency change", "unit": "pct",
     "paper": -9.1, "measured": -4.4, "delta": 4.7,
     "paper_text": "WG −9.1%", "measured_text": "WG −4.4%"},
    {"id": "fig9-wgm", "figure": "Fig. 9",
     "metric": "WG-M effective-latency change", "unit": "pct",
     "paper": -16.9, "measured": -4.1, "delta": 12.8,
     "paper_text": "WG-M −16.9%", "measured_text": "WG-M −4.1%"},
    {"id": "fig11-margin", "figure": "Fig. 11",
     "metric": "WG-Bw utilization margin over WG-M", "unit": "pct",
     "paper": 14.0, "measured": 1.9, "delta": -12.1,
     "paper_text": ">14%", "measured_text": "+1.9%"},
    {"id": "sec6a-regular", "figure": "§VI-A",
     "metric": "regular-app geomean change", "unit": "pct",
     "paper": 1.8, "measured": -0.5, "delta": -2.3,
     "paper_text": "+1.8%", "measured_text": "−0.5% geomean"},
    {"id": "sec6b-energy", "figure": "§VI-B",
     "metric": "GDDR5 energy change", "unit": "pct",
     "paper": 1.8, "measured": -1.5, "delta": -3.3,
     "paper_text": "+1.8% GDDR5 power",
     "measured_text": "energy/access −1.5%"},
    {"id": "sec6c-sbwas", "figure": "§VI-C",
     "metric": "SBWAS speedup", "unit": "pct",
     "paper": 2.5, "measured": 1.9, "delta": -0.6,
     "paper_text": "SBWAS +2.5%", "measured_text": "SBWAS +1.9%"},
    {"id": "sec6c-wafcfs", "figure": "§VI-C",
     "metric": "WAFCFS change", "unit": "pct",
     "paper": -11.2, "measured": -1.4, "delta": 9.8,
     "paper_text": "WAFCFS −11.2%", "measured_text": "WAFCFS −1.4%"},
    {"id": "sec6c-gap", "figure": "§VI-C",
     "metric": "WG-W gap over SBWAS", "unit": "pct",
     "paper": 7.3, "measured": 7.3, "delta": 0.0,
     "paper_text": "by 7.3%", "measured_text": "by 7.3pp"},
)


def accuracy_doc() -> dict:
    """The paper-accuracy export as a schema-versioned document."""
    from repro.analysis.schema import ACCURACY_SCHEMA

    return {
        "schema_version": ACCURACY_SCHEMA,
        "kind": "accuracy",
        "source": "EXPERIMENTS.md",
        "generated_by": "repro.analysis.experiments.write_accuracy",
        "entries": [dict(e) for e in ACCURACY_ENTRIES],
    }


def write_accuracy(
    path: str = "results/accuracy.json", history: bool = True
) -> dict:
    """Write ``results/accuracy.json`` (and append a history record)."""
    from repro.analysis.runner import atomic_write_json

    doc = accuracy_doc()
    atomic_write_json(path, doc)
    if history:
        from repro.history import record_run

        record_run("accuracy", doc)
    return doc
