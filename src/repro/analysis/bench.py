"""Core hot-path benchmark: ``python -m repro bench`` (docs/performance.md).

Measures raw simulator throughput — engine events per wall-clock second
and wall time — per scheduler on a fixed single-channel workload at TINY
and QUICK scale.  This is the harness behind the repo's performance
trajectory: ``results/BENCH_core_baseline.json`` pins the pre-optimization
numbers, ``results/BENCH_core.json`` the current ones, and the CI
``perf-smoke`` job fails when throughput regresses against the committed
reference.

Methodology
-----------
* Single channel: every request funnels through one memory controller, so
  the measurement is dominated by the scheduler/engine hot path the
  optimizations target, not by cross-channel fan-out.
* Each job builds its trace once and simulates it ``repeats`` times; the
  *best* wall time is reported (minimum is the standard noise-robust
  estimator for a deterministic workload).
* Simulated outcomes are asserted identical across repeats — a bench run
  doubles as a cheap determinism check.
* A pure-interpreter **calibration loop** (dict/int/list operations, no
  simulator code) runs alongside and its ops/sec is stored in the report.
  Regression checks compare *normalized* throughput
  (``events_per_sec / calibration``) so a slower CI machine does not read
  as a simulator regression.

The report mirrors the sweep-report shape (``BENCH_sweep.json``): a
``schema_version``/aggregate header plus one entry per job with
``sim_events``, ``sim_wall_s`` and ``events_per_sec``.
"""

from __future__ import annotations

import dataclasses
import json
import sys
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Optional, Sequence

from repro.analysis.runner import atomic_write_json, config_hash
from repro.analysis.schema import BENCH_SCHEMA
from repro.core.config import SimConfig
from repro.gpu.system import GPUSystem
from repro.workloads.suite import Scale, build_benchmark

__all__ = [
    "BENCH_SCHEMA",
    "BenchJob",
    "BenchReport",
    "calibrate",
    "compare_reports",
    "default_jobs",
    "load_report",
    "run_bench",
]

#: Canonical bench workload: irregular, divergent, exercises the warp
#: sorter, MERB gate and write drain — the paths this bench exists to time.
DEFAULT_BENCHMARK = "bfs"

#: Schedulers measured by ``--quick`` (the CI gate): the paper's
#: presentation set, which covers every optimized code path (baseline
#: command scheduler, BASJF, coordination, MERB, write drain).
QUICK_SCHEDULERS = ("gmc", "wg", "wg-m", "wg-bw", "wg-w")


def _bench_config(scheduler: str) -> SimConfig:
    """Single-channel configuration so the controller is the bottleneck."""
    base = SimConfig(scheduler=scheduler)
    return dataclasses.replace(
        base, dram_org=dataclasses.replace(base.dram_org, num_channels=1)
    )


@dataclass(frozen=True)
class BenchJob:
    """One measurement cell: scheduler x scale on the bench workload."""

    bench: str
    scheduler: str
    scale: str  # Scale name
    seed: int = 1
    repeats: int = 3

    @property
    def job_id(self) -> str:
        return f"core/{self.bench}/{self.scheduler}/{self.scale.lower()}/s{self.seed}"


@dataclass
class JobMeasurement:
    job: BenchJob
    sim_events: int = 0
    sim_wall_s: float = 0.0  # best-of-repeats wall time
    wall_s_mean: float = 0.0
    elapsed_ps: int = 0  # simulated time (identical across repeats)

    @property
    def events_per_sec(self) -> float:
        return self.sim_events / self.sim_wall_s if self.sim_wall_s > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "id": self.job.job_id,
            "bench": self.job.bench,
            "scheduler": self.job.scheduler,
            "scale": self.job.scale,
            "seed": self.job.seed,
            "repeats": self.job.repeats,
            "status": "done",
            "sim_events": self.sim_events,
            "sim_wall_s": round(self.sim_wall_s, 4),
            "wall_s_mean": round(self.wall_s_mean, 4),
            "elapsed_ps": self.elapsed_ps,
            "events_per_sec": round(self.events_per_sec, 1),
        }


@dataclass
class BenchReport:
    jobs: list[JobMeasurement]
    calibration_ops_per_sec: float
    wall_s: float = 0.0
    python: str = field(
        default_factory=lambda: ".".join(map(str, sys.version_info[:3]))
    )

    @property
    def events_total(self) -> int:
        return sum(m.sim_events for m in self.jobs)

    @property
    def events_per_sec(self) -> float:
        busy = sum(m.sim_wall_s for m in self.jobs)
        return self.events_total / busy if busy > 0 else 0.0

    def to_dict(self) -> dict:
        from repro.gpu.frontend import scalar_frontend_enabled

        return {
            "schema_version": BENCH_SCHEMA,
            "kind": "core",
            "python": self.python,
            # Additive key (no schema bump: the bench contract pins only
            # jobs + calibration): which SM front end produced the run,
            # so scalar-mode reports are never mistaken for regressions.
            "frontend": "scalar" if scalar_frontend_enabled() else "vectorized",
            "calibration_ops_per_sec": round(self.calibration_ops_per_sec, 1),
            "wall_s": round(self.wall_s, 4),
            "jobs_total": len(self.jobs),
            "jobs_done": len(self.jobs),
            "jobs_failed": 0,
            "events_total": self.events_total,
            "events_per_sec": round(self.events_per_sec, 1),
            "jobs": [m.to_dict() for m in self.jobs],
        }

    def write(self, path: str) -> None:
        atomic_write_json(path, self.to_dict())

    def format(self) -> str:
        lines = [
            f"{'job':40s} {'events':>9s} {'best':>8s} {'events/s':>10s}"
        ]
        for m in self.jobs:
            lines.append(
                f"{m.job.job_id:40s} {m.sim_events:9d} "
                f"{m.sim_wall_s:7.3f}s {m.events_per_sec / 1000.0:8.1f}k"
            )
        lines.append(
            f"[bench] {self.events_total} events in {self.wall_s:.1f}s wall "
            f"({self.events_per_sec / 1000.0:.0f}k events/s aggregate, "
            f"calibration {self.calibration_ops_per_sec / 1e6:.1f}M ops/s)"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# calibration
# ----------------------------------------------------------------------
def calibrate(iterations: int = 400_000, rounds: int = 3) -> float:
    """Interpreter-speed reference: ops/sec of a fixed pure-Python loop.

    Deliberately touches only builtins (dict/list/int churn in the mix a
    discrete-event simulator exhibits) and none of the simulator code, so
    its speed moves with the host machine and Python build but *not* with
    the optimizations this bench measures.
    """
    best = float("inf")
    for _ in range(rounds):
        d: dict[int, int] = {}
        acc = 0
        t0 = perf_counter()
        for i in range(iterations):
            k = i & 1023
            d[k] = i
            acc += d[k] ^ (i >> 3)
            if k == 0:
                d.clear()
        dt = perf_counter() - t0
        best = min(best, dt)
    return iterations / best if best > 0 else 0.0


# ----------------------------------------------------------------------
# measurement
# ----------------------------------------------------------------------
def default_jobs(
    quick: bool = False,
    schedulers: Optional[Sequence[str]] = None,
    scales: Optional[Sequence[str]] = None,
    bench: str = DEFAULT_BENCHMARK,
    seed: int = 1,
    repeats: Optional[int] = None,
) -> list[BenchJob]:
    import repro.idealized  # noqa: F401  (registers zero-div)
    from repro.mc.registry import SCHEDULERS

    if schedulers is None:
        schedulers = QUICK_SCHEDULERS if quick else sorted(SCHEDULERS)
    if scales is None:
        scales = ("TINY",) if quick else ("TINY", "QUICK")
    if repeats is None:
        repeats = 2 if quick else 3
    return [
        BenchJob(bench=bench, scheduler=s, scale=scale.upper(),
                 seed=seed, repeats=repeats)
        for scale in scales
        for s in schedulers
    ]


def _measure(job: BenchJob) -> JobMeasurement:
    config = _bench_config(job.scheduler)
    trace = build_benchmark(
        job.bench, config, Scale[job.scale], seed=job.seed
    )
    m = JobMeasurement(job)
    walls = []
    for rep in range(max(1, job.repeats)):
        system = GPUSystem(config, trace)
        t0 = perf_counter()
        stats = system.run()
        walls.append(perf_counter() - t0)
        if rep == 0:
            m.sim_events = system.engine.events_processed
            m.elapsed_ps = stats.elapsed_ps
        elif (system.engine.events_processed, stats.elapsed_ps) != (
            m.sim_events, m.elapsed_ps
        ):
            raise RuntimeError(
                f"{job.job_id}: non-deterministic repeat "
                f"({system.engine.events_processed} events / "
                f"{stats.elapsed_ps} ps vs {m.sim_events} / {m.elapsed_ps})"
            )
    m.sim_wall_s = min(walls)
    m.wall_s_mean = sum(walls) / len(walls)
    return m


def run_bench(
    jobs: Sequence[BenchJob],
    progress: Optional[Callable[[str], None]] = None,
    history: bool = True,
) -> BenchReport:
    """Measure every job and return the aggregate report.

    By default the finished report is also appended to the run-history
    store (docs/observability.md) so the dashboard's perf trajectory
    tracks every bench invocation; ``history=False`` (or
    ``REPRO_HISTORY=0``) skips ingestion.
    """
    say = progress or (lambda _msg: None)
    t0 = perf_counter()
    say("calibrating interpreter speed...")
    cal = calibrate()
    measurements = []
    for i, job in enumerate(jobs):
        m = _measure(job)
        measurements.append(m)
        say(
            f"[{i + 1}/{len(jobs)}] {job.job_id}: "
            f"{m.events_per_sec / 1000.0:.1f}k events/s "
            f"({m.sim_events} events, best {m.sim_wall_s:.3f}s)"
        )
    report = BenchReport(
        jobs=measurements,
        calibration_ops_per_sec=cal,
        wall_s=perf_counter() - t0,
    )
    if history:
        from repro.history import record_run

        # The grid spans schedulers, so the stamped hash identifies the
        # shared single-channel base config (scheduler field excluded by
        # convention: use the gmc member as the representative).
        record = record_run(
            "bench",
            report.to_dict(),
            config_hash=config_hash(_bench_config("gmc")),
        )
        if record is not None:
            say(f"history record {record.record_id} appended")
    return report


# ----------------------------------------------------------------------
# baseline comparison (the CI regression gate)
# ----------------------------------------------------------------------
def load_report(path: str) -> dict:
    with open(path) as fh:
        report = json.load(fh)
    if report.get("schema_version") != BENCH_SCHEMA or report.get("kind") != "core":
        raise ValueError(f"{path} is not a schema-{BENCH_SCHEMA} core bench report")
    return report


def compare_reports(
    current: dict, baseline: dict, tolerance: float = 0.15
) -> tuple[list[str], list[str]]:
    """(per-job summary lines, regression messages) for current vs baseline.

    Jobs are matched by id; throughput is normalized by each report's
    calibration score before comparing, so reports taken on machines of
    different speed remain comparable.  A job regresses when its
    normalized events/sec falls more than ``tolerance`` below baseline.
    """
    cur_cal = current.get("calibration_ops_per_sec") or 1.0
    base_cal = baseline.get("calibration_ops_per_sec") or 1.0
    base_jobs = {j["id"]: j for j in baseline.get("jobs", ())}
    lines: list[str] = []
    regressions: list[str] = []
    for job in current.get("jobs", ()):
        ref = base_jobs.get(job["id"])
        if ref is None or not ref.get("events_per_sec"):
            lines.append(f"{job['id']}: no baseline entry, skipped")
            continue
        cur_norm = job["events_per_sec"] / cur_cal
        base_norm = ref["events_per_sec"] / base_cal
        ratio = cur_norm / base_norm if base_norm > 0 else float("inf")
        lines.append(
            f"{job['id']}: {job['events_per_sec'] / 1000.0:.1f}k events/s, "
            f"{ratio:.2f}x baseline (normalized)"
        )
        if ratio < 1.0 - tolerance:
            regressions.append(
                f"{job['id']} regressed to {ratio:.2f}x of baseline "
                f"(normalized {cur_norm:.3g} vs {base_norm:.3g}, "
                f"tolerance {1.0 - tolerance:.2f}x)"
            )
    return lines, regressions
