"""Terminal chart rendering for experiment results.

Matplotlib-free, dependency-free: grouped horizontal bar charts and
sparklines good enough to eyeball every figure the paper draws, straight
from a terminal.  ``chart_result`` renders an
:class:`~repro.analysis.experiments.ExperimentResult` whose rows are
(benchmark, series...) tuples — i.e. all of Figs. 8-12.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

__all__ = ["hbar_chart", "sparkline", "chart_result"]

_BLOCKS = " ▏▎▍▌▋▊▉█"
_SPARKS = "▁▂▃▄▅▆▇█"


def _bar(value: float, vmax: float, width: int) -> str:
    if vmax <= 0:
        return ""
    frac = max(0.0, min(1.0, value / vmax))
    cells = frac * width
    full = int(cells)
    rem = cells - full
    out = "█" * full
    if rem > 0 and full < width:
        out += _BLOCKS[int(rem * 8) + 1]
    return out


def hbar_chart(
    labels: Sequence[str],
    series: dict[str, Sequence[float]],
    width: int = 40,
    vmax: Optional[float] = None,
    baseline: Optional[float] = None,
    fmt: str = "{:.3f}",
) -> str:
    """Grouped horizontal bar chart.

    ``series`` maps a series name to one value per label.  ``baseline``
    draws a marker column (e.g. 1.0 for normalized-IPC charts).
    """
    if not series:
        raise ValueError("need at least one series")
    for name, vals in series.items():
        if len(vals) != len(labels):
            raise ValueError(f"series {name!r} has {len(vals)} values for "
                             f"{len(labels)} labels")
    all_vals = [v for vals in series.values() for v in vals]
    top = vmax if vmax is not None else max(all_vals + [baseline or 0.0])
    if top <= 0:
        top = 1.0
    label_w = max(len(x) for x in labels)
    name_w = max(len(n) for n in series)
    lines = []
    mark = int(round((baseline / top) * width)) if baseline else None
    for i, label in enumerate(labels):
        for j, (name, vals) in enumerate(series.items()):
            bar = _bar(vals[i], top, width)
            if mark is not None and 0 < mark <= width:
                bar = bar.ljust(width)
                marker = "|" if len(bar) < mark or bar[mark - 1] == " " else "┃"
                bar = bar[: mark - 1] + marker + bar[mark:]
            head = label if j == 0 else ""
            lines.append(
                f"{head:>{label_w}}  {name:<{name_w}} {bar.rstrip():<{width}} "
                + fmt.format(vals[i])
            )
        lines.append("")
    return "\n".join(lines).rstrip()


def sparkline(values: Iterable[float]) -> str:
    """One-line trend, e.g. for windowed bandwidth over time."""
    vals = list(values)
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi == lo:
        return _SPARKS[0] * len(vals)
    return "".join(
        _SPARKS[int((v - lo) / (hi - lo) * (len(_SPARKS) - 1))] for v in vals
    )


def chart_result(result, width: int = 36, baseline: Optional[float] = None) -> str:
    """Render an ExperimentResult's numeric columns as a grouped bar chart."""
    labels = [str(r[0]) for r in result.rows]
    series: dict[str, list[float]] = {}
    for col, name in enumerate(result.headers[1:], start=1):
        vals = []
        ok = True
        for row in result.rows:
            if col >= len(row) or not isinstance(row[col], (int, float)):
                ok = False
                break
            vals.append(float(row[col]))
        if ok:
            series[name] = vals
    if not series:
        return result.table
    return f"{result.experiment}\n" + hbar_chart(
        labels, series, width=width, baseline=baseline
    )
