"""Experiment drivers and reporting for the paper's evaluation."""

from repro.analysis.experiments import (
    ExperimentResult,
    fig2_coalescing,
    fig3_divergence,
    fig4_opportunity,
    fig8_ipc,
    fig9_latency,
    fig10_divergence,
    fig11_bandwidth,
    fig12_writes,
    run_all,
    sec6a_regular,
    sec6b_power,
    sec6c_comparison,
    table1_merb,
)
from repro.analysis.plotting import chart_result, hbar_chart, sparkline
from repro.analysis.report import bar, format_table, geomean, rows_to_csv
from repro.analysis.runner import (
    ExperimentRunner,
    atomic_write_json,
    config_hash,
    prefetch_parallel,
)
from repro.analysis.sweep import SweepJob, SweepReport, load_manifest, run_sweep

__all__ = [
    "ExperimentResult",
    "ExperimentRunner",
    "SweepJob",
    "SweepReport",
    "atomic_write_json",
    "bar",
    "chart_result",
    "config_hash",
    "hbar_chart",
    "load_manifest",
    "prefetch_parallel",
    "run_sweep",
    "sparkline",
    "fig10_divergence",
    "fig11_bandwidth",
    "fig12_writes",
    "fig2_coalescing",
    "fig3_divergence",
    "fig4_opportunity",
    "fig8_ipc",
    "fig9_latency",
    "format_table",
    "geomean",
    "rows_to_csv",
    "run_all",
    "sec6a_regular",
    "sec6b_power",
    "sec6c_comparison",
    "table1_merb",
]
