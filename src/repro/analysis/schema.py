"""Shared schema-version constants for every machine-readable artifact.

Each producer stamps its output with the constant below; the run-history
store (:mod:`repro.history`) validates provenance against the same
constants, so a format change is one edit here plus the producer — no
scattered magic ``1``\\ s.  Bump a constant only on a *breaking* change
to the corresponding document shape; additive keys do not need a bump.

============================  ===========================================
constant                      document
============================  ===========================================
``METRICS_SCHEMA``            ``SimStats.write_metrics`` bundle
``BENCH_SCHEMA``              ``BENCH_core.json`` (``repro bench``)
``SWEEP_SCHEMA``              ``BENCH_sweep.json`` / sweep manifest
``FUZZ_SCHEMA``               fuzz campaign report (``FuzzReport.to_dict``)
``ACCURACY_SCHEMA``           ``results/accuracy.json`` paper-vs-measured
``HISTORY_SCHEMA``            run-history record envelope
============================  ===========================================
"""

from __future__ import annotations

__all__ = [
    "ACCURACY_SCHEMA",
    "BENCH_SCHEMA",
    "FUZZ_SCHEMA",
    "HISTORY_SCHEMA",
    "METRICS_SCHEMA",
    "SWEEP_SCHEMA",
    "provenance_problems",
]

METRICS_SCHEMA = 1
BENCH_SCHEMA = 1
SWEEP_SCHEMA = 1
FUZZ_SCHEMA = 1
ACCURACY_SCHEMA = 1
# v2: envelope gained "worker" (producing cluster worker id, "" local)
# and "attempt" (retry ordinal) — v1 lines read back with the defaults.
HISTORY_SCHEMA = 2

#: Payload kind -> (schema constant, keys every payload of that kind has).
#: The key sets are deliberately minimal: they pin provenance (what
#: produced this document), not the full shape.
_PAYLOAD_CONTRACTS: dict[str, tuple[int, tuple[str, ...]]] = {
    "bench": (BENCH_SCHEMA, ("jobs", "calibration_ops_per_sec")),
    "sweep": (SWEEP_SCHEMA, ("jobs", "config_hash")),
    "fuzz": (FUZZ_SCHEMA, ("campaign_seed", "cases_run")),
    "accuracy": (ACCURACY_SCHEMA, ("entries",)),
}


def provenance_problems(kind: str, payload: dict) -> list[str]:
    """Why ``payload`` is not a valid document of ``kind`` (empty = valid).

    Kinds without a registered contract (e.g. ad-hoc ``benchmarks``
    session records) only need to be dicts — the history store accepts
    them but cannot vouch for their shape.
    """
    if not isinstance(payload, dict):
        return [f"{kind} payload is {type(payload).__name__}, not a dict"]
    contract = _PAYLOAD_CONTRACTS.get(kind)
    if contract is None:
        return []
    want_schema, want_keys = contract
    problems = []
    got = payload.get("schema_version")
    if got != want_schema:
        problems.append(
            f"{kind} payload schema_version {got!r}, expected {want_schema}"
        )
    for key in want_keys:
        if key not in payload:
            problems.append(f"{kind} payload missing key {key!r}")
    return problems
