"""Plain-text table rendering for experiment output.

The paper's figures are bar charts; we regenerate them as aligned ASCII
tables (one row per benchmark, one column per series) plus optional CSV
dumps, which preserves every number a reader would take off the charts.
"""

from __future__ import annotations

import csv
import io
import math
from typing import Iterable, Mapping, Optional, Sequence

__all__ = ["format_table", "rows_to_csv", "geomean", "bar"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render rows as an aligned monospace table."""
    rendered: list[list[str]] = []
    for row in rows:
        out = []
        for cell in row:
            if isinstance(cell, float):
                out.append(float_fmt.format(cell))
            else:
                out.append(str(cell))
        rendered.append(out)
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    parts = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(list(headers)))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(r) for r in rendered)
    return "\n".join(parts)


def rows_to_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(headers)
    writer.writerows(rows)
    return buf.getvalue()


def geomean(values: Iterable[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def bar(value: float, scale: float = 40.0, maximum: float = 2.0) -> str:
    """A tiny ASCII bar for quick visual comparison in terminals."""
    n = int(max(0.0, min(value, maximum)) / maximum * scale)
    return "#" * n
