"""Robust parallel sweep harness over :class:`ExperimentRunner`.

``run_sweep`` executes a (benchmark x scheduler x seed) grid with a
process pool and makes the sweep safe to run at scale:

* **as_completed dispatch** — results are harvested as workers finish,
  with a live progress/ETA line per completion;
* **bounded retry** — a worker exception fails only that job, which is
  resubmitted up to ``retries`` times before being recorded as failed
  (the rest of the sweep always completes);
* **per-job timeout** — a job running past ``timeout_s`` is cancelled if
  still queued, failed (or retried) otherwise;
* **resume manifest** — every completion is appended to a manifest JSON
  in the cache directory; ``resume=True`` skips jobs the manifest marks
  done (whose cache entry still exists), so an interrupted sweep picks
  up exactly where it died with zero re-simulation.  Rows for jobs that
  are no longer in the grid (the grid was edited, the config changed)
  are reconciled on every sweep: still cache-backed rows are marked
  ``stale`` (they become live again if the grid returns), dead rows are
  pruned — orphans cannot accumulate across grid edits;
* **atomic cache writes** — workers publish results via temp-file +
  rename (see :func:`repro.analysis.runner.atomic_write_json`), so
  concurrent workers and readers never see partial JSON;
* **checkpoint resume** — when the runner has ``checkpoint_period_ns``
  set, each job writes periodic engine snapshots
  (:mod:`repro.guardrails.checkpoint`); a crashed or timed-out job's
  retry resumes from its last snapshot instead of re-simulating from
  zero, and a job that fails even its retries records the exception
  type and the snapshot path in the manifest for the next sweep;
* **real timeout enforcement** — with ``timeout_s`` set, jobs run in
  per-job supervised processes (:func:`_run_procs`) that are **killed**
  on expiry, not abandoned: a hung simulation never pins a pool slot,
  and a worker that dies without reporting (OOM-killed, SIGKILL) is
  detected and retried like any other failure;
* **seeded retry backoff** — retries wait out an exponential,
  deterministically-jittered delay (:class:`repro.cluster.RetryPolicy`)
  instead of re-firing instantly; the same policy type drives the
  distributed backend, so local and cluster drains of one grid back off
  identically;
* **distributed drain** — ``cluster_dir=...`` switches dispatch to the
  lease-based shared-filesystem backend (:mod:`repro.cluster`): the
  grid is enqueued as per-job records, ``workers - 1`` independent
  agent processes plus this orchestrator claim and drain them, and the
  manifest is compacted from per-job outcomes.  Without ``cluster_dir``
  nothing changes — the local pool path is byte-for-byte the old
  behavior (graceful degradation, pinned by the pre-existing tests).

The returned :class:`SweepReport` carries per-job wall-clock and
events/sec and serializes to the machine-readable ``BENCH_sweep.json``
(:meth:`SweepReport.write_bench`) that tracks sweep throughput over time.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import subprocess
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass
from typing import Callable, Optional, Sequence

from repro.analysis.runner import ExperimentRunner, atomic_write_json, run_one_job
from repro.analysis.schema import SWEEP_SCHEMA
from repro.cluster.retry import RetryPolicy

__all__ = [
    "JobResult",
    "MANIFEST_NAME",
    "SweepJob",
    "SweepReport",
    "cluster_job_records",
    "cluster_run_meta",
    "load_manifest",
    "run_sweep",
]

MANIFEST_NAME = "sweep-manifest.json"
_MANIFEST_SCHEMA = 1
_POLL_S = 0.25  # wait() tick while enforcing per-job timeouts


@dataclass(frozen=True)
class SweepJob:
    """One cell of the sweep grid (identity includes the config hash)."""

    kind: str
    bench: str
    scheduler: str
    scale: str  # Scale name
    seed: int
    perfect: bool
    config_hash: str

    @property
    def job_id(self) -> str:
        return (
            f"{self.kind}/{self.bench}/{self.scheduler}/{self.scale}"
            f"/s{self.seed}/p{int(self.perfect)}/{self.config_hash}"
        )


@dataclass
class JobResult:
    """Outcome of one sweep job."""

    job: SweepJob
    status: str  # "done" | "failed" | "skipped"
    simulated: bool = False  # False: served from cache (or skipped)
    wall_s: float = 0.0  # worker wall-clock for this job
    sim_events: float = 0.0  # engine events of the producing simulation
    sim_wall_s: float = 0.0  # wall-clock of the producing simulation
    retries: int = 0
    error: str = ""
    error_type: str = ""  # exception class name on failure
    checkpoint: str = ""  # last snapshot of a failed job (resume point)
    worker: str = ""  # cluster worker id that produced this result

    @property
    def events_per_sec(self) -> float:
        return self.sim_events / self.sim_wall_s if self.sim_wall_s > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "id": self.job.job_id,
            "bench": self.job.bench,
            "scheduler": self.job.scheduler,
            "seed": self.job.seed,
            "perfect": self.job.perfect,
            "status": self.status,
            "simulated": self.simulated,
            "wall_s": round(self.wall_s, 4),
            "sim_events": self.sim_events,
            "sim_wall_s": round(self.sim_wall_s, 4),
            "events_per_sec": round(self.events_per_sec, 1),
            "retries": self.retries,
            "error": self.error,
            "error_type": self.error_type,
            "checkpoint": self.checkpoint,
            "worker": self.worker,
        }


class SweepReport:
    """Aggregate outcome of one ``run_sweep`` call."""

    def __init__(
        self,
        results: list[JobResult],
        *,
        scale: str,
        kind: str,
        config_hash: str,
        workers: int,
        wall_s: float,
        scenario_name: str = "",
        scenario_hash: str = "",
    ) -> None:
        self.results = results
        self.scale = scale
        self.kind = kind
        self.config_hash = config_hash
        self.workers = workers
        self.wall_s = wall_s
        # Set when the sweep came from a scenario spec (repro.scenarios):
        # stamped into the history record so runs group by scenario.
        self.scenario_name = scenario_name
        self.scenario_hash = scenario_hash

    def _count(self, status: str) -> int:
        return sum(1 for r in self.results if r.status == status)

    @property
    def n_done(self) -> int:
        return self._count("done")

    @property
    def n_failed(self) -> int:
        return self._count("failed")

    @property
    def n_skipped(self) -> int:
        return self._count("skipped")

    @property
    def n_simulated(self) -> int:
        return sum(1 for r in self.results if r.simulated)

    @property
    def n_cached(self) -> int:
        """Jobs that completed by hitting an existing cache entry."""
        return sum(1 for r in self.results if r.status == "done" and not r.simulated)

    @property
    def failed(self) -> list[JobResult]:
        return [r for r in self.results if r.status == "failed"]

    @property
    def events_total(self) -> float:
        return sum(r.sim_events for r in self.results if r.simulated)

    @property
    def events_per_sec(self) -> float:
        """Aggregate simulation throughput of this sweep invocation."""
        return self.events_total / self.wall_s if self.wall_s > 0 else 0.0

    def raise_on_failure(self) -> None:
        if self.failed:
            lines = ", ".join(
                f"{r.job.job_id} ({r.error.splitlines()[0] if r.error else '?'})"
                for r in self.failed
            )
            raise RuntimeError(f"{self.n_failed} sweep job(s) failed: {lines}")

    def to_dict(self) -> dict:
        return {
            "schema_version": SWEEP_SCHEMA,
            "scale": self.scale,
            "kind": self.kind,
            "config_hash": self.config_hash,
            "scenario_name": self.scenario_name,
            "scenario_hash": self.scenario_hash,
            "workers": self.workers,
            "wall_s": round(self.wall_s, 4),
            "jobs_total": len(self.results),
            "jobs_done": self.n_done,
            "jobs_failed": self.n_failed,
            "jobs_skipped": self.n_skipped,
            "jobs_simulated": self.n_simulated,
            "jobs_cached": self.n_cached,
            "events_total": self.events_total,
            "events_per_sec": round(self.events_per_sec, 1),
            "jobs": [r.to_dict() for r in self.results],
        }

    def write_bench(self, path: str) -> None:
        """Emit the machine-readable sweep benchmark (BENCH_sweep.json)."""
        atomic_write_json(path, self.to_dict())

    def format(self) -> str:
        parts = [
            f"{self.n_done}/{len(self.results)} jobs done",
            f"{self.n_simulated} simulated",
            f"{self.n_cached} cache hits",
        ]
        if self.n_skipped:
            parts.append(f"{self.n_skipped} resumed (skipped)")
        if self.n_failed:
            parts.append(f"{self.n_failed} FAILED")
        rate = self.events_per_sec
        return (
            f"[sweep] {', '.join(parts)} in {self.wall_s:.1f}s"
            + (f" ({rate / 1000.0:.0f}k events/s)" if rate else "")
        )


# ----------------------------------------------------------------------
# manifest
# ----------------------------------------------------------------------
def _manifest_path(cache_dir: str, name: str = MANIFEST_NAME) -> str:
    return os.path.join(cache_dir, name)


def load_manifest(cache_dir: str, name: str = MANIFEST_NAME) -> dict:
    """{job_id: entry} from the sweep manifest (empty if absent/corrupt)."""
    path = _manifest_path(cache_dir, name)
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return {}
    if doc.get("schema_version") != _MANIFEST_SCHEMA:
        return {}
    return doc.get("jobs", {})


def _save_manifest(cache_dir: str, jobs: dict, name: str = MANIFEST_NAME) -> None:
    atomic_write_json(
        _manifest_path(cache_dir, name),
        {"schema_version": _MANIFEST_SCHEMA, "jobs": jobs},
    )


def _cache_file_for(cache_dir: str, job_id: str) -> Optional[str]:
    """Cache path a manifest row's summary lives at, derived from its id.

    Returns None when the path cannot be derived (malformed id, or a
    ``trace``-kind row whose cache name carries a content fingerprint the
    id does not) — callers must then keep the row rather than prune it.
    """
    parts = job_id.split("/")
    if len(parts) != 7 or parts[0] == "trace":
        return None
    return os.path.join(cache_dir, "-".join(parts) + ".json")


def _reconcile_manifest(
    cache_dir: str, manifest: dict, grid_ids: set[str]
) -> tuple[dict, int, int, bool]:
    """Drop or stale-mark manifest rows that are not in the current grid.

    A row whose job is no longer swept but whose cache entry survives is
    marked ``stale: true`` (it turns live again the moment its job
    reappears); a row whose cache entry is gone too is pruned outright.
    Rows in the grid get any old ``stale`` mark cleared.  Returns
    ``(manifest, n_pruned, n_marked_stale, changed)``.
    """
    out: dict = {}
    n_pruned = n_marked = 0
    changed = False
    for job_id, entry in manifest.items():
        if not isinstance(entry, dict):
            changed = True  # malformed row: prune
            n_pruned += 1
            continue
        if job_id in grid_ids:
            if entry.pop("stale", None):
                changed = True
            out[job_id] = entry
            continue
        cache_file = _cache_file_for(cache_dir, job_id)
        if cache_file is None or os.path.exists(cache_file):
            if not entry.get("stale"):
                entry = {**entry, "stale": True}
                n_marked += 1
                changed = True
            out[job_id] = entry
        else:
            n_pruned += 1
            changed = True
    return out, n_pruned, n_marked, changed


# ----------------------------------------------------------------------
# sweep driver
# ----------------------------------------------------------------------
def run_sweep(
    runner: ExperimentRunner,
    benchmarks: Sequence[str],
    schedulers: Sequence[str],
    *,
    perfect: bool = False,
    workers: int = 4,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    resume: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    manifest_name: str = MANIFEST_NAME,
    history: bool = True,
    scenario_name: str = "",
    scenario_hash: str = "",
    retry_policy: Optional[RetryPolicy] = None,
    cluster_dir: Optional[str] = None,
) -> SweepReport:
    """Run the (benchmark x scheduler x seed) grid; returns a report.

    ``workers <= 0`` executes inline (no processes) — same retry/manifest
    semantics, useful under pytest and for debugging.  Jobs communicate
    exclusively through the runner's ``cache_dir``, which is required.

    ``retry_policy`` spaces retry attempts (seeded exponential backoff,
    docs/distributed.md); the default policy retries quickly enough for
    tests while still decorrelating concurrent failers.

    ``cluster_dir`` switches to the fault-tolerant distributed backend:
    the grid is enqueued into a lease-based job store at that path and
    drained by ``workers - 1`` spawned agent processes plus this one
    (any number of additional ``repro cluster worker`` processes — on
    this host or any host sharing the filesystem — may join or leave at
    will).  The report, manifest, caching, and history behavior are
    identical to a local run; ``timeout_s`` is superseded by lease
    expiry there.

    The finished report is appended to the run-history store by default
    (docs/observability.md); ``history=False`` or ``REPRO_HISTORY=0``
    skips ingestion.
    """
    if runner.cache_dir is None:
        raise ValueError("a parallel sweep requires a cache_dir")
    os.makedirs(runner.cache_dir, exist_ok=True)

    jobs: list[SweepJob] = []
    seen: set[str] = set()
    for bench in benchmarks:
        for sched in schedulers:
            for seed in runner.seeds:
                job = SweepJob(
                    kind=runner.kind,
                    bench=bench,
                    scheduler=sched,
                    scale=runner.scale.name,
                    seed=seed,
                    perfect=perfect,
                    config_hash=runner.config_hash,
                )
                if job.job_id not in seen:
                    seen.add(job.job_id)
                    jobs.append(job)

    say = progress if progress is not None else (lambda _msg: None)

    manifest = load_manifest(runner.cache_dir, manifest_name)
    manifest, n_pruned, n_marked, changed = _reconcile_manifest(
        runner.cache_dir, manifest, seen
    )
    if changed:
        _save_manifest(runner.cache_dir, manifest, manifest_name)
    if n_pruned or n_marked:
        say(
            f"[sweep] manifest: {n_pruned} orphaned row(s) pruned, "
            f"{n_marked} marked stale (grid changed since last sweep)"
        )
    results: list[JobResult] = []
    todo: list[SweepJob] = []
    for job in jobs:
        entry = manifest.get(job.job_id)
        cache_file = os.path.join(
            runner.cache_dir,
            runner.cache_name(job.bench, job.scheduler, job.seed, job.perfect),
        )
        if (
            resume
            and entry is not None
            and entry.get("status") == "done"
            and os.path.exists(cache_file)
        ):
            results.append(
                JobResult(
                    job,
                    "skipped",
                    simulated=False,
                    sim_events=entry.get("sim_events", 0.0),
                    sim_wall_s=entry.get("sim_wall_s", 0.0),
                )
            )
        else:
            todo.append(job)

    t0 = time.time()
    total = len(jobs)

    def record(res: JobResult) -> None:
        results.append(res)
        manifest[res.job.job_id] = {
            "status": res.status,
            "simulated": res.simulated,
            "wall_s": round(res.wall_s, 4),
            "sim_events": res.sim_events,
            "sim_wall_s": round(res.sim_wall_s, 4),
            "retries": res.retries,
            "error": res.error,
            "error_type": res.error_type,
            "checkpoint": res.checkpoint,
            "worker": res.worker,
        }
        _save_manifest(runner.cache_dir, manifest, manifest_name)
        finished = len(results)
        elapsed = time.time() - t0
        live = finished - len([r for r in results if r.status == "skipped"])
        eta = (elapsed / live) * (total - finished) if live else 0.0
        n_failed = sum(1 for r in results if r.status == "failed")
        say(
            f"[sweep] {finished}/{total} "
            f"({n_failed} failed) | {elapsed:.0f}s elapsed, eta {eta:.0f}s"
        )

    def payload(job: SweepJob) -> tuple:
        return (
            runner.config,
            job.scale,
            runner.kind,
            job.bench,
            job.scheduler,
            job.seed,
            job.perfect,
            runner.cache_dir,
            runner.checkpoint_period_ns,
            runner.trace_paths or None,
        )

    def fail(
        job: SweepJob, attempt: int, wall_s: float, error: str, error_type: str
    ) -> None:
        """Record a job whose retries are exhausted.

        The manifest entry names the exception type and — when the job
        was checkpointing — its last snapshot, so a later sweep (or a
        human) can resume it from where it died instead of from zero.
        """
        ckpt = runner.checkpoint_path(job.bench, job.scheduler, job.seed, job.perfect)
        record(
            JobResult(
                job,
                "failed",
                wall_s=wall_s,
                retries=attempt,
                error=error,
                error_type=error_type,
                checkpoint=ckpt if ckpt and os.path.exists(ckpt) else "",
            )
        )

    policy = retry_policy if retry_policy is not None else RetryPolicy()

    if todo and cluster_dir is not None:
        _run_cluster(
            cluster_dir, runner, todo, workers, retries, policy,
            record, say, manifest_name,
        )
    elif todo and workers <= 0:
        _run_inline(todo, payload, retries, policy, record, fail, say)
    elif todo and timeout_s is not None:
        _run_procs(
            todo, payload, workers, timeout_s, retries, policy,
            record, fail, say,
        )
    elif todo:
        _run_pool(todo, payload, workers, retries, policy, record, fail, say)

    report = SweepReport(
        results,
        scale=runner.scale.name,
        kind=runner.kind,
        config_hash=runner.config_hash,
        workers=workers,
        wall_s=time.time() - t0,
        scenario_name=scenario_name,
        scenario_hash=scenario_hash,
    )
    say(report.format())
    if history:
        from repro.history import record_run

        record = record_run(
            "sweep", report.to_dict(), config_hash=runner.config_hash
        )
        if record is not None:
            say(f"[sweep] history record {record.record_id} appended")
    return report


def _done_result(job: SweepJob, meta: dict, attempt: int) -> JobResult:
    return JobResult(
        job,
        "done",
        simulated=meta["simulated"],
        wall_s=meta["wall_s"],
        sim_events=meta["sim_events"],
        sim_wall_s=meta["sim_wall_s"],
        retries=attempt,
    )


def _run_inline(todo, payload, retries, policy, record, fail, say) -> None:
    for job in todo:
        attempt = 0
        while True:
            t_start = time.time()
            try:
                _key, _summary, meta = run_one_job(payload(job))
            except Exception as exc:
                if attempt < retries:
                    attempt += 1
                    delay = policy.delay_s(attempt, token=job.job_id)
                    say(f"[sweep] retrying {job.job_id} in {delay:.2f}s: {exc}")
                    time.sleep(delay)
                    continue
                fail(job, attempt, time.time() - t_start, str(exc), type(exc).__name__)
                break
            record(_done_result(job, meta, attempt))
            break


def _run_pool(todo, payload, workers, retries, policy, record, fail, say) -> None:
    """ProcessPoolExecutor dispatch (no per-job timeout — see _run_procs).

    Failed jobs are re-queued after their backoff delay rather than
    resubmitted instantly; the harvest loop keeps draining other
    futures while a retry waits out its delay.
    """
    with ProcessPoolExecutor(max_workers=workers) as pool:
        tracked: dict = {}  # future -> (job, attempt, t_submit)
        deferred: list = []  # (ready_t, job, attempt) awaiting backoff

        def submit(job: SweepJob, attempt: int) -> None:
            try:
                fut = pool.submit(run_one_job, payload(job))
            except Exception as exc:  # pool already broken/shut down
                fail(job, attempt, 0.0, str(exc), type(exc).__name__)
                return
            tracked[fut] = (job, attempt, time.time())

        for job in todo:
            submit(job, 0)

        while tracked or deferred:
            now = time.time()
            for item in [d for d in deferred if d[0] <= now]:
                deferred.remove(item)
                submit(item[1], item[2])
            if not tracked:
                if deferred:
                    naps = max(0.0, min(d[0] for d in deferred) - time.time())
                    time.sleep(min(naps, _POLL_S))
                continue
            done, _pending = wait(
                list(tracked),
                timeout=_POLL_S if deferred else None,
                return_when=FIRST_COMPLETED,
            )
            now = time.time()
            for fut in done:
                job, attempt, t_submit = tracked.pop(fut)
                try:
                    _key, _summary, meta = fut.result()
                except Exception as exc:
                    if attempt < retries:
                        delay = policy.delay_s(attempt + 1, token=job.job_id)
                        say(
                            f"[sweep] retrying {job.job_id} in "
                            f"{delay:.2f}s: {exc}"
                        )
                        deferred.append((now + delay, job, attempt + 1))
                    else:
                        fail(job, attempt, now - t_submit, str(exc), type(exc).__name__)
                else:
                    record(_done_result(job, meta, attempt))


def _proc_entry(conn, job_payload) -> None:
    """Child entry for _run_procs: report (ok, value) through the pipe."""
    try:
        key_summary_meta = run_one_job(job_payload)
    except BaseException as exc:  # noqa: BLE001 - marshalled to the parent
        try:
            conn.send(("err", (str(exc), type(exc).__name__)))
        finally:
            conn.close()
        return
    conn.send(("ok", key_summary_meta))
    conn.close()


def _run_procs(
    todo, payload, workers, timeout_s, retries, policy, record, fail, say
) -> None:
    """Per-job supervised processes: timeouts *kill* the worker.

    The old pool path could only ``Future.cancel()`` a timed-out job —
    a worker already running was abandoned and kept its pool slot until
    it finished (possibly never).  Here every job is its own
    ``multiprocessing.Process``: on expiry the supervisor SIGKILLs it,
    reclaims the slot immediately, and retries under the backoff
    policy.  A worker that dies *without* reporting a result (OOM
    killer, crash) is detected by exit-code and handled the same way —
    one dead worker never poisons the rest of the sweep (the executor
    path would raise BrokenProcessPool for every in-flight future).
    """
    ctx = multiprocessing.get_context()
    queue: list = [(job, 0, 0.0) for job in todo]  # (job, attempt, ready_t)
    running: dict = {}  # proc -> (job, attempt, t_start, recv_conn)

    def finish(proc) -> None:
        _job, _attempt, _t, recv = running.pop(proc)
        recv.close()
        if proc.is_alive():
            proc.kill()
        proc.join(timeout=5.0)

    def retry_or_fail(job, attempt, wall_s, error, error_type) -> None:
        if attempt < retries:
            delay = policy.delay_s(attempt + 1, token=job.job_id)
            say(f"[sweep] retrying {job.job_id} in {delay:.2f}s: {error}")
            queue.append((job, attempt + 1, time.time() + delay))
        else:
            fail(job, attempt, wall_s, error, error_type)

    while queue or running:
        now = time.time()
        for item in [q for q in queue if q[2] <= now]:
            if len(running) >= max(1, workers):
                break
            queue.remove(item)
            job, attempt, _ready = item
            recv, send = ctx.Pipe(duplex=False)
            proc = ctx.Process(target=_proc_entry, args=(send, payload(job)))
            proc.daemon = True
            proc.start()
            send.close()  # child's end; parent sees EOF if the child dies
            running[proc] = (job, attempt, time.time(), recv)

        progressed = False
        for proc in list(running):
            job, attempt, t_start, recv = running[proc]
            message = None
            if recv.poll(0):
                try:
                    message = recv.recv()
                except (EOFError, OSError):
                    message = None  # died mid-send: treated as a crash
            if message is not None:
                finish(proc)
                progressed = True
                status, value = message
                if status == "ok":
                    _key, _summary, meta = value
                    record(_done_result(job, meta, attempt))
                else:
                    error, error_type = value
                    retry_or_fail(job, attempt, time.time() - t_start,
                                  error, error_type)
            elif not proc.is_alive():
                exitcode = proc.exitcode
                finish(proc)
                progressed = True
                retry_or_fail(
                    job, attempt, time.time() - t_start,
                    f"worker died without reporting (exit code {exitcode})",
                    "WorkerCrashed",
                )
            elif time.time() - t_start > timeout_s:
                proc.kill()  # actually terminate — never abandon the job
                finish(proc)
                progressed = True
                say(f"[sweep] killed {job.job_id} after {timeout_s:.0f}s")
                retry_or_fail(
                    job, attempt, time.time() - t_start,
                    f"timeout after {timeout_s:.0f}s", "TimeoutError",
                )
        if not progressed:
            time.sleep(min(_POLL_S, 0.05))


# ----------------------------------------------------------------------
# distributed (cluster) dispatch
# ----------------------------------------------------------------------
def cluster_job_records(jobs: Sequence[SweepJob]) -> list[dict]:
    """Per-job store records for a grid (what workers need to run one)."""
    return [
        {
            "id": job.job_id,
            "kind": job.kind,
            "bench": job.bench,
            "scheduler": job.scheduler,
            "scale": job.scale,
            "seed": job.seed,
            "perfect": job.perfect,
            "config_hash": job.config_hash,
        }
        for job in jobs
    ]


def cluster_run_meta(
    runner: ExperimentRunner,
    *,
    retries: int = 1,
    policy: Optional[RetryPolicy] = None,
    manifest_name: str = MANIFEST_NAME,
    heartbeat_s: float = 2.0,
    lease_expiry_s: float = 10.0,
    quarantine_owners: int = 3,
) -> dict:
    """The immutable ``run.json`` document for a cluster run.

    Carries everything a bare worker process needs to reconstruct the
    exact simulation (the config as data, cache dir, checkpoint period,
    traces) plus the fleet's shared knobs (lease timings, retry budget
    and backoff policy, quarantine bound).
    """
    return {
        "config": asdict(runner.config),
        "config_hash": runner.config_hash,
        "cache_dir": os.path.abspath(runner.cache_dir),
        "kind": runner.kind,
        "scale": runner.scale.name,
        "checkpoint_period_ns": runner.checkpoint_period_ns,
        "trace_paths": runner.trace_paths or None,
        "manifest_name": manifest_name,
        "retries": retries,
        "policy": (policy or RetryPolicy()).to_dict(),
        "heartbeat_s": heartbeat_s,
        "lease_expiry_s": lease_expiry_s,
        "quarantine_owners": quarantine_owners,
    }


def _agent_env() -> dict:
    """Env for spawned agents: make sure they can import this repro."""
    env = dict(os.environ)
    pkg_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        pkg_root + (os.pathsep + existing if existing else "")
    )
    return env


def _run_cluster(
    cluster_dir, runner, todo, workers, retries, policy, record, say,
    manifest_name,
) -> None:
    """Drain the grid through the lease-based distributed backend.

    The orchestrator enqueues per-job records, spawns ``workers - 1``
    agent subprocesses (``repro cluster worker``), and participates in
    the drain itself — so ``workers=N`` costs N processes either way,
    and ``workers<=1`` degrades to a single-process drain that still
    exercises the full store protocol.  Outcomes are harvested into the
    ordinary record() path, so the manifest, report, and history are
    exactly what a local run produces.
    """
    from repro.cluster.store import JobStore
    from repro.cluster.worker import ClusterWorker, default_worker_id

    store = JobStore.create(
        cluster_dir,
        cluster_run_meta(
            runner, retries=retries, policy=policy,
            manifest_name=manifest_name,
        ),
    )
    n_new = store.ensure_jobs(cluster_job_records(todo))
    say(
        f"[cluster] {n_new} job(s) enqueued into {store.root} "
        f"({len(todo) - n_new} already present)"
    )

    agents: list = []
    for i in range(max(0, workers - 1)):
        agents.append(
            subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "cluster", "worker",
                    store.root, "--worker-id",
                    f"agent{i}-{default_worker_id()}",
                ],
                env=_agent_env(),
                stdout=subprocess.DEVNULL,
            )
        )
    if agents:
        say(f"[cluster] spawned {len(agents)} agent process(es)")

    me = ClusterWorker(
        store, worker_id=f"orch-{default_worker_id()}", progress=say
    )
    try:
        me.drain()  # returns when every job is done/failed/quarantined
    finally:
        for proc in agents:
            try:
                proc.wait(timeout=2.0 * store.lease_expiry_s)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10.0)

    for job in todo:
        outcome = store.outcome(job.job_id)
        if outcome is None:
            quarantine = store.quarantined(job.job_id) or {}
            record(JobResult(
                job,
                "failed",
                retries=int(quarantine.get("failures", 0)),
                error=str(quarantine.get("error", "no outcome recorded")),
                error_type="Quarantined" if quarantine else "NoOutcome",
                worker="",
            ))
            continue
        record(JobResult(
            job,
            str(outcome.get("status", "done")),
            simulated=bool(outcome.get("simulated", False)),
            wall_s=float(outcome.get("wall_s", 0.0)),
            sim_events=float(outcome.get("sim_events", 0.0)),
            sim_wall_s=float(outcome.get("sim_wall_s", 0.0)),
            retries=int(outcome.get("retries", 0)),
            error=str(outcome.get("error", "")),
            error_type=str(outcome.get("error_type", "")),
            checkpoint=str(outcome.get("checkpoint", "")),
            worker=str(outcome.get("worker", "")),
        ))
