"""Robust parallel sweep harness over :class:`ExperimentRunner`.

``run_sweep`` executes a (benchmark x scheduler x seed) grid with a
process pool and makes the sweep safe to run at scale:

* **as_completed dispatch** — results are harvested as workers finish,
  with a live progress/ETA line per completion;
* **bounded retry** — a worker exception fails only that job, which is
  resubmitted up to ``retries`` times before being recorded as failed
  (the rest of the sweep always completes);
* **per-job timeout** — a job running past ``timeout_s`` is cancelled if
  still queued, failed (or retried) otherwise;
* **resume manifest** — every completion is appended to a manifest JSON
  in the cache directory; ``resume=True`` skips jobs the manifest marks
  done (whose cache entry still exists), so an interrupted sweep picks
  up exactly where it died with zero re-simulation.  Rows for jobs that
  are no longer in the grid (the grid was edited, the config changed)
  are reconciled on every sweep: still cache-backed rows are marked
  ``stale`` (they become live again if the grid returns), dead rows are
  pruned — orphans cannot accumulate across grid edits;
* **atomic cache writes** — workers publish results via temp-file +
  rename (see :func:`repro.analysis.runner.atomic_write_json`), so
  concurrent workers and readers never see partial JSON;
* **checkpoint resume** — when the runner has ``checkpoint_period_ns``
  set, each job writes periodic engine snapshots
  (:mod:`repro.guardrails.checkpoint`); a crashed or timed-out job's
  retry resumes from its last snapshot instead of re-simulating from
  zero, and a job that fails even its retries records the exception
  type and the snapshot path in the manifest for the next sweep.

The returned :class:`SweepReport` carries per-job wall-clock and
events/sec and serializes to the machine-readable ``BENCH_sweep.json``
(:meth:`SweepReport.write_bench`) that tracks sweep throughput over time.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.analysis.runner import ExperimentRunner, atomic_write_json, run_one_job
from repro.analysis.schema import SWEEP_SCHEMA

__all__ = [
    "JobResult",
    "MANIFEST_NAME",
    "SweepJob",
    "SweepReport",
    "load_manifest",
    "run_sweep",
]

MANIFEST_NAME = "sweep-manifest.json"
_MANIFEST_SCHEMA = 1
_POLL_S = 0.25  # wait() tick while enforcing per-job timeouts


@dataclass(frozen=True)
class SweepJob:
    """One cell of the sweep grid (identity includes the config hash)."""

    kind: str
    bench: str
    scheduler: str
    scale: str  # Scale name
    seed: int
    perfect: bool
    config_hash: str

    @property
    def job_id(self) -> str:
        return (
            f"{self.kind}/{self.bench}/{self.scheduler}/{self.scale}"
            f"/s{self.seed}/p{int(self.perfect)}/{self.config_hash}"
        )


@dataclass
class JobResult:
    """Outcome of one sweep job."""

    job: SweepJob
    status: str  # "done" | "failed" | "skipped"
    simulated: bool = False  # False: served from cache (or skipped)
    wall_s: float = 0.0  # worker wall-clock for this job
    sim_events: float = 0.0  # engine events of the producing simulation
    sim_wall_s: float = 0.0  # wall-clock of the producing simulation
    retries: int = 0
    error: str = ""
    error_type: str = ""  # exception class name on failure
    checkpoint: str = ""  # last snapshot of a failed job (resume point)

    @property
    def events_per_sec(self) -> float:
        return self.sim_events / self.sim_wall_s if self.sim_wall_s > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "id": self.job.job_id,
            "bench": self.job.bench,
            "scheduler": self.job.scheduler,
            "seed": self.job.seed,
            "perfect": self.job.perfect,
            "status": self.status,
            "simulated": self.simulated,
            "wall_s": round(self.wall_s, 4),
            "sim_events": self.sim_events,
            "sim_wall_s": round(self.sim_wall_s, 4),
            "events_per_sec": round(self.events_per_sec, 1),
            "retries": self.retries,
            "error": self.error,
            "error_type": self.error_type,
            "checkpoint": self.checkpoint,
        }


class SweepReport:
    """Aggregate outcome of one ``run_sweep`` call."""

    def __init__(
        self,
        results: list[JobResult],
        *,
        scale: str,
        kind: str,
        config_hash: str,
        workers: int,
        wall_s: float,
        scenario_name: str = "",
        scenario_hash: str = "",
    ) -> None:
        self.results = results
        self.scale = scale
        self.kind = kind
        self.config_hash = config_hash
        self.workers = workers
        self.wall_s = wall_s
        # Set when the sweep came from a scenario spec (repro.scenarios):
        # stamped into the history record so runs group by scenario.
        self.scenario_name = scenario_name
        self.scenario_hash = scenario_hash

    def _count(self, status: str) -> int:
        return sum(1 for r in self.results if r.status == status)

    @property
    def n_done(self) -> int:
        return self._count("done")

    @property
    def n_failed(self) -> int:
        return self._count("failed")

    @property
    def n_skipped(self) -> int:
        return self._count("skipped")

    @property
    def n_simulated(self) -> int:
        return sum(1 for r in self.results if r.simulated)

    @property
    def n_cached(self) -> int:
        """Jobs that completed by hitting an existing cache entry."""
        return sum(1 for r in self.results if r.status == "done" and not r.simulated)

    @property
    def failed(self) -> list[JobResult]:
        return [r for r in self.results if r.status == "failed"]

    @property
    def events_total(self) -> float:
        return sum(r.sim_events for r in self.results if r.simulated)

    @property
    def events_per_sec(self) -> float:
        """Aggregate simulation throughput of this sweep invocation."""
        return self.events_total / self.wall_s if self.wall_s > 0 else 0.0

    def raise_on_failure(self) -> None:
        if self.failed:
            lines = ", ".join(
                f"{r.job.job_id} ({r.error.splitlines()[0] if r.error else '?'})"
                for r in self.failed
            )
            raise RuntimeError(f"{self.n_failed} sweep job(s) failed: {lines}")

    def to_dict(self) -> dict:
        return {
            "schema_version": SWEEP_SCHEMA,
            "scale": self.scale,
            "kind": self.kind,
            "config_hash": self.config_hash,
            "scenario_name": self.scenario_name,
            "scenario_hash": self.scenario_hash,
            "workers": self.workers,
            "wall_s": round(self.wall_s, 4),
            "jobs_total": len(self.results),
            "jobs_done": self.n_done,
            "jobs_failed": self.n_failed,
            "jobs_skipped": self.n_skipped,
            "jobs_simulated": self.n_simulated,
            "jobs_cached": self.n_cached,
            "events_total": self.events_total,
            "events_per_sec": round(self.events_per_sec, 1),
            "jobs": [r.to_dict() for r in self.results],
        }

    def write_bench(self, path: str) -> None:
        """Emit the machine-readable sweep benchmark (BENCH_sweep.json)."""
        atomic_write_json(path, self.to_dict())

    def format(self) -> str:
        parts = [
            f"{self.n_done}/{len(self.results)} jobs done",
            f"{self.n_simulated} simulated",
            f"{self.n_cached} cache hits",
        ]
        if self.n_skipped:
            parts.append(f"{self.n_skipped} resumed (skipped)")
        if self.n_failed:
            parts.append(f"{self.n_failed} FAILED")
        rate = self.events_per_sec
        return (
            f"[sweep] {', '.join(parts)} in {self.wall_s:.1f}s"
            + (f" ({rate / 1000.0:.0f}k events/s)" if rate else "")
        )


# ----------------------------------------------------------------------
# manifest
# ----------------------------------------------------------------------
def _manifest_path(cache_dir: str, name: str = MANIFEST_NAME) -> str:
    return os.path.join(cache_dir, name)


def load_manifest(cache_dir: str, name: str = MANIFEST_NAME) -> dict:
    """{job_id: entry} from the sweep manifest (empty if absent/corrupt)."""
    path = _manifest_path(cache_dir, name)
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return {}
    if doc.get("schema_version") != _MANIFEST_SCHEMA:
        return {}
    return doc.get("jobs", {})


def _save_manifest(cache_dir: str, jobs: dict, name: str = MANIFEST_NAME) -> None:
    atomic_write_json(
        _manifest_path(cache_dir, name),
        {"schema_version": _MANIFEST_SCHEMA, "jobs": jobs},
    )


def _cache_file_for(cache_dir: str, job_id: str) -> Optional[str]:
    """Cache path a manifest row's summary lives at, derived from its id.

    Returns None when the path cannot be derived (malformed id, or a
    ``trace``-kind row whose cache name carries a content fingerprint the
    id does not) — callers must then keep the row rather than prune it.
    """
    parts = job_id.split("/")
    if len(parts) != 7 or parts[0] == "trace":
        return None
    return os.path.join(cache_dir, "-".join(parts) + ".json")


def _reconcile_manifest(
    cache_dir: str, manifest: dict, grid_ids: set[str]
) -> tuple[dict, int, int, bool]:
    """Drop or stale-mark manifest rows that are not in the current grid.

    A row whose job is no longer swept but whose cache entry survives is
    marked ``stale: true`` (it turns live again the moment its job
    reappears); a row whose cache entry is gone too is pruned outright.
    Rows in the grid get any old ``stale`` mark cleared.  Returns
    ``(manifest, n_pruned, n_marked_stale, changed)``.
    """
    out: dict = {}
    n_pruned = n_marked = 0
    changed = False
    for job_id, entry in manifest.items():
        if not isinstance(entry, dict):
            changed = True  # malformed row: prune
            n_pruned += 1
            continue
        if job_id in grid_ids:
            if entry.pop("stale", None):
                changed = True
            out[job_id] = entry
            continue
        cache_file = _cache_file_for(cache_dir, job_id)
        if cache_file is None or os.path.exists(cache_file):
            if not entry.get("stale"):
                entry = {**entry, "stale": True}
                n_marked += 1
                changed = True
            out[job_id] = entry
        else:
            n_pruned += 1
            changed = True
    return out, n_pruned, n_marked, changed


# ----------------------------------------------------------------------
# sweep driver
# ----------------------------------------------------------------------
def run_sweep(
    runner: ExperimentRunner,
    benchmarks: Sequence[str],
    schedulers: Sequence[str],
    *,
    perfect: bool = False,
    workers: int = 4,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    resume: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    manifest_name: str = MANIFEST_NAME,
    history: bool = True,
    scenario_name: str = "",
    scenario_hash: str = "",
) -> SweepReport:
    """Run the (benchmark x scheduler x seed) grid; returns a report.

    ``workers <= 0`` executes inline (no processes) — same retry/manifest
    semantics, useful under pytest and for debugging.  Jobs communicate
    exclusively through the runner's ``cache_dir``, which is required.

    The finished report is appended to the run-history store by default
    (docs/observability.md); ``history=False`` or ``REPRO_HISTORY=0``
    skips ingestion.
    """
    if runner.cache_dir is None:
        raise ValueError("a parallel sweep requires a cache_dir")
    os.makedirs(runner.cache_dir, exist_ok=True)

    jobs: list[SweepJob] = []
    seen: set[str] = set()
    for bench in benchmarks:
        for sched in schedulers:
            for seed in runner.seeds:
                job = SweepJob(
                    kind=runner.kind,
                    bench=bench,
                    scheduler=sched,
                    scale=runner.scale.name,
                    seed=seed,
                    perfect=perfect,
                    config_hash=runner.config_hash,
                )
                if job.job_id not in seen:
                    seen.add(job.job_id)
                    jobs.append(job)

    say = progress if progress is not None else (lambda _msg: None)

    manifest = load_manifest(runner.cache_dir, manifest_name)
    manifest, n_pruned, n_marked, changed = _reconcile_manifest(
        runner.cache_dir, manifest, seen
    )
    if changed:
        _save_manifest(runner.cache_dir, manifest, manifest_name)
    if n_pruned or n_marked:
        say(
            f"[sweep] manifest: {n_pruned} orphaned row(s) pruned, "
            f"{n_marked} marked stale (grid changed since last sweep)"
        )
    results: list[JobResult] = []
    todo: list[SweepJob] = []
    for job in jobs:
        entry = manifest.get(job.job_id)
        cache_file = os.path.join(
            runner.cache_dir,
            runner.cache_name(job.bench, job.scheduler, job.seed, job.perfect),
        )
        if (
            resume
            and entry is not None
            and entry.get("status") == "done"
            and os.path.exists(cache_file)
        ):
            results.append(
                JobResult(
                    job,
                    "skipped",
                    simulated=False,
                    sim_events=entry.get("sim_events", 0.0),
                    sim_wall_s=entry.get("sim_wall_s", 0.0),
                )
            )
        else:
            todo.append(job)

    t0 = time.time()
    total = len(jobs)

    def record(res: JobResult) -> None:
        results.append(res)
        manifest[res.job.job_id] = {
            "status": res.status,
            "simulated": res.simulated,
            "wall_s": round(res.wall_s, 4),
            "sim_events": res.sim_events,
            "sim_wall_s": round(res.sim_wall_s, 4),
            "retries": res.retries,
            "error": res.error,
            "error_type": res.error_type,
            "checkpoint": res.checkpoint,
        }
        _save_manifest(runner.cache_dir, manifest, manifest_name)
        finished = len(results)
        elapsed = time.time() - t0
        live = finished - len([r for r in results if r.status == "skipped"])
        eta = (elapsed / live) * (total - finished) if live else 0.0
        n_failed = sum(1 for r in results if r.status == "failed")
        say(
            f"[sweep] {finished}/{total} "
            f"({n_failed} failed) | {elapsed:.0f}s elapsed, eta {eta:.0f}s"
        )

    def payload(job: SweepJob) -> tuple:
        return (
            runner.config,
            job.scale,
            runner.kind,
            job.bench,
            job.scheduler,
            job.seed,
            job.perfect,
            runner.cache_dir,
            runner.checkpoint_period_ns,
            runner.trace_paths or None,
        )

    def fail(
        job: SweepJob, attempt: int, wall_s: float, error: str, error_type: str
    ) -> None:
        """Record a job whose retries are exhausted.

        The manifest entry names the exception type and — when the job
        was checkpointing — its last snapshot, so a later sweep (or a
        human) can resume it from where it died instead of from zero.
        """
        ckpt = runner.checkpoint_path(job.bench, job.scheduler, job.seed, job.perfect)
        record(
            JobResult(
                job,
                "failed",
                wall_s=wall_s,
                retries=attempt,
                error=error,
                error_type=error_type,
                checkpoint=ckpt if ckpt and os.path.exists(ckpt) else "",
            )
        )

    if todo and workers <= 0:
        _run_inline(todo, payload, retries, record, fail, say)
    elif todo:
        _run_pool(todo, payload, workers, timeout_s, retries, record, fail, say)

    report = SweepReport(
        results,
        scale=runner.scale.name,
        kind=runner.kind,
        config_hash=runner.config_hash,
        workers=workers,
        wall_s=time.time() - t0,
        scenario_name=scenario_name,
        scenario_hash=scenario_hash,
    )
    say(report.format())
    if history:
        from repro.history import record_run

        record = record_run(
            "sweep", report.to_dict(), config_hash=runner.config_hash
        )
        if record is not None:
            say(f"[sweep] history record {record.record_id} appended")
    return report


def _run_inline(todo, payload, retries, record, fail, say) -> None:
    for job in todo:
        attempt = 0
        while True:
            t_start = time.time()
            try:
                _key, _summary, meta = run_one_job(payload(job))
            except Exception as exc:
                if attempt < retries:
                    attempt += 1
                    say(f"[sweep] retrying {job.job_id}: {exc}")
                    continue
                fail(job, attempt, time.time() - t_start, str(exc), type(exc).__name__)
                break
            record(
                JobResult(
                    job,
                    "done",
                    simulated=meta["simulated"],
                    wall_s=meta["wall_s"],
                    sim_events=meta["sim_events"],
                    sim_wall_s=meta["sim_wall_s"],
                    retries=attempt,
                )
            )
            break


def _run_pool(todo, payload, workers, timeout_s, retries, record, fail, say) -> None:
    with ProcessPoolExecutor(max_workers=workers) as pool:
        tracked: dict = {}  # future -> (job, attempt, t_submit)

        def submit(job: SweepJob, attempt: int) -> None:
            try:
                fut = pool.submit(run_one_job, payload(job))
            except Exception as exc:  # pool already broken/shut down
                fail(job, attempt, 0.0, str(exc), type(exc).__name__)
                return
            tracked[fut] = (job, attempt, time.time())

        for job in todo:
            submit(job, 0)

        while tracked:
            done, _pending = wait(
                list(tracked),
                timeout=_POLL_S if timeout_s is not None else None,
                return_when=FIRST_COMPLETED,
            )
            now = time.time()
            for fut in done:
                job, attempt, t_submit = tracked.pop(fut)
                try:
                    _key, _summary, meta = fut.result()
                except Exception as exc:
                    if attempt < retries:
                        say(f"[sweep] retrying {job.job_id}: {exc}")
                        submit(job, attempt + 1)
                    else:
                        fail(job, attempt, now - t_submit, str(exc), type(exc).__name__)
                else:
                    record(
                        JobResult(
                            job,
                            "done",
                            simulated=meta["simulated"],
                            wall_s=meta["wall_s"],
                            sim_events=meta["sim_events"],
                            sim_wall_s=meta["sim_wall_s"],
                            retries=attempt,
                        )
                    )
            if timeout_s is None:
                continue
            for fut in list(tracked):
                job, attempt, t_submit = tracked[fut]
                if now - t_submit <= timeout_s:
                    continue
                # Cancel if still queued; a running worker process cannot
                # be killed through the pool API — the job is abandoned
                # (its eventual result is ignored) and the slot freed when
                # it finishes.
                fut.cancel()
                del tracked[fut]
                if attempt < retries:
                    say(f"[sweep] timeout, retrying {job.job_id}")
                    submit(job, attempt + 1)
                else:
                    fail(
                        job,
                        attempt,
                        now - t_submit,
                        f"timeout after {timeout_s:.0f}s",
                        "TimeoutError",
                    )
