"""Differential + metamorphic fuzzing for the simulator (docs/robustness.md).

The fuzzer closes the loop that PR 3's guardrails opened: a seeded
:class:`CaseGenerator` draws random-but-valid configs and workloads, the
oracle catalogue (:mod:`repro.fuzz.oracles`) checks every registered
scheduler against differential and metamorphic invariants, and failures
are delta-debugged (:mod:`repro.fuzz.minimizer`) into replayable JSON
artifacts (:mod:`repro.fuzz.artifact`).

Entry points::

    python -m repro fuzz --iterations 25 --seed 0
    python -m repro fuzz --time-budget 60 --seed 0
    python -m repro fuzz --replay fuzz-artifacts/case-0007-invariants.json
"""

from repro.fuzz.artifact import load_artifact, save_artifact
from repro.fuzz.generator import CaseGenerator, FuzzCase
from repro.fuzz.harness import FuzzFailure, FuzzReport, run_campaign
from repro.fuzz.minimizer import minimize
from repro.fuzz.oracles import ORACLES, OracleFailure, check_case, run_oracle

__all__ = [
    "CaseGenerator",
    "FuzzCase",
    "FuzzFailure",
    "FuzzReport",
    "ORACLES",
    "OracleFailure",
    "check_case",
    "load_artifact",
    "minimize",
    "run_campaign",
    "run_oracle",
    "save_artifact",
]
