"""Seeded generation of random-but-valid fuzz cases.

A *case* is a (``SimConfig``, ``KernelTrace``) pair plus the recipe that
produced it.  Case ``i`` of campaign seed ``s`` is derived entirely from
``np.random.default_rng((s, i))`` — no wall clock, no global RNG — so the
case stream is reproducible across processes and the time budget can
only truncate it, never reshuffle it.

Configs are sampled *constructively* against :meth:`SimConfig.validate`:
dependent GDDR5 timings are clamped up to their physical floors (ceiling
at the 3-decimal granularity the timing tables use) instead of being
rejection-sampled, so almost every draw is valid on the first try; the
validator still runs as the final filter.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.config import (
    CacheConfig,
    DRAMOrgConfig,
    DRAMTimingConfig,
    GPUConfig,
    MCConfig,
    SimConfig,
)
from repro.workloads.mutate import MUTATORS, mutate_trace, truncate_warps
from repro.workloads.profiles import ALL_PROFILES
from repro.workloads.suite import Scale, build_benchmark
from repro.workloads.synthetic import synthetic_trace
from repro.workloads.trace import KernelTrace

__all__ = ["FuzzCase", "CaseGenerator"]

# Cheap algorithmic kernels (sub-second builds at TINY scale); the heavy
# graph benchmarks are exercised by the sweep CI, not the fuzzer.
_ALGORITHMIC = ("sad", "spmv")

_MAX_WARPS = 48


@dataclass
class FuzzCase:
    """One generated (config, workload) pair."""

    index: int
    campaign_seed: int
    config: SimConfig
    trace: KernelTrace
    recipe: dict = field(default_factory=dict)


def _ceil3(x: float) -> float:
    """Round up to 3 decimals (the granularity of the timing tables)."""
    return math.ceil(x * 1000.0 - 1e-9) / 1000.0


def _perturb(rng: np.random.Generator, base: float, lo: float = 0.8, hi: float = 1.3) -> float:
    return round(base * rng.uniform(lo, hi), 3)


class CaseGenerator:
    """Derives the deterministic case stream of one campaign seed."""

    def __init__(self, seed: int) -> None:
        self.seed = seed

    def case(self, index: int) -> FuzzCase:
        rng = np.random.default_rng((self.seed, index))
        # A quarter of cases run an *MC-stress* regime: caches off, tiny
        # write queue, write-heavy workload.  That keeps reads and bursty
        # writebacks colliding at the controller — the corner where the
        # forwarding/overflow machinery actually executes; cache-filtered
        # traffic almost never reaches it.
        stress = bool(rng.random() < 0.25)
        config = self._sample_config(rng, stress)
        trace, recipe = self._sample_workload(rng, config, stress)
        recipe["config_recipe"] = "mc-stress" if stress else "sampled"
        return FuzzCase(
            index=index,
            campaign_seed=self.seed,
            config=config,
            trace=trace,
            recipe=recipe,
        )

    # ------------------------------------------------------------------
    # config sampling
    # ------------------------------------------------------------------
    def _sample_config(self, rng: np.random.Generator, stress: bool = False) -> SimConfig:
        for _ in range(8):
            try:
                return self._draw_config(rng, stress)
            except ValueError:
                continue  # validate() rejected a rare corner; redraw
        # Constructive clamping makes this unreachable in practice.
        return SimConfig().small()

    def _draw_config(self, rng: np.random.Generator, stress: bool = False) -> SimConfig:
        base = DRAMTimingConfig()
        trcd = _perturb(rng, base.trcd_ns)
        trp = _perturb(rng, base.trp_ns)
        tcas = _perturb(rng, base.tcas_ns)
        trtp = _perturb(rng, base.trtp_ns)
        trrd = _perturb(rng, base.trrd_ns)
        twtr = _perturb(rng, base.twtr_ns)
        twr = _perturb(rng, base.twr_ns)
        # Dependent windows: perturb, then clamp up to their floors.
        tras = max(_perturb(rng, base.tras_ns), _ceil3(trcd + trtp))
        trc = max(_perturb(rng, base.trc_ns), _ceil3(tras + trp))
        tfaw = max(_perturb(rng, base.tfaw_ns), _ceil3(4 * trrd))
        timing = dataclasses.replace(
            base,
            trcd_ns=trcd, trp_ns=trp, tcas_ns=tcas, trtp_ns=trtp,
            trrd_ns=trrd, twtr_ns=twtr, twr_ns=twr,
            tras_ns=tras, trc_ns=trc, tfaw_ns=tfaw,
        )

        banks = int(rng.choice([4, 8, 16]))
        group_choices = [g for g in (2, 4, 8) if banks % g == 0 and g <= banks]
        org = DRAMOrgConfig(
            num_channels=int(rng.integers(1, 4)),
            banks_per_channel=banks,
            banks_per_group=int(rng.choice(group_choices)),
            rows_per_bank=int(rng.choice([512, 1024, 4096])),
        )

        wq = int(rng.choice([2, 4] if stress else [4, 8, 16, 32, 64]))
        high = max(2, wq // 2)
        mc = MCConfig(
            read_queue_entries=int(rng.choice([8, 16, 32, 64])),
            write_queue_entries=wq,
            write_high_watermark=high,
            write_low_watermark=high // 2,
            row_sorter_entries=int(rng.choice([16, 32, 64, 128])),
            warp_sorter_entries=int(rng.choice([16, 32, 64, 128])),
            command_queue_depth=int(rng.choice([1, 2] if stress else [1, 2, 4, 8])),
            age_threshold_ns=float(rng.choice([200.0, 500.0, 1000.0, 2000.0])),
            max_row_hit_streak=int(rng.choice([4, 8, 16, 32])),
            wgw_drain_guard_entries=int(rng.choice([2, 4, 8])),
            sbwas_alpha=float(rng.choice([0.25, 0.5, 0.75])),
        )

        gpu_base = GPUConfig()
        gpu = dataclasses.replace(
            gpu_base,
            num_sms=int(rng.integers(1, 5)),
            l1=dataclasses.replace(
                gpu_base.l1, size_bytes=int(rng.choice([16, 32])) * 1024
            ),
            l2_slice=dataclasses.replace(
                gpu_base.l2_slice, size_bytes=int(rng.choice([64, 128])) * 1024
            ),
        )

        return SimConfig(
            gpu=gpu,
            dram_timing=timing,
            dram_org=org,
            mc=mc,
            use_l1=False if stress else bool(rng.random() < 0.8),
            use_l2=False if stress else bool(rng.random() < 0.8),
            use_tlb=bool(rng.random() < 0.1),
            seed=int(rng.integers(1, 2**31)),
        )

    # ------------------------------------------------------------------
    # workload sampling
    # ------------------------------------------------------------------
    def _sample_workload(
        self, rng: np.random.Generator, config: SimConfig, stress: bool = False
    ) -> tuple[KernelTrace, dict]:
        trace_seed = int(rng.integers(1, 2**31))
        if stress:
            profile = ALL_PROFILES[str(rng.choice(["nw", "SS", "sad"]))]
            profile = dataclasses.replace(
                profile,
                warps=int(rng.integers(16, _MAX_WARPS + 1)),
                loads_per_warp=int(rng.integers(3, 7)),
                write_ratio=float(rng.uniform(0.8, 0.95)),
            )
            trace = synthetic_trace(profile, config, seed=trace_seed)
            recipe = {
                "workload": "synthetic",
                "profile": profile.name,
                "warps": profile.warps,
                "loads_per_warp": profile.loads_per_warp,
                "write_ratio": profile.write_ratio,
                "seed": trace_seed,
            }
            recipe["mutations"] = []
            return trace, recipe
        if rng.random() < 0.15:
            name = str(rng.choice(_ALGORITHMIC))
            trace = build_benchmark(name, config, Scale.TINY, seed=trace_seed)
            if len(trace.warps) > _MAX_WARPS:
                trace = truncate_warps(trace, list(range(_MAX_WARPS)))
            recipe = {"workload": "algorithmic", "benchmark": name, "seed": trace_seed}
        else:
            profile = ALL_PROFILES[str(rng.choice(sorted(ALL_PROFILES)))]
            profile = dataclasses.replace(
                profile,
                warps=int(rng.integers(16, _MAX_WARPS + 1)),
                loads_per_warp=int(rng.integers(3, 7)),
            )
            trace = synthetic_trace(profile, config, seed=trace_seed)
            recipe = {
                "workload": "synthetic",
                "profile": profile.name,
                "warps": profile.warps,
                "loads_per_warp": profile.loads_per_warp,
                "seed": trace_seed,
            }
        n_mut = int(rng.integers(0, 4))
        operators = [str(rng.choice(sorted(MUTATORS))) for _ in range(n_mut)]
        if operators:
            trace = mutate_trace(trace, rng, operators)
        recipe["mutations"] = operators
        return trace, recipe
