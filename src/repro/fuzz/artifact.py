"""Replayable JSON repro artifacts.

An artifact is everything ``python -m repro fuzz --replay`` needs to
re-run one failing oracle standalone: the full (minimized) ``SimConfig``
as a dict plus its :func:`config_hash`, the (minimized) kernel trace,
the campaign seed / case index that generated it, the oracle name, and
the failure detail observed when it was written.  No timestamps and no
environment data — two artifacts for the same failure are byte-identical.

Schema (``format: repro-fuzz-repro``, ``version: 1``)::

    {"format": "repro-fuzz-repro", "version": 1,
     "campaign_seed": 0, "case_index": 17,
     "oracle": "merb-gate-contract", "scheduler": "wg-bw",
     "schedulers": ["wg-bw"], "detail": "...",
     "config": {...SimConfig asdict...}, "config_hash": "4f0c...",
     "recipe": {...generator recipe...},
     "minimized": true, "minimize_evals": 121,
     "neutralized": ["mc.command_queue_depth"],
     "original_warps": 48, "trace": {"name": ..., "warps": [...]}}
"""

from __future__ import annotations

import dataclasses
import json
from typing import Optional

from repro.analysis.runner import atomic_write_json, config_hash
from repro.core.config import (
    CacheConfig,
    DRAMOrgConfig,
    DRAMTimingConfig,
    GPUConfig,
    MCConfig,
    SimConfig,
)
from repro.workloads.trace import KernelTrace, MemOp, Segment, WarpTrace

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "ArtifactError",
    "build_artifact",
    "save_artifact",
    "load_artifact",
    "config_from_dict",
    "trace_to_json",
    "trace_from_json",
]

ARTIFACT_FORMAT = "repro-fuzz-repro"
ARTIFACT_VERSION = 1


class ArtifactError(ValueError):
    """A repro artifact is malformed or from an incompatible version."""


# ----------------------------------------------------------------------
# trace <-> JSON
# ----------------------------------------------------------------------
def trace_to_json(trace: KernelTrace) -> dict:
    warps = []
    for w in trace.warps:
        segments = []
        for s in w.segments:
            if s.mem is None:
                segments.append([s.compute_cycles, None])
            else:
                segments.append([
                    s.compute_cycles,
                    [int(s.mem.is_write),
                     [-1 if a is None else a for a in s.mem.lane_addrs]],
                ])
        warps.append([w.sm_id, w.warp_id, segments])
    return {"name": trace.name, "warps": warps}


def trace_from_json(data: dict) -> KernelTrace:
    warps = []
    for sm_id, warp_id, segments in data["warps"]:
        segs = []
        for compute, mem in segments:
            memop = None
            if mem is not None:
                is_write, lanes = mem
                memop = MemOp(
                    is_write=bool(is_write),
                    lane_addrs=[None if a < 0 else int(a) for a in lanes],
                )
            segs.append(Segment(compute_cycles=int(compute), mem=memop))
        warps.append(WarpTrace(int(sm_id), int(warp_id), segs))
    return KernelTrace(name=str(data["name"]), warps=warps)


# ----------------------------------------------------------------------
# config <-> dict
# ----------------------------------------------------------------------
def config_from_dict(data: dict) -> SimConfig:
    gpu = dict(data["gpu"])
    gpu["l1"] = CacheConfig(**gpu["l1"])
    gpu["l2_slice"] = CacheConfig(**gpu["l2_slice"])
    return SimConfig(
        gpu=GPUConfig(**gpu),
        dram_timing=DRAMTimingConfig(**data["dram_timing"]),
        dram_org=DRAMOrgConfig(**data["dram_org"]),
        mc=MCConfig(**data["mc"]),
        scheduler=data["scheduler"],
        use_l1=data["use_l1"],
        use_l2=data["use_l2"],
        use_tlb=data["use_tlb"],
        seed=data["seed"],
    )


# ----------------------------------------------------------------------
# artifact assembly / persistence
# ----------------------------------------------------------------------
def build_artifact(
    *,
    campaign_seed: int,
    case_index: int,
    oracle: str,
    scheduler: str,
    schedulers: list[str],
    detail: str,
    config: SimConfig,
    trace: KernelTrace,
    recipe: Optional[dict] = None,
    minimized: bool = False,
    minimize_evals: int = 0,
    neutralized: Optional[list[str]] = None,
    original_warps: Optional[int] = None,
) -> dict:
    return {
        "format": ARTIFACT_FORMAT,
        "version": ARTIFACT_VERSION,
        "campaign_seed": campaign_seed,
        "case_index": case_index,
        "oracle": oracle,
        "scheduler": scheduler,
        "schedulers": list(schedulers),
        "detail": detail,
        "config": dataclasses.asdict(config),
        "config_hash": config_hash(config),
        "recipe": recipe or {},
        "minimized": minimized,
        "minimize_evals": minimize_evals,
        "neutralized": neutralized or [],
        "original_warps": (
            original_warps if original_warps is not None else len(trace.warps)
        ),
        "trace": trace_to_json(trace),
    }


def save_artifact(path: str, artifact: dict) -> None:
    atomic_write_json(path, artifact)


def load_artifact(path: str) -> dict:
    try:
        with open(path) as fh:
            artifact = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise ArtifactError(f"{path}: unreadable repro artifact ({exc})") from exc
    if not isinstance(artifact, dict) or artifact.get("format") != ARTIFACT_FORMAT:
        raise ArtifactError(f"{path}: not a {ARTIFACT_FORMAT} file")
    if artifact.get("version") != ARTIFACT_VERSION:
        raise ArtifactError(
            f"{path}: artifact version {artifact.get('version')}, "
            f"this build reads version {ARTIFACT_VERSION}"
        )
    for key in ("config", "trace", "oracle", "schedulers"):
        if key not in artifact:
            raise ArtifactError(f"{path}: missing required key {key!r}")
    recorded = artifact.get("config_hash")
    rebuilt = config_from_dict(artifact["config"])
    actual = config_hash(rebuilt)
    if recorded is not None and recorded != actual:
        raise ArtifactError(
            f"{path}: config hash mismatch (recorded {recorded}, "
            f"rebuilt {actual}) — artifact edited or from a different build"
        )
    return artifact
