"""The fuzzing oracle catalogue (see docs/robustness.md).

Three families of checks, all deterministic:

**Guarded-run oracles** (``invariants``) — every case runs under PR 3's
:class:`InvariantMonitor` + :class:`StreamingAuditor`, plus two *inline
consistency probes* attached to controller instances:

* ``forwarding-consistency`` — a read is answered from the write buffer
  iff a write to its line is buffered anywhere (queue *or* overflow);
  this is the ground-truth restatement of the PR 2 overflow-forwarding
  bug, checked on every single read.
* ``merb-gate-contract`` — one ``_merb_gate`` call may insert at most
  ``space_before - 1`` commands (one slot stays reserved for the
  row-miss the caller is about to insert); the PR 2 uncapped-filler bug
  breaks exactly this bound, which the occupancy invariant's warp-group
  slack is too loose to see.
* ``load-latency-bounds`` — every completed vector load respects the
  protocol floor (a DRAM-serviced load cannot return before tCAS) and
  the watchdog ceiling.
* ``scorer-differential`` — at every transaction-scheduler pick, the
  incrementally maintained BASJF score of every complete warp-group
  (:meth:`WarpSorter.score_incremental`) must equal the naive
  walk-every-request reference (:meth:`WarpSorter.score_naive`); any
  drift in the maintained per-bank chain state surfaces here at the
  exact decision that would have used it.

**Differential oracles** — quantities fixed at *injection* (before any
scheduling): instruction, load, and coalesced-request totals plus the
per-load request-count multiset must be identical across all schedulers
(``differential-totals``); WG and WG-M must produce bit-identical
summaries on a single-channel config, where coordination has nothing to
coordinate (``trace-equivalence``).

**Metamorphic oracles** — on one scheduler: same seed ⇒ bit-identical
summary (``determinism``); attaching telemetry must not perturb results
(``telemetry-perturbation``); checkpoint mid-run + restore ⇒ identical
final stats (``checkpoint-restore``); scaling every timing by k scales
time-valued metrics by exactly k and leaves dimensionless ones untouched
(``timing-scale``); the vectorized front-end pool's coalesced lines and
routes must equal the scalar coalescer + address decomposition per memory
op (``frontend-differential`` — a pure stream comparison, no simulation).
"""

from __future__ import annotations

import dataclasses
import os
import tempfile
from typing import Callable, Optional

from repro.core.config import SimConfig
from repro.core.stats import SimStats
from repro.gpu.system import GPUSystem
from repro.guardrails.checkpoint import load_checkpoint
from repro.guardrails.config import GuardrailConfig
from repro.guardrails.invariants import InvariantViolation
from repro.dram.validate import ProtocolViolationError
from repro.mc.warp_sorter import WarpSorter
from repro.telemetry.hub import TelemetryHub
from repro.workloads.trace import KernelTrace

__all__ = [
    "OracleFailure",
    "ORACLES",
    "attach_consistency_probes",
    "run_guarded",
    "run_plain",
    "check_case",
    "check_load_records",
    "differential_check",
    "trace_equivalence_check",
    "check_determinism",
    "check_telemetry",
    "check_checkpoint",
    "check_timing_scale",
    "check_frontend",
    "scale_timings",
    "run_oracle",
]


class OracleFailure(Exception):
    """A fuzz oracle found an inconsistency.

    ``oracle`` is the stable catalogue name (used to key replay),
    ``scheduler`` the policy under test (or a comma-joined list for the
    cross-scheduler oracles), ``detail`` a diagnostic.
    """

    def __init__(self, oracle: str, detail: str, scheduler: str = "") -> None:
        self.oracle = oracle
        self.detail = detail
        self.scheduler = scheduler
        where = f" [{scheduler}]" if scheduler else ""
        super().__init__(f"{oracle}{where}: {detail}")


# Tight sweep cadence: fuzz cases are tiny, so the occupancy/watchdog
# sweeps can afford to look every 500 simulated ns.
_GUARDRAILS = GuardrailConfig(invariants=True, audit=True, check_period_ns=500.0)


# ----------------------------------------------------------------------
# inline consistency probes
# ----------------------------------------------------------------------
def attach_consistency_probes(system: GPUSystem) -> None:
    """Wrap controller entry points with ground-truth contract checks.

    Pure observation: each wrapper recomputes the expected outcome from
    queue state, delegates to the original bound method, then compares.
    Wrappers are instance attributes (closures), so probed systems are
    not picklable — the checkpoint oracle runs without them.
    """
    scheduler = system.config.scheduler
    for mc in system.mcs:
        if hasattr(mc, "_wq_index") and hasattr(mc, "write_queue"):
            orig_read = mc.receive_read

            def receive_read(req, _mc=mc, _orig=orig_read):
                buffered = {w.addr for w in _mc.write_queue}
                buffered.update(w.addr for w in _mc._write_overflow)
                _orig(req)
                forwarded = req.serviced_by == "wq"
                if forwarded != (req.addr in buffered):
                    raise OracleFailure(
                        "forwarding-consistency",
                        f"channel {_mc.channel_id}: read {req.req_id} to "
                        f"addr {req.addr:#x} serviced_by={req.serviced_by!r} "
                        f"but a write to that line "
                        f"{'is' if req.addr in buffered else 'is not'} buffered "
                        f"(queue {len(_mc.write_queue)}, "
                        f"overflow {len(_mc._write_overflow)})",
                        scheduler,
                    )

            mc.receive_read = receive_read
        if hasattr(mc, "_merb_gate"):
            orig_gate = mc._merb_gate

            def merb_gate(bank, open_row, now, _mc=mc, _orig=orig_gate):
                space_before = _mc.cq.space(bank)
                len_before = len(_mc.cq.queues[bank])
                _orig(bank, open_row, now)
                inserted = len(_mc.cq.queues[bank]) - len_before
                allowed = max(0, space_before - 1)
                if inserted > allowed:
                    raise OracleFailure(
                        "merb-gate-contract",
                        f"channel {_mc.channel_id} bank {bank}: MERB gate "
                        f"inserted {inserted} commands with only "
                        f"{space_before} slots free (max {allowed}: one slot "
                        f"is reserved for the pending row-miss)",
                        scheduler,
                    )

            mc._merb_gate = merb_gate
        if hasattr(mc, "sorter") and hasattr(mc, "_pick_with_room"):
            orig_pick = mc._pick_with_room

            def pick_with_room(now, _mc=mc, _orig=orig_pick):
                cq = _mc.cq
                for entry in _mc.sorter.complete_groups():
                    fast = WarpSorter.score_incremental(entry, cq)
                    slow = WarpSorter.score_naive(entry, cq)
                    if fast != slow:
                        raise OracleFailure(
                            "scorer-differential",
                            f"channel {_mc.channel_id}: warp-group "
                            f"{entry.key} scores (score, hits)={fast} "
                            f"incrementally but {slow} by the naive walk "
                            f"(stats {entry.bank_stats})",
                            scheduler,
                        )
                return _orig(now)

            mc._pick_with_room = pick_with_room


# ----------------------------------------------------------------------
# run helpers
# ----------------------------------------------------------------------
def run_guarded(config: SimConfig, trace: KernelTrace, scheduler: str) -> SimStats:
    """One fully guarded + probed run; raises :class:`OracleFailure`."""
    cfg = config.with_scheduler(scheduler)
    system = GPUSystem(cfg, trace, guardrails=_GUARDRAILS)
    attach_consistency_probes(system)
    try:
        stats = system.run()
    except OracleFailure:
        raise
    except (InvariantViolation, ProtocolViolationError, RuntimeError) as exc:
        raise OracleFailure("invariants", str(exc), scheduler) from exc
    check_load_records(stats, cfg, scheduler)
    return stats


def run_plain(config: SimConfig, trace: KernelTrace, scheduler: str,
              telemetry: Optional[TelemetryHub] = None) -> SimStats:
    return GPUSystem(config.with_scheduler(scheduler), trace, telemetry=telemetry).run()


# ----------------------------------------------------------------------
# per-run oracles
# ----------------------------------------------------------------------
def check_load_records(stats: SimStats, config: SimConfig, scheduler: str) -> None:
    """Structural + latency-bound sanity of every completed vector load."""
    tcas_ps = config.dram_timing.tcas_ps
    bound_ps = int(_GUARDRAILS.stale_request_ns * 1000)
    for rec in stats.load_records:
        if not rec.t_issue <= rec.t_first_return <= rec.t_last_return:
            raise OracleFailure(
                "load-latency-bounds",
                f"load (sm={rec.sm_id}, warp={rec.warp_id}) returned out of "
                f"order: issue={rec.t_issue} first={rec.t_first_return} "
                f"last={rec.t_last_return}",
                scheduler,
            )
        if rec.t_last_dram >= 0 and rec.t_last_dram - rec.t_issue < tcas_ps:
            raise OracleFailure(
                "load-latency-bounds",
                f"load (sm={rec.sm_id}, warp={rec.warp_id}) got DRAM data "
                f"{rec.t_last_dram - rec.t_issue}ps after issue, below the "
                f"tCAS floor of {tcas_ps}ps",
                scheduler,
            )
        if rec.t_last_return - rec.t_issue > bound_ps:
            raise OracleFailure(
                "load-latency-bounds",
                f"load (sm={rec.sm_id}, warp={rec.warp_id}) took "
                f"{(rec.t_last_return - rec.t_issue) / 1000:.0f}ns, beyond "
                f"the {bound_ps / 1000:.0f}ns watchdog ceiling",
                scheduler,
            )


def _injection_signature(stats: SimStats, include_coalescing: bool) -> dict:
    sig = {
        "warp_instructions": stats.warp_instructions,
        "loads_issued": stats.loads_issued,
    }
    if include_coalescing:
        sig["requests_issued"] = stats.requests_issued
        sig["load_multiset"] = sorted(
            (r.sm_id, r.warp_id, r.n_requests) for r in stats.load_records
        )
    return sig


def differential_check(results: dict[str, SimStats], config: SimConfig) -> None:
    """Injection-time totals must be identical under every scheduler.

    Instruction and load counts come straight from the trace's program
    order, so they always participate.  ``requests_issued`` and per-load
    request counts additionally include TLB page-walk lines, whose
    hit/miss pattern depends on warp interleaving (scheduler-dependent),
    so coalescing-level signatures only participate when the TLB is off.
    """
    if len(results) < 2:
        return
    include_coalescing = not config.use_tlb
    ref_name = next(iter(results))
    ref = _injection_signature(results[ref_name], include_coalescing)
    for name, stats in results.items():
        sig = _injection_signature(stats, include_coalescing)
        for key in ref:
            if sig[key] != ref[key]:
                detail_a, detail_b = ref[key], sig[key]
                if key == "load_multiset":
                    diff = set(map(tuple, detail_b)) ^ set(map(tuple, detail_a))
                    detail_a = f"{len(ref[key])} loads"
                    detail_b = f"{len(sig[key])} loads (sym. diff {sorted(diff)[:4]})"
                raise OracleFailure(
                    "differential-totals",
                    f"{key} diverges across schedulers: "
                    f"{ref_name}={detail_a} vs {name}={detail_b}",
                    f"{ref_name},{name}",
                )


def trace_equivalence_check(results: dict[str, SimStats], config: SimConfig) -> None:
    """WG and WG-M must match bit-for-bit on a single controller.

    WG-M only adds cross-controller coordination; with one channel there
    are no peers, so any divergence is a bug in the coordination plumbing
    itself.
    """
    if config.dram_org.num_channels != 1:
        return
    if "wg" not in results or "wg-m" not in results:
        return
    a, b = results["wg"].summary(), results["wg-m"].summary()
    if a != b:
        keys = [k for k in a if a[k] != b[k]]
        raise OracleFailure(
            "trace-equivalence",
            f"wg vs wg-m differ on a single channel: "
            + ", ".join(f"{k}: {a[k]!r} != {b[k]!r}" for k in keys[:4]),
            "wg,wg-m",
        )


# ----------------------------------------------------------------------
# metamorphic oracles
# ----------------------------------------------------------------------
def check_determinism(config: SimConfig, trace: KernelTrace, scheduler: str,
                      baseline: Optional[SimStats] = None) -> None:
    first = baseline.summary() if baseline is not None else run_plain(
        config, trace, scheduler).summary()
    second = run_plain(config, trace, scheduler).summary()
    if first != second:
        keys = [k for k in first if first[k] != second[k]]
        raise OracleFailure(
            "determinism",
            "re-running the same case changed the summary: "
            + ", ".join(f"{k}: {first[k]!r} != {second[k]!r}" for k in keys[:4]),
            scheduler,
        )


def check_telemetry(config: SimConfig, trace: KernelTrace, scheduler: str,
                    baseline: Optional[SimStats] = None) -> None:
    plain = baseline.summary() if baseline is not None else run_plain(
        config, trace, scheduler).summary()
    hub = TelemetryHub(sample_period_ns=1000.0)
    instrumented = run_plain(config, trace, scheduler, telemetry=hub).summary()
    if plain != instrumented:
        keys = [k for k in plain if plain[k] != instrumented[k]]
        raise OracleFailure(
            "telemetry-perturbation",
            "attaching telemetry changed the results: "
            + ", ".join(f"{k}: {plain[k]!r} != {instrumented[k]!r}" for k in keys[:4]),
            scheduler,
        )


def check_checkpoint(config: SimConfig, trace: KernelTrace, scheduler: str,
                     baseline: Optional[SimStats] = None) -> None:
    """Checkpoint mid-run, restore in a fresh object graph, finish, compare."""
    base = baseline if baseline is not None else run_plain(config, trace, scheduler)
    expected = base.summary()
    elapsed_ns = base.elapsed_ps / 1000.0
    period_ns = max(1.0, elapsed_ns / 3.0)  # ~2 snapshots before the end
    cfg = config.with_scheduler(scheduler)
    with tempfile.TemporaryDirectory(prefix="fuzz-ckpt-") as tmp:
        path = os.path.join(tmp, "case.ckpt")
        g = GuardrailConfig(checkpoint_period_ns=period_ns, checkpoint_path=path)
        ckpt_run = GPUSystem(cfg, trace, guardrails=g).run().summary()
        if ckpt_run != expected:
            keys = [k for k in expected if expected[k] != ckpt_run[k]]
            raise OracleFailure(
                "checkpoint-restore",
                "periodic checkpointing perturbed the run: "
                + ", ".join(f"{k}: {expected[k]!r} != {ckpt_run[k]!r}" for k in keys[:4]),
                scheduler,
            )
        if not os.path.exists(path):
            return  # run finished inside the first period; nothing to restore
        restored = load_checkpoint(path).resume().summary()
    if restored != expected:
        keys = [k for k in expected if expected[k] != restored[k]]
        raise OracleFailure(
            "checkpoint-restore",
            "restored run diverged from the uninterrupted one: "
            + ", ".join(f"{k}: {expected[k]!r} != {restored[k]!r}" for k in keys[:4]),
            scheduler,
        )


_TIME_SCALED_KEYS = ("elapsed_ns", "effective_latency_ns", "divergence_ns")
_INVERSE_SCALED_KEYS = ("ipc",)


def scale_timings(config: SimConfig, k: int) -> SimConfig:
    """Scale every time-valued parameter by integer ``k``."""
    t = config.dram_timing
    gpu = config.gpu
    return dataclasses.replace(
        config,
        dram_timing=dataclasses.replace(
            t,
            tck_ns=t.tck_ns * k, trc_ns=t.trc_ns * k, trcd_ns=t.trcd_ns * k,
            trp_ns=t.trp_ns * k, tcas_ns=t.tcas_ns * k, tras_ns=t.tras_ns * k,
            trrd_ns=t.trrd_ns * k, twtr_ns=t.twtr_ns * k, tfaw_ns=t.tfaw_ns * k,
            trtp_ns=t.trtp_ns * k, twr_ns=t.twr_ns * k,
            trefi_ns=t.trefi_ns * k, trfc_ns=t.trfc_ns * k,
        ),
        gpu=dataclasses.replace(
            gpu,
            core_clock_ghz=1000.0 / (k * gpu.core_cycle_ps),
            l1=dataclasses.replace(gpu.l1, hit_latency_ns=gpu.l1.hit_latency_ns * k),
            l2_slice=dataclasses.replace(
                gpu.l2_slice, hit_latency_ns=gpu.l2_slice.hit_latency_ns * k
            ),
            xbar_latency_ns=gpu.xbar_latency_ns * k,
            xbar_bytes_per_ns=gpu.xbar_bytes_per_ns / k,
        ),
        mc=dataclasses.replace(config.mc, age_threshold_ns=config.mc.age_threshold_ns * k),
    )


def _derived_ps(config: SimConfig) -> list[int]:
    """Every integer-ps quantity the simulator derives from the config."""
    t = config.dram_timing
    gpu = config.gpu
    org = config.dram_org
    values = [getattr(t, name) for name in dir(type(t)) if name.endswith("_ps")]
    values.append(gpu.core_cycle_ps)
    values.append(int(gpu.l1.hit_latency_ns * 1000))
    values.append(int(gpu.l2_slice.hit_latency_ns * 1000))
    values.append(int(gpu.xbar_latency_ns * 1000))
    values.append(max(1, int(org.line_bytes / gpu.xbar_bytes_per_ns * 1000)))
    values.append(int(config.mc.age_threshold_ns * 1000))
    return values


def check_timing_scale(config: SimConfig, trace: KernelTrace, scheduler: str,
                       baseline: Optional[SimStats] = None, k: int = 2) -> None:
    from repro.mc.registry import coordinated_schedulers

    if scheduler in coordinated_schedulers() and config.dram_org.num_channels > 1:
        # The coordination network's fixed message delay is architectural,
        # not a config timing, so it does not scale with k and the
        # metamorphic relation is void (with one channel no messages flow).
        return
    scaled = scale_timings(config, k)
    base_ps, scaled_ps = _derived_ps(config), _derived_ps(scaled)
    if any(s != b * k for b, s in zip(base_ps, scaled_ps)):
        return  # float rounding broke exact derivation; metamorphic relation void
    base = (baseline.summary() if baseline is not None
            else run_plain(config, trace, scheduler).summary())
    slow = run_plain(scaled, trace, scheduler).summary()
    mismatches = []
    for key, value in base.items():
        expect = value
        if key in _TIME_SCALED_KEYS:
            expect = value * k
        elif key in _INVERSE_SCALED_KEYS:
            expect = value / k
        if slow[key] != expect:
            mismatches.append(f"{key}: expected {expect!r}, got {slow[key]!r}")
    if mismatches:
        raise OracleFailure(
            "timing-scale",
            f"scaling all timings by {k} broke the latency-scaling relation: "
            + "; ".join(mismatches[:4]),
            scheduler,
        )


def check_frontend(config: SimConfig, trace: KernelTrace, scheduler: str,
                   baseline: Optional[SimStats] = None) -> None:
    """Vectorized front end == scalar coalescer + decomposition, per op.

    Compares the :class:`~repro.gpu.frontend.FrontEndPool` built for this
    (config, trace) against the scalar reference for *every* memory op:
    same coalesced line list (order included — the interconnect relies on
    first-appearance order) and same (channel, bank, row, col) routes.
    A pure stream comparison — no simulation runs, so it is also the
    cheapest minimizer predicate of the metamorphic family.  Traces the
    pool cannot represent fall back to the scalar path by construction
    and pass trivially.  ``scheduler``/``baseline`` are accepted for the
    metamorphic signature but unused: the front end is scheduler-blind.
    """
    from repro.gpu.address_map import AddressMap
    from repro.gpu.coalescer import coalesce
    from repro.gpu.frontend import FrontEndPool, FrontendUnsupported

    amap = AddressMap(config.dram_org)
    line_bytes = config.dram_org.line_bytes
    for sm_id, bucket in enumerate(trace.by_sm(config.gpu.num_sms)):
        try:
            pool = FrontEndPool(bucket, line_bytes, amap)
        except FrontendUnsupported:
            continue  # scalar fallback applies; nothing to compare
        for pos, wt in enumerate(bucket):
            for seg_idx, seg in enumerate(wt.segments):
                entry = pool.op(pos, seg_idx)
                if seg.mem is None:
                    if entry is not None:
                        raise OracleFailure(
                            "frontend-differential",
                            f"sm {sm_id} warp {wt.warp_id} segment {seg_idx} "
                            f"has no memory op but the pool holds one",
                        )
                    continue
                op_id, lines, routes = entry
                expect_lines = coalesce(seg.mem.lane_addrs, line_bytes)
                if lines != expect_lines:
                    raise OracleFailure(
                        "frontend-differential",
                        f"sm {sm_id} warp {wt.warp_id} segment {seg_idx} "
                        f"(op {op_id}): pool coalesced to {lines} but the "
                        f"scalar coalescer produced {expect_lines}",
                    )
                expect_routes = [amap.decompose(line) for line in expect_lines]
                if routes != expect_routes:
                    raise OracleFailure(
                        "frontend-differential",
                        f"sm {sm_id} warp {wt.warp_id} segment {seg_idx} "
                        f"(op {op_id}): pool routes {routes} != scalar "
                        f"decomposition {expect_routes}",
                    )


_METAMORPHIC = (check_determinism, check_telemetry, check_checkpoint,
                check_timing_scale, check_frontend)

#: Stable catalogue (oracle name -> short description) for docs/CLI.
ORACLES = {
    "invariants": "guarded run: invariant monitor, protocol audit, stall detection",
    "forwarding-consistency": "read forwarded iff its line is buffered (queue or overflow)",
    "merb-gate-contract": "one MERB gate call inserts at most space-1 commands",
    "load-latency-bounds": "per-load latency within [tCAS floor, watchdog ceiling]",
    "scorer-differential": "incremental BASJF score == naive walk at every pick",
    "differential-totals": "injection-time totals identical across schedulers",
    "trace-equivalence": "wg == wg-m bit-for-bit on a single channel",
    "determinism": "same seed, same summary",
    "telemetry-perturbation": "telemetry on/off does not change results",
    "checkpoint-restore": "checkpoint + restore reproduces the uninterrupted run",
    "timing-scale": "scaling timings by k scales time metrics by k",
    "frontend-differential": "vectorized front-end pool == scalar coalesce + decompose",
}


# ----------------------------------------------------------------------
# whole-case check (the campaign inner loop)
# ----------------------------------------------------------------------
def check_case(config: SimConfig, trace: KernelTrace, schedulers: list[str],
               case_index: int = 0) -> None:
    """Run every oracle family on one case; raises the first failure.

    The five metamorphic oracles rotate over ``case_index`` (one per
    case, on a rotating designated scheduler) to keep per-case cost at
    roughly ``len(schedulers) + 2`` simulations.
    """
    results: dict[str, SimStats] = {}
    for scheduler in schedulers:
        results[scheduler] = run_guarded(config, trace, scheduler)
    differential_check(results, config)
    trace_equivalence_check(results, config)
    meta = _METAMORPHIC[case_index % len(_METAMORPHIC)]
    designated = schedulers[case_index % len(schedulers)]
    # The guarded baseline is probe-wrapped but statistically identical
    # to a plain run; metamorphic replicas re-run plain for a clean pair.
    meta(config, trace, designated)


# ----------------------------------------------------------------------
# targeted replay (used by --replay and by the minimizer predicate)
# ----------------------------------------------------------------------
def run_oracle(oracle: str, config: SimConfig, trace: KernelTrace,
               schedulers: list[str]) -> Optional[OracleFailure]:
    """Re-run exactly one catalogue oracle; returns its failure or None."""
    try:
        if oracle in ("invariants", "forwarding-consistency",
                      "merb-gate-contract", "load-latency-bounds",
                      "scorer-differential"):
            for scheduler in schedulers:
                run_guarded(config, trace, scheduler)
        elif oracle == "differential-totals":
            results = {s: run_guarded(config, trace, s) for s in schedulers}
            differential_check(results, config)
        elif oracle == "trace-equivalence":
            results = {s: run_guarded(config, trace, s) for s in ("wg", "wg-m")}
            trace_equivalence_check(results, config)
        elif oracle == "determinism":
            check_determinism(config, trace, schedulers[0])
        elif oracle == "telemetry-perturbation":
            check_telemetry(config, trace, schedulers[0])
        elif oracle == "checkpoint-restore":
            check_checkpoint(config, trace, schedulers[0])
        elif oracle == "timing-scale":
            check_timing_scale(config, trace, schedulers[0])
        elif oracle == "frontend-differential":
            check_frontend(config, trace, schedulers[0])
        else:
            raise ValueError(f"unknown oracle {oracle!r}; known: {sorted(ORACLES)}")
    except OracleFailure as failure:
        return failure
    return None
