"""Delta-debugging failure minimizer.

Given a failing case and a predicate ("does this still trip the same
oracle?"), shrink the case through four stages, each keeping a change
only when the failure survives:

1. **drop warps** — classic ddmin over the warp list;
2. **drop segments** — per-warp greedy bisection of the segment list;
3. **shrink lane masks** — mask off half of each memory op's live lanes;
4. **neutralize config deltas** — reset each field that differs from the
   default :class:`SimConfig` back to its default.

Every candidate evaluation re-runs the targeted oracle, so the budget is
expressed in predicate evaluations (simulations), not wall time — the
minimizer is as deterministic as the simulator itself.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.core.config import SimConfig
from repro.workloads.mutate import clone_trace, truncate_warps
from repro.workloads.trace import KernelTrace

__all__ = ["minimize", "MinimizeResult"]

Predicate = Callable[[SimConfig, KernelTrace], bool]

# Geometry fields whose *defaults* describe the full-size GPU; resetting
# a small fuzzed value to them would grow the repro, not shrink it.
_KEEP_SMALL = {
    ("gpu", "num_sms"),
    ("dram_org", "num_channels"),
    ("dram_org", "banks_per_channel"),
    ("dram_org", "rows_per_bank"),
}


@dataclasses.dataclass
class MinimizeResult:
    config: SimConfig
    trace: KernelTrace
    evals: int
    neutralized: list[str]


class _Budget:
    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.used = 0

    def spend(self) -> bool:
        if self.used >= self.limit:
            return False
        self.used += 1
        return True


def _try(predicate: Predicate, budget: _Budget, config: SimConfig,
         trace: KernelTrace) -> bool:
    if not budget.spend():
        return False
    if not trace.warps:
        return False  # an empty kernel can't run; never a valid repro
    try:
        return predicate(config, trace)
    except Exception:
        # A candidate that crashes differently is not the same failure.
        return False


def _ddmin_warps(config: SimConfig, trace: KernelTrace, predicate: Predicate,
                 budget: _Budget) -> KernelTrace:
    indices = list(range(len(trace.warps)))
    n = 2
    while len(indices) >= 2:
        chunk = max(1, len(indices) // n)
        subsets = [indices[i:i + chunk] for i in range(0, len(indices), chunk)]
        reduced = False
        for subset in subsets:
            complement = [i for i in indices if i not in set(subset)]
            if not complement:
                continue
            if _try(predicate, budget, config, truncate_warps(trace, complement)):
                indices = complement
                n = max(2, n - 1)
                reduced = True
                break
        if not reduced:
            if n >= len(indices) or budget.used >= budget.limit:
                break
            n = min(len(indices), n * 2)
    return truncate_warps(trace, indices)


def _shrink_segments(config: SimConfig, trace: KernelTrace, predicate: Predicate,
                     budget: _Budget) -> KernelTrace:
    current = trace
    for wi in range(len(current.warps)):
        while len(current.warps[wi].segments) > 1:
            candidate = clone_trace(current)
            w = candidate.warps[wi]
            w.segments = w.segments[: max(1, len(w.segments) // 2)]
            if _try(predicate, budget, config, candidate):
                current = candidate
            else:
                break
    return current


def _shrink_lanes(config: SimConfig, trace: KernelTrace, predicate: Predicate,
                  budget: _Budget) -> KernelTrace:
    current = trace
    for wi, w in enumerate(current.warps):
        for si, s in enumerate(w.segments):
            if s.mem is None or s.mem.active_lanes() <= 1:
                continue
            candidate = clone_trace(current)
            addrs = candidate.warps[wi].segments[si].mem.lane_addrs
            live = [i for i, a in enumerate(addrs) if a is not None]
            for lane in live[len(live) // 2:]:
                addrs[lane] = None
            if _try(predicate, budget, config, candidate):
                current = candidate
    return current


def _neutralize_config(config: SimConfig, trace: KernelTrace, predicate: Predicate,
                       budget: _Budget) -> tuple[SimConfig, list[str]]:
    default = SimConfig()
    current = config
    kept_neutral: list[str] = []
    sections = ("dram_timing", "dram_org", "mc", "gpu")
    for section in sections:
        cur_sec = getattr(current, section)
        def_sec = getattr(default, section)
        for f in dataclasses.fields(def_sec):
            if getattr(cur_sec, f.name) == getattr(def_sec, f.name):
                continue
            if (section, f.name) in _KEEP_SMALL:
                continue
            try:
                candidate = dataclasses.replace(
                    current,
                    **{section: dataclasses.replace(
                        getattr(current, section),
                        **{f.name: getattr(def_sec, f.name)})},
                )
            except ValueError:
                continue  # resetting one field alone broke validate()
            if _try(predicate, budget, candidate, trace):
                current = candidate
                kept_neutral.append(f"{section}.{f.name}")
    for name in ("use_l1", "use_l2", "use_tlb", "seed"):
        if getattr(current, name) == getattr(default, name):
            continue
        candidate = dataclasses.replace(current, **{name: getattr(default, name)})
        if _try(predicate, budget, candidate, trace):
            current = candidate
            kept_neutral.append(name)
    return current, kept_neutral


def minimize(config: SimConfig, trace: KernelTrace, predicate: Predicate,
             max_evals: int = 200) -> MinimizeResult:
    """Shrink (config, trace) while ``predicate`` keeps failing.

    ``predicate(config, trace)`` must return True when the candidate
    still exhibits the original failure.  The inputs are assumed to fail
    already (the caller verified that); the result is the smallest
    variant found within ``max_evals`` predicate evaluations.
    """
    budget = _Budget(max_evals)
    trace = _ddmin_warps(config, trace, predicate, budget)
    trace = _shrink_segments(config, trace, predicate, budget)
    trace = _shrink_lanes(config, trace, predicate, budget)
    config, neutralized = _neutralize_config(config, trace, predicate, budget)
    return MinimizeResult(
        config=config, trace=trace, evals=budget.used, neutralized=neutralized
    )
