"""The fuzzing campaign loop: generate, check, minimize, persist.

``run_campaign`` iterates the deterministic case stream of a campaign
seed, runs the full oracle catalogue on each case, and for every failure
produces a minimized, replayable JSON artifact.  The wall-clock budget
only decides *when to stop drawing cases* — it never influences what any
case contains, so a campaign is reproducible by seed + iteration count.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.fuzz.artifact import build_artifact, save_artifact
from repro.fuzz.generator import CaseGenerator, FuzzCase
from repro.fuzz.minimizer import minimize
from repro.fuzz.oracles import OracleFailure, check_case, run_oracle

__all__ = ["FuzzFailure", "FuzzReport", "run_campaign", "default_schedulers"]

_MINIMIZE_EVALS = 200


@dataclass
class FuzzFailure:
    case_index: int
    oracle: str
    scheduler: str
    detail: str
    artifact_path: Optional[str] = None
    minimized_warps: Optional[int] = None


@dataclass
class FuzzReport:
    campaign_seed: int
    schedulers: list[str]
    cases_run: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def clean(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        """Machine-readable campaign summary (history/dashboard food)."""
        from repro.analysis.schema import FUZZ_SCHEMA

        return {
            "schema_version": FUZZ_SCHEMA,
            "campaign_seed": self.campaign_seed,
            "schedulers": list(self.schedulers),
            "cases_run": self.cases_run,
            "wall_seconds": round(self.wall_seconds, 3),
            "cases_per_sec": round(
                self.cases_run / self.wall_seconds, 3
            ) if self.wall_seconds > 0 else 0.0,
            "clean": self.clean,
            "failures": [
                {
                    "case_index": f.case_index,
                    "oracle": f.oracle,
                    "scheduler": f.scheduler,
                    "detail": f.detail,
                    "artifact_path": f.artifact_path,
                    "minimized_warps": f.minimized_warps,
                }
                for f in self.failures
            ],
        }


def default_schedulers() -> list[str]:
    """Every registered policy, idealized ones included, in stable order."""
    import repro.idealized  # noqa: F401  (registers zero-div)
    from repro.mc.registry import SCHEDULERS

    return sorted(SCHEDULERS)


def _replay_schedulers(failure: OracleFailure, schedulers: list[str]) -> list[str]:
    """The scheduler list a targeted replay of this failure needs."""
    if failure.oracle == "differential-totals":
        return list(schedulers)
    if failure.oracle == "trace-equivalence":
        return ["wg", "wg-m"]
    if failure.scheduler and "," not in failure.scheduler:
        return [failure.scheduler]
    return list(schedulers)


def _handle_failure(
    case: FuzzCase,
    failure: OracleFailure,
    schedulers: list[str],
    artifact_dir: Optional[str],
    do_minimize: bool,
    log: Callable[[str], None],
) -> FuzzFailure:
    replay_scheds = _replay_schedulers(failure, schedulers)
    config, trace = case.config, case.trace
    evals, neutralized = 0, []
    original_warps = len(trace.warps)
    if do_minimize:
        def still_fails(cand_config, cand_trace) -> bool:
            return run_oracle(
                failure.oracle, cand_config, cand_trace, replay_scheds
            ) is not None

        result = minimize(config, trace, still_fails, max_evals=_MINIMIZE_EVALS)
        config, trace = result.config, result.trace
        evals, neutralized = result.evals, result.neutralized
        log(
            f"  minimized case {case.index}: {original_warps} -> "
            f"{len(trace.warps)} warps in {evals} evaluations"
        )
    record = FuzzFailure(
        case_index=case.index,
        oracle=failure.oracle,
        scheduler=failure.scheduler,
        detail=failure.detail,
        minimized_warps=len(trace.warps) if do_minimize else None,
    )
    if artifact_dir is not None:
        os.makedirs(artifact_dir, exist_ok=True)
        path = os.path.join(
            artifact_dir, f"case-{case.index:04d}-{failure.oracle}.json"
        )
        save_artifact(path, build_artifact(
            campaign_seed=case.campaign_seed,
            case_index=case.index,
            oracle=failure.oracle,
            scheduler=failure.scheduler,
            schedulers=replay_scheds,
            detail=failure.detail,
            config=config,
            trace=trace,
            recipe=case.recipe,
            minimized=do_minimize,
            minimize_evals=evals,
            neutralized=neutralized,
            original_warps=original_warps,
        ))
        record.artifact_path = path
        log(f"  wrote repro artifact {path}")
    return record


def run_campaign(
    seed: int = 0,
    iterations: Optional[int] = None,
    time_budget_s: Optional[float] = None,
    schedulers: Optional[list[str]] = None,
    artifact_dir: Optional[str] = "fuzz-artifacts",
    do_minimize: bool = True,
    log: Callable[[str], None] = lambda _msg: None,
    history: bool = True,
) -> FuzzReport:
    """Run one fuzzing campaign; returns the report (never raises on bugs).

    Either ``iterations`` or ``time_budget_s`` (or both) must bound the
    campaign.  The budget check happens only *between* cases: case ``i``
    is always the same case regardless of machine speed.

    The campaign report is appended to the run-history store by default
    (docs/observability.md), so dashboard fuzz stats survive the CI run
    that produced them; ``history=False`` or ``REPRO_HISTORY=0`` skips.
    """
    if iterations is None and time_budget_s is None:
        raise ValueError("bound the campaign with iterations or time_budget_s")
    schedulers = list(schedulers) if schedulers else default_schedulers()
    generator = CaseGenerator(seed)
    report = FuzzReport(campaign_seed=seed, schedulers=schedulers)
    t0 = time.monotonic()
    index = 0
    while True:
        if iterations is not None and index >= iterations:
            break
        if time_budget_s is not None and time.monotonic() - t0 >= time_budget_s:
            break
        case = generator.case(index)
        kind = case.recipe.get("workload", "?")
        label = case.recipe.get("benchmark") or case.recipe.get("profile") or "?"
        log(
            f"case {index}: {kind}/{label}, {len(case.trace.warps)} warps, "
            f"{case.config.dram_org.num_channels}ch/"
            f"{case.config.gpu.num_sms}sm"
        )
        try:
            check_case(case.config, case.trace, schedulers, case_index=index)
        except OracleFailure as failure:
            log(f"  FAILURE [{failure.oracle}] {failure.detail}")
            report.failures.append(_handle_failure(
                case, failure, schedulers, artifact_dir, do_minimize, log
            ))
        report.cases_run += 1
        index += 1
    report.wall_seconds = time.monotonic() - t0
    if history:
        from repro.history import record_run

        record = record_run("fuzz", report.to_dict())
        if record is not None:
            log(f"history record {record.record_id} appended")
    return report
