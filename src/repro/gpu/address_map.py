"""Physical address mapping (§II-C).

The paper's GPU address mapping, reproduced here:

* consecutive cache lines share a DRAM row to promote row-buffer locality;
* 256-byte blocks of consecutive lines interleave across channels;
* the channel index XOR-folds higher-order bits into the low block bits to
  avoid channel camping::

      channel = {addr[47:11] : (addr[10:8] XOR addr[13:11])} % num_channels

* the bank index is XOR-permuted with higher-order set-index bits
  (Zhang et al. [53]) to avoid bank camping on power-of-two strides.

Within a channel we place eight consecutive 256B blocks (one 2KB row's
worth) in the same bank+row before switching banks, which preserves the
paper's "consecutive lines hit the same row" property; banks then rotate
every row-sized chunk rather than every block (documented deviation — it
strictly improves the row locality available to *all* schedulers equally).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import DRAMOrgConfig
from repro.core.request import MemoryRequest

__all__ = ["AddressMap"]


class AddressMap:
    """Byte address -> (channel, bank, row, col) decomposition."""

    def __init__(self, org: DRAMOrgConfig) -> None:
        self.org = org
        self.line_shift = org.line_bytes.bit_length() - 1  # 128B -> 7
        self.block_shift = org.interleave_bytes.bit_length() - 1  # 256B -> 8
        self.blocks_per_row = org.row_size_bytes // org.interleave_bytes
        if self.blocks_per_row & (self.blocks_per_row - 1):
            raise ValueError("row_size/interleave must be a power of two")
        self.bank_mask = org.banks_per_channel - 1
        if org.banks_per_channel & self.bank_mask:
            raise ValueError("banks_per_channel must be a power of two")

    # -- channel hash ------------------------------------------------------
    def channel_key(self, addr: int) -> int:
        """256B-block index with XOR-spread low bits (the paper's formula)."""
        block = addr >> self.block_shift
        low = (block & 0x7) ^ ((block >> 3) & 0x7)  # addr[10:8] ^ addr[13:11]
        return (block & ~0x7) | low

    def channel_of(self, addr: int) -> int:
        return self.channel_key(addr) % self.org.num_channels

    # -- full decomposition ----------------------------------------------------
    def decompose(self, addr: int) -> tuple[int, int, int, int]:
        """(channel, bank, row, col) of a byte address."""
        key = self.channel_key(addr)
        channel = key % self.org.num_channels
        local = key // self.org.num_channels  # channel-local 256B block index
        col_block = local & (self.blocks_per_row - 1)
        seg = local // self.blocks_per_row  # (bank, row)-sized segment index
        bank_raw = seg & self.bank_mask
        upper = seg >> (self.org.banks_per_channel.bit_length() - 1)
        bank = (bank_raw ^ (upper & self.bank_mask)) & self.bank_mask
        row = upper % self.org.rows_per_bank
        line_in_block = (addr >> self.line_shift) & (
            (self.org.interleave_bytes // self.org.line_bytes) - 1
        )
        col = col_block * (self.org.interleave_bytes // self.org.line_bytes) + line_in_block
        return channel, bank, row, col

    def decompose_many(
        self, addrs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`decompose`: four int64 arrays for an array of
        byte addresses.  Used by the front-end pool to route every
        coalesced line of a kernel in one pass at construction time."""
        addrs = np.asarray(addrs, dtype=np.int64)
        org = self.org
        block = addrs >> self.block_shift
        low = (block & 0x7) ^ ((block >> 3) & 0x7)
        key = (block & ~0x7) | low
        channel = key % org.num_channels
        local = key // org.num_channels
        col_block = local & (self.blocks_per_row - 1)
        seg = local // self.blocks_per_row
        bank_raw = seg & self.bank_mask
        upper = seg >> (org.banks_per_channel.bit_length() - 1)
        bank = (bank_raw ^ (upper & self.bank_mask)) & self.bank_mask
        row = upper % org.rows_per_bank
        lines_per_block = org.interleave_bytes // org.line_bytes
        line_in_block = (addrs >> self.line_shift) & (lines_per_block - 1)
        col = col_block * lines_per_block + line_in_block
        return channel, bank, row, col

    def compose(
        self, channel: int, bank: int, row: int, col: int
    ) -> int:
        """Inverse of :meth:`decompose`: build the byte address of a line.

        Used by workload generators to place data structures on specific
        (channel, bank, row) resources, and by property tests to verify
        the mapping is a bijection.
        """
        org = self.org
        lines_per_block = org.interleave_bytes // org.line_bytes
        col_block, line_in_block = divmod(col, lines_per_block)
        if not 0 <= col_block < self.blocks_per_row:
            raise ValueError(f"col {col} outside the row")
        if not 0 <= row < org.rows_per_bank:
            raise ValueError(f"row {row} out of range")
        if not 0 <= bank < org.banks_per_channel:
            raise ValueError(f"bank {bank} out of range")
        if not 0 <= channel < org.num_channels:
            raise ValueError(f"channel {channel} out of range")
        upper = row
        bank_raw = (bank ^ (upper & self.bank_mask)) & self.bank_mask
        seg = (upper << (org.banks_per_channel.bit_length() - 1)) | bank_raw
        local = seg * self.blocks_per_row + col_block
        key = local * org.num_channels + channel
        # Undo the XOR spread on the low three block bits.
        block = (key & ~0x7) | ((key & 0x7) ^ ((key >> 3) & 0x7))
        return (block << self.block_shift) | (line_in_block << self.line_shift)

    def route(self, req: MemoryRequest) -> None:
        """Fill a request's channel/bank/row/col fields in place."""
        req.channel, req.bank, req.row, req.col = self.decompose(req.addr)

    def line_address(self, addr: int) -> int:
        return addr >> self.line_shift << self.line_shift
