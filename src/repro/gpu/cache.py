"""Set-associative LRU caches (L1 per SM, L2 slice per memory partition)
with MSHR-based miss merging.

The L1 is write-through/no-write-allocate (GPU-typical); the L2 slice is
write-back with write-validate allocation (a full 128B line store allocates
directly without a fill read — GPU stores are line-granular after
coalescing).  Dirty L2 evictions are the source of the DRAM write traffic
whose drains §IV-E manages.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.core.config import CacheConfig

__all__ = ["Cache", "MSHR"]


class Cache:
    """A single cache level.  Addresses are line-aligned byte addresses."""

    def __init__(self, cfg: CacheConfig) -> None:
        self.cfg = cfg
        self.num_sets = cfg.num_sets
        self.ways = cfg.ways
        # Per set: OrderedDict line_addr -> dirty flag, LRU order (oldest first).
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_evictions = 0

    def _set_of(self, line: int) -> OrderedDict[int, bool]:
        idx = (line // self.cfg.line_bytes) % self.num_sets
        return self._sets[idx]

    # -- operations --------------------------------------------------------
    def lookup(self, line: int, mark_dirty: bool = False) -> bool:
        """Probe for a line; updates LRU and dirty bit on hit."""
        s = self._set_of(line)
        if line in s:
            s.move_to_end(line)
            if mark_dirty:
                s[line] = True
            self.hits += 1
            return True
        self.misses += 1
        return False

    def lookup_many(self, lines: list) -> list[bool]:
        """Probe a batch of lines; one hit flag per line, in order.

        Semantically identical to calling :meth:`lookup` per line (same
        LRU updates in the same order, same hit/miss totals) with the
        per-call attribute and method dispatch hoisted out of the loop —
        the SM front end probes every line of a coalesced op at once.
        """
        sets = self._sets
        num_sets = self.num_sets
        line_bytes = self.cfg.line_bytes
        flags = []
        hits = 0
        for line in lines:
            s = sets[(line // line_bytes) % num_sets]
            if line in s:
                s.move_to_end(line)
                hits += 1
                flags.append(True)
            else:
                flags.append(False)
        self.hits += hits
        self.misses += len(flags) - hits
        return flags

    def fill(self, line: int, dirty: bool = False) -> Optional[int]:
        """Insert a line; returns the evicted dirty line's address or None."""
        s = self._set_of(line)
        if line in s:
            s.move_to_end(line)
            if dirty:
                s[line] = True
            return None
        victim_writeback = None
        if len(s) >= self.ways:
            victim, was_dirty = s.popitem(last=False)
            self.evictions += 1
            if was_dirty:
                self.dirty_evictions += 1
                victim_writeback = victim
        s[line] = dirty
        return victim_writeback

    def contains(self, line: int) -> bool:
        return line in self._set_of(line)

    def invalidate(self, line: int) -> None:
        self._set_of(line).pop(line, None)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)


class MSHR:
    """Miss-status holding registers: merge misses to in-flight lines.

    ``allocate`` returns True when the line miss is *primary* (a new fill
    must be requested) and False when it merged into an existing entry.
    Waiters are arbitrary opaque objects returned by ``complete``.
    """

    def __init__(self, entries: int) -> None:
        self.entries = entries
        self._pending: dict[int, list] = {}
        self.merges = 0
        self.overflows = 0

    def allocate(self, line: int, waiter) -> bool:
        waiters = self._pending.get(line)
        if waiters is not None:
            waiters.append(waiter)
            self.merges += 1
            return False
        if len(self._pending) >= self.entries:
            # Structural overflow; real hardware would stall the requester.
            # We record the entry anyway and count the event so experiments
            # can verify MSHR pressure stayed negligible.
            self.overflows += 1
        self._pending[line] = [waiter]
        return True

    def complete(self, line: int) -> list:
        """Fill arrived: pop and return all waiters for the line."""
        return self._pending.pop(line, [])

    def pending(self, line: int) -> bool:
        return line in self._pending

    def __len__(self) -> int:
        return len(self._pending)
