"""Memory partition: an L2 slice fronting one memory controller (§II-B).

Each of the six partitions owns the slice of the physical address space
its channel maps; reads probe the L2 slice (with MSHR merging), misses
enter the controller's read queue, and dirty L2 evictions generate the
DRAM write traffic that the write-drain machinery batches.
"""

from __future__ import annotations

from typing import Callable

from repro.core.config import SimConfig
from repro.core.engine import Engine
from repro.core.request import MemoryRequest
from repro.core.stats import SimStats
from repro.gpu.address_map import AddressMap
from repro.gpu.cache import MSHR, Cache
from repro.mc.base import MemoryController

__all__ = ["MemoryPartition"]


class MemoryPartition:
    """L2 slice + memory controller for one channel."""

    def __init__(
        self,
        engine: Engine,
        part_id: int,
        config: SimConfig,
        amap: AddressMap,
        reply: Callable[[MemoryRequest], None],
        sim_stats: SimStats,
    ) -> None:
        self.engine = engine
        self.part_id = part_id
        self.config = config
        self.amap = amap
        self.reply = reply
        self.sim_stats = sim_stats
        self.l2 = Cache(config.gpu.l2_slice) if config.use_l2 else None
        self.mshr = MSHR(config.gpu.l2_slice.mshr_entries)
        self.l2_lat_ps = int(config.gpu.l2_slice.hit_latency_ns * 1000)
        self.mc: MemoryController | None = None  # set by the system after wiring
        self.writebacks = 0

    # ------------------------------------------------------------------
    # ingress (from the crossbar)
    # ------------------------------------------------------------------
    def receive(self, req: MemoryRequest) -> None:
        self.engine.schedule(self.l2_lat_ps, self._lookup, req)

    def _lookup(self, req: MemoryRequest) -> None:
        assert self.mc is not None, "partition not wired to a controller"
        line = req.addr
        if req.is_write:
            if self.l2 is None:
                self.mc.receive_write(req)
                return
            if self.l2.lookup(line, mark_dirty=True):
                return  # absorbed by the slice
            victim = self.l2.fill(line, dirty=True)  # write-validate allocate
            if victim is not None:
                self._writeback(victim)
            return

        if self.l2 is not None and self.l2.lookup(line):
            self.sim_stats.l2_hits += 1
            req.serviced_by = "l2"
            if req.transaction is not None:
                req.transaction.note_resolved(self.part_id, to_dram=False)
            self.reply(req)
            return
        if self.l2 is not None:
            primary = self.mshr.allocate(line, req)
            if not primary:
                # Secondary miss: rides the in-flight fill.
                if req.transaction is not None:
                    req.transaction.note_resolved(self.part_id, to_dram=False)
                return
        self.mc.receive_read(req)

    # ------------------------------------------------------------------
    # egress (DRAM data ready)
    # ------------------------------------------------------------------
    def on_dram_data(self, req: MemoryRequest) -> None:
        if self.l2 is None:
            self.reply(req)
            return
        victim = self.l2.fill(req.addr)
        if victim is not None:
            self._writeback(victim)
        waiters = self.mshr.complete(req.addr)
        if not waiters:
            # Defensive: a fill whose MSHR entry vanished still answers
            # its own request.
            waiters = [req]
        for r in waiters:
            self.reply(r)

    def _writeback(self, victim_line: int) -> None:
        assert self.mc is not None
        wb = MemoryRequest(addr=victim_line, is_write=True, sm_id=-1, warp_id=-1)
        self.amap.route(wb)
        if wb.channel != self.part_id:
            raise RuntimeError(
                f"L2 victim {victim_line:#x} maps to channel {wb.channel}, "
                f"but lives in slice {self.part_id}"
            )
        self.writebacks += 1
        self.mc.receive_write(wb)
