"""SM <-> memory-partition crossbar.

Two properties matter to the paper's mechanisms and are modeled here:

* requests from one SM to one partition are never reordered (the
  warp-group completion tag of §IV-B relies on this);
* different SMs' streams interleave at each partition's ingress port,
  which is what defeats naive FCFS scheduling (§III-A).

Each port is a serialization server: a 128B message occupies the port for
``line_bytes / bytes_per_ns`` and is delivered after the base latency.
Because port occupancy is granted in call order, per-source FIFO order is
preserved automatically.
"""

from __future__ import annotations

from typing import Callable

from repro.core.config import GPUConfig
from repro.core.engine import Engine

__all__ = ["Crossbar"]


class Crossbar:
    """Contention-aware constant-latency crossbar."""

    def __init__(
        self,
        engine: Engine,
        gpu: GPUConfig,
        num_partitions: int,
        line_bytes: int = 128,
    ) -> None:
        self.engine = engine
        self.latency_ps = int(gpu.xbar_latency_ns * 1000)
        self.transfer_ps = max(1, int(line_bytes / gpu.xbar_bytes_per_ns * 1000))
        self._to_partition_free = [0] * num_partitions
        self._to_sm_free = [0] * gpu.num_sms
        self.messages_forward = 0
        self.messages_return = 0

    def _send(
        self, free: list[int], port: int, fn: Callable[..., None], args: tuple, payload: bool
    ) -> int:
        now = self.engine.now
        start = max(now, free[port])
        done = start + (self.transfer_ps if payload else 0)
        free[port] = done
        deliver = done + self.latency_ps
        self.engine.schedule_at(deliver, fn, *args)
        return deliver

    def to_partition(
        self, part: int, fn: Callable[..., None], *args, payload: bool = True
    ) -> int:
        """Send a request (or a zero-payload control message) to a partition."""
        self.messages_forward += 1
        return self._send(self._to_partition_free, part, fn, args, payload)

    def to_partition_many(self, items) -> None:
        """Batched :meth:`to_partition` for full-payload request streams.

        ``items`` is a sequence of ``(partition, fn, request)`` triples;
        port occupancy and delivery scheduling are identical to issuing
        the sends one by one in the same order (per-source FIFO order is
        therefore preserved), with the engine/port lookups hoisted out of
        the loop.  Used by the SM front end to inject a coalesced op's
        requests as one batch.
        """
        free = self._to_partition_free
        engine = self.engine
        now = engine.now
        schedule_at = engine.schedule_at
        latency = self.latency_ps
        transfer = self.transfer_ps
        count = 0
        for part, fn, req in items:
            port_free = free[part]
            start = port_free if port_free > now else now
            done = start + transfer
            free[part] = done
            schedule_at(done + latency, fn, req)
            count += 1
        self.messages_forward += count

    def to_sm(self, sm_id: int, fn: Callable[..., None], *args, payload: bool = True) -> int:
        """Send a data reply back to an SM."""
        self.messages_return += 1
        return self._send(self._to_sm_free, sm_id, fn, args, payload)
