"""Vectorized SM front end: pooled struct-of-arrays request batches.

The SM front end used to pay per-lane Python costs on the hot path: every
vector memory instruction re-ran the scalar coalescer over its 32 lane
addresses and every resulting request was decomposed into
(channel, bank, row, col) one at a time.  Both computations are pure
functions of the kernel trace and the configuration, so this module moves
them to *construction time* and batches them across every memory op of an
SM at once with numpy:

* :func:`coalesce_many` — the scalar :func:`repro.gpu.coalescer.coalesce`
  over all ops simultaneously (stable first-appearance order per op,
  bit-identical by construction);
* :class:`FrontEndPool` — one struct-of-arrays pool per SM holding the
  lane addresses, lane masks, warp ids and issue state of every memory
  op, plus the materialized per-op line lists and crossbar routes the
  runtime hot path indexes in O(1).

``REPRO_SCALAR_FRONTEND=1`` is the escape hatch: it keeps the original
scalar path (coalesce at issue time, route at injection time) selectable
at :class:`~repro.gpu.system.GPUSystem` construction, which the
``frontend-differential`` fuzz oracle and the CI scalar-vs-vectorized
bit-identity check both lean on.  See docs/performance.md (Phase 2).
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional, Sequence

try:
    import numpy as np
except ImportError as exc:  # pragma: no cover - environment guard
    raise ImportError(
        "repro's vectorized front end requires numpy>=1.24; install it with "
        "`pip install 'numpy>=1.24'` (it is a declared dependency in "
        "pyproject.toml)"
    ) from exc

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.config import SimConfig
    from repro.gpu.address_map import AddressMap
    from repro.workloads.trace import WarpTrace

__all__ = [
    "FrontEndPool",
    "FrontendUnsupported",
    "build_frontend_pools",
    "coalesce_many",
    "scalar_frontend_enabled",
]

#: Oldest numpy this module is tested against (lexsort/bincount semantics
#: and the `np.cumsum(..., out=)` signature used below are all old and
#: stable; 1.24 is where the repo's support window starts).
NUMPY_MIN_VERSION = (1, 24)


def _numpy_version() -> tuple[int, int]:
    parts = np.__version__.split(".")
    try:
        return int(parts[0]), int(parts[1])
    except (IndexError, ValueError):  # pragma: no cover - exotic builds
        return NUMPY_MIN_VERSION


if _numpy_version() < NUMPY_MIN_VERSION:  # pragma: no cover - environment guard
    raise RuntimeError(
        f"repro requires numpy>={'.'.join(map(str, NUMPY_MIN_VERSION))} for its "
        f"vectorized front end, but numpy {np.__version__} is installed. "
        "Upgrade with `pip install --upgrade 'numpy>=1.24'`. "
        "(REPRO_SCALAR_FRONTEND=1 is not a workaround: the trace loaders "
        "depend on the same numpy APIs.)"
    )

#: Addresses at or above this cannot be represented in the pool's int64
#: lane arrays (the -1 lane-mask sentinel also needs the sign bit), so
#: pool construction refuses them and the system falls back to the
#: scalar front end.
MAX_POOL_ADDRESS = 2**62

#: ``FrontEndPool.state`` values.
OP_PENDING = 0
OP_ISSUED = 1


class FrontendUnsupported(ValueError):
    """The trace cannot be represented in the SoA pool (scalar fallback)."""


def scalar_frontend_enabled() -> bool:
    """True when ``REPRO_SCALAR_FRONTEND=1`` requests the scalar path.

    Read dynamically (not cached at import) so tests and the fuzz oracle
    can toggle the mode in-process between system constructions.
    """
    return os.environ.get("REPRO_SCALAR_FRONTEND", "") == "1"


def coalesce_many(
    lane_addrs: np.ndarray, line_bytes: int
) -> tuple[np.ndarray, np.ndarray]:
    """Batched coalescer: unique line addresses per op, scalar-identical.

    ``lane_addrs`` is an int64 array of shape (n_ops, n_lanes) with ``-1``
    marking masked-off lanes.  Returns ``(lines, offsets)`` where
    ``lines[offsets[i]:offsets[i + 1]]`` are op ``i``'s line base
    addresses in order of first appearance across the lanes — exactly the
    order the scalar :func:`repro.gpu.coalescer.coalesce` produces, which
    the interconnect and controllers rely on (requests travel in lane
    order, as on real hardware).

    The stable-unique is built from one lexsort: sorting (op, line, lane)
    and keeping each (op, line)'s first row finds the *minimum* lane
    touching every line; re-sorting those representatives by
    (op, min lane) is first-appearance order because the scalar pass
    inserts a line the first time any lane touches it.
    """
    n_ops = lane_addrs.shape[0]
    valid = lane_addrs >= 0
    op_idx, lane_idx = np.nonzero(valid)
    lines = lane_addrs[valid] & ~np.int64(line_bytes - 1)
    order = np.lexsort((lane_idx, lines, op_idx))
    s_op = op_idx[order]
    s_line = lines[order]
    s_lane = lane_idx[order]
    first = np.empty(len(s_op), dtype=bool)
    if len(s_op):
        first[0] = True
        np.logical_or(s_op[1:] != s_op[:-1], s_line[1:] != s_line[:-1], out=first[1:])
    rep_op = s_op[first]
    rep_line = s_line[first]
    rep_lane = s_lane[first]
    appearance = np.lexsort((rep_lane, rep_op))
    out_lines = rep_line[appearance]
    counts = np.bincount(rep_op, minlength=n_ops)
    offsets = np.zeros(n_ops + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return out_lines, offsets


class FrontEndPool:
    """Struct-of-arrays pool of one SM's coalesced memory operations.

    Built once at system construction from the SM's warp traces:

    * ``addresses``  — int64 (n_ops, max_lanes) lane addresses, -1 = masked;
    * ``lane_mask``  — bool (n_ops, max_lanes) active-lane mask;
    * ``warp_ids``   — int64 (n_ops,) issuing warp of each op;
    * ``is_write``   — bool (n_ops,);
    * ``state``      — uint8 (n_ops,) issue state (``OP_PENDING``/``OP_ISSUED``).

    plus, per op, the *materialized* coalesced line list and its
    (channel, bank, row, col) routes — plain Python ints (``tolist()``),
    because line addresses flow into JSON summaries and Perfetto traces
    where a leaked ``np.int64`` would break serialization and hashing.
    The hot path (:meth:`op`) is a pair of list indexes; every numpy
    operation happens here, before the timed run starts.

    Ops are keyed by ``(warp position in the SM, segment index)`` rather
    than object identity so pools pickle cleanly into checkpoints.
    """

    def __init__(
        self,
        warps: Sequence["WarpTrace"],
        line_bytes: int,
        amap: "AddressMap",
    ) -> None:
        self.line_bytes = line_bytes
        specs: list[tuple[int, int, list]] = []  # (pos, seg_idx, lane_addrs)
        max_lanes = 1
        for pos, wt in enumerate(warps):
            for seg_idx, seg in enumerate(wt.segments):
                if seg.mem is not None:
                    specs.append((pos, seg_idx, seg.mem.lane_addrs))
                    if len(seg.mem.lane_addrs) > max_lanes:
                        max_lanes = len(seg.mem.lane_addrs)
        n_ops = len(specs)
        self.n_ops = n_ops
        self.addresses = np.full((n_ops, max_lanes), -1, dtype=np.int64)
        self.warp_ids = np.empty(n_ops, dtype=np.int64)
        self.is_write = np.zeros(n_ops, dtype=bool)
        self.state = np.zeros(n_ops, dtype=np.uint8)
        for i, (pos, seg_idx, lanes) in enumerate(specs):
            wt = warps[pos]
            self.warp_ids[i] = wt.warp_id
            self.is_write[i] = wt.segments[seg_idx].mem.is_write
            row = self.addresses[i]
            for j, a in enumerate(lanes):
                if a is not None:
                    if a >= MAX_POOL_ADDRESS:
                        raise FrontendUnsupported(
                            f"lane address {a:#x} exceeds the pool's int64 "
                            f"range (warp {wt.warp_id}, segment {seg_idx})"
                        )
                    row[j] = a
        self.lane_mask = self.addresses >= 0

        lines, offsets = coalesce_many(self.addresses, line_bytes)
        channel, bank, drow, col = amap.decompose_many(lines)
        # Materialize to Python ints once: addresses and routes cross into
        # MemoryRequest fields and JSON-facing telemetry.
        lines_l = lines.tolist()
        routes_l = list(zip(channel.tolist(), bank.tolist(), drow.tolist(), col.tolist()))
        # (op id, lines, routes) per (warp pos, segment index); None for
        # segments without a memory op.
        self._ops: list[list[Optional[tuple]]] = [
            [None] * len(wt.segments) for wt in warps
        ]
        for i, (pos, seg_idx, _lanes) in enumerate(specs):
            lo = int(offsets[i])
            hi = int(offsets[i + 1])
            self._ops[pos][seg_idx] = (i, lines_l[lo:hi], routes_l[lo:hi])

    def op(self, pos: int, seg_idx: int) -> tuple:
        """(op id, line list, route list) of one warp's memory op."""
        return self._ops[pos][seg_idx]

    @property
    def requests_total(self) -> int:
        """Coalesced requests across every op (pool-wide, for diagnostics)."""
        return sum(
            len(entry[1])
            for per_warp in self._ops
            for entry in per_warp
            if entry is not None
        )


def build_frontend_pools(
    buckets: Sequence[Sequence["WarpTrace"]],
    config: "SimConfig",
    amap: "AddressMap",
) -> Optional[list[FrontEndPool]]:
    """One pool per SM, or ``None`` when the scalar front end applies.

    ``None`` is returned both for the explicit ``REPRO_SCALAR_FRONTEND=1``
    escape hatch and for traces the pool cannot represent (addresses
    beyond the int64 sentinel range) — the caller falls back to the
    scalar path in either case.
    """
    if scalar_frontend_enabled():
        return None
    line_bytes = config.dram_org.line_bytes
    try:
        return [FrontEndPool(bucket, line_bytes, amap) for bucket in buckets]
    except FrontendUnsupported:
        return None
