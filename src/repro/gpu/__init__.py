"""GPU-side substrates: SMs, coalescer, caches, crossbar, address mapping."""

from repro.gpu.address_map import AddressMap
from repro.gpu.cache import MSHR, Cache
from repro.gpu.coalescer import CoalescerStats, coalesce
from repro.gpu.interconnect import Crossbar
from repro.gpu.partition import MemoryPartition
from repro.gpu.sm import SMCore
from repro.gpu.system import GPUSystem, simulate
from repro.gpu.warp import WarpState, WarpStatus

__all__ = [
    "AddressMap",
    "Cache",
    "CoalescerStats",
    "Crossbar",
    "GPUSystem",
    "MSHR",
    "MemoryPartition",
    "SMCore",
    "WarpState",
    "WarpStatus",
    "coalesce",
    "simulate",
]
