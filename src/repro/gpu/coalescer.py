"""Memory coalescer (§III-A).

Combines the 32 per-lane addresses of a warp's vector memory instruction
into the minimal set of 128-byte cache-line requests.  Perfectly coalesced
regular code produces a single request; irregular gathers produce up to 32
(the paper measures 5.9 on average for its irregular suite, Fig. 2).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

__all__ = ["coalesce", "CoalescerStats"]


class CoalescerStats:
    """Running tally of coalescing efficiency (drives Fig. 2)."""

    __slots__ = ("loads", "requests", "divergent_loads")

    def __init__(self) -> None:
        self.loads = 0
        self.requests = 0
        self.divergent_loads = 0

    def record(self, n_requests: int) -> None:
        self.loads += 1
        self.requests += n_requests
        if n_requests > 1:
            self.divergent_loads += 1

    @property
    def requests_per_load(self) -> float:
        return self.requests / self.loads if self.loads else 0.0

    @property
    def frac_divergent(self) -> float:
        return self.divergent_loads / self.loads if self.loads else 0.0


def coalesce(
    lane_addrs: Sequence[Optional[int]],
    line_bytes: int = 128,
    stats: Optional[CoalescerStats] = None,
) -> list[int]:
    """Unique line base addresses touched by a warp instruction.

    ``None`` entries model lanes masked off by control divergence.  Order
    of first appearance is preserved — the interconnect and controllers
    receive a warp's requests in lane order, as on real hardware.
    """
    mask = ~(line_bytes - 1)
    seen: dict[int, None] = {}
    for a in lane_addrs:
        if a is None:
            continue
        seen.setdefault(a & mask, None)
    lines = list(seen)
    if stats is not None and lines:
        stats.record(len(lines))
    return lines
