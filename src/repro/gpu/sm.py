"""Streaming multiprocessor model.

Warp-granularity SIMT execution: the SM issues one instruction per core
cycle, shared by all resident warps (an issue *server*; warps claim it in
ready order).  A warp executes a trace segment (compute run + optional
vector memory op); a vector load blocks the warp until the last of its
coalesced requests returns — the SIMT property at the heart of the paper's
latency-divergence problem.  Up to ``max_warps_per_sm`` warps are resident;
finished warps are replaced from the pending pool (CTA-style batching).

The L1 is looked up at issue; misses allocate an L1 MSHR (merging
same-line misses across warps) and travel to the owning memory partition.
"""

from __future__ import annotations

from collections import deque
from functools import partial
from typing import Callable, Optional

from repro.core.config import SimConfig
from repro.core.engine import Engine
from repro.core.request import LoadTransaction, MemoryRequest
from repro.core.stats import LoadRecord, SimStats
from repro.gpu.cache import MSHR, Cache
from repro.gpu.coalescer import CoalescerStats, coalesce
from repro.gpu.frontend import OP_ISSUED, FrontEndPool
from repro.gpu.warp import WarpState, WarpStatus
from repro.workloads.trace import MemOp, Segment, WarpTrace

__all__ = ["SMCore"]


class SMCore:
    """One SM: issue server, resident warp pool, L1, coalescer."""

    def __init__(
        self,
        engine: Engine,
        sm_id: int,
        config: SimConfig,
        warps: list[WarpTrace],
        send_request: Callable[[MemoryRequest], None],
        group_complete_cb: Callable[[int, tuple[int, int]], None],
        on_warp_done: Callable[[WarpState], None],
        sim_stats: SimStats,
        coal_stats: CoalescerStats,
        frontend: Optional[FrontEndPool] = None,
        send_requests: Optional[Callable[[list], None]] = None,
    ) -> None:
        self.engine = engine
        self.sm_id = sm_id
        self.config = config
        gpu = config.gpu
        self.core_cycle_ps = gpu.core_cycle_ps
        self.max_warps = gpu.max_warps_per_sm
        self.l1 = Cache(gpu.l1) if config.use_l1 else None
        self.l1_mshr = MSHR(gpu.l1.mshr_entries)
        self.l1_hit_ps = int(gpu.l1.hit_latency_ns * 1000)
        if config.use_tlb:
            from repro.gpu.tlb import TLB

            self.tlb = TLB(gpu.tlb_entries, gpu.page_bytes)
        else:
            self.tlb = None
        self.line_bytes = config.dram_org.line_bytes
        self.send_request = send_request
        self.send_requests = send_requests or self._send_each
        self.group_complete_cb = group_complete_cb
        self.on_warp_done = on_warp_done
        self.sim_stats = sim_stats
        self.coal_stats = coal_stats
        #: Pre-coalesced SoA op pool; None selects the scalar front end
        #: (REPRO_SCALAR_FRONTEND=1 or a directly constructed SMCore).
        self.frontend = frontend

        self.pending: deque[WarpState] = deque(
            WarpState(t, pos) for pos, t in enumerate(warps)
        )
        self.resident_count = 0
        self.issue_free = 0  # issue-server availability (ps)
        self.warps_finished = 0

    # ------------------------------------------------------------------
    # warp lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        for _ in range(min(self.max_warps, len(self.pending))):
            self._activate_next()

    def _activate_next(self) -> None:
        if not self.pending:
            return
        w = self.pending.popleft()
        w.status = WarpStatus.READY
        self.resident_count += 1
        self._run(w)

    def _run(self, w: WarpState) -> None:
        """Claim issue-server time for the warp's current segment."""
        if w.finished:
            self._finish(w)
            return
        seg = w.current_segment()
        cycles = max(1, seg.instructions)
        start = max(self.engine.now, self.issue_free)
        end = start + cycles * self.core_cycle_ps
        self.issue_free = end
        self.engine.schedule_at(end, self._segment_done, w, seg)

    def _segment_done(self, w: WarpState, seg: Segment) -> None:
        self.sim_stats.warp_instructions += seg.instructions
        pc = w.pc  # segment index, the front-end pool's second key
        w.advance()
        if seg.mem is None:
            self._run(w)
        elif seg.mem.is_write:
            self._issue_store(w, seg.mem, pc)
            self._run(w)  # stores are fire-and-forget
        else:
            self._issue_load(w, seg.mem, pc)

    def _finish(self, w: WarpState) -> None:
        w.status = WarpStatus.DONE
        w.t_finished = self.engine.now
        self.resident_count -= 1
        self.warps_finished += 1
        self.on_warp_done(w)
        self._activate_next()

    # ------------------------------------------------------------------
    # memory instructions
    # ------------------------------------------------------------------
    def _issue_load(self, w: WarpState, mem: MemOp, pc: int) -> None:
        now = self.engine.now
        fe = self.frontend
        if fe is None or w.pos < 0:
            lines = coalesce(mem.lane_addrs, self.line_bytes, self.coal_stats)
            routes = None
        else:
            op_id, lines, routes = fe.op(w.pos, pc)
            fe.state[op_id] = OP_ISSUED
            if lines:
                self.coal_stats.record(len(lines))
        if not lines:  # fully masked-off load
            self._run(w)
            return
        # §V extension: unmapped pages add page-table walk reads to the
        # load (the warp blocks on them like on any other request).
        walk_lines: list[int] = []
        if self.tlb is not None:
            seen_walks = set()
            for line in lines:
                if not self.tlb.lookup(line):
                    walk = self.tlb.walk_address(line) & ~(self.line_bytes - 1)
                    if walk not in seen_walks:
                        seen_walks.add(walk)
                        walk_lines.append(walk)
                    self.tlb.fill(line)
        self.sim_stats.loads_issued += 1
        self.sim_stats.requests_issued += len(lines) + len(walk_lines)
        # partial over a bound method (not a closure): the transaction may
        # sit in a checkpoint snapshot, so everything it holds must pickle.
        txn = LoadTransaction(
            self.sm_id,
            w.warp_id,
            n_requests=len(lines) + len(walk_lines),
            t_issue=now,
            on_complete=partial(self._load_done, w),
            on_group_complete=self.group_complete_cb,
        )
        w.status = WarpStatus.BLOCKED
        # Page walks bypass the L1 (no locality to exploit; L2-cacheable).
        for walk in walk_lines:
            wreq = MemoryRequest(
                addr=walk, is_write=False, sm_id=self.sm_id, warp_id=w.warp_id
            )
            wreq.transaction = txn
            wreq.t_issue = now
            self.send_request(wreq)
        # Loads stay per-request on the send side: L1-hit returns are
        # scheduled interleaved with miss sends, and the engine breaks
        # time ties by schedule order, so batching the sends would reorder
        # events.  Only the L1 probes are batched.
        l1_hits = self.l1.lookup_many(lines) if self.l1 is not None else None
        for i, line in enumerate(lines):
            if l1_hits is not None and l1_hits[i]:
                self.sim_stats.l1_hits += 1
                self.engine.schedule(self.l1_hit_ps, self._l1_hit_return, txn)
                continue
            req = MemoryRequest(
                addr=line, is_write=False, sm_id=self.sm_id, warp_id=w.warp_id
            )
            req.transaction = txn
            req.t_issue = now
            if routes is not None:
                req.channel, req.bank, req.row, req.col = routes[i]
            if self.l1 is not None:
                primary = self.l1_mshr.allocate(line, (txn, req))
                if not primary:
                    # Merged into an in-flight L1 miss: no new request.
                    continue
            self.send_request(req)
        txn.finish_dispatch()

    def _issue_store(self, w: WarpState, mem: MemOp, pc: int) -> None:
        fe = self.frontend
        if fe is None or w.pos < 0:
            lines = coalesce(mem.lane_addrs, self.line_bytes)
            routes = None
        else:
            op_id, lines, routes = fe.op(w.pos, pc)
            fe.state[op_id] = OP_ISSUED
        if not lines:
            return
        if self.l1 is not None:
            self.l1.lookup_many(lines)  # write-through: touch, never dirty
        now = self.engine.now
        reqs = []
        for i, line in enumerate(lines):
            req = MemoryRequest(
                addr=line, is_write=True, sm_id=self.sm_id, warp_id=w.warp_id
            )
            req.t_issue = now
            if routes is not None:
                req.channel, req.bank, req.row, req.col = routes[i]
            reqs.append(req)
        # Stores schedule nothing SM-side between sends, so the whole op
        # can be injected as one batch without perturbing event order.
        self.send_requests(reqs)

    def _send_each(self, reqs: list) -> None:
        """Fallback batched send for directly constructed SMCores."""
        for req in reqs:
            self.send_request(req)

    def _l1_hit_return(self, txn: LoadTransaction) -> None:
        txn.note_return(self.engine.now)

    def _load_done(self, w: WarpState, txn: LoadTransaction) -> None:
        self.sim_stats.record_load(
            LoadRecord(
                sm_id=txn.sm_id,
                warp_id=txn.warp_id,
                n_requests=txn.n_requests,
                dram_requests=txn.dram_requests,
                channels_touched=len(txn.channels_touched),
                banks_touched=len(txn.banks_touched),
                t_issue=txn.t_issue,
                t_first_return=txn.t_first_return,
                t_last_return=txn.t_last_return,
                t_first_dram=txn.t_first_dram,
                t_last_dram=txn.t_last_dram,
            )
        )
        w.status = WarpStatus.READY
        w.loads_completed += 1
        self._run(w)

    # ------------------------------------------------------------------
    # reply path
    # ------------------------------------------------------------------
    def receive_reply(self, req: MemoryRequest) -> None:
        req.t_return = self.engine.now
        if self.l1 is None:
            assert req.transaction is not None
            req.transaction.note_return(self.engine.now, req)
            return
        waiters = self.l1_mshr.complete(req.addr)
        if not waiters:
            # L1-bypassing request (page-table walk): answer it directly.
            assert req.transaction is not None
            req.transaction.note_return(self.engine.now, req)
            return
        self.l1.fill(req.addr)
        for txn, primary_req in waiters:
            txn.note_return(self.engine.now, primary_req)

    @property
    def done(self) -> bool:
        return self.resident_count == 0 and not self.pending
