"""Runtime state of a warp executing on an SM."""

from __future__ import annotations

from enum import Enum, auto

from repro.workloads.trace import Segment, WarpTrace

__all__ = ["WarpState", "WarpStatus"]


class WarpStatus(Enum):
    PENDING = auto()  # assigned to the SM, not yet resident
    READY = auto()  # resident, executing or awaiting the issue stage
    BLOCKED = auto()  # stalled on an outstanding vector load
    DONE = auto()


class WarpState:
    """A warp's execution cursor (SIMT: all 32 lanes move together)."""

    __slots__ = ("trace", "pc", "status", "loads_completed", "t_finished", "pos")

    def __init__(self, trace: WarpTrace, pos: int = -1) -> None:
        self.trace = trace
        #: Index of this warp within its SM's warp list — the front-end
        #: pool's first key (see :class:`repro.gpu.frontend.FrontEndPool`).
        self.pos = pos
        self.pc = 0
        self.status = WarpStatus.PENDING
        self.loads_completed = 0
        self.t_finished = -1

    @property
    def sm_id(self) -> int:
        return self.trace.sm_id

    @property
    def warp_id(self) -> int:
        return self.trace.warp_id

    def current_segment(self) -> Segment:
        return self.trace.segments[self.pc]

    def advance(self) -> None:
        self.pc += 1

    @property
    def finished(self) -> bool:
        return self.pc >= len(self.trace.segments)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Warp(sm{self.sm_id}, w{self.warp_id}, pc={self.pc}/"
            f"{len(self.trace.segments)}, {self.status.name})"
        )
