"""Whole-GPU wiring: SMs, crossbar, memory partitions, controllers.

``GPUSystem`` assembles every substrate for one simulation run, and
``simulate`` is the one-call public entry point used by examples and the
experiment harness::

    from repro import SimConfig, simulate
    stats = simulate(SimConfig(scheduler="wg-w"), kernel_trace)
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import SimConfig
from repro.core.engine import Engine
from repro.core.request import MemoryRequest
from repro.core.stats import SimStats
from repro.gpu.address_map import AddressMap
from repro.gpu.coalescer import CoalescerStats
from repro.gpu.interconnect import Crossbar
from repro.gpu.partition import MemoryPartition
from repro.gpu.sm import SMCore
from repro.gpu.warp import WarpState
from repro.mc.coordination import CoordinationNetwork
from repro.mc.registry import controller_class, coordinated_schedulers
from repro.workloads.trace import KernelTrace

__all__ = ["GPUSystem", "simulate"]


class GPUSystem:
    """A fully wired GPU + memory system executing one kernel trace."""

    def __init__(self, config: SimConfig, kernel: KernelTrace) -> None:
        self.config = config
        self.kernel = kernel
        self.engine = Engine()
        self.amap = AddressMap(config.dram_org)
        self.stats = SimStats(config.dram_org.num_channels)
        self.coal_stats = CoalescerStats()
        num_parts = config.dram_org.num_channels

        self.xbar = Crossbar(
            self.engine, config.gpu, num_parts, config.dram_org.line_bytes
        )

        self.partitions = [
            MemoryPartition(
                self.engine, p, config, self.amap, self._reply, self.stats
            )
            for p in range(num_parts)
        ]

        mc_cls = controller_class(config.scheduler)
        self.mcs = []
        for ch in range(num_parts):
            mc = mc_cls(
                self.engine,
                ch,
                config,
                self.stats.channels[ch],
                deliver_read=self.partitions[ch].on_dram_data,
            )
            self.partitions[ch].mc = mc
            self.mcs.append(mc)

        self.network: Optional[CoordinationNetwork] = None
        if config.scheduler in coordinated_schedulers():
            self.network = CoordinationNetwork(self.engine)
            for mc in self.mcs:
                mc.attach_network(self.network)

        buckets = kernel.by_sm(config.gpu.num_sms)
        self.sms = [
            SMCore(
                self.engine,
                sm_id,
                config,
                buckets[sm_id],
                send_request=self._send_request,
                group_complete_cb=self._group_complete,
                on_warp_done=self._warp_done,
                sim_stats=self.stats,
                coal_stats=self.coal_stats,
            )
            for sm_id in range(config.gpu.num_sms)
        ]
        self.total_warps = len(kernel.warps)
        self.warps_done = 0
        self._t_last_warp = 0

    # ------------------------------------------------------------------
    # routing callbacks
    # ------------------------------------------------------------------
    def _send_request(self, req: MemoryRequest) -> None:
        self.amap.route(req)
        if req.transaction is not None:
            req.transaction.note_dispatched(req.channel)
        part = self.partitions[req.channel]
        self.xbar.to_partition(req.channel, lambda: part.receive(req))

    def _reply(self, req: MemoryRequest) -> None:
        sm = self.sms[req.sm_id]
        self.xbar.to_sm(req.sm_id, lambda: sm.receive_reply(req))

    def _group_complete(self, channel: int, key: tuple[int, int], expected: int) -> None:
        # The tag travels with the group's last request, which is already
        # at the controller when this fires (see LoadTransaction).
        self.mcs[channel].receive_group_complete(key, expected)

    def _warp_done(self, warp: WarpState) -> None:
        self.warps_done += 1
        self._t_last_warp = self.engine.now

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, max_events: Optional[int] = None) -> SimStats:
        """Execute the kernel to completion and return the statistics."""
        for sm in self.sms:
            sm.start()
        self.engine.run(max_events=max_events)
        if self.warps_done != self.total_warps:
            raise RuntimeError(
                f"simulation stalled: {self.warps_done}/{self.total_warps} "
                f"warps finished, {self.engine.events_processed} events"
            )
        self.stats.elapsed_ps = self._t_last_warp
        for mc in self.mcs:
            mc.sync_stats()
        return self.stats


def simulate(
    config: SimConfig, kernel: KernelTrace, max_events: Optional[int] = None
) -> SimStats:
    """Build a :class:`GPUSystem` for ``kernel`` and run it to completion."""
    return GPUSystem(config, kernel).run(max_events=max_events)
