"""Whole-GPU wiring: SMs, crossbar, memory partitions, controllers.

``GPUSystem`` assembles every substrate for one simulation run, and
``simulate`` is the one-call public entry point used by examples and the
experiment harness::

    from repro import SimConfig, simulate
    stats = simulate(SimConfig(scheduler="wg-w"), kernel_trace)
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional

from repro.core.config import SimConfig
from repro.core.engine import Engine
from repro.core.request import MemoryRequest
from repro.core.stats import SimStats
from repro.dram.validate import StreamingAuditor
from repro.gpu.address_map import AddressMap
from repro.gpu.coalescer import CoalescerStats
from repro.gpu.frontend import build_frontend_pools
from repro.gpu.interconnect import Crossbar
from repro.gpu.partition import MemoryPartition
from repro.gpu.sm import SMCore
from repro.gpu.warp import WarpState
from repro.guardrails.checkpoint import save_checkpoint
from repro.guardrails.config import GuardrailConfig
from repro.guardrails.faults import FaultInjector
from repro.guardrails.invariants import InvariantMonitor
from repro.mc.coordination import CoordinationNetwork
from repro.mc.registry import controller_class, coordinated_schedulers
from repro.telemetry.hub import NULL_PROBE, TelemetryHub
from repro.telemetry.sampler import IntervalSampler
from repro.workloads.trace import KernelTrace

__all__ = ["GPUSystem", "simulate"]


class GPUSystem:
    """A fully wired GPU + memory system executing one kernel trace.

    ``telemetry`` is an optional :class:`~repro.telemetry.TelemetryHub`;
    when omitted (the default) no probe, sampler, tracer or profiler is
    wired and the simulation path is byte-for-byte the untelemetered one.

    ``guardrails`` is an optional
    :class:`~repro.guardrails.GuardrailConfig` enabling the invariant
    monitor, the streaming protocol audit, periodic checkpoints and/or
    fault injection.  Guardrails never perturb the simulation: the drive
    loop segments ``Engine.run`` instead of scheduling events, so event
    order, tie sequence numbers and every statistic are identical with
    guardrails on or off.
    """

    def __init__(
        self,
        config: SimConfig,
        kernel: KernelTrace,
        telemetry: Optional[TelemetryHub] = None,
        guardrails: Optional[GuardrailConfig] = None,
    ) -> None:
        self.config = config
        self.kernel = kernel
        self.engine = Engine()
        self.amap = AddressMap(config.dram_org)
        self.stats = SimStats(config.dram_org.num_channels)
        self.coal_stats = CoalescerStats()
        self.telemetry = telemetry
        self._tracer = telemetry.tracer if telemetry is not None else None
        self._p_warp_done = (
            telemetry.probe("gpu.warp_done") if telemetry is not None else NULL_PROBE
        )
        if telemetry is not None and telemetry.profiler is not None:
            self.engine.profiler = telemetry.profiler
        num_parts = config.dram_org.num_channels

        self.xbar = Crossbar(
            self.engine, config.gpu, num_parts, config.dram_org.line_bytes
        )

        self.partitions = [
            MemoryPartition(
                self.engine, p, config, self.amap, self._reply, self.stats
            )
            for p in range(num_parts)
        ]

        mc_cls = controller_class(config.scheduler)
        self.mcs = []
        for ch in range(num_parts):
            mc = mc_cls(
                self.engine,
                ch,
                config,
                self.stats.channels[ch],
                deliver_read=self.partitions[ch].on_dram_data,
                hub=telemetry,
            )
            self.partitions[ch].mc = mc
            self.mcs.append(mc)

        self.network: Optional[CoordinationNetwork] = None
        if config.scheduler in coordinated_schedulers():
            self.network = CoordinationNetwork(self.engine)
            for mc in self.mcs:
                mc.attach_network(self.network)

        # Runtime guardrails (see repro.guardrails / docs/robustness.md).
        self.guardrails = guardrails
        self.monitor: Optional[InvariantMonitor] = None
        self.injector: Optional[FaultInjector] = None
        if guardrails is not None and guardrails.active:
            if guardrails.invariants:
                self.monitor = InvariantMonitor(guardrails)
            if guardrails.faults:
                self.injector = FaultInjector(guardrails.faults)
            if guardrails.audit:
                for mc in self.mcs:
                    channel = getattr(mc, "channel", None)
                    if channel is not None and channel.log is None:
                        channel.log = StreamingAuditor(
                            config.dram_timing, config.dram_org, mc.channel_id
                        )

        buckets = kernel.by_sm(config.gpu.num_sms)
        # Pre-coalesced SoA request pools, one per SM (None = scalar mode,
        # via REPRO_SCALAR_FRONTEND=1 or an unsupported trace).
        self.frontends = build_frontend_pools(buckets, config, self.amap)
        self.sms = [
            SMCore(
                self.engine,
                sm_id,
                config,
                buckets[sm_id],
                send_request=self._send_request,
                group_complete_cb=self._group_complete,
                on_warp_done=self._warp_done,
                sim_stats=self.stats,
                coal_stats=self.coal_stats,
                frontend=(
                    self.frontends[sm_id] if self.frontends is not None else None
                ),
                send_requests=self._send_requests,
            )
            for sm_id in range(config.gpu.num_sms)
        ]
        self.total_warps = len(kernel.warps)
        self.warps_done = 0
        self._t_last_warp = 0
        self._started = False

        # The sampler is built last: it snapshots the controllers above.
        self.sampler: Optional[IntervalSampler] = None
        if telemetry is not None and telemetry.sampling:
            self.sampler = IntervalSampler(self, telemetry.sample_period_ps, telemetry)

    # ------------------------------------------------------------------
    # routing callbacks
    # ------------------------------------------------------------------
    def _send_request(self, req: MemoryRequest) -> None:
        if req.channel < 0:  # not pre-routed by the front-end pool
            self.amap.route(req)
        if self._tracer is not None:
            self._tracer.on_dispatch(req)
        if self.monitor is not None:
            self.monitor.note_inject(req, self.engine.now)
        if req.transaction is not None:
            req.transaction.note_dispatched(req.channel)
        part = self.partitions[req.channel]
        self.xbar.to_partition(req.channel, part.receive, req)

    def _send_requests(self, reqs: list[MemoryRequest]) -> None:
        """Batched :meth:`_send_request` for a whole coalesced store op."""
        route = self.amap.route
        tracer = self._tracer
        monitor = self.monitor
        partitions = self.partitions
        now = self.engine.now
        items = []
        for req in reqs:
            if req.channel < 0:
                route(req)
            if tracer is not None:
                tracer.on_dispatch(req)
            if monitor is not None:
                monitor.note_inject(req, now)
            if req.transaction is not None:
                req.transaction.note_dispatched(req.channel)
            items.append((req.channel, partitions[req.channel].receive, req))
        self.xbar.to_partition_many(items)

    def _reply(self, req: MemoryRequest) -> None:
        if self.monitor is not None:
            self.monitor.note_retire(req, self.engine.now)
        sm = self.sms[req.sm_id]
        self.xbar.to_sm(req.sm_id, sm.receive_reply, req)

    def _group_complete(self, channel: int, key: tuple[int, int], expected: int) -> None:
        # The tag travels with the group's last request, which is already
        # at the controller when this fires (see LoadTransaction).
        self.mcs[channel].receive_group_complete(key, expected)

    def _warp_done(self, warp: WarpState) -> None:
        self.warps_done += 1
        self._t_last_warp = self.engine.now
        if self.monitor is not None:
            self.monitor.note_warp_done((warp.sm_id, warp.warp_id))
        if self._p_warp_done:
            self._p_warp_done.emit(warp.sm_id, warp.warp_id, self.engine.now)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, max_events: Optional[int] = None) -> SimStats:
        """Execute the kernel to completion and return the statistics."""
        self.start()
        return self.resume(max_events=max_events)

    def start(self) -> None:
        """Seed the event queue with every SM's first segment."""
        if self._started:
            raise RuntimeError("GPUSystem.start() called twice")
        self._started = True
        for sm in self.sms:
            sm.start()
        if self.sampler is not None:
            self.sampler.start()

    def resume(self, max_events: Optional[int] = None) -> SimStats:
        """Drain the event queue to completion and return the statistics.

        Valid on a freshly started system and on one rehydrated by
        :func:`repro.guardrails.load_checkpoint` — the restored run
        continues exactly where the snapshot was taken.
        """
        if not self._started:
            raise RuntimeError("GPUSystem.resume() before start()")
        t0 = perf_counter()
        if self.guardrails is not None and self.guardrails.needs_driver:
            self._drive(max_events)
        else:
            self.engine.run(max_events=max_events)
        wall = perf_counter() - t0
        if self.monitor is not None:
            self.monitor.final_check(self.engine.now)
        if self.warps_done != self.total_warps:
            raise RuntimeError(
                f"simulation stalled: {self.warps_done}/{self.total_warps} "
                f"warps finished, {self.engine.events_processed} events"
            )
        self.stats.elapsed_ps = self._t_last_warp
        self.stats.events_processed = self.engine.events_processed
        self.stats.wall_seconds = wall
        for mc in self.mcs:
            mc.sync_stats()
        if self.sampler is not None:
            self.sampler.finalize()
            self.stats.intervals = self.sampler.samples
            self.stats.interval_period_ps = self.sampler.period_ps
        return self.stats

    def _drive(self, max_events: Optional[int]) -> None:
        """Segmented event loop for invariants, checkpoints and faults.

        Runs the engine in bounded segments (``engine.run(until_ps=...)``)
        and performs guardrail work *between* segments, at quiescent
        instants.  Nothing here schedules an event, so the event stream
        is identical to an unsegmented run — the property the
        bit-identical checkpoint/restore guarantee rests on.
        """
        g = self.guardrails
        assert g is not None
        engine = self.engine
        check_ps = g.check_period_ps
        next_check = engine.now + check_ps if self.monitor is not None else None
        ckpt_ps = g.checkpoint_period_ps
        next_ckpt = (engine.now // ckpt_ps + 1) * ckpt_ps if ckpt_ps else None
        remaining = max_events
        while not engine.empty():
            bounds = []
            if next_check is not None:
                bounds.append(next_check)
            if next_ckpt is not None:
                bounds.append(next_ckpt)
            if self.injector is not None and self.injector.pending:
                due = self.injector.next_due_ps()
                # A fault waiting for a target (due already passed)
                # retries at watchdog cadence, not every picosecond.
                bounds.append(due if due > engine.now else engine.now + check_ps)
            before = engine.events_processed
            engine.run(
                until_ps=min(bounds) if bounds else None, max_events=remaining
            )
            if remaining is not None:
                remaining -= engine.events_processed - before
            if engine.empty():
                # The run finished inside this segment (the engine parks
                # the clock at the segment bound).  Periodic work at the
                # boundary would be pure noise now — a checkpoint of a
                # completed run cannot be resumed into anything, and
                # ``final_check`` covers the monitor.
                break
            now = engine.now
            if self.injector is not None and self.injector.pending:
                self.injector.apply_due(self, now)
            if next_check is not None and now >= next_check:
                self.monitor.check(self, now)
                next_check = now + check_ps
            if next_ckpt is not None and now >= next_ckpt:
                save_checkpoint(self, g.checkpoint_path)
                next_ckpt = (now // ckpt_ps + 1) * ckpt_ps


def simulate(
    config: SimConfig,
    kernel: KernelTrace,
    max_events: Optional[int] = None,
    telemetry: Optional[TelemetryHub] = None,
    guardrails: Optional[GuardrailConfig] = None,
) -> SimStats:
    """Build a :class:`GPUSystem` for ``kernel`` and run it to completion."""
    system = GPUSystem(config, kernel, telemetry=telemetry, guardrails=guardrails)
    return system.run(max_events=max_events)
