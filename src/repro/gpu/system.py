"""Whole-GPU wiring: SMs, crossbar, memory partitions, controllers.

``GPUSystem`` assembles every substrate for one simulation run, and
``simulate`` is the one-call public entry point used by examples and the
experiment harness::

    from repro import SimConfig, simulate
    stats = simulate(SimConfig(scheduler="wg-w"), kernel_trace)
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional

from repro.core.config import SimConfig
from repro.core.engine import Engine
from repro.core.request import MemoryRequest
from repro.core.stats import SimStats
from repro.gpu.address_map import AddressMap
from repro.gpu.coalescer import CoalescerStats
from repro.gpu.interconnect import Crossbar
from repro.gpu.partition import MemoryPartition
from repro.gpu.sm import SMCore
from repro.gpu.warp import WarpState
from repro.mc.coordination import CoordinationNetwork
from repro.mc.registry import controller_class, coordinated_schedulers
from repro.telemetry.hub import NULL_PROBE, TelemetryHub
from repro.telemetry.sampler import IntervalSampler
from repro.workloads.trace import KernelTrace

__all__ = ["GPUSystem", "simulate"]


class GPUSystem:
    """A fully wired GPU + memory system executing one kernel trace.

    ``telemetry`` is an optional :class:`~repro.telemetry.TelemetryHub`;
    when omitted (the default) no probe, sampler, tracer or profiler is
    wired and the simulation path is byte-for-byte the untelemetered one.
    """

    def __init__(
        self,
        config: SimConfig,
        kernel: KernelTrace,
        telemetry: Optional[TelemetryHub] = None,
    ) -> None:
        self.config = config
        self.kernel = kernel
        self.engine = Engine()
        self.amap = AddressMap(config.dram_org)
        self.stats = SimStats(config.dram_org.num_channels)
        self.coal_stats = CoalescerStats()
        self.telemetry = telemetry
        self._tracer = telemetry.tracer if telemetry is not None else None
        self._p_warp_done = (
            telemetry.probe("gpu.warp_done") if telemetry is not None else NULL_PROBE
        )
        if telemetry is not None and telemetry.profiler is not None:
            self.engine.profiler = telemetry.profiler
        num_parts = config.dram_org.num_channels

        self.xbar = Crossbar(
            self.engine, config.gpu, num_parts, config.dram_org.line_bytes
        )

        self.partitions = [
            MemoryPartition(
                self.engine, p, config, self.amap, self._reply, self.stats
            )
            for p in range(num_parts)
        ]

        mc_cls = controller_class(config.scheduler)
        self.mcs = []
        for ch in range(num_parts):
            mc = mc_cls(
                self.engine,
                ch,
                config,
                self.stats.channels[ch],
                deliver_read=self.partitions[ch].on_dram_data,
                hub=telemetry,
            )
            self.partitions[ch].mc = mc
            self.mcs.append(mc)

        self.network: Optional[CoordinationNetwork] = None
        if config.scheduler in coordinated_schedulers():
            self.network = CoordinationNetwork(self.engine)
            for mc in self.mcs:
                mc.attach_network(self.network)

        buckets = kernel.by_sm(config.gpu.num_sms)
        self.sms = [
            SMCore(
                self.engine,
                sm_id,
                config,
                buckets[sm_id],
                send_request=self._send_request,
                group_complete_cb=self._group_complete,
                on_warp_done=self._warp_done,
                sim_stats=self.stats,
                coal_stats=self.coal_stats,
            )
            for sm_id in range(config.gpu.num_sms)
        ]
        self.total_warps = len(kernel.warps)
        self.warps_done = 0
        self._t_last_warp = 0

        # The sampler is built last: it snapshots the controllers above.
        self.sampler: Optional[IntervalSampler] = None
        if telemetry is not None and telemetry.sampling:
            self.sampler = IntervalSampler(self, telemetry.sample_period_ps, telemetry)

    # ------------------------------------------------------------------
    # routing callbacks
    # ------------------------------------------------------------------
    def _send_request(self, req: MemoryRequest) -> None:
        self.amap.route(req)
        if self._tracer is not None:
            self._tracer.on_dispatch(req)
        if req.transaction is not None:
            req.transaction.note_dispatched(req.channel)
        part = self.partitions[req.channel]
        self.xbar.to_partition(req.channel, lambda: part.receive(req))

    def _reply(self, req: MemoryRequest) -> None:
        sm = self.sms[req.sm_id]
        self.xbar.to_sm(req.sm_id, lambda: sm.receive_reply(req))

    def _group_complete(self, channel: int, key: tuple[int, int], expected: int) -> None:
        # The tag travels with the group's last request, which is already
        # at the controller when this fires (see LoadTransaction).
        self.mcs[channel].receive_group_complete(key, expected)

    def _warp_done(self, warp: WarpState) -> None:
        self.warps_done += 1
        self._t_last_warp = self.engine.now
        if self._p_warp_done:
            self._p_warp_done.emit(warp.sm_id, warp.warp_id, self.engine.now)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, max_events: Optional[int] = None) -> SimStats:
        """Execute the kernel to completion and return the statistics."""
        for sm in self.sms:
            sm.start()
        if self.sampler is not None:
            self.sampler.start()
        t0 = perf_counter()
        self.engine.run(max_events=max_events)
        wall = perf_counter() - t0
        if self.warps_done != self.total_warps:
            raise RuntimeError(
                f"simulation stalled: {self.warps_done}/{self.total_warps} "
                f"warps finished, {self.engine.events_processed} events"
            )
        self.stats.elapsed_ps = self._t_last_warp
        self.stats.events_processed = self.engine.events_processed
        self.stats.wall_seconds = wall
        for mc in self.mcs:
            mc.sync_stats()
        if self.sampler is not None:
            self.sampler.finalize()
            self.stats.intervals = self.sampler.samples
            self.stats.interval_period_ps = self.sampler.period_ps
        return self.stats


def simulate(
    config: SimConfig,
    kernel: KernelTrace,
    max_events: Optional[int] = None,
    telemetry: Optional[TelemetryHub] = None,
) -> SimStats:
    """Build a :class:`GPUSystem` for ``kernel`` and run it to completion."""
    return GPUSystem(config, kernel, telemetry=telemetry).run(max_events=max_events)
