"""Optional per-SM TLB model (§V discussion).

The paper does not simulate TLBs, arguing GPU TLBs with large pages have
virtually 100% coverage — but notes that *if* TLB misses mattered [41],
warp-aware scheduling would do strictly better: a warp stalled on a page
walk should not have its other requests waste DRAM bandwidth, and the
sparse page-table walk reads are exactly the row-miss traffic MERB hides
behind row-hit streams.

Enable with ``SimConfig(use_tlb=True)``: each SM gets an LRU TLB; a load
touching unmapped pages issues one page-table read per missing page as
part of the same load transaction (the warp blocks on it like on any
other request), and the translation is installed when the walk returns.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["TLB", "PAGE_TABLE_REGION"]

# Page tables live in a reserved region of physical memory (high addresses
# within DRAM capacity); eight bytes per PTE.
PAGE_TABLE_REGION = 700 << 20


class TLB:
    """A fully-associative LRU TLB."""

    def __init__(self, entries: int, page_bytes: int) -> None:
        if page_bytes & (page_bytes - 1):
            raise ValueError("page size must be a power of two")
        self.entries = entries
        self.page_bytes = page_bytes
        self._shift = page_bytes.bit_length() - 1
        self._map: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def page_of(self, addr: int) -> int:
        return addr >> self._shift

    def lookup(self, addr: int) -> bool:
        page = self.page_of(addr)
        if page in self._map:
            self._map.move_to_end(page)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, addr: int) -> None:
        page = self.page_of(addr)
        if page in self._map:
            self._map.move_to_end(page)
            return
        if len(self._map) >= self.entries:
            self._map.popitem(last=False)
        self._map[page] = None

    def walk_address(self, addr: int) -> int:
        """Physical address of the PTE for ``addr``'s page (8B entries,
        read as part of the owning 128B line)."""
        return PAGE_TABLE_REGION + (self.page_of(addr) * 8) % (32 << 20)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._map)
