"""Online invariant monitor: conservation, occupancy, forward progress.

The monitor is wired into :class:`~repro.gpu.system.GPUSystem` when
``GuardrailConfig.invariants`` is set.  It observes the simulation from
two angles:

* **edge hooks** — ``note_inject`` / ``note_retire`` / ``note_warp_done``
  are called synchronously from the system's routing callbacks, so the
  request-conservation ledger is exact (no sampling gap);
* **periodic sweeps** — ``check`` runs between event-queue segments at
  ``check_period_ns`` cadence and audits state that only drifts over
  time: queue occupancies against their configured capacities, warp-group
  entries against retired warps, request age, and per-controller command
  progress.

Every failure raises :class:`InvariantViolation` carrying the violated
law's name, the simulation instant, and a diagnostic precise enough to
start debugging from (request ids, channel ids, ages in ns).

The monitor holds only plain dicts/sets/ints, so it pickles and rides
along inside checkpoint snapshots; a restored run resumes watching with
its ledger intact.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.request import MemoryRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpu.system import GPUSystem
    from repro.guardrails.config import GuardrailConfig

__all__ = ["InvariantMonitor", "InvariantViolation"]


class InvariantViolation(RuntimeError):
    """A simulation invariant was broken (run aborted).

    ``law`` is one of ``conservation``, ``occupancy``, ``warp-group``,
    ``stale-request``, ``stuck-mc``.
    """

    def __init__(self, law: str, time_ps: int, detail: str) -> None:
        self.law = law
        self.time_ps = time_ps
        self.detail = detail
        super().__init__(f"[{law}] t={time_ps / 1000:.1f}ns: {detail}")


class InvariantMonitor:
    """Watches one :class:`GPUSystem` run for broken invariants."""

    def __init__(self, config: "GuardrailConfig") -> None:
        self.stale_ps = int(config.stale_request_ns * 1000)
        self.stuck_mc_ps = int(config.stuck_mc_ns * 1000)
        # Conservation ledger: req_id -> (request, inject instant).
        self.outstanding: dict[int, tuple[MemoryRequest, int]] = {}
        self.reads_injected = 0
        self.reads_retired = 0
        self.writes_injected = 0
        self.done_warps: set[tuple[int, int]] = set()
        # Per-controller progress snapshots: commands_issued at the last
        # sweep where the count changed, and when that was.
        self._mc_progress: dict[int, tuple[int, int]] = {}
        self.checks_run = 0

    # ------------------------------------------------------------------
    # edge hooks (called from GPUSystem routing callbacks)
    # ------------------------------------------------------------------
    def note_inject(self, req: MemoryRequest, now_ps: int) -> None:
        """A coalesced request entered the memory system."""
        if req.is_write:
            self.writes_injected += 1
            return  # stores are fire-and-forget: no reply to conserve
        if req.req_id in self.outstanding:
            raise InvariantViolation(
                "conservation", now_ps, f"{req!r} injected twice"
            )
        self.outstanding[req.req_id] = (req, now_ps)
        self.reads_injected += 1

    def note_retire(self, req: MemoryRequest, now_ps: int) -> None:
        """A reply left the memory system toward its SM."""
        if self.outstanding.pop(req.req_id, None) is None:
            raise InvariantViolation(
                "conservation",
                now_ps,
                f"{req!r} retired but not in flight "
                "(duplicate response, or a reply for a request never injected)",
            )
        self.reads_retired += 1

    def note_warp_done(self, key: tuple[int, int]) -> None:
        self.done_warps.add(key)

    # ------------------------------------------------------------------
    # periodic sweep
    # ------------------------------------------------------------------
    def check(self, system: "GPUSystem", now_ps: int) -> None:
        """Audit slow-drift state; raises on the first broken invariant."""
        self.checks_run += 1
        self._check_occupancy(system, now_ps)
        self._check_warp_groups(system, now_ps)
        self._check_stale_requests(now_ps)
        self._check_stuck_mcs(system, now_ps)

    def _check_occupancy(self, system: "GPUSystem", now_ps: int) -> None:
        for mc in system.mcs:
            cap = getattr(mc, "mc", None)
            if cap is None:  # idealized controllers have no bounded queues
                continue
            pending = getattr(mc, "_reads_pending", None)
            if pending is not None and not 0 <= pending <= cap.read_queue_entries:
                raise InvariantViolation(
                    "occupancy",
                    now_ps,
                    f"channel {mc.channel_id}: read queue holds {pending} "
                    f"of {cap.read_queue_entries} entries",
                )
            wq = getattr(mc, "write_queue", None)
            if wq is not None and len(wq) > cap.write_queue_entries:
                raise InvariantViolation(
                    "occupancy",
                    now_ps,
                    f"channel {mc.channel_id}: write queue holds {len(wq)} "
                    f"of {cap.write_queue_entries} entries",
                )
            cq = getattr(mc, "cq", None)
            if cq is not None:
                # WG-family schedulers insert a whole warp-group once one
                # slot is free, so a bank queue may legally overshoot its
                # nominal depth by the group's per-bank size — bounded by
                # one warp's coalesced lines plus its page walks.
                slack = 2 * system.config.gpu.warp_size - 1
                for bank, q in enumerate(cq.queues):
                    if len(q) > cq.depth + slack:
                        raise InvariantViolation(
                            "occupancy",
                            now_ps,
                            f"channel {mc.channel_id} bank {bank}: command "
                            f"queue holds {len(q)} entries "
                            f"(depth {cq.depth} + group slack {slack})",
                        )

    def _check_warp_groups(self, system: "GPUSystem", now_ps: int) -> None:
        """No controller may hold a group for a warp that already retired."""
        if not self.done_warps:
            return
        for mc in system.mcs:
            # Only warp-aware sorters keep per-warp groups; FR-FCFS-style
            # row sorters have nothing to cross-check here.
            groups = getattr(getattr(mc, "sorter", None), "groups", None)
            if groups is None:
                continue
            for key in groups:
                if key in self.done_warps:
                    raise InvariantViolation(
                        "warp-group",
                        now_ps,
                        f"channel {mc.channel_id}: sorter still holds group "
                        f"(sm={key[0]}, warp={key[1]}) of a finished warp",
                    )

    def _check_stale_requests(self, now_ps: int) -> None:
        oldest_id: Optional[int] = None
        oldest_t = now_ps
        for req_id, (_, t_inject) in self.outstanding.items():
            if t_inject < oldest_t:
                oldest_t = t_inject
                oldest_id = req_id
        if oldest_id is not None and now_ps - oldest_t > self.stale_ps:
            req, _ = self.outstanding[oldest_id]
            raise InvariantViolation(
                "stale-request",
                now_ps,
                f"{req!r} in flight for {(now_ps - oldest_t) / 1000:.1f}ns "
                f"(bound {self.stale_ps / 1000:.0f}ns); "
                f"{len(self.outstanding)} requests outstanding",
            )

    def _check_stuck_mcs(self, system: "GPUSystem", now_ps: int) -> None:
        for mc in system.mcs:
            channel = getattr(mc, "channel", None)
            if channel is None or not hasattr(mc, "pending_work"):
                continue
            issued = channel.commands_issued
            prev = self._mc_progress.get(mc.channel_id)
            if prev is None or issued != prev[0] or mc.pending_work() == 0:
                self._mc_progress[mc.channel_id] = (issued, now_ps)
                continue
            t_progress = prev[1]
            if now_ps - t_progress > self.stuck_mc_ps:
                raise InvariantViolation(
                    "stuck-mc",
                    now_ps,
                    f"channel {mc.channel_id}: {mc.pending_work()} requests "
                    f"pending but no DRAM command for "
                    f"{(now_ps - t_progress) / 1000:.1f}ns "
                    f"(bound {self.stuck_mc_ps / 1000:.0f}ns)",
                )

    # ------------------------------------------------------------------
    # end of run
    # ------------------------------------------------------------------
    def final_check(self, now_ps: int) -> None:
        """After the event queue drains, the ledger must balance."""
        if self.outstanding:
            req, t_inject = next(iter(self.outstanding.values()))
            raise InvariantViolation(
                "conservation",
                now_ps,
                f"{len(self.outstanding)} read(s) injected but never retired "
                f"(e.g. {req!r}, injected at {t_inject / 1000:.1f}ns)",
            )
        if self.reads_injected != self.reads_retired:
            raise InvariantViolation(
                "conservation",
                now_ps,
                f"{self.reads_injected} reads injected, "
                f"{self.reads_retired} retired",
            )
