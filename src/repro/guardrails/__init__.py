"""Runtime guardrails for long simulations (robustness subsystem).

Three cooperating layers, all opt-in and all strictly non-perturbing —
with guardrails off the simulation is byte-for-byte the pre-guardrails
one, and the monitor/checkpoint driver never inserts events into the
engine queue (it segments ``Engine.run`` instead), so event order, tie
sequence numbers and statistics are identical either way:

* **invariants** — :class:`InvariantMonitor` enforces conservation laws
  (every injected read retires exactly once), queue-occupancy bounds,
  warp-group liveness, and two forward-progress watchdogs (stale
  requests; controllers with pending work but no DRAM commands).  A
  violated invariant aborts the run with :class:`InvariantViolation`
  naming the law, the instant and the offending component.
* **checkpoint** — :func:`save_checkpoint` / :func:`load_checkpoint`
  serialize the whole :class:`~repro.gpu.system.GPUSystem` (event
  queue included) into versioned snapshots; a restored run finishes
  bit-identical to an uninterrupted one.  ``repro.analysis.sweep`` uses
  this to resume timed-out or crashed jobs.
* **faults** — :class:`FaultInjector` applies config-driven
  :class:`FaultSpec` perturbations (drop/delay/duplicate DRAM
  responses, wedge a controller, corrupt queue accounting, illegal
  DRAM timing state, hard crash) at chosen instants, which is how the
  test suite proves each guardrail actually fires.

See ``docs/robustness.md`` for the user-facing guide and
``python -m repro run --help`` for the CLI knobs
(``--audit``, ``--invariants``, ``--checkpoint-period``,
``--restore-from``).
"""

from repro.guardrails.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    load_checkpoint,
    peek_checkpoint,
    save_checkpoint,
)
from repro.guardrails.config import GuardrailConfig
from repro.guardrails.faults import (
    FAULT_KINDS,
    FaultInjectionError,
    FaultInjector,
    FaultSpec,
)
from repro.guardrails.invariants import InvariantMonitor, InvariantViolation

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "FAULT_KINDS",
    "FaultInjectionError",
    "FaultInjector",
    "FaultSpec",
    "GuardrailConfig",
    "InvariantMonitor",
    "InvariantViolation",
    "load_checkpoint",
    "peek_checkpoint",
    "save_checkpoint",
]
