"""Versioned, deterministic checkpoint/restore for whole simulations.

A checkpoint is a pickle of the entire :class:`~repro.gpu.system.GPUSystem`
— event queue, controller queues, bank/channel timing, warp scoreboards,
statistics, histogram RNGs — wrapped in an envelope that makes restores
refuse to lie:

* a **format marker** and **version** (mismatched snapshots fail loudly
  instead of deserializing garbage);
* the **config hash** of the run that wrote it (a snapshot restored
  under a different :class:`SimConfig` would silently simulate a hybrid
  machine; we reject it);
* the **request-id cursor** (request ids break scheduler sort-key ties,
  so a resumed process must continue the id sequence exactly where the
  original left off to stay bit-identical).

Restores are proven bit-identical by the regression tests in
``tests/test_guardrails.py``: checkpoint mid-run, reload in a fresh
object graph, run both to completion, compare ``SimStats.summary()``.

Writes are atomic (tempfile + ``os.replace``) so a crash mid-write
never corrupts the last good snapshot — which is exactly when the sweep
harness needs it.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpu.system import GPUSystem

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "load_checkpoint",
    "peek_checkpoint",
    "save_checkpoint",
]

CHECKPOINT_FORMAT = "repro-checkpoint"
CHECKPOINT_VERSION = 1


class CheckpointError(RuntimeError):
    """A snapshot could not be written, read, or trusted."""


def _config_hash(config: Any) -> str:
    # Imported lazily: analysis.runner imports the system module, which
    # imports this package.
    from repro.analysis.runner import config_hash

    return config_hash(config)


def save_checkpoint(system: "GPUSystem", path: str) -> dict:
    """Snapshot ``system`` to ``path`` atomically; returns the envelope.

    The system must be quiescent between events (the guardrails drive
    loop calls this between ``Engine.run`` segments) and must not hold
    unpicklable attachments — telemetry hubs own open file handles, so
    checkpointing a telemetered run is rejected up front.
    """
    if system.telemetry is not None:
        raise CheckpointError(
            "cannot checkpoint a run with telemetry attached "
            "(file-handle-backed sinks do not serialize); "
            "drop --metrics-out/--trace-out/--profile or checkpointing"
        )
    from repro.core import request as request_mod

    envelope = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "config_hash": _config_hash(system.config),
        "scheduler": system.config.scheduler,
        "now_ps": system.engine.now,
        "events_processed": system.engine.events_processed,
        "warps_done": system.warps_done,
        "next_req_id": request_mod._req_ids.next_id,
        "system": system,
    }
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".ckpt-", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(envelope, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    meta = {k: v for k, v in envelope.items() if k != "system"}
    return meta


def _read_envelope(path: str) -> dict:
    """Unpickle and sanity-check an envelope; corruption never escapes.

    Truncated pickles raise ``EOFError``, bit-flipped ones anything from
    ``UnpicklingError`` through ``IndexError``/``MemoryError`` (the
    pickle VM chokes mid-opcode) — a crashed worker's half-written or
    vandalized snapshot must surface as :class:`CheckpointError` so the
    sweep's resume path can fall back to a fresh run, not as a random
    exception classified as a simulation failure.
    """
    try:
        with open(path, "rb") as fh:
            envelope = pickle.load(fh)
    except FileNotFoundError:
        raise CheckpointError(f"no checkpoint at {path}") from None
    except (
        pickle.UnpicklingError,
        EOFError,
        AttributeError,
        ImportError,
        IndexError,
        KeyError,
        TypeError,
        ValueError,
        MemoryError,
        OSError,
    ) as exc:
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
    if not isinstance(envelope, dict) or envelope.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(f"{path} is not a {CHECKPOINT_FORMAT} snapshot")
    version = envelope.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path} has checkpoint version {version}, "
            f"this build reads version {CHECKPOINT_VERSION}"
        )
    for key in ("config_hash", "next_req_id", "system"):
        if key not in envelope:
            raise CheckpointError(
                f"{path}: envelope is missing {key!r} (doctored or "
                "incompletely written snapshot)"
            )
    return envelope


def peek_checkpoint(path: str) -> dict:
    """Envelope metadata (no system) — for manifests and diagnostics."""
    envelope = _read_envelope(path)
    return {k: v for k, v in envelope.items() if k != "system"}


def load_checkpoint(
    path: str, expected_config_hash: Optional[str] = None
) -> "GPUSystem":
    """Rehydrate a system from ``path`` and restore global id state.

    ``expected_config_hash`` (from :func:`repro.analysis.runner.config_hash`
    of the config you are about to resume under) guards against resuming
    a snapshot into a different experiment.
    """
    envelope = _read_envelope(path)
    if (
        expected_config_hash is not None
        and envelope["config_hash"] != expected_config_hash
    ):
        raise CheckpointError(
            f"{path} was written by config {envelope['config_hash']} "
            f"(scheduler {envelope.get('scheduler', '?')}), "
            f"refusing to resume under config {expected_config_hash}"
        )
    system = envelope["system"]
    # Resume the global request-id sequence exactly where the writer was:
    # ids break scheduler tie-breaks, so a fresh process must not hand
    # out ids below (or colliding with) the in-flight restored ones.
    from repro.core import request as request_mod

    request_mod._req_ids.next_id = envelope["next_req_id"]
    return system
