"""Config-driven fault injection: break the simulator on purpose.

Guardrails that are never seen firing are decoration.  The injector
mutates live simulation state at chosen instants so the test suite (and
``docs/robustness.md`` readers) can watch each guardrail catch its
fault class:

=====================  ==================================================
kind                   effect / expected detector
=====================  ==================================================
``drop_response``      remove a pending DRAM read response event —
                       caught by the stale-request watchdog (the read
                       is injected but never retires)
``delay_response``     postpone a pending response by ``delay_ns`` —
                       perturbs timing; caught by the stale watchdog
                       when the delay exceeds the bound
``duplicate_response`` deliver one response twice — caught by the
                       conservation ledger (second retire of one id)
``stuck_mc``           wedge a controller's event pump so it never
                       schedules again — caught by the stuck-MC
                       watchdog (pending work, no commands)
``corrupt_queue``      force a controller's read-queue accounting past
                       its configured capacity — caught by the
                       occupancy sweep
``illegal_command``    zero a channel's timing horizons so its next
                       commands violate GDDR5 constraints — caught by
                       the streaming protocol audit (``--audit``)
``crash``              raise :class:`FaultInjectionError` mid-run —
                       exercises sweep retry/resume-from-checkpoint
=====================  ==================================================

Response faults operate on the controller->partition response events
(``on_dram_data``), i.e. they model loss/duplication on the DRAM data
return path *before* the system's retire accounting — which is what
makes the conservation ledger the right detector.

The injector only runs between event-queue segments (the guardrails
drive loop), so a fault lands at a quiescent instant and the mutation
is exactly what the spec describes — no half-executed event weirdness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.request import MemoryRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpu.system import GPUSystem

__all__ = ["FAULT_KINDS", "FaultInjectionError", "FaultInjector", "FaultSpec"]

FAULT_KINDS = (
    "drop_response",
    "delay_response",
    "duplicate_response",
    "stuck_mc",
    "corrupt_queue",
    "illegal_command",
    "crash",
)

# Kinds that need a pending response event to exist; if none matches at
# the trigger instant the injector re-arms and retries next segment.
_RESPONSE_KINDS = frozenset(
    {"drop_response", "delay_response", "duplicate_response"}
)

_LONG_AGO = -(10**15)


class FaultInjectionError(RuntimeError):
    """Raised by the ``crash`` fault kind (deliberate mid-run failure)."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    ``at_ns`` is simulated time; ``channel`` restricts the fault to one
    controller (-1 = any for response faults, channel 0 for the
    controller-targeting kinds).  ``delay_ns`` applies to
    ``delay_response`` only.
    """

    kind: str
    at_ns: float
    channel: int = -1
    delay_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.at_ns < 0:
            raise ValueError(f"at_ns must be >= 0, got {self.at_ns}")
        if self.kind == "delay_response" and self.delay_ns <= 0:
            raise ValueError("delay_response needs delay_ns > 0")

    @property
    def at_ps(self) -> int:
        return int(self.at_ns * 1000)

    @property
    def delay_ps(self) -> int:
        return int(self.delay_ns * 1000)


class FaultInjector:
    """Applies a plan of :class:`FaultSpec` at their trigger instants."""

    def __init__(self, faults: tuple[FaultSpec, ...]) -> None:
        self.pending: list[FaultSpec] = sorted(faults, key=lambda s: s.at_ps)
        self.applied: list[tuple[int, str]] = []  # (instant, description)

    def __bool__(self) -> bool:
        return bool(self.pending)

    def next_due_ps(self) -> Optional[int]:
        """Earliest trigger instant among unapplied faults."""
        return self.pending[0].at_ps if self.pending else None

    def apply_due(self, system: "GPUSystem", now_ps: int) -> None:
        """Apply every fault whose instant has arrived.

        Response faults that find no in-flight response stay pending and
        are retried at the next segment boundary (the drive loop keeps
        polling while any fault is pending).
        """
        remaining: list[FaultSpec] = []
        for spec in self.pending:
            if spec.at_ps > now_ps:
                remaining.append(spec)
                continue
            if self._apply(system, spec, now_ps):
                self.applied.append((now_ps, f"{spec.kind} ch{spec.channel}"))
            else:
                remaining.append(spec)  # no target yet; retry later
        self.pending = remaining

    # ------------------------------------------------------------------
    # mechanics
    # ------------------------------------------------------------------
    def _apply(self, system: "GPUSystem", spec: FaultSpec, now_ps: int) -> bool:
        if spec.kind in _RESPONSE_KINDS:
            return self._apply_response_fault(system, spec, now_ps)
        if spec.kind == "stuck_mc":
            # Wedge the pump arming: _kick() sees an "armed" pump and
            # never schedules, and any in-flight _pump event bails on the
            # mismatched arm time.  The controller goes silent with its
            # queues intact — exactly the stuck-MC watchdog's fault model.
            system.mcs[max(spec.channel, 0)]._armed = _LONG_AGO
            return True
        if spec.kind == "corrupt_queue":
            mc = system.mcs[max(spec.channel, 0)]
            mc._reads_pending = mc.mc.read_queue_entries + 4
            return True
        if spec.kind == "illegal_command":
            self._zero_timing(system.mcs[max(spec.channel, 0)].channel)
            return True
        if spec.kind == "crash":
            raise FaultInjectionError(
                f"injected crash at {now_ps / 1000:.1f}ns (spec: {spec})"
            )
        raise AssertionError(f"unhandled fault kind {spec.kind}")

    def _apply_response_fault(
        self, system: "GPUSystem", spec: FaultSpec, now_ps: int
    ) -> bool:
        engine = system.engine
        target = None
        for entry in engine.iter_pending():
            _, _, fn, args = entry
            if getattr(fn, "__name__", "") != "on_dram_data":
                continue
            if not args or not isinstance(args[0], MemoryRequest):
                continue
            req = args[0]
            if req.is_write:
                continue
            if spec.channel >= 0 and req.channel != spec.channel:
                continue
            if target is None or entry[:2] < target[:2]:
                target = entry  # earliest matching response event
        if target is None:
            return False
        t, seq, fn, args = target
        if spec.kind == "drop_response":
            engine.remove_event(t, seq)
        elif spec.kind == "delay_response":
            engine.remove_event(t, seq)
            engine.schedule_at(max(now_ps, t + spec.delay_ps), fn, *args)
        else:  # duplicate_response
            engine.schedule_at(t, fn, *args)
        return True

    @staticmethod
    def _zero_timing(channel) -> None:
        """Erase a channel's timing horizons.

        The controller trusts these horizons when computing earliest
        legal issue instants, so from here on it emits commands that
        violate the device constraints its real history implies — the
        streaming auditor (which keeps its own history) flags the first
        one.
        """
        channel.next_cmd_free = 0
        channel.last_act_any = _LONG_AGO
        channel.act_window.clear()
        channel.last_col_cmd = _LONG_AGO
        channel.last_read_data_end = _LONG_AGO
        channel.last_write_data_end = _LONG_AGO
        channel.data_bus_free = 0
        for bank in channel.banks:
            bank.earliest_act = 0
            bank.earliest_pre = 0
            bank.earliest_col = 0
        # The erased horizons must be *seen*: invalidate any cached
        # next-legal-issue scan so the controller misbehaves immediately.
        channel.version += 1
