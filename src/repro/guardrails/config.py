"""Configuration for the runtime guardrails.

A :class:`GuardrailConfig` travels alongside (not inside) the frozen
:class:`~repro.core.config.SimConfig`: guardrails never change what is
simulated, only what is *checked* while simulating, so they must not
participate in result cache keys (``config_hash``) or experiment
identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.guardrails.faults import FaultSpec

__all__ = ["GuardrailConfig"]


@dataclass(frozen=True)
class GuardrailConfig:
    """What to watch, how often, and where checkpoints go.

    All periods and bounds are nanoseconds of *simulated* time.  The
    defaults are chosen so that a healthy simulation at any scale never
    trips a watchdog: the stale-request bound must exceed the worst
    legitimate queueing delay (read-queue overflow drains at roughly one
    request per 25 ns, so thousands of backlogged requests mean hundreds
    of microseconds), and the stuck-controller bound must exceed the
    longest legitimate command-issue gap (a refresh cycle, ~hundreds of
    ns).
    """

    # -- invariant monitor ------------------------------------------------
    invariants: bool = False
    check_period_ns: float = 10_000.0  # watchdog/occupancy sweep cadence
    stale_request_ns: float = 500_000.0  # in-flight read older than this
    stuck_mc_ns: float = 100_000.0  # pending work but no DRAM command

    # -- streaming protocol audit ----------------------------------------
    audit: bool = False

    # -- checkpointing ----------------------------------------------------
    checkpoint_period_ns: float = 0.0  # 0 = never checkpoint
    checkpoint_path: Optional[str] = None

    # -- fault injection ---------------------------------------------------
    faults: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.check_period_ns <= 0:
            raise ValueError(f"check_period_ns must be > 0, got {self.check_period_ns}")
        if self.stale_request_ns <= 0:
            raise ValueError(
                f"stale_request_ns must be > 0, got {self.stale_request_ns}"
            )
        if self.stuck_mc_ns <= 0:
            raise ValueError(f"stuck_mc_ns must be > 0, got {self.stuck_mc_ns}")
        if self.checkpoint_period_ns < 0:
            raise ValueError(
                f"checkpoint_period_ns must be >= 0, got {self.checkpoint_period_ns}"
            )
        if self.checkpoint_period_ns > 0 and not self.checkpoint_path:
            raise ValueError("checkpoint_period_ns set but no checkpoint_path")
        if not isinstance(self.faults, tuple):
            object.__setattr__(self, "faults", tuple(self.faults))

    # -- derived ----------------------------------------------------------
    @property
    def check_period_ps(self) -> int:
        return int(self.check_period_ns * 1000)

    @property
    def checkpoint_period_ps(self) -> int:
        return int(self.checkpoint_period_ns * 1000)

    @property
    def active(self) -> bool:
        """Any guardrail enabled at all?"""
        return (
            self.invariants
            or self.audit
            or self.checkpoint_period_ns > 0
            or bool(self.faults)
        )

    @property
    def needs_driver(self) -> bool:
        """Does the run need the segmented drive loop?

        The streaming audit alone hooks the channel command log and
        raises inline, so a plain ``engine.run()`` suffices for it;
        periodic checks, checkpoints and timed faults need the system
        to regain control between event-queue segments.
        """
        return self.invariants or self.checkpoint_period_ns > 0 or bool(self.faults)
