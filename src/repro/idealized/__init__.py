"""Idealized opportunity models for the Fig. 4 analysis."""

from repro.idealized.perfect import (
    ZeroDivergenceController,
    install_idealized_schedulers,
    perfect_coalescing,
)

install_idealized_schedulers()

__all__ = [
    "ZeroDivergenceController",
    "install_idealized_schedulers",
    "perfect_coalescing",
]
