"""Idealized opportunity models (Fig. 4).

Two hypothetical systems bound the benefit of warp-aware scheduling:

* **Perfect coalescing** — every vector load produces exactly one memory
  request.  Realized as a trace transform: all lanes of each memory op are
  redirected to the op's first line.  The paper measures ~5x speedup
  (it removes bandwidth demand *and* divergence) and calls it unrealizable.

* **Zero latency divergence** — request counts are unchanged, but once a
  warp's first request has been serviced the rest follow in back-to-back
  succession: bank conflicts are abstracted away for all but one request
  per warp while DRAM bus bandwidth and contention remain modeled.  The
  paper measures +43% — the true headroom of warp-aware scheduling.

The zero-divergence system is realized as a memory-controller subclass
(``ZeroDivergenceController``): the first request of each warp-group pays
the full array access (scheduled FR-FCFS), and the group's remaining
requests are emitted as pure data-bus transfers immediately after it.
"""

from __future__ import annotations

from repro.core.request import MemoryRequest
from repro.mc.frfcfs import FRFCFSController
from repro.workloads.trace import KernelTrace, MemOp, Segment, WarpTrace

__all__ = [
    "perfect_coalescing",
    "ZeroDivergenceController",
    "install_idealized_schedulers",
]


def perfect_coalescing(kernel: KernelTrace) -> KernelTrace:
    """Transform a trace so every memory op touches exactly one line."""
    new_warps = []
    for w in kernel.warps:
        segs = []
        for s in w.segments:
            if s.mem is None:
                segs.append(Segment(s.compute_cycles, None))
                continue
            first = next((a for a in s.mem.lane_addrs if a is not None), None)
            if first is None:
                segs.append(Segment(s.compute_cycles, None))
                continue
            base = first & ~127
            lanes = [
                None if a is None else base + (i * 4) % 128
                for i, a in enumerate(s.mem.lane_addrs)
            ]
            segs.append(Segment(s.compute_cycles, MemOp(s.mem.is_write, lanes)))
        new_warps.append(WarpTrace(w.sm_id, w.warp_id, segs))
    return KernelTrace(kernel.name + "+perfect-coalescing", new_warps)


class ZeroDivergenceController(FRFCFSController):
    """Upper-bound controller: no main-memory latency divergence.

    The first pending request of each warp is serviced normally (FR-FCFS
    over group leaders); every later request of the same warp-group that
    is still pending when the leader's data returns is completed in
    back-to-back bus bursts right after it — modeling "all requests
    return in close succession after the first" while still charging the
    data bus for every transfer.
    """

    name = "zero-div"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._followers: dict[tuple[int, int], list[MemoryRequest]] = {}
        self._leader_seen: set[tuple[int, int]] = set()

    def _accept_read(self, req: MemoryRequest) -> None:
        key = req.warp
        if req.transaction is not None and key in self._leader_seen:
            # Follower: bypass the bank machinery; pay bus occupancy only.
            self._complete_follower(req)
            return
        self._leader_seen.add(key)
        super()._accept_read(req)

    def _complete_follower(self, req: MemoryRequest) -> None:
        now = self.engine.now
        start = max(now, self.channel.data_bus_free)
        burst = self.channel.bursts_per_access * self.t.tburst_ps
        # The bus is occupied for the burst only; the array latency (tCAS)
        # pipelines with other transfers.
        self.channel.data_bus_free = start + burst
        self.channel.data_bus_busy_ps += burst
        # Timing state mutated outside a command issue: invalidate the
        # command scheduler's next-legal-issue cache.
        self.channel.version += 1
        data_end = start + self.t.tcas_ps + burst
        req.t_data = data_end
        req.was_row_hit = True
        self._reads_pending -= 1  # it never entered the sorter
        self.stats.reads += 1
        self.stats.row_hits += 1
        self.stats.read_latency.add((data_end - req.t_mc_arrival) / 1000.0)
        self.engine.schedule_at(data_end, self.deliver_read, req)

    def _on_column_issued(self, entry, now: int) -> None:
        # The leader has been serviced: the group key becomes reusable for
        # the warp's next load (followers of *this* load were already
        # handled on arrival because the leader registered first).
        if not entry.req.is_write:
            self._leader_seen.discard(entry.req.warp)


def install_idealized_schedulers() -> None:
    """Register the idealized controllers with the scheduler registry."""
    from repro.mc.registry import SCHEDULERS

    SCHEDULERS.setdefault("zero-div", ZeroDivergenceController)
