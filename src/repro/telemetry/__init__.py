"""repro.telemetry: probes, interval metrics, request tracing, profiling.

Layered observability for the simulator, all strictly opt-in:

* :class:`TelemetryHub` / :class:`Probe` — the instrumentation hook API.
  Components emit through probes that cost one truthiness check when
  nothing is listening, so the default (no hub) simulation path is
  unchanged.
* :class:`IntervalSampler` — a periodic time-series of queue depths,
  row-hit rate, bus utilization, drain state and per-bank occupancy,
  attached to :class:`~repro.core.stats.SimStats` as ``stats.intervals``.
* :class:`RequestTracer` — per-request lifecycle records exportable as
  Chrome trace-event JSON (Perfetto / ``chrome://tracing``).
* :class:`EngineProfiler` — wall-clock attribution of host time to model
  components, installed on the event engine.

Typical use::

    from repro import SimConfig, simulate
    from repro.telemetry import TelemetryHub

    hub = TelemetryHub(sample_period_ns=100.0, trace=True, profile=True)
    stats = simulate(SimConfig(), kernel, telemetry=hub)
    stats.write_metrics("metrics.json")        # interval time-series
    hub.tracer.write("trace.json", stats.intervals)   # open in Perfetto
    print(hub.profiler.format())

See ``docs/observability.md`` for the probe namespace and file schemas.
"""

from repro.telemetry.hub import NULL_PROBE, Probe, TelemetryHub
from repro.telemetry.profiler import EngineProfiler
from repro.telemetry.sampler import IntervalSampler
from repro.telemetry.tracer import RequestTracer

__all__ = [
    "NULL_PROBE",
    "EngineProfiler",
    "IntervalSampler",
    "Probe",
    "RequestTracer",
    "TelemetryHub",
]
