"""Wall-clock attribution of simulation time to model components.

When installed on an :class:`~repro.core.engine.Engine`, every event
callback is timed with ``time.perf_counter`` and the elapsed host time is
charged to the callback's *component* — the qualified name of the bound
method or, for the ``lambda`` trampolines the models use, the enclosing
method (``MemoryController.receive_read.<locals>.<lambda>`` is charged to
``MemoryController.receive_read``).

Only meaningful when telemetry is on: the per-event ``perf_counter`` pair
roughly doubles Python dispatch cost, which is exactly the overhead the
probe design keeps off the default path.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["EngineProfiler"]


def component_of(fn: Callable[[], None]) -> str:
    """Stable component label for an event callback."""
    qualname = getattr(fn, "__qualname__", None)
    if qualname is None:  # functools.partial / odd callables
        qualname = type(fn).__name__
    # Charge closure trampolines to the method that created them.
    head, sep, _ = qualname.partition(".<locals>.")
    return head if sep else qualname


class EngineProfiler:
    """Accumulates per-component call counts and wall-clock seconds."""

    __slots__ = ("by_component",)

    def __init__(self) -> None:
        # component -> [calls, seconds]
        self.by_component: dict[str, list] = {}

    def note(self, fn: Callable[[], None], seconds: float) -> None:
        cell = self.by_component.get(component_of(fn))
        if cell is None:
            cell = self.by_component[component_of(fn)] = [0, 0.0]
        cell[0] += 1
        cell[1] += seconds

    # -- reporting -----------------------------------------------------------
    def total_seconds(self) -> float:
        return sum(sec for _, sec in self.by_component.values())

    def rows(self) -> list[tuple[str, int, float]]:
        """(component, calls, seconds) sorted by descending time."""
        return sorted(
            ((name, calls, sec) for name, (calls, sec) in self.by_component.items()),
            key=lambda r: r[2],
            reverse=True,
        )

    def format(self, top: int = 12) -> str:
        """Human-readable table of the hottest components."""
        total = self.total_seconds()
        lines = [f"{'component':40s} {'events':>10s} {'time':>9s} {'share':>6s}"]
        for name, calls, sec in self.rows()[:top]:
            share = sec / total if total > 0 else 0.0
            lines.append(f"{name:40s} {calls:10d} {sec:8.3f}s {share:6.1%}")
        return "\n".join(lines)
