"""Instrumentation hub: named probes with zero overhead when disabled.

Design contract (the whole point of this module):

* an *emit site* inside a hot path costs exactly one truthiness check when
  nothing is listening::

      if self._p_read_done:                       # bool(list) — no call
          self._p_read_done.emit(ch, lat, hit)

* components that were built without a hub share the module-level
  :data:`NULL_PROBE`, which never has subscribers, so the same one-line
  pattern works whether telemetry exists or not;
* a :class:`Probe` only becomes truthy once something subscribed, so even
  with a hub attached, probes nobody reads stay free.

Probe names are a public, stable namespace (documented in
``docs/observability.md``):

==================  =====================================================
name                payload (positional args of ``emit``)
==================  =====================================================
``mc.read_done``    ``(channel_id, latency_ns, was_row_hit)``
``mc.drain``        ``(channel_id, active, reason)``
``dram.cmd``        ``(channel_id, kind, bank, now_ps)``
``bank.streak``     ``(channel_id, bank, row_hits_of_closed_streak)``
``gpu.warp_done``   ``(sm_id, warp_id, now_ps)``
==================  =====================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.telemetry.profiler import EngineProfiler
    from repro.telemetry.tracer import RequestTracer

__all__ = ["Probe", "TelemetryHub", "NULL_PROBE"]


class Probe:
    """A named event source; falsy (and free) until someone subscribes."""

    __slots__ = ("name", "_subs")

    def __init__(self, name: str) -> None:
        self.name = name
        self._subs: list[Callable[..., None]] = []

    def __bool__(self) -> bool:
        return bool(self._subs)

    def subscribe(self, fn: Callable[..., None]) -> None:
        self._subs.append(fn)

    def unsubscribe(self, fn: Callable[..., None]) -> None:
        self._subs.remove(fn)

    def emit(self, *args) -> None:
        for fn in self._subs:
            fn(*args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Probe({self.name!r}, subscribers={len(self._subs)})"


#: Shared sentinel for components built without a hub: always falsy, so
#: every ``if probe: probe.emit(...)`` site short-circuits.
NULL_PROBE = Probe("null")


class TelemetryHub:
    """Owns the probe registry and the optional telemetry consumers.

    The hub itself only decides *what is wired up*; the consumers do the
    work:

    * ``sample_period_ns > 0`` — :class:`~repro.telemetry.sampler.IntervalSampler`
      records a time-series of the headline counters (created by
      :class:`~repro.gpu.system.GPUSystem`, which owns the components it
      samples);
    * ``trace=True`` — a :class:`~repro.telemetry.tracer.RequestTracer`
      collects per-request lifecycle records for Chrome-trace export;
    * ``profile=True`` — an :class:`~repro.telemetry.profiler.EngineProfiler`
      is installed on the engine and attributes wall-clock time to
      simulation components.
    """

    def __init__(
        self,
        *,
        sample_period_ns: float = 0.0,
        trace: bool = False,
        profile: bool = False,
    ) -> None:
        if sample_period_ns < 0:
            raise ValueError("sample_period_ns must be >= 0")
        self._probes: dict[str, Probe] = {}
        self.sample_period_ps = int(round(sample_period_ns * 1000))
        self.tracer: Optional["RequestTracer"] = None
        self.profiler: Optional["EngineProfiler"] = None
        if trace:
            from repro.telemetry.tracer import RequestTracer

            self.tracer = RequestTracer()
        if profile:
            from repro.telemetry.profiler import EngineProfiler

            self.profiler = EngineProfiler()

    def probe(self, name: str) -> Probe:
        """The probe registered under ``name`` (created on first use)."""
        p = self._probes.get(name)
        if p is None:
            p = self._probes[name] = Probe(name)
        return p

    @property
    def sampling(self) -> bool:
        return self.sample_period_ps > 0

    @property
    def enabled(self) -> bool:
        """True when any consumer is active or any probe has a listener."""
        return (
            self.sampling
            or self.tracer is not None
            or self.profiler is not None
            or any(self._probes.values())
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TelemetryHub(sample_period_ps={self.sample_period_ps}, "
            f"trace={self.tracer is not None}, profile={self.profiler is not None})"
        )
