"""Request-lifecycle tracing and Chrome trace-event export.

The simulator already timestamps every :class:`~repro.core.request.MemoryRequest`
as it moves through the machine (``t_issue`` → ``t_mc_arrival`` →
``t_scheduled`` → ``t_data`` → ``t_return``).  The tracer's runtime job is
therefore deliberately tiny — append each dispatched request to a list —
and all interpretation happens at export time, after the run, when the
timestamps are final.

Export produces Chrome trace-event JSON (the ``traceEvents`` array format)
loadable in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``:

* each SM is a *process* (``pid``);
* each warp owns a band of *lanes* (``tid`` rows) and every in-flight
  request of that warp occupies one lane, so the requests of one vector
  load sit directly under each other and the latency divergence within the
  warp-group is visible as the ragged right edge of the band;
* each request renders as consecutive phase slices on its lane:
  ``xbar+l2`` (coalescer exit to controller arrival, including the L2
  lookup), then ``mc-queue`` (transaction-scheduler wait), ``cmd-queue``
  (command queue to data burst) and ``return`` (data burst to SM) — or a
  single ``l2-hit`` / ``l2-merge`` / ``wq-forward`` slice for requests the
  memory system answered above DRAM;
* interval-sampler output, when available, is embedded as counter tracks
  (queue depths, bus utilization, row-hit rate).

Timestamps are emitted in microseconds (the trace format's native unit);
one simulated picosecond is 1e-6 trace microseconds.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.core.request import MemoryRequest

__all__ = ["RequestTracer"]

#: Synthetic pid for the counter tracks (far above any real SM id).
COUNTER_PID = 10_000

#: tid stride reserved per warp: one vector load coalesces to at most 32
#: line requests; page-table walks can add a few more concurrent lanes.
LANES_PER_WARP = 64

_PS_PER_US = 1_000_000.0


def _us(t_ps: int) -> float:
    return t_ps / _PS_PER_US


class RequestTracer:
    """Collects dispatched requests; renders Chrome trace JSON after the run."""

    __slots__ = ("requests",)

    def __init__(self) -> None:
        self.requests: list[MemoryRequest] = []

    # -- runtime hook (called from GPUSystem._send_request) ------------------
    def on_dispatch(self, req: MemoryRequest) -> None:
        self.requests.append(req)

    # -- export --------------------------------------------------------------
    @staticmethod
    def _phases(req: MemoryRequest) -> list[tuple[int, int, str]]:
        """(start_ps, end_ps, name) slices for one request's lifecycle."""
        phases: list[tuple[int, int, str]] = []
        if req.t_mc_arrival >= 0:
            phases.append((req.t_issue, req.t_mc_arrival, "xbar+l2"))
            if req.serviced_by == "wq" and req.t_data >= 0:
                phases.append((req.t_mc_arrival, req.t_data, "wq-forward"))
            elif req.t_scheduled >= 0:
                phases.append((req.t_mc_arrival, req.t_scheduled, "mc-queue"))
                if req.t_data >= 0:
                    phases.append((req.t_scheduled, req.t_data, "cmd-queue"))
            if req.t_return >= 0 and req.t_data >= 0:
                phases.append((req.t_data, req.t_return, "return"))
        elif req.t_return >= 0:
            # Resolved above the controller: L2 hit, or merged into an
            # in-flight L2 miss (secondary MSHR allocation).
            name = "l2-hit" if req.serviced_by == "l2" else "l2-merge"
            phases.append((req.t_issue, req.t_return, name))
        return phases

    def chrome_trace(self, intervals: Optional[list[dict]] = None) -> dict:
        """The full trace as a ``{"traceEvents": [...]}`` dictionary."""
        events: list[dict] = []
        seen_pids: set[int] = set()
        seen_tids: set[tuple[int, int]] = set()

        # Assign each request a lane within its warp's tid band.  Offline
        # interval scheduling: process requests in issue order, reuse the
        # lowest lane that freed up before this request started.
        by_warp: dict[tuple[int, int], list[MemoryRequest]] = {}
        for req in self.requests:
            by_warp.setdefault((req.sm_id, req.warp_id), []).append(req)

        for (sm_id, warp_id), reqs in sorted(by_warp.items()):
            lanes_busy_until: list[int] = []
            for req in sorted(reqs, key=lambda r: (r.t_issue, r.req_id)):
                phases = self._phases(req)
                if not phases:
                    continue
                start, end = phases[0][0], phases[-1][1]
                lane = next(
                    (i for i, busy in enumerate(lanes_busy_until) if busy <= start),
                    len(lanes_busy_until),
                )
                if lane == len(lanes_busy_until):
                    lanes_busy_until.append(end)
                else:
                    lanes_busy_until[lane] = end
                lane = min(lane, LANES_PER_WARP - 1)
                tid = warp_id * LANES_PER_WARP + lane
                seen_pids.add(sm_id)
                if (sm_id, tid) not in seen_tids:
                    seen_tids.add((sm_id, tid))
                    events.append({
                        "ph": "M", "name": "thread_name", "pid": sm_id,
                        "tid": tid,
                        "args": {"name": f"warp {warp_id} lane {lane}"},
                    })
                    events.append({
                        "ph": "M", "name": "thread_sort_index", "pid": sm_id,
                        "tid": tid, "args": {"sort_index": tid},
                    })
                args = {
                    "req": req.req_id,
                    "addr": f"{req.addr:#x}",
                    "channel": req.channel,
                    "bank": req.bank,
                    "row": req.row,
                    "write": req.is_write,
                    "serviced_by": req.serviced_by or "pending",
                    "row_hit": req.was_row_hit,
                }
                for t0, t1, name in phases:
                    events.append({
                        "ph": "X", "name": name, "cat": "request",
                        "pid": sm_id, "tid": tid,
                        "ts": _us(t0), "dur": _us(max(0, t1 - t0)),
                        "args": args,
                    })

        for pid in sorted(seen_pids):
            events.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": f"SM {pid}"},
            })
            events.append({
                "ph": "M", "name": "process_sort_index", "pid": pid, "tid": 0,
                "args": {"sort_index": pid},
            })

        if intervals:
            events.extend(self._counter_events(intervals))

        return {
            "traceEvents": events,
            "displayTimeUnit": "ns",
            "metadata": {"tool": "repro.telemetry", "time_unit": "us"},
        }

    @staticmethod
    def _counter_events(intervals: list[dict]) -> list[dict]:
        events: list[dict] = [
            {
                "ph": "M", "name": "process_name", "pid": COUNTER_PID, "tid": 0,
                "args": {"name": "memory system"},
            },
        ]
        series = (
            ("read queue depth", "queue_depth"),
            ("write queue depth", "write_queue_depth"),
            ("cmdq occupancy", "cmdq_occupancy"),
            ("drain active", "drain_active"),
        )
        for sample in intervals:
            ts = _us(sample["t_ps"])
            for name, key in series:
                values = sample[key]
                events.append({
                    "ph": "C", "name": name, "pid": COUNTER_PID, "tid": 0,
                    "ts": ts,
                    "args": {f"ch{i}": v for i, v in enumerate(values)},
                })
            events.append({
                "ph": "C", "name": "bus utilization", "pid": COUNTER_PID,
                "tid": 0, "ts": ts,
                "args": {"util": sample["bus_utilization"]},
            })
            events.append({
                "ph": "C", "name": "row hit rate", "pid": COUNTER_PID,
                "tid": 0, "ts": ts,
                "args": {"rate": sample["row_hit_rate"]},
            })
        return events

    def write(self, path: str, intervals: Optional[list[dict]] = None) -> None:
        """Serialize the Chrome trace to ``path`` as JSON."""
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(intervals), fh)
