"""Periodic sampling of the memory system's headline counters.

The sampler rides the event engine: every ``period_ps`` it snapshots each
memory controller's instantaneous state (queue depths, per-bank command
queue occupancy, write-drain FSM state) and the *delta* of the cumulative
:class:`~repro.core.stats.ChannelStats` counters since the previous sample
(column accesses, row hits/misses, MERB deferrals, drain episodes, data-bus
busy time).  The result is a time-series that shows *when* a pathology
happened — a drain storm, a queue-depth spike, a row-hit-rate collapse —
rather than only that it happened somewhere inside an end-of-run total.

Per-interval read latencies arrive through the ``mc.read_done`` probe and
are summarized into a fresh :class:`~repro.core.stats.Histogram` each
interval; at every sample boundary the interval histogram is folded into a
run-total histogram via :meth:`Histogram.merge` and reset.

Samples are plain dictionaries with the stable key set
:data:`IntervalSampler.SCHEMA_KEYS` (validated by the test suite and
documented in ``docs/observability.md``); per-channel values are lists
indexed by channel id.

The sampler only re-arms itself while warps are still running, so it never
keeps the event queue alive after the workload finishes.
"""

from __future__ import annotations

from repro.core.stats import Histogram
from repro.telemetry.hub import TelemetryHub

__all__ = ["IntervalSampler"]

#: Cumulative ChannelStats counters sampled as per-interval deltas.
_DELTA_COUNTERS = (
    "reads",
    "writes",
    "row_hits",
    "row_misses",
    "merb_deferrals",
    "write_drains",
    "drain_writes",
    "read_queue_full_events",
)


class IntervalSampler:
    """Records a time-series of memory-system state at a fixed period."""

    #: Stable schema of every sample dictionary.
    SCHEMA_KEYS = (
        "t_ps",
        "events",
        "warps_done",
        "queue_depth",
        "write_queue_depth",
        "cmdq_occupancy",
        "bank_occupancy",
        "drain_active",
        "reads",
        "writes",
        "row_hits",
        "row_misses",
        "row_hit_rate",
        "bus_utilization",
        "bus_busy_ps",
        "merb_deferrals",
        "write_drains",
        "drain_writes",
        "read_queue_full_events",
        "lat_count",
        "lat_mean_ns",
        "lat_p50_ns",
        "lat_p95_ns",
    )

    def __init__(self, system, period_ps: int, hub: TelemetryHub) -> None:
        if period_ps <= 0:
            raise ValueError("sampling period must be positive")
        self.system = system
        self.engine = system.engine
        self.period_ps = period_ps
        self.samples: list[dict] = []
        # Run-total latency histogram, built by merging interval histograms
        # (exercises Histogram.merge exactly as real hardware counters roll
        # interval registers into totals).
        self.latency_total = Histogram()
        self._interval_hist = Histogram()
        self._prev: dict[str, list[int]] = {
            name: [0] * len(system.mcs) for name in _DELTA_COUNTERS
        }
        self._prev_bus_busy = [0] * len(system.mcs)
        self._prev_t = 0
        hub.probe("mc.read_done").subscribe(self._on_read_done)

    # -- probe sink ----------------------------------------------------------
    def _on_read_done(self, channel_id: int, latency_ns: float, row_hit: bool) -> None:
        self._interval_hist.add(latency_ns)

    # -- scheduling ----------------------------------------------------------
    def start(self) -> None:
        """Take the t=0 baseline sample and arm the periodic tick."""
        self._sample()
        self.engine.schedule_at(self.engine.now + self.period_ps, self._tick)

    def _tick(self) -> None:
        self._sample()
        # Re-arm only while the workload is still running: a perpetual
        # self-rescheduling event would keep Engine.run from ever draining.
        if self.system.warps_done < self.system.total_warps:
            self.engine.schedule_at(self.engine.now + self.period_ps, self._tick)

    def finalize(self) -> None:
        """Capture the end-of-run state (drain tail included)."""
        if not self.samples or self.engine.now > self.samples[-1]["t_ps"]:
            self._sample()
        if len(self.samples) < 2:  # degenerate zero-length run
            self._sample()

    # -- sampling ------------------------------------------------------------
    def _sample(self) -> None:
        now = self.engine.now
        mcs = self.system.mcs
        sample: dict = {
            "t_ps": now,
            "events": self.engine.events_processed,
            "warps_done": self.system.warps_done,
            "queue_depth": [
                mc._reads_pending + len(mc._read_overflow) for mc in mcs
            ],
            "write_queue_depth": [
                len(mc.write_queue) + len(mc._write_overflow) for mc in mcs
            ],
            "cmdq_occupancy": [mc.cq.total_occupancy() for mc in mcs],
            "bank_occupancy": [
                [mc.cq.occupancy(b) for b in range(mc.org.banks_per_channel)]
                for mc in mcs
            ],
            "drain_active": [int(mc.draining) for mc in mcs],
        }
        for name in _DELTA_COUNTERS:
            current = [getattr(mc.stats, name) for mc in mcs]
            prev = self._prev[name]
            sample[name] = [c - p for c, p in zip(current, prev)]
            self._prev[name] = current
        hits, misses = sum(sample["row_hits"]), sum(sample["row_misses"])
        sample["row_hit_rate"] = hits / (hits + misses) if hits + misses else 0.0
        busy = [mc.channel.data_bus_busy_ps for mc in mcs]
        delta_busy = [c - p for c, p in zip(busy, self._prev_bus_busy)]
        self._prev_bus_busy = busy
        span = now - self._prev_t
        sample["bus_busy_ps"] = delta_busy
        sample["bus_utilization"] = (
            sum(delta_busy) / (span * len(mcs)) if span > 0 else 0.0
        )
        self._prev_t = now
        h = self._interval_hist
        sample["lat_count"] = h.count
        sample["lat_mean_ns"] = h.mean
        sample["lat_p50_ns"] = h.percentile(50)
        sample["lat_p95_ns"] = h.percentile(95)
        self.latency_total.merge(h)
        self._interval_hist = Histogram()
        self.samples.append(sample)
