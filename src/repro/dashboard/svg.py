"""Dependency-free SVG chart primitives for the static dashboard.

Every chart is inline SVG written against CSS custom properties (the
role tokens in :data:`STYLE`), so one stylesheet swaps the whole page
between light and dark via ``prefers-color-scheme`` — no JavaScript, no
network access, nothing external.

Design rules baked in (they are not options):

* categorical series colors come from a fixed 8-slot palette, assigned
  in order and never cycled — callers with more than 8 series must fold
  the tail into the table view;
* marks are thin: 2px lines with round caps, bars ≤ 24px with a 4px
  rounded *data* end (square at the baseline), ≥ 8px markers with a 2px
  surface ring;
* gridlines are solid hairlines in a one-step-off-surface gray; axis
  text is muted ink; values and labels never wear a series color;
* one value axis per chart, a legend whenever there are ≥ 2 series, and
  selective direct labels (line ends, bar tips) — never every point;
* every mark carries a native ``<title>`` tooltip, and every figure is
  paired with an HTML table view of the same numbers
  (:func:`data_table`), so nothing is color- or hover-gated.
"""

from __future__ import annotations

import html
from dataclasses import dataclass, field
from typing import Optional, Sequence

__all__ = [
    "CATEGORICAL_SLOTS",
    "Figure",
    "STYLE",
    "data_table",
    "grouped_hbar_svg",
    "line_chart_svg",
    "stat_tiles",
]

#: Fixed categorical assignment (light, dark) — the validated reference
#: palette; order is the CVD-safety mechanism, never reshuffle or cycle.
CATEGORICAL_SLOTS: tuple[tuple[str, str], ...] = (
    ("#2a78d6", "#3987e5"),  # blue
    ("#eb6834", "#d95926"),  # orange
    ("#1baf7a", "#199e70"),  # aqua
    ("#eda100", "#c98500"),  # yellow
    ("#e87ba4", "#d55181"),  # magenta
    ("#008300", "#008300"),  # green
    ("#4a3aa7", "#9085e9"),  # violet
    ("#e34948", "#e66767"),  # red
)

#: Page stylesheet: role tokens (surface/ink/grid/series) in light and
#: dark, plus the small amount of layout chrome the dashboard needs.
STYLE = """
:root {
  color-scheme: light;
  --page:      #f9f9f7;  --surface-1: #fcfcfb;
  --ink-1:     #0b0b0b;  --ink-2:     #52514e;  --ink-3: #898781;
  --grid:      #e1e0d9;  --baseline:  #c3c2b7;
  --border:    rgba(11,11,11,0.10);
  --critical:  #d03b3b;  --good-text: #006300;
%LIGHT_SERIES%
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --page:      #0d0d0d;  --surface-1: #1a1a19;
    --ink-1:     #ffffff;  --ink-2:     #c3c2b7;  --ink-3: #898781;
    --grid:      #2c2c2a;  --baseline:  #383835;
    --border:    rgba(255,255,255,0.10);
    --critical:  #d03b3b;  --good-text: #0ca30c;
%DARK_SERIES%
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--page); color: var(--ink-1);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  font-size: 14px; line-height: 1.45;
}
main { max-width: 880px; margin: 0 auto; }
h1 { font-size: 22px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 0 0 2px; }
p.sub { color: var(--ink-2); margin: 0 0 12px; }
p.meta { color: var(--ink-3); font-size: 12px; margin: 2px 0 20px; }
section.card {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 10px; padding: 18px 20px 14px; margin: 0 0 18px;
}
svg.chart { display: block; width: 100%; height: auto; }
svg.chart text { font-family: system-ui, -apple-system, "Segoe UI", sans-serif; }
.tick  { fill: var(--ink-3); font-size: 11px; font-variant-numeric: tabular-nums; }
.label { fill: var(--ink-2); font-size: 11px; }
.value { fill: var(--ink-2); font-size: 11px; font-variant-numeric: tabular-nums; }
.gridline { stroke: var(--grid); stroke-width: 1; }
.axisline { stroke: var(--baseline); stroke-width: 1; }
.legend { display: flex; flex-wrap: wrap; gap: 4px 16px;
          margin: 6px 0 2px; color: var(--ink-2); font-size: 12px; }
.legend .key { display: inline-flex; align-items: center; gap: 6px; }
.legend .swatch { width: 10px; height: 10px; border-radius: 3px; display: inline-block; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 0 0 18px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 10px; padding: 12px 16px; min-width: 150px; flex: 1;
}
.tile .tlabel { color: var(--ink-2); font-size: 12px; }
.tile .tvalue { font-size: 26px; font-weight: 600; margin-top: 2px; }
.tile .tnote  { color: var(--ink-3); font-size: 11px; margin-top: 2px; }
.tile .bad    { color: var(--critical); font-weight: 600; }
.tile .ok     { color: var(--good-text); font-weight: 600; }
details.tableview { margin: 8px 0 2px; }
details.tableview summary { color: var(--ink-3); font-size: 12px; cursor: pointer; }
table.data { border-collapse: collapse; margin-top: 8px; font-size: 12px; width: 100%; }
table.data th { text-align: left; color: var(--ink-2); font-weight: 600; }
table.data td { font-variant-numeric: tabular-nums; color: var(--ink-2); }
table.data th, table.data td {
  padding: 4px 10px 4px 0; border-bottom: 1px solid var(--grid);
}
p.empty { color: var(--ink-3); font-style: italic; }
p.note { color: var(--ink-3); font-size: 12px; margin: 6px 0 0; }
footer { color: var(--ink-3); font-size: 12px; margin-top: 10px; }
footer a, a { color: inherit; }
""".replace(
    "%LIGHT_SERIES%",
    "\n".join(
        f"  --series-{i + 1}: {light};"
        for i, (light, _dark) in enumerate(CATEGORICAL_SLOTS)
    ),
).replace(
    "%DARK_SERIES%",
    "\n".join(
        f"    --series-{i + 1}: {dark};"
        for i, (_light, dark) in enumerate(CATEGORICAL_SLOTS)
    ),
)


def _esc(text: object) -> str:
    return html.escape(str(text), quote=True)


def series_var(slot: int) -> str:
    """CSS variable reference for categorical slot ``slot`` (0-based)."""
    if not 0 <= slot < len(CATEGORICAL_SLOTS):
        raise ValueError(
            f"categorical slot {slot} out of range: the palette has "
            f"{len(CATEGORICAL_SLOTS)} fixed slots and is never cycled"
        )
    return f"var(--series-{slot + 1})"


@dataclass
class Figure:
    """One dashboard view: chart + legend + table view + provenance note."""

    figure_id: str
    title: str
    subtitle: str = ""
    svg: str = ""
    legend_html: str = ""
    table_html: str = ""
    note: str = ""
    empty: bool = False
    empty_reason: str = ""

    def to_html(self) -> str:
        parts = [f'<section class="card" id="{_esc(self.figure_id)}">']
        parts.append(f"<h2>{_esc(self.title)}</h2>")
        if self.subtitle:
            parts.append(f'<p class="sub">{_esc(self.subtitle)}</p>')
        if self.empty:
            parts.append(
                f'<p class="empty">no data: {_esc(self.empty_reason)}</p>'
            )
        else:
            parts.append(self.legend_html)
            parts.append(self.svg)
            if self.table_html:
                parts.append(
                    '<details class="tableview"><summary>table view</summary>'
                    f"{self.table_html}</details>"
                )
        if self.note:
            parts.append(f'<p class="note">{_esc(self.note)}</p>')
        parts.append("</section>")
        return "\n".join(p for p in parts if p)


# ----------------------------------------------------------------------
# shared scale helpers
# ----------------------------------------------------------------------
def nice_ticks(vmax: float, n: int = 4) -> list[float]:
    """~n clean ticks from 0 to >= vmax (1/2/2.5/5 x power of ten)."""
    if vmax <= 0:
        return [0.0, 1.0]
    raw = vmax / n
    mag = 10.0 ** len(str(int(raw))) / 10.0 if raw >= 1 else 1.0
    while mag > raw:
        mag /= 10.0
    step = next(
        m * mag for m in (1.0, 2.0, 2.5, 5.0, 10.0) if m * mag >= raw
    )
    ticks = [0.0]
    t = 0.0
    while t < vmax - 1e-9:  # always cover vmax: last tick >= top of data
        t += step
        ticks.append(round(t, 10))
    return ticks


def fmt_num(v: float) -> str:
    """Compact numeric label: 1,284 / 12.9k / 4.2M / 0.013."""
    a = abs(v)
    if a >= 1e6:
        return f"{v / 1e6:.1f}M"
    if a >= 1e4:
        return f"{v / 1e3:.1f}k"
    if a >= 1000:
        return f"{v:,.0f}"
    if a >= 100:
        return f"{v:.0f}"
    if a >= 1:
        return f"{v:.2f}".rstrip("0").rstrip(".")
    if a == 0:
        return "0"
    return f"{v:.3g}"


def legend_html(names: Sequence[str]) -> str:
    """Legend row (only rendered by callers with >= 2 series)."""
    keys = []
    for i, name in enumerate(names):
        keys.append(
            '<span class="key"><span class="swatch" '
            f'style="background:{series_var(i)}"></span>{_esc(name)}</span>'
        )
    return f'<div class="legend">{"".join(keys)}</div>'


def data_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """The figure's table view (same numbers as the marks)."""
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_esc(c)}</td>" for c in row) + "</tr>"
        for row in rows
    )
    return (
        f'<table class="data"><thead><tr>{head}</tr></thead>'
        f"<tbody>{body}</tbody></table>"
    )


def stat_tiles(tiles: Sequence[dict]) -> str:
    """A row of stat tiles: {label, value, note?, tone?: ok|bad}."""
    out = ['<div class="tiles">']
    for t in tiles:
        tone = t.get("tone")
        value_cls = f"tvalue {tone}" if tone in ("ok", "bad") else "tvalue"
        out.append('<div class="tile">')
        out.append(f'<div class="tlabel">{_esc(t["label"])}</div>')
        out.append(f'<div class="{value_cls}">{_esc(t["value"])}</div>')
        if t.get("note"):
            out.append(f'<div class="tnote">{_esc(t["note"])}</div>')
        out.append("</div>")
    out.append("</div>")
    return "".join(out)


# ----------------------------------------------------------------------
# line chart (trajectories)
# ----------------------------------------------------------------------
def line_chart_svg(
    series: dict[str, list[Optional[float]]],
    x_labels: Sequence[str],
    y_label: str = "",
    width: int = 840,
    tooltips: Optional[dict[str, list[str]]] = None,
) -> str:
    """Multi-series line chart over shared ordinal x positions.

    ``series`` maps name -> one value per x position (None = gap).
    Lines are 2px round-capped; every point is a >= 8px marker with a
    2px surface ring and a native ``<title>`` tooltip; each line gets a
    direct label at its end (series stay <= 8 by the palette contract).
    """
    n_x = len(x_labels)
    if n_x == 0 or not series:
        return ""
    if len(series) > len(CATEGORICAL_SLOTS):
        raise ValueError("more series than categorical slots; fold the tail")
    pad_l, pad_r, pad_t, pad_b = 52, 86, 10, 34
    plot_w = width - pad_l - pad_r
    height = 240 + pad_t + pad_b
    plot_h = height - pad_t - pad_b
    vmax = max(
        (v for vals in series.values() for v in vals if v is not None),
        default=0.0,
    )
    ticks = nice_ticks(vmax)
    top = ticks[-1] or 1.0

    def x_at(i: int) -> float:
        if n_x == 1:
            return pad_l + plot_w / 2.0
        return pad_l + plot_w * i / (n_x - 1)

    def y_at(v: float) -> float:
        return pad_t + plot_h * (1.0 - v / top)

    out = [
        f'<svg class="chart" viewBox="0 0 {width} {height}" '
        f'role="img" aria-label="{_esc(y_label or "line chart")}">'
    ]
    for t in ticks:
        y = y_at(t)
        cls = "axisline" if t == 0 else "gridline"
        out.append(
            f'<line class="{cls}" x1="{pad_l}" y1="{y:.1f}" '
            f'x2="{width - pad_r}" y2="{y:.1f}"/>'
        )
        out.append(
            f'<text class="tick" x="{pad_l - 6}" y="{y + 3.5:.1f}" '
            f'text-anchor="end">{_esc(fmt_num(t))}</text>'
        )
    if y_label:
        out.append(
            f'<text class="label" x="{pad_l}" y="{pad_t - 1}" '
            f'text-anchor="start">{_esc(y_label)}</text>'
        )
    shown = max(1, n_x // 8 + (1 if n_x % 8 else 0))
    for i, xl in enumerate(x_labels):
        if i % shown and i != n_x - 1:
            continue  # thin crowded ordinal ticks; the table has them all
        out.append(
            f'<text class="tick" x="{x_at(i):.1f}" y="{height - pad_b + 16}" '
            f'text-anchor="middle">{_esc(xl)}</text>'
        )
    for si, (name, vals) in enumerate(series.items()):
        color = series_var(si)
        points = [
            (x_at(i), y_at(v)) for i, v in enumerate(vals) if v is not None
        ]
        if not points:
            continue
        if len(points) > 1:
            path = "M " + " L ".join(f"{x:.1f} {y:.1f}" for x, y in points)
            out.append(
                f'<path d="{path}" fill="none" stroke="{color}" '
                'stroke-width="2" stroke-linecap="round" '
                'stroke-linejoin="round"/>'
            )
        tips = (tooltips or {}).get(name, [])
        pi = 0
        for i, v in enumerate(vals):
            if v is None:
                continue
            x, y = points[pi]
            pi += 1
            tip = tips[i] if i < len(tips) else f"{name} · {x_labels[i]}: {fmt_num(v)}"
            out.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="4" fill="{color}" '
                'stroke="var(--surface-1)" stroke-width="2">'
                f"<title>{_esc(tip)}</title></circle>"
            )
        lx, ly = points[-1]
        out.append(
            f'<text class="label" x="{lx + 8:.1f}" y="{ly + 3.5:.1f}" '
            f'text-anchor="start">{_esc(name)}</text>'
        )
    out.append("</svg>")
    return "\n".join(out)


# ----------------------------------------------------------------------
# grouped horizontal bars (comparisons)
# ----------------------------------------------------------------------
def grouped_hbar_svg(
    labels: Sequence[str],
    series: dict[str, Sequence[Optional[float]]],
    value_label: str = "",
    width: int = 840,
    fmt=fmt_num,
    tooltips: Optional[dict[str, Sequence[str]]] = None,
    value_texts: Optional[dict[str, Sequence[str]]] = None,
    label_width: int = 110,
) -> str:
    """Grouped horizontal bar chart: one band per label, one bar per series.

    Bars are <= 18px thick with a 4px rounded data end (square at the
    baseline), separated by a 2px surface gap; each bar carries its
    value at the tip in text ink plus a ``<title>`` tooltip.
    ``value_texts`` overrides the tip label per bar (e.g. to show a
    signed value when the bar plots its magnitude).
    """
    if not labels or not series:
        return ""
    if len(series) > len(CATEGORICAL_SLOTS):
        raise ValueError("more series than categorical slots; fold the tail")
    n_series = len(series)
    bar_h = max(8, min(18, 44 // n_series))
    gap = 2  # the surface gap between touching bars of one band
    band_h = n_series * bar_h + (n_series - 1) * gap + 14
    pad_l, pad_r, pad_t, pad_b = label_width, 64, 8, 28
    height = pad_t + band_h * len(labels) + pad_b
    plot_w = width - pad_l - pad_r
    vmax = max(
        (v for vals in series.values() for v in vals if v is not None),
        default=0.0,
    )
    ticks = nice_ticks(vmax)
    top = ticks[-1] or 1.0

    def x_at(v: float) -> float:
        return pad_l + plot_w * (v / top)

    out = [
        f'<svg class="chart" viewBox="0 0 {width} {height}" '
        f'role="img" aria-label="{_esc(value_label or "bar chart")}">'
    ]
    for t in ticks:
        x = x_at(t)
        cls = "axisline" if t == 0 else "gridline"
        out.append(
            f'<line class="{cls}" x1="{x:.1f}" y1="{pad_t}" '
            f'x2="{x:.1f}" y2="{height - pad_b}"/>'
        )
        out.append(
            f'<text class="tick" x="{x:.1f}" y="{height - pad_b + 16}" '
            f'text-anchor="middle">{_esc(fmt(t))}</text>'
        )
    if value_label:
        out.append(
            f'<text class="label" x="{width - pad_r}" '
            f'y="{height - pad_b + 16}" text-anchor="start">'
            f"{_esc(value_label)}</text>"
        )
    r = 4  # rounded data end
    for li, label in enumerate(labels):
        band_y = pad_t + li * band_h + 7
        out.append(
            f'<text class="label" x="{pad_l - 8}" '
            f'y="{band_y + (n_series * (bar_h + gap)) / 2 + 2:.1f}" '
            f'text-anchor="end">{_esc(label)}</text>'
        )
        for si, (name, vals) in enumerate(series.items()):
            v = vals[li] if li < len(vals) else None
            if v is None:
                continue
            y = band_y + si * (bar_h + gap)
            w = max(0.0, x_at(v) - pad_l)
            color = series_var(si)
            if w <= r:  # degenerate sliver: plain rect, no rounding
                shape = (
                    f'<rect x="{pad_l}" y="{y:.1f}" width="{max(w, 1):.1f}" '
                    f'height="{bar_h}" fill="{color}"/>'
                )
            else:
                shape = (
                    f'<path d="M {pad_l} {y:.1f} h {w - r:.1f} '
                    f"q {r} 0 {r} {r} v {bar_h - 2 * r} "
                    f'q 0 {r} {-r} {r} h {-(w - r):.1f} z" fill="{color}"/>'
                )
            tip = (
                (tooltips or {}).get(name, [None] * len(labels))[li]
                or f"{label} · {name}: {fmt(v)}"
            )
            out.append(shape[:-2] + f"><title>{_esc(tip)}</title></path>"
                       if shape.startswith("<path")
                       else shape[:-2] + f"><title>{_esc(tip)}</title></rect>")
            vtexts = (value_texts or {}).get(name)
            vtext = vtexts[li] if vtexts and li < len(vtexts) else fmt(v)
            out.append(
                f'<text class="value" x="{pad_l + w + 6:.1f}" '
                f'y="{y + bar_h / 2 + 3.5:.1f}" text-anchor="start">'
                f"{_esc(vtext)}</text>"
            )
    out.append("</svg>")
    return "\n".join(out)
