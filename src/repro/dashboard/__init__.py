"""Static HTML dashboard over the run history (docs/observability.md).

Pure-Python SVG rendering — no matplotlib, no JavaScript, no network —
so ``python -m repro dashboard`` works in any environment that can run
the simulator, and the emitted ``index.html`` is a single portable file.
"""

from repro.dashboard.build import (
    REQUIRED_FIGURES,
    DashboardBuild,
    build_dashboard,
)
from repro.dashboard.svg import Figure

__all__ = [
    "DashboardBuild",
    "Figure",
    "REQUIRED_FIGURES",
    "build_dashboard",
]
