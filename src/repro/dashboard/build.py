"""Dashboard assembly: history store + accuracy export -> static HTML.

:func:`build_dashboard` loads the run history, renders every figure
recipe, and writes one self-contained ``index.html`` — inline CSS and
SVG, zero JavaScript, zero network fetches — so the artifact can be
opened from a CI tarball or a local checkout identically.  The returned
:class:`DashboardBuild` lists which figures rendered and which came up
empty, and ``problems`` names every *required* figure without data, so
``repro dashboard --check`` and the CI job can fail on a hollow build
instead of shipping a blank page.
"""

from __future__ import annotations

import html
import json
import os
import time
import warnings
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.dashboard.figures import (
    accuracy_figure,
    fuzz_figure,
    scenario_matrix_figure,
    scheduler_matrix_figure,
    trajectory_figure,
)
from repro.dashboard.svg import STYLE, Figure, stat_tiles
from repro.history.store import HistoryStore, git_sha

__all__ = ["DashboardBuild", "REQUIRED_FIGURES", "build_dashboard"]

#: Figures ``--check`` refuses to ship empty (the fuzz view may be
#: legitimately empty on a fresh checkout; the core three may not).
REQUIRED_FIGURES = ("trajectory", "schedulers", "accuracy")

_TITLE = "DRAM latency divergence — experiment dashboard"


@dataclass
class DashboardBuild:
    """What one build produced, for callers that need to gate on it."""

    index_path: str
    figures: list[Figure] = field(default_factory=list)
    #: Required figures that rendered empty (reason included), plus any
    #: accuracy-file read errors.  Non-empty => the build is hollow.
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def summary(self) -> str:
        lines = [f"dashboard: {self.index_path}"]
        for fig in self.figures:
            state = f"EMPTY ({fig.empty_reason})" if fig.empty else "ok"
            lines.append(f"  {fig.figure_id:12s} {state}")
        for p in self.problems:
            lines.append(f"  PROBLEM: {p}")
        return "\n".join(lines)


def _load_accuracy(path: str) -> tuple[Optional[dict], Optional[str]]:
    """(accuracy doc, problem) — a missing file is not a problem here;
    the figure reports it as its empty reason."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except FileNotFoundError:
        return None, None
    except (OSError, json.JSONDecodeError, ValueError) as exc:
        return None, f"accuracy export {path} unreadable: {exc}"
    if not isinstance(doc, dict):
        return None, f"accuracy export {path} is not a JSON object"
    return doc, None


def build_dashboard(
    history_dir: str,
    out_dir: str,
    accuracy_path: Optional[str] = None,
    require: Sequence[str] = REQUIRED_FIGURES,
) -> DashboardBuild:
    """Render the dashboard into ``out_dir/index.html``.

    ``accuracy_path`` defaults to ``results/accuracy.json`` next to the
    history directory's parent (the conventional layout).  ``require``
    lists figure ids that must have data for the build to count as ok.
    """
    store = HistoryStore(history_dir)
    if accuracy_path is None:
        accuracy_path = os.path.join(
            os.path.dirname(history_dir.rstrip("/\\")) or ".",
            "accuracy.json",
        )
    accuracy, acc_problem = _load_accuracy(accuracy_path)

    # The whole build runs under one warning trap: skipped-line warnings
    # from any read (including the hero tiles') land on the page instead
    # of the caller's stderr, and are never raised twice.
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        bench = store.records("bench")
        fuzz = store.records("fuzz")
        sweeps = store.records("sweep")
        skipped = sorted({str(w.message) for w in caught})

        figures = [
            trajectory_figure(bench),
            scheduler_matrix_figure(bench[-1] if bench else None),
            accuracy_figure(accuracy),
            # Not in REQUIRED_FIGURES: a history without scenario-stamped
            # sweeps is normal (scenarios are opt-in).
            scenario_matrix_figure(sweeps),
            fuzz_figure(fuzz),
        ]

        build = DashboardBuild(
            index_path=os.path.join(out_dir, "index.html")
        )
        build.figures = figures
        if acc_problem:
            build.problems.append(acc_problem)
        for fig in figures:
            if fig.empty and fig.figure_id in require:
                build.problems.append(
                    f"required figure '{fig.figure_id}' is empty: "
                    f"{fig.empty_reason}"
                )

        os.makedirs(out_dir, exist_ok=True)
        with open(build.index_path, "w") as fh:
            fh.write(_render_page(store, figures, accuracy, skipped))
    return build


# ----------------------------------------------------------------------
# page assembly
# ----------------------------------------------------------------------
def _esc(text: object) -> str:
    return html.escape(str(text), quote=True)


def _hero_tiles(
    store: HistoryStore, accuracy: Optional[dict]
) -> str:
    tiles = []
    bench = store.latest("bench")
    if bench and isinstance(bench.payload, dict):
        eps = float(bench.payload.get("events_per_sec") or 0.0)
        tiles.append({
            "label": "core throughput (latest bench)",
            "value": f"{eps / 1000.0:.0f}k ev/s",
            "note": f"{bench.record_id} · git {bench.git_sha[:7]}",
        })
    n_records = sum(len(store.records(k)) for k in store.kinds())
    tiles.append({
        "label": "history records",
        "value": f"{n_records}",
        "note": ", ".join(store.kinds()) or "store is empty",
    })
    fuzz = store.latest("fuzz")
    if fuzz and isinstance(fuzz.payload, dict):
        clean = bool(fuzz.payload.get(
            "clean", not fuzz.payload.get("failures")
        ))
        tiles.append({
            "label": "latest fuzz campaign",
            "value": "✓ clean" if clean else "✗ failures",
            "tone": "ok" if clean else "bad",
            "note": f"{fuzz.payload.get('cases_run', '?')} cases",
        })
    entries = (accuracy or {}).get("entries") or []
    if entries:
        worst = max(
            entries, key=lambda e: abs(float(e.get("delta") or 0.0))
        )
        tiles.append({
            "label": "paper-accuracy entries",
            "value": f"{len(entries)}",
            "note": (
                f"worst delta {float(worst['delta']):+.1f} "
                f"({worst['figure']} {worst['metric']})"
            ),
        })
    return stat_tiles(tiles)


def _render_page(
    store: HistoryStore,
    figures: Sequence[Figure],
    accuracy: Optional[dict],
    skipped_warnings: Sequence[str],
) -> str:
    now = time.strftime("%Y-%m-%d %H:%M UTC", time.gmtime())
    sha = git_sha()
    parts = [
        "<!doctype html>",
        '<html lang="en"><head><meta charset="utf-8">',
        '<meta name="viewport" content="width=device-width, initial-scale=1">',
        f"<title>{_esc(_TITLE)}</title>",
        f"<style>{STYLE}</style>",
        "</head><body><main>",
        f"<h1>{_esc(_TITLE)}</h1>",
        '<p class="sub">Managing DRAM Latency Divergence in Irregular '
        "GPGPU Applications — reproduction status</p>",
        f'<p class="meta">generated {_esc(now)} · git {_esc(sha[:12])} · '
        f"history: {_esc(store.root)}</p>",
        _hero_tiles(store, accuracy),
    ]
    parts.extend(fig.to_html() for fig in figures)
    if skipped_warnings:
        items = "".join(f"<li>{_esc(w)}</li>" for w in skipped_warnings)
        parts.append(
            '<section class="card"><h2>Skipped history lines</h2>'
            f'<ul class="sub">{items}</ul></section>'
        )
    parts.append(
        "<footer>Static build — no scripts, no network. "
        "Regenerate with <code>python -m repro dashboard</code>; "
        "ingest runs via <code>python -m repro bench</code> / "
        "<code>sweep</code> / <code>fuzz</code>.</footer>"
    )
    parts.append("</main></body></html>")
    return "\n".join(parts)
