"""Figure recipes: history records + accuracy export -> dashboard views.

Each recipe is a pure function from already-loaded data to a
:class:`repro.dashboard.svg.Figure`; it never touches the filesystem, so
the test suite can drive every recipe from a tiny fixture history.  A
recipe with nothing to show returns an *empty* figure carrying the
reason (the build layer decides which empty figures fail ``--check``).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.dashboard.svg import (
    CATEGORICAL_SLOTS,
    Figure,
    data_table,
    grouped_hbar_svg,
    legend_html,
    line_chart_svg,
)

__all__ = [
    "accuracy_figure",
    "fuzz_figure",
    "scenario_matrix_figure",
    "scheduler_matrix_figure",
    "trajectory_figure",
]

#: Preferred trajectory series order (the paper's presentation set first).
_SCHED_ORDER = ("gmc", "wg", "wg-m", "wg-bw", "wg-w")


def _short_sha(sha: str) -> str:
    return sha[:7] if sha and sha != "unknown" else "-"


def _sched_throughput(
    payload: dict, scheduler: str, scale: Optional[str]
) -> Optional[float]:
    """Mean events/sec for one scheduler (one scale, or all) in a report."""
    vals = [
        float(j.get("events_per_sec") or 0.0)
        for j in payload.get("jobs", ())
        if j.get("scheduler") == scheduler
        and (scale is None or j.get("scale") == scale)
        and j.get("events_per_sec")
    ]
    return sum(vals) / len(vals) if vals else None


def _record_calibration(record) -> float:
    payload_cal = 0.0
    if isinstance(record.payload, dict):
        payload_cal = float(
            record.payload.get("calibration_ops_per_sec") or 0.0
        )
    return payload_cal or record.calibration_ops_per_sec or 0.0


# ----------------------------------------------------------------------
# 1. perf trajectory
# ----------------------------------------------------------------------
def trajectory_figure(bench_records: Sequence) -> Figure:
    """Normalized core throughput per scheduler across bench runs.

    One x position per history record (oldest -> newest); y is
    ``events_per_sec / calibration_ops_per_sec * 1000`` — events
    simulated per thousand calibration ops, so runs from machines of
    different speed sit on one comparable axis.
    """
    fig = Figure(
        figure_id="trajectory",
        title="Performance trajectory",
        subtitle=(
            "Core bench throughput per scheduler, normalized by the "
            "host calibration loop (events per 1k calibration ops; "
            "higher is faster)"
        ),
    )
    records = [
        r for r in bench_records
        if isinstance(r.payload, dict) and r.payload.get("jobs")
    ]
    if not records:
        fig.empty = True
        fig.empty_reason = (
            "no bench records in the history — run `python -m repro bench`"
        )
        return fig

    # Fixed series assignment: presentation set first, then whatever
    # else the records measured, folded past the palette's 8 slots.
    present: list[str] = []
    for r in records:
        for j in r.payload.get("jobs", ()):
            s = j.get("scheduler")
            if s and s not in present:
                present.append(s)
    ordered = [s for s in _SCHED_ORDER if s in present] + sorted(
        s for s in present if s not in _SCHED_ORDER
    )
    folded = ordered[len(CATEGORICAL_SLOTS):]
    schedulers = ordered[: len(CATEGORICAL_SLOTS)]
    # Compare at the scale every record has (TINY is always measured).
    scale = "TINY" if any(
        j.get("scale") == "TINY"
        for r in records for j in r.payload.get("jobs", ())
    ) else None

    x_labels, series, tooltips = [], {s: [] for s in schedulers}, {
        s: [] for s in schedulers
    }
    for r in records:
        x_labels.append(f"#{r.record_id.rpartition('-')[2]}")
        cal = _record_calibration(r)
        for s in schedulers:
            eps = _sched_throughput(r.payload, s, scale)
            norm = (eps / cal * 1000.0) if (eps and cal > 0) else None
            series[s].append(round(norm, 2) if norm is not None else None)
            tooltips[s].append(
                f"{s} · {r.record_id} ({_short_sha(r.git_sha)}, "
                f"{r.created_utc}): "
                + (
                    f"{norm:.1f} events/1k cal-ops "
                    f"({eps / 1000.0:.1f}k events/s raw)"
                    if norm is not None
                    else "not measured"
                )
            )

    fig.svg = line_chart_svg(
        series, x_labels,
        y_label="events / 1k calibration ops",
        tooltips=tooltips,
    )
    if len(series) >= 2:
        fig.legend_html = legend_html(list(series))
    rows = []
    for i, r in enumerate(records):
        rows.append(
            [r.record_id, r.created_utc, _short_sha(r.git_sha),
             f"{_record_calibration(r) / 1e6:.1f}M"]
            + [
                "-" if series[s][i] is None else f"{series[s][i]:.1f}"
                for s in schedulers
            ]
        )
    fig.table_html = data_table(
        ["record", "created (UTC)", "git", "calibration"] + list(schedulers),
        rows,
    )
    notes = [f"comparison scale: {scale or 'all scales pooled'}"]
    if folded:
        notes.append(
            "not plotted (palette holds 8 series): " + ", ".join(folded)
            + " — see the scheduler comparison below"
        )
    fig.note = "; ".join(notes)
    return fig


# ----------------------------------------------------------------------
# 2. scheduler comparison matrix
# ----------------------------------------------------------------------
def scheduler_matrix_figure(bench_record) -> Figure:
    """Latest bench report as a scheduler x scale throughput matrix."""
    fig = Figure(
        figure_id="schedulers",
        title="Scheduler comparison",
        subtitle=(
            "Raw core-bench throughput per scheduler from the latest "
            "bench record (thousand events/s; best-of-repeats)"
        ),
    )
    payload = bench_record.payload if bench_record else None
    if not (isinstance(payload, dict) and payload.get("jobs")):
        fig.empty = True
        fig.empty_reason = (
            "no bench records in the history — run `python -m repro bench`"
        )
        return fig

    scales = sorted(
        {j.get("scale") for j in payload["jobs"] if j.get("scale")},
        key=lambda s: ("TINY", "SMALL", "QUICK", "PAPER").index(s)
        if s in ("TINY", "SMALL", "QUICK", "PAPER") else 99,
    )
    schedulers = sorted(
        {j.get("scheduler") for j in payload["jobs"] if j.get("scheduler")},
        key=lambda s: -(
            _sched_throughput(payload, s, scales[0]) or 0.0
        ),
    )
    series: dict[str, list[Optional[float]]] = {}
    tooltips: dict[str, list[str]] = {}
    for scale in scales:
        vals, tips = [], []
        for s in schedulers:
            eps = _sched_throughput(payload, s, scale)
            vals.append(round(eps / 1000.0, 1) if eps else None)
            wall = [
                j.get("sim_wall_s") for j in payload["jobs"]
                if j.get("scheduler") == s and j.get("scale") == scale
            ]
            tips.append(
                f"{s} @ {scale}: "
                + (
                    f"{eps / 1000.0:.1f}k events/s "
                    f"(best {wall[0]}s)" if eps else "not measured"
                )
            )
        series[scale] = vals
        tooltips[scale] = tips

    fig.svg = grouped_hbar_svg(
        schedulers, series, value_label="k events/s", tooltips=tooltips
    )
    if len(series) >= 2:
        fig.legend_html = legend_html(list(series))
    fig.table_html = data_table(
        ["scheduler"] + [f"{sc} (k events/s)" for sc in scales],
        [
            [s] + [
                "-" if series[sc][i] is None else series[sc][i]
                for sc in scales
            ]
            for i, s in enumerate(schedulers)
        ],
    )
    fig.note = (
        f"record {bench_record.record_id} "
        f"({_short_sha(bench_record.git_sha)}, {bench_record.created_utc}); "
        "sorted by first-scale throughput"
    )
    return fig


# ----------------------------------------------------------------------
# 3. paper-vs-measured accuracy
# ----------------------------------------------------------------------
def accuracy_figure(accuracy: Optional[dict]) -> Figure:
    """Paper value vs this repo's measured value per EXPERIMENTS.md entry.

    Percent-unit entries are charted (as magnitudes, tip labels keep the
    sign); entries in other units — ratios, multipliers, counts — live
    in the table, where mixed units cannot silently share an axis.
    """
    fig = Figure(
        figure_id="accuracy",
        title="Paper vs measured",
        subtitle=(
            "EXPERIMENTS.md headline numbers: the paper's reported "
            "value against this simulator's measurement"
        ),
    )
    entries = (accuracy or {}).get("entries") or []
    if not entries:
        fig.empty = True
        fig.empty_reason = (
            "results/accuracy.json missing or empty — run "
            "`python -m repro accuracy`"
        )
        return fig

    pct = [e for e in entries if e.get("unit") == "pct"]
    if pct:
        labels = [f"{e['figure']} · {e['metric']}" for e in pct]
        series = {
            "paper": [abs(float(e["paper"])) for e in pct],
            "measured": [abs(float(e["measured"])) for e in pct],
        }
        sign = lambda v: f"{float(v):+.1f}"  # noqa: E731
        value_texts = {
            "paper": [sign(e["paper"]) for e in pct],
            "measured": [sign(e["measured"]) for e in pct],
        }
        tooltips = {
            key: [
                f"{e['figure']} {e['metric']} — {key}: "
                f"{sign(e[key])}% (delta {float(e['delta']):+.1f})"
                for e in pct
            ]
            for key in ("paper", "measured")
        }
        fig.svg = grouped_hbar_svg(
            labels, series,
            value_label="% (magnitude)",
            tooltips=tooltips,
            value_texts=value_texts,
            label_width=290,
        )
        fig.legend_html = legend_html(["paper", "measured"])
    fig.table_html = data_table(
        ["figure", "metric", "unit", "paper", "measured", "delta"],
        [
            [e.get("figure"), e.get("metric"), e.get("unit"),
             e.get("paper_text", e.get("paper")),
             e.get("measured_text", e.get("measured")),
             f"{float(e.get('delta', 0.0)):+.2f}"]
            for e in entries
        ],
    )
    non_pct = len(entries) - len(pct)
    if non_pct:
        fig.note = (
            f"{non_pct} non-percent entr{'y' if non_pct == 1 else 'ies'} "
            "(ratios/multipliers/counts) are table-only — mixed units "
            "never share an axis"
        )
    return fig


# ----------------------------------------------------------------------
# 4. fuzz / guardrail campaigns
# ----------------------------------------------------------------------
def fuzz_figure(fuzz_records: Sequence) -> Figure:
    """Differential-fuzz campaign sizes and outcomes over time."""
    fig = Figure(
        figure_id="fuzz",
        title="Fuzz campaigns",
        subtitle=(
            "Differential/metamorphic fuzzer runs from the history: "
            "cases executed per campaign and whether every oracle held"
        ),
    )
    records = [r for r in fuzz_records if isinstance(r.payload, dict)]
    if not records:
        fig.empty = True
        fig.empty_reason = (
            "no fuzz records in the history — run `python -m repro fuzz`"
        )
        return fig

    labels, vals, texts, tips, rows = [], [], [], [], []
    for r in records:
        p = r.payload
        cases = int(p.get("cases_run") or 0)
        fails = p.get("failures") or []
        clean = bool(p.get("clean", not fails))
        labels.append(f"#{r.record_id.rpartition('-')[2]}")
        vals.append(cases)
        status = "✓ clean" if clean else f"✗ {len(fails)} failed"
        texts.append(f"{cases} · {status}")
        tips.append(
            f"{r.record_id} ({_short_sha(r.git_sha)}, {r.created_utc}): "
            f"{cases} cases at {p.get('cases_per_sec', '?')}/s, {status}"
        )
        rows.append(
            [r.record_id, r.created_utc, _short_sha(r.git_sha), cases,
             p.get("cases_per_sec", "-"),
             ", ".join(str(s) for s in p.get("schedulers", ())[:4])
             + ("…" if len(p.get("schedulers", ())) > 4 else ""),
             status]
        )

    fig.svg = grouped_hbar_svg(
        labels, {"cases": vals},
        value_label="cases run",
        tooltips={"cases": tips},
        value_texts={"cases": texts},
    )
    fig.table_html = data_table(
        ["record", "created (UTC)", "git", "cases", "cases/s",
         "schedulers", "outcome"],
        rows,
    )
    total_fail = sum(
        len(r.payload.get("failures") or []) for r in records
    )
    if total_fail:
        fig.note = (
            f"✗ {total_fail} oracle failure(s) across "
            f"{len(records)} campaign(s) — artifacts under results/fuzz/"
        )
    return fig


# ----------------------------------------------------------------------
# 5. scenario comparison matrix
# ----------------------------------------------------------------------
def scenario_matrix_figure(sweep_records: Sequence) -> Figure:
    """Sweep runs grouped by scenario: one row per declarative spec.

    Sweeps launched through ``repro scenario run`` / ``sweep --spec``
    stamp their scenario name and spec hash into the history payload
    (docs/scenarios.md); this view compares the latest run of each
    scenario — grid size, failures, cache reuse, simulation throughput —
    and flags a scenario whose spec hash changed since its previous run
    (same name, different resolved experiment).
    """
    fig = Figure(
        figure_id="scenarios",
        title="Scenario runs",
        subtitle=(
            "Latest sweep per declarative scenario spec (scenarios/), "
            "grouped by the scenario name stamped into the history"
        ),
    )
    by_name: dict[str, list] = {}
    for r in sweep_records:
        if not isinstance(r.payload, dict):
            continue
        name = r.payload.get("scenario_name") or ""
        if name:
            by_name.setdefault(name, []).append(r)

    if not by_name:
        fig.empty = True
        fig.empty_reason = (
            "no scenario-stamped sweeps in the history — run "
            "`python -m repro scenario run scenarios/<spec>.yaml`"
        )
        return fig

    labels, done_vals, cached_vals, tips_d, tips_c, rows = [], [], [], [], [], []
    respecced = []
    for name in sorted(by_name):
        runs = by_name[name]
        latest = runs[-1]
        p = latest.payload
        spec_hash = p.get("scenario_hash") or "-"
        prev_hashes = {
            r.payload.get("scenario_hash") for r in runs[:-1]
        } - {None, spec_hash}
        if prev_hashes:
            respecced.append(name)
        done = int(p.get("jobs_done") or 0)
        total = int(p.get("jobs_total") or 0)
        failed = int(p.get("jobs_failed") or 0)
        cached = int(p.get("jobs_cached") or 0) + int(p.get("jobs_skipped") or 0)
        eps = float(p.get("events_per_sec") or 0.0)
        labels.append(name)
        done_vals.append(done)
        cached_vals.append(cached)
        status = "✓" if not failed else f"✗ {failed} failed"
        tip = (
            f"{latest.record_id} ({_short_sha(latest.git_sha)}, "
            f"{latest.created_utc}): {done}/{total} jobs, {cached} from "
            f"cache, spec {spec_hash} {status}"
        )
        tips_d.append(tip)
        tips_c.append(tip)
        rows.append([
            name, spec_hash, latest.record_id, p.get("scale", "-"),
            f"{done}/{total}", cached, failed,
            f"{eps / 1000.0:.0f}k" if eps else "-", len(runs),
        ])

    fig.svg = grouped_hbar_svg(
        labels,
        {"jobs done": done_vals, "from cache": cached_vals},
        value_label="jobs (latest run)",
        tooltips={"jobs done": tips_d, "from cache": tips_c},
    )
    fig.legend_html = legend_html(["jobs done", "from cache"])
    fig.table_html = data_table(
        ["scenario", "spec", "record", "scale", "done", "cached",
         "failed", "events/s", "runs"],
        rows,
    )
    if respecced:
        fig.note = (
            "spec hash changed since the previous run for: "
            + ", ".join(sorted(respecced))
        )
    return fig
