"""Baseline throughput-optimized GPU memory controller (GMC, §II-C).

The transaction scheduler services *streams* of row-hit requests per bank,
interleaving banks for bank-level parallelism.  Two fairness guards bound
latency:

* an age threshold — a request older than ``age_threshold_ns`` preempts the
  current stream of its bank;
* a maximum row-hit streak — a stream yields after ``max_row_hit_streak``
  consecutive requests even if more hits are pending.

This is the paper's performance baseline; every Fig. 8 number is IPC
normalized to this controller.
"""

from __future__ import annotations

from typing import Optional

from repro.core.request import MemoryRequest
from repro.mc.base import MemoryController
from repro.mc.row_sorter import RowSorter

__all__ = ["GMCController"]


class GMCController(MemoryController):
    name = "gmc"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.sorter = RowSorter(self.org.banks_per_channel)
        self._stream_row: list[Optional[int]] = [None] * self.org.banks_per_channel
        self._streak = [0] * self.org.banks_per_channel

    # -- base hooks -----------------------------------------------------------
    def _accept_read(self, req: MemoryRequest) -> None:
        self.sorter.add(req)

    def _sorter_empty(self) -> bool:
        return self.sorter.empty()

    def _schedule_reads(self, now: int) -> None:
        for bank in range(self.org.banks_per_channel):
            while self.cq.space(bank) > 0:
                req = self._next_for_bank(bank, now)
                if req is None:
                    break
                self.cq.insert(req, now)

    # -- stream selection --------------------------------------------------------
    def _next_for_bank(self, bank: int, now: int) -> Optional[MemoryRequest]:
        rows = self.sorter.rows_for(bank)
        if not rows:
            return None

        stream_row = self._stream_row[bank]
        stream_live = stream_row is not None and stream_row in rows
        # The oldest request *outside* the current stream: the starvation
        # guard and the streak limit both divert service to it.
        oldest_other = self.sorter.oldest_in_bank(
            bank, exclude_row=stream_row if stream_live else None
        )

        if (
            oldest_other is not None
            and now - oldest_other.t_mc_arrival > self.age_threshold_ps
        ):
            # Starvation guard: an over-age request hijacks the stream.
            target = oldest_other.row
        elif stream_live and self._streak[bank] < self.mc.max_row_hit_streak:
            target = stream_row
        elif oldest_other is not None:
            # Stream exhausted its streak (or emptied): rotate to the
            # oldest waiting row.
            target = oldest_other.row
        else:
            # Only the stream row has requests; keep going (streak resets).
            target = next(iter(rows))

        if target != stream_row:
            self._stream_row[bank] = target
            self._streak[bank] = 0
        self._streak[bank] += 1
        return self.sorter.pop(bank, target)
