"""WG: per-controller warp-group scheduling (§IV-B).

A bank-aware shortest-job-first (BASJF) arbiter over *complete*
warp-groups.  Each pump, the transaction scheduler:

1. scores every complete warp-group against the bank table (array score
   1/3 per request + queuing score of the target command queues; group
   score = max over its banks — the drain time of its slowest bank);
2. ranks groups by score (shortest job first); ties go to the group with
   more row hits (lower DRAM power), then to the oldest;
3. pulls the best-ranked group whose target command queues have room, the
   *entire* group at once, so its requests drain together — and repeats
   until queues fill or no group is eligible.

Two hygiene rules keep SJF safe in a real controller:

* groups older than the controller's age threshold rank ahead of
  everything (pure SJF would starve large groups indefinitely);
* if the read queue is full and *no* group is complete (their stragglers
  are stuck behind the queue's own backpressure), the oldest group is
  serviced partially — the deadlock-free equivalent of the sorter
  spilling under pressure.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Optional

from repro.core.request import MemoryRequest
from repro.mc.base import MemoryController
from repro.mc.warp_sorter import WarpGroupEntry, WarpSorter

__all__ = ["WGController"]


class WGController(MemoryController):
    name = "wg"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.sorter = WarpSorter()
        # (sorter.version, cq.version) snapshots under which the last
        # pick / pressure fallback found nothing to do.  A "no group has
        # room" outcome is *time-independent* — it depends only on group
        # membership and queue occupancy, never on rank order — so it
        # stays valid until one of those versions moves.
        self._pick_none: Optional[tuple[int, int]] = None
        self._fallback_noop: Optional[tuple[int, int]] = None
        # True when this controller uses the stock rank key, enabling
        # _pick_with_room's inline prefix comparison (the inline copy of
        # the key's first two fields must track _rank_key).
        self._rank_is_default = type(self)._rank_key is WGController._rank_key

    # -- base hooks -----------------------------------------------------------
    def _accept_read(self, req: MemoryRequest) -> None:
        self.sorter.add(req, self.engine.now)

    def _sorter_empty(self) -> bool:
        return self.sorter.empty()

    def _mark_group_complete(self, key: tuple[int, int], expected: int) -> None:
        self.sorter.mark_complete(key, expected, self.engine.now)

    # -- transaction scheduling ---------------------------------------------------
    def _schedule_reads(self, now: int) -> None:
        while True:
            picked = self._pick_with_room(now)
            if picked is None:
                self._pressure_fallback(now)
                return
            entry, score = picked
            self._on_group_selected(entry, score, now)
            self._insert_group(entry, now)

    def _rank_key(self, entry: WarpGroupEntry, score: int, hits: int, now: int):
        """Sort key: over-age groups first, then BASJF with tie-breaks."""
        overage = 0 if now - entry.arrival_ps > self.age_threshold_ps else 1
        return (overage, score, -hits, entry.arrival_ps, entry.key)

    def _ranked_groups(self, now: int) -> list[tuple[tuple, WarpGroupEntry, int]]:
        """(rank key, entry, score) of every complete group, best first.

        One scorer evaluation per group: score and hit count come out of
        the same pass.  Diagnostic view — the hot path
        (:meth:`_pick_with_room`) selects the minimum directly instead
        of sorting.
        """
        score_fn = WarpSorter.score
        cq = self.cq
        ranked = []
        for e in self.sorter.complete_groups():
            score, hits = score_fn(e, cq)
            ranked.append((self._rank_key(e, score, hits, now), e, score))
        ranked.sort(key=itemgetter(0))
        return ranked

    def _pick_with_room(self, now: int) -> Optional[tuple[WarpGroupEntry, int]]:
        """Best-ranked complete group whose command queues have room.

        Skipping blocked groups avoids head-of-line idling: a full bank
        must not keep other banks' work waiting in the sorter.  The
        "first with room in rank order" of the paper's arbiter is
        computed as a single min-scan — identical choice (rank keys end
        in the unique group key, so there are no ties), no sort.  Room
        is only probed when a group actually beats the best-so-far.
        """
        if not self.sorter.n_complete:
            return None
        state = (self.sorter.version, self.cq.version)
        if state == self._pick_none:
            return None
        score_fn = WarpSorter.score
        cq = self.cq
        queues = cq.queues
        depth = cq.depth
        rank_key = self._rank_key  # polymorphic: WG-W/WG-Share override it
        default_rank = self._rank_is_default
        age_threshold = self.age_threshold_ps
        best_key = None
        best: Optional[WarpGroupEntry] = None
        best_score = 0
        # complete_groups() and _room_for() inlined: this min-scan runs
        # per pump over every resident group, and the per-group property/
        # generator/method dispatch dominates the comparison itself.
        for e in self.sorter.groups.values():
            if e.n_requests == 0 or e.expected is None or e.received < e.expected:
                continue  # not schedulable: empty or incomplete
            score, hits = score_fn(e, cq)
            if default_rank:
                # Inline copy of _rank_key's (overage, score) prefix: a
                # strictly worse prefix cannot beat best_key (keys are
                # compared lexicographically and end in the unique group
                # key), so losers skip the full tuple build.
                overage = 0 if now - e.arrival_ps > age_threshold else 1
                if best_key is not None and (
                    overage > best_key[0]
                    or (overage == best_key[0] and score > best_key[1])
                ):
                    continue
                key = (overage, score, -hits, e.arrival_ps, e.key)
            else:
                key = rank_key(e, score, hits, now)
            if best_key is None or key < best_key:
                for bank in e.by_bank:  # room in every touched bank queue
                    if len(queues[bank]) >= depth:
                        break
                else:
                    best_key = key
                    best = e
                    best_score = score
        if best is None:
            self._pick_none = state
            return None
        return best, best_score

    def _room_for(self, entry: WarpGroupEntry) -> bool:
        """Require nominal space in every bank queue the group touches."""
        queues = self.cq.queues
        depth = self.cq.depth
        for bank in entry.by_bank:
            if len(queues[bank]) >= depth:
                return False
        return True

    def _pressure_fallback(self, now: int) -> None:
        """Escape hatch for the full-queue / no-complete-group deadlock."""
        if self._reads_pending < self.mc.read_queue_entries and not self._read_overflow:
            return
        if (self.sorter.version, self.cq.version) == self._fallback_noop:
            return
        while True:
            best = None
            for entry in self.sorter.groups.values():
                if entry.empty or entry.complete:
                    continue
                if best is None or entry.arrival_ps < best.arrival_ps:
                    best = entry
            if best is None or not self._room_for(best):
                # Like _pick_with_room's cache: this outcome only moves
                # when membership or queue occupancy does.
                self._fallback_noop = (self.sorter.version, self.cq.version)
                return
            self._insert_group(best, now)

    def _on_group_selected(self, entry: WarpGroupEntry, score: int, now: int) -> None:
        """Hook: WG-M broadcasts the selection to peer controllers here."""

    def _insert_group(self, entry: WarpGroupEntry, now: int) -> None:
        # Snapshot: the WG-Bw MERB gate may pull some of this group's own
        # row-hit requests as fillers while we iterate.
        plan = [
            (bank, sorted(reqs, key=lambda r: (r.row, r.t_mc_arrival, r.req_id)))
            for bank, reqs in sorted(entry.by_bank.items())
        ]
        for bank, reqs in plan:
            for req in reqs:
                if req.t_scheduled >= 0:
                    continue  # already scheduled as a MERB filler
                self._insert_request(req, now)

    def _insert_request(self, req: MemoryRequest, now: int) -> None:
        """Move one request from the warp sorter into its command queue.

        WG-Bw overrides this to run the MERB row-miss gate first.
        """
        self.sorter.remove_request(req)
        self.cq.insert(req, now)
