"""WG: per-controller warp-group scheduling (§IV-B).

A bank-aware shortest-job-first (BASJF) arbiter over *complete*
warp-groups.  Each pump, the transaction scheduler:

1. scores every complete warp-group against the bank table (array score
   1/3 per request + queuing score of the target command queues; group
   score = max over its banks — the drain time of its slowest bank);
2. ranks groups by score (shortest job first); ties go to the group with
   more row hits (lower DRAM power), then to the oldest;
3. pulls the best-ranked group whose target command queues have room, the
   *entire* group at once, so its requests drain together — and repeats
   until queues fill or no group is eligible.

Two hygiene rules keep SJF safe in a real controller:

* groups older than the controller's age threshold rank ahead of
  everything (pure SJF would starve large groups indefinitely);
* if the read queue is full and *no* group is complete (their stragglers
  are stuck behind the queue's own backpressure), the oldest group is
  serviced partially — the deadlock-free equivalent of the sorter
  spilling under pressure.
"""

from __future__ import annotations

from typing import Optional

from repro.core.request import MemoryRequest
from repro.mc.base import MemoryController
from repro.mc.warp_sorter import WarpGroupEntry, WarpSorter

__all__ = ["WGController"]


class WGController(MemoryController):
    name = "wg"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.sorter = WarpSorter()

    # -- base hooks -----------------------------------------------------------
    def _accept_read(self, req: MemoryRequest) -> None:
        self.sorter.add(req, self.engine.now)

    def _sorter_empty(self) -> bool:
        return self.sorter.empty()

    def _mark_group_complete(self, key: tuple[int, int], expected: int) -> None:
        self.sorter.mark_complete(key, expected, self.engine.now)

    # -- transaction scheduling ---------------------------------------------------
    def _schedule_reads(self, now: int) -> None:
        while True:
            picked = self._pick_with_room(now)
            if picked is None:
                self._pressure_fallback(now)
                return
            entry, score = picked
            self._on_group_selected(entry, score, now)
            self._insert_group(entry, now)

    def _rank_key(self, entry: WarpGroupEntry, score: int, now: int):
        """Sort key: over-age groups first, then BASJF with tie-breaks."""
        overage = 0 if now - entry.arrival_ps > self.age_threshold_ps else 1
        _, hits = WarpSorter.score(entry, self.cq)
        return (overage, score, -hits, entry.arrival_ps, entry.key)

    def _ranked_groups(self, now: int) -> list[tuple[WarpGroupEntry, int]]:
        scored = [
            (e, WarpSorter.score(e, self.cq)[0]) for e in self.sorter.complete_groups()
        ]
        scored.sort(key=lambda es: self._rank_key(es[0], es[1], now))
        return scored

    def _pick_with_room(self, now: int) -> Optional[tuple[WarpGroupEntry, int]]:
        """Best-ranked complete group whose command queues have room.

        Skipping blocked groups avoids head-of-line idling: a full bank
        must not keep other banks' work waiting in the sorter.
        """
        for entry, score in self._ranked_groups(now):
            if self._room_for(entry):
                return entry, score
        return None

    def _room_for(self, entry: WarpGroupEntry) -> bool:
        """Require nominal space in every bank queue the group touches."""
        return all(self.cq.space(b) > 0 for b in entry.by_bank)

    def _pressure_fallback(self, now: int) -> None:
        """Escape hatch for the full-queue / no-complete-group deadlock."""
        if self._reads_pending < self.mc.read_queue_entries and not self._read_overflow:
            return
        while True:
            best = None
            for entry in self.sorter.groups.values():
                if entry.empty or entry.complete:
                    continue
                if best is None or entry.arrival_ps < best.arrival_ps:
                    best = entry
            if best is None or not self._room_for(best):
                return
            self._insert_group(best, now)

    def _on_group_selected(self, entry: WarpGroupEntry, score: int, now: int) -> None:
        """Hook: WG-M broadcasts the selection to peer controllers here."""

    def _insert_group(self, entry: WarpGroupEntry, now: int) -> None:
        # Snapshot: the WG-Bw MERB gate may pull some of this group's own
        # row-hit requests as fillers while we iterate.
        plan = [
            (bank, sorted(reqs, key=lambda r: (r.row, r.t_mc_arrival, r.req_id)))
            for bank, reqs in sorted(entry.by_bank.items())
        ]
        for bank, reqs in plan:
            for req in reqs:
                if req.t_scheduled >= 0:
                    continue  # already scheduled as a MERB filler
                self._insert_request(req, now)

    def _insert_request(self, req: MemoryRequest, now: int) -> None:
        """Move one request from the warp sorter into its command queue.

        WG-Bw overrides this to run the MERB row-miss gate first.
        """
        self.sorter.remove_request(req)
        self.cq.insert(req, now)
