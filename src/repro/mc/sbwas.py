"""SBWAS: single-bank warp-aware scheduling (Lakshminarayana et al. [32]).

The comparison scheduler of §VI-C1.  Per bank, a potential function decides
between (a) continuing the stream of row hits to the bank's open row and
(b) servicing a request from the warp with the fewest requests remaining
at this controller.  A profiling-derived parameter alpha in {0.25, 0.5,
0.75} biases the choice toward the short warp: we realize the bias as a
remaining-request threshold k = round(4*alpha) below which the shortest
warp's request preempts the row-hit stream.

Two fidelity-relevant differences from the WG family, both from the paper:

* the policy is per-bank only — no cross-bank or cross-channel view;
* writes are interleaved with reads rather than drained in batches, which
  costs bus turnarounds on write-heavy workloads (e.g. ``sad``).
"""

from __future__ import annotations

from typing import Optional

from repro.core.request import MemoryRequest
from repro.mc.base import MemoryController
from repro.mc.command_queue import QueuedRequest
from repro.mc.row_sorter import RowSorter

__all__ = ["SBWASController"]


class SBWASController(MemoryController):
    name = "sbwas"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.sorter = RowSorter(self.org.banks_per_channel)
        self._remaining: dict[tuple[int, int], int] = {}
        self._writes_in_sorter = 0
        k = round(4 * self.mc.sbwas_alpha)
        self.short_warp_threshold = max(0, min(4, k))

    # -- arrivals -----------------------------------------------------------
    def _accept_read(self, req: MemoryRequest) -> None:
        self.sorter.add(req)
        key = req.warp
        self._remaining[key] = self._remaining.get(key, 0) + 1

    def receive_write(self, req: MemoryRequest) -> None:
        # Writes bypass the drain machinery and join the sorter directly.
        req.t_mc_arrival = self.engine.now
        self.sorter.add(req)
        self._writes_in_sorter += 1
        self._kick()

    def _sorter_empty(self) -> bool:
        return self.sorter.empty()

    def _read_side_idle(self) -> bool:
        # No write-queue batching: the drain FSM must never trigger.
        return False

    def _update_drain_state(self) -> None:
        self.draining = False

    def _on_column_issued(self, entry: QueuedRequest, now: int) -> None:
        if entry.req.is_write:
            self._writes_in_sorter -= 1

    def pending_work(self) -> int:
        return super().pending_work() + self._writes_in_sorter

    # -- per-bank potential-function choice ------------------------------------
    def _schedule_reads(self, now: int) -> None:
        for bank in range(self.org.banks_per_channel):
            while self.cq.space(bank) > 0:
                req = self._next_for_bank(bank)
                if req is None:
                    break
                self.sorter.remove(req)
                if not req.is_write:
                    key = req.warp
                    left = self._remaining.get(key, 0) - 1
                    if left <= 0:
                        self._remaining.pop(key, None)
                    else:
                        self._remaining[key] = left
                self.cq.insert(req, now)

    def _next_for_bank(self, bank: int) -> Optional[MemoryRequest]:
        rows = self.sorter.rows_for(bank)
        if not rows:
            return None

        # Candidate (a): head of the *read* stream hitting the scheduled-open
        # row.  Writes are interleaved in plain arrival order (the paper
        # notes this difference from the drain-batching baseline erodes
        # SBWAS on write-heavy workloads: every write in the read stream
        # costs a bus turnaround).
        open_row = self.cq.last_sched_row[bank]
        hit: Optional[MemoryRequest] = None
        if open_row is not None and open_row in rows:
            for cand in rows[open_row]:
                if not cand.is_write:
                    hit = cand
                    break

        # Candidate (b): oldest read of the warp with fewest remaining
        # requests at this controller.
        short: Optional[MemoryRequest] = None
        short_left = None
        for stream in rows.values():
            for r in stream:
                if r.is_write:
                    continue
                left = self._remaining.get(r.warp, 1)
                cand = (left, r.t_mc_arrival, r.req_id)
                if short_left is None or cand < short_left:
                    short, short_left = r, cand

        if (
            short is not None
            and short_left is not None
            and short_left[0] <= self.short_warp_threshold
            and short is not hit
        ):
            return short
        if hit is not None:
            return hit
        oldest = self.sorter.oldest_in_bank(bank)
        return oldest
