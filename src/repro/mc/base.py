"""Memory-controller shell shared by every scheduling policy (Fig. 1).

Pipeline implemented here:

  arrivals -> read/write queues -> [policy: transaction scheduler] ->
  per-bank command queues -> command scheduler -> GDDR5 channel

Responsibilities of this base class:

* bounded read/write queues with overflow backpressure buffers;
* write-to-read forwarding (a read hitting a buffered write is answered
  from the write queue);
* the write-drain FSM with high/low watermarks, including opportunistic
  drains while the read side is idle (§II-C);
* the bank-group-aware round-robin command scheduler that issues
  PRE/ACT/RD/WR respecting all device timing, in queue order per bank;
* event pumping: the controller never polls — it computes the next time
  any command could issue and sleeps until then or until an arrival.

Subclasses implement the *transaction scheduler*: how read requests move
from their sorter into the command queues (`_schedule_reads`), plus
optional reactions to warp-group completion tags and coordination
messages.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.core.config import SimConfig
from repro.core.engine import Engine
from repro.core.request import MemoryRequest
from repro.core.stats import ChannelStats
from repro.dram.channel import Channel
from repro.dram.commands import CommandKind
from repro.mc.command_queue import SCORE_HIT, CommandQueues, QueuedRequest
from repro.telemetry.hub import NULL_PROBE, TelemetryHub

__all__ = ["MemoryController"]

# Enum members resolved once: the command scheduler's inner loop touches
# these per candidate bank, and Enum attribute access is a descriptor call.
_ACT = CommandKind.ACT
_PRE = CommandKind.PRE
_RD = CommandKind.RD
_WR = CommandKind.WR


class MemoryController:
    """Base class for all memory controllers."""

    # Registry name; subclasses override.
    name = "base"

    def __init__(
        self,
        engine: Engine,
        channel_id: int,
        config: SimConfig,
        stats: ChannelStats,
        deliver_read: Callable[[MemoryRequest], None],
        hub: Optional[TelemetryHub] = None,
    ) -> None:
        self.engine = engine
        self.channel_id = channel_id
        self.config = config
        self.mc = config.mc
        self.t = config.dram_timing
        self.org = config.dram_org
        self.stats = stats
        self.deliver_read = deliver_read
        self.channel = Channel(self.org, self.t)
        self.cq = CommandQueues(self.org, self.mc.command_queue_depth)

        # Telemetry probes (see docs/observability.md).  Falsy unless a
        # consumer subscribed, so each emit site is one truthiness check.
        if hub is not None:
            self._p_read_done = hub.probe("mc.read_done")
            self._p_drain = hub.probe("mc.drain")
            self.channel.attach_probes(
                channel_id, hub.probe("dram.cmd"), hub.probe("bank.streak")
            )
        else:
            self._p_read_done = NULL_PROBE
            self._p_drain = NULL_PROBE

        # Write queue and an index by line address for read forwarding.
        # The index covers the overflow buffer too: a read must see every
        # buffered write, wherever backpressure parked it.
        self.write_queue: list[MemoryRequest] = []
        self._wq_index: dict[int, MemoryRequest] = {}
        self._write_overflow: deque[MemoryRequest] = deque()

        # Read-side overflow (backpressure beyond the 64-entry read queue).
        self._read_overflow: deque[MemoryRequest] = deque()
        self._reads_pending = 0  # requests admitted to the sorter

        # Write drain FSM.
        self.draining = False
        self._drain_reason = ""

        # Command-scheduler round-robin pointers.
        self._group_ptr = 0
        self._bank_ptr = [0] * self.org.num_bank_groups
        # Visit orders are pure functions of the pointers, which cycle
        # through at most num_bank_groups * banks_per_group**num_bank_groups
        # states — memoize them instead of rebuilding the list every scan.
        self._order_cache: dict[tuple, list[int]] = {}

        # Next-legal-issue cache: the result of one full bank scan —
        # ``(cq_version, channel_version, entries, wake)`` where entries is
        # the scan-ordered list of ``(bank, head, kind, earliest)`` and
        # wake the controller-wide minimum earliest.  Valid until either
        # version moves (command issued, queue mutated, refresh adjusted
        # timing): earliest-issue answers are time-shift exact under
        # unchanged state (``earliest(t1) = max(t1, earliest(t0))``), so a
        # pump wake with a fresh cache issues from an O(1) lookup instead
        # of re-scanning all banks and re-deriving their timing.
        self._scan_cache: Optional[tuple] = None

        # Pump arming.
        self._armed: Optional[int] = None

        self.age_threshold_ps = int(self.mc.age_threshold_ns * 1000)

        # Refresh bookkeeping (only used when timing.refresh_enabled).
        self._next_refresh = self.t.trefi_ps

    # ------------------------------------------------------------------
    # policy hooks
    # ------------------------------------------------------------------
    def _accept_read(self, req: MemoryRequest) -> None:
        """Admit a read into the policy's sorter structure."""
        raise NotImplementedError

    def _schedule_reads(self, now: int) -> None:
        """Move read requests from the sorter into the command queues."""
        raise NotImplementedError

    def _sorter_empty(self) -> bool:
        """True when the policy holds no pending (unscheduled) reads."""
        raise NotImplementedError

    def _mark_group_complete(self, key: tuple[int, int], expected: int) -> None:
        """Warp-group ``key`` will comprise ``expected`` requests here.

        Models the paper's tag on the group's last request: once the
        controller has admitted ``expected`` requests of the group, no
        more will come and the group is schedulable.
        """
        # Baseline policies ignore warp-group boundaries.

    def receive_coordination(self, key: tuple[int, int], remote_score: int) -> None:
        """A peer controller selected warp-group ``key`` (WG-M, §IV-C)."""
        # Non-coordinating policies ignore messages.

    # ------------------------------------------------------------------
    # external interface (called by the memory partition / L2 miss path)
    # ------------------------------------------------------------------
    def receive_read(self, req: MemoryRequest) -> None:
        req.t_mc_arrival = self.engine.now
        # Forward from a buffered write to the same line, if any.
        fw = self._wq_index.get(req.addr)
        if fw is not None:
            req.serviced_by = "wq"
            req.t_data = self.engine.now + self.t.tcas_ps
            self.engine.schedule_at(req.t_data, self.deliver_read, req)
            if req.transaction is not None:
                req.transaction.note_resolved(self.channel_id, to_dram=False)
            return
        req.serviced_by = "dram"
        self.stats.queue_depth.add(self._reads_pending)
        if self._reads_pending >= self.mc.read_queue_entries or self._read_overflow:
            self.stats.read_queue_full_events += 1
            self._read_overflow.append(req)
        else:
            self._reads_pending += 1
            self._accept_read(req)
        # Resolve transaction bookkeeping only after the request is admitted:
        # note_resolved may synchronously fire the group-size announcement,
        # which must never precede the request's own admission.
        if req.transaction is not None:
            req.transaction.note_dram_bound(req)
            req.transaction.note_resolved(self.channel_id, to_dram=True)
        self._kick()

    def receive_write(self, req: MemoryRequest) -> None:
        req.t_mc_arrival = self.engine.now
        # Index every buffered write — including overflowed ones — so
        # write-to-read forwarding sees it; the newest write to a line wins.
        self._wq_index[req.addr] = req
        if len(self.write_queue) >= self.mc.write_queue_entries or self._write_overflow:
            self._write_overflow.append(req)
        else:
            self._admit_write(req)
        self._kick()

    def receive_group_complete(self, key: tuple[int, int], expected: int) -> None:
        self._mark_group_complete(key, expected)
        self._kick()

    def _admit_write(self, req: MemoryRequest) -> None:
        # The forwarding index is maintained at receive time (it must not
        # be reset here: an older overflow entry admitted later would
        # shadow a newer write to the same line).
        self.write_queue.append(req)

    # ------------------------------------------------------------------
    # pump
    # ------------------------------------------------------------------
    def _kick(self, at: Optional[int] = None) -> None:
        now = self.engine.now
        t = now if at is None or at <= now else at
        if self._armed is not None and self._armed <= t:
            return
        self._armed = t
        if t == now:
            self.engine.schedule_now(self._pump)
        else:
            self.engine.schedule_at(t, self._pump)

    def _pump(self) -> None:
        now = self.engine.now
        if self._armed != now:
            # A stale wake-up: a later kick superseded this event (or it
            # was already claimed by a same-time twin).  Running it would
            # duplicate the re-arm chain, so bail out.
            return
        self._armed = None
        self._drain_overflow()
        self._update_drain_state()
        if self.draining:
            self._schedule_writes(now)
        else:
            self._schedule_reads(now)
        next_t = self._issue_one_command(now)
        if next_t is not None:
            self._kick(next_t)

    def _drain_overflow(self) -> None:
        while self._read_overflow and self._reads_pending < self.mc.read_queue_entries:
            req = self._read_overflow.popleft()
            self._reads_pending += 1
            self._accept_read(req)
        while self._write_overflow and len(self.write_queue) < self.mc.write_queue_entries:
            self._admit_write(self._write_overflow.popleft())

    # ------------------------------------------------------------------
    # write drain FSM
    # ------------------------------------------------------------------
    def _read_side_idle(self) -> bool:
        return (
            self._sorter_empty()
            and not self._read_overflow
            and self.cq.pending_reads() == 0
        )

    def _update_drain_state(self) -> None:
        wq = len(self.write_queue)
        was_draining = self.draining
        if not self.draining:
            if wq >= self.mc.write_high_watermark:
                self.draining = True
                self._drain_reason = "watermark"
                self.stats.write_drains += 1
            elif wq > 0 and self._read_side_idle():
                self.draining = True
                self._drain_reason = "idle"
        else:
            if wq <= self.mc.write_low_watermark and self._drain_reason == "watermark":
                self.draining = False
            elif self._drain_reason == "idle" and (wq == 0 or not self._read_side_idle()):
                # Opportunistic drains yield to newly arrived reads.
                self.draining = False
        if self._p_drain and self.draining != was_draining:
            self._p_drain.emit(self.channel_id, self.draining, self._drain_reason)

    def _schedule_writes(self, now: int) -> None:
        """FR-FCFS write drain: prefer row hits, then oldest, per bank."""
        cq = self.cq
        queues = cq.queues
        depth = cq.depth
        predicted_hit = cq.predicted_hit
        while self.draining and self.write_queue:
            # Pick the best write across banks with queue space.
            best = None
            best_key = None
            for w in self.write_queue:
                if len(queues[w.bank]) >= depth:
                    continue
                key = (0 if predicted_hit(w.bank, w.row) else 1, w.t_mc_arrival, w.req_id)
                if best_key is None or key < best_key:
                    best, best_key = w, key
            if best is None:
                return
            self.write_queue.remove(best)
            if self._wq_index.get(best.addr) is best:
                del self._wq_index[best.addr]
            cq.insert(best, now)
            self.stats.drain_writes += 1
            self._update_drain_state()

    # ------------------------------------------------------------------
    # command scheduler (bank-group aware round robin)
    # ------------------------------------------------------------------
    def _bank_order(self) -> list[int]:
        """Visit banks interleaving bank groups first (GDDR5 command policy)."""
        key = (self._group_ptr, tuple(self._bank_ptr))
        order = self._order_cache.get(key)
        if order is None:
            ng = self.org.num_bank_groups
            bpg = self.org.banks_per_group
            order = []
            for step in range(bpg):
                for gi in range(ng):
                    g = (self._group_ptr + gi) % ng
                    b = g * bpg + (self._bank_ptr[g] + step) % bpg
                    order.append(b)
            self._order_cache[key] = order
        return order

    def _issue_after(self, bank: int, head: QueuedRequest, kind, now: int) -> Optional[int]:
        """Issue ``kind`` on ``bank`` and return the follow-up wake time."""
        self._do_issue(bank, head, kind, now)
        # Advance the round-robin pointers past this bank.
        g = bank // self.org.banks_per_group
        self._group_ptr = (g + 1) % self.org.num_bank_groups
        self._bank_ptr[g] = (bank % self.org.banks_per_group + 1) % self.org.banks_per_group
        if not self.cq.empty() or not self._sorter_empty() or self.write_queue:
            return now + self.t.tck_ps
        return None

    def _issue_one_command(self, now: int) -> Optional[int]:
        """Issue at most one DRAM command at ``now``.

        Returns the next instant worth waking at, or None when idle.
        """
        if self.t.refresh_enabled:
            wake = self._refresh_gate(now)
            if wake is not None:
                return wake
        if self.channel.next_cmd_free > now:
            if self.cq.empty():
                return None
            return self.channel.next_cmd_free
        cache = self._scan_cache
        if cache is not None:
            cq_v, ch_v, entries, wake = cache
            if cq_v == self.cq.version and ch_v == self.channel.version:
                # Nothing changed since the scan: the cached earliest-issue
                # times are still exact (time-shifted to ``now``), so the
                # first now-ready entry is precisely what a re-scan would
                # pick.  The common case is waking exactly at ``wake``.
                if wake > now:
                    return wake
                for bank, head, kind, earliest in entries:
                    if earliest <= now:
                        return self._issue_after(bank, head, kind, now)
                return wake  # unreachable: wake <= now implies a ready entry
            self._scan_cache = None
        # Fresh scan.  The channel-global terms of each earliest-issue
        # query are hoisted once (scan_terms); the loop folds in only the
        # candidate bank's own state, combining to the exact value the
        # earliest_act/earliest_pre/earliest_col calls it replaces would
        # return (see Channel.scan_terms).
        channel = self.channel
        banks = channel.banks
        queues = self.cq.queues
        base, act_t, col_rd, col_wr, ccd_same_t, ccd_diff_t, col_group = (
            channel.scan_terms(now)
        )
        best_earliest: Optional[int] = None
        entries = []
        for bank in self._bank_order():
            q = queues[bank]
            if not q:
                continue
            head = q[0]
            b = banks[bank]
            req = head.req
            open_row = b.open_row
            if open_row == req.row:
                if req.is_write:
                    kind = _WR
                    earliest = col_wr
                else:
                    kind = _RD
                    earliest = col_rd
                ccd_t = ccd_same_t if b.group == col_group else ccd_diff_t
                if ccd_t > earliest:
                    earliest = ccd_t
                if b.earliest_col > earliest:
                    earliest = b.earliest_col
            elif open_row is None:
                kind = _ACT
                earliest = act_t if act_t > b.earliest_act else b.earliest_act
            else:
                kind = _PRE
                earliest = base if base > b.earliest_pre else b.earliest_pre
            if earliest <= now:
                return self._issue_after(bank, head, kind, now)
            entries.append((bank, head, kind, earliest))
            if best_earliest is None or earliest < best_earliest:
                best_earliest = earliest
        if best_earliest is not None:
            self._scan_cache = (
                self.cq.version, self.channel.version, entries, best_earliest
            )
        return best_earliest

    def _do_issue(self, bank: int, head: QueuedRequest, kind: CommandKind, now: int) -> None:
        req = head.req
        if kind == CommandKind.ACT:
            self.channel.issue_act(bank, req.row, now)
            self.stats.activates += 1
            head.needed_act = True
        elif kind == CommandKind.PRE:
            self.channel.issue_pre(bank, now)
            self.stats.precharges += 1
        else:
            data_end = self.channel.issue_col(bank, req.is_write, now)
            self.cq.pop(bank)
            self._on_column_issued(head, now)
            req.t_data = data_end
            req.was_row_hit = not head.needed_act
            if req.was_row_hit:
                self.stats.row_hits += 1
            else:
                self.stats.row_misses += 1
            self.stats.note_bank_column(bank)
            if req.is_write:
                self.stats.writes += 1
            else:
                self.stats.reads += 1
                self._reads_pending -= 1
                latency_ns = (data_end - req.t_mc_arrival) / 1000.0
                self.stats.read_latency.add(latency_ns)
                self.stats.sorter_wait.add((req.t_scheduled - req.t_mc_arrival) / 1000.0)
                self.stats.service_time.add((data_end - req.t_scheduled) / 1000.0)
                if self._p_read_done:
                    self._p_read_done.emit(self.channel_id, latency_ns, req.was_row_hit)
                self.engine.schedule_at(data_end, self.deliver_read, req)

    def _on_column_issued(self, entry: QueuedRequest, now: int) -> None:
        """Hook for policies that track per-request completion (WG family)."""

    # ------------------------------------------------------------------
    # refresh (optional fidelity knob; see DRAMTimingConfig)
    # ------------------------------------------------------------------
    def _refresh_gate(self, now: int) -> Optional[int]:
        """All-bank refresh every tREFI.

        Returns a wake-up instant while a refresh is being set up or in
        progress; None when normal command issue may proceed.  Intervals
        that elapse while the controller is completely idle are skipped —
        an idle-bank refresh costs nothing that the model measures.
        """
        if now < self._next_refresh:
            return None
        if self.cq.empty() and self._sorter_empty() and not self.write_queue:
            while self._next_refresh <= now:
                self._next_refresh += self.t.trefi_ps
            return None
        # Close any open banks first (respecting their precharge timing).
        open_banks = [b.index for b in self.channel.banks if b.open_row is not None]
        if open_banks:
            if self.channel.next_cmd_free > now:
                return self.channel.next_cmd_free
            earliest = None
            for bank in open_banks:
                t_pre = self.channel.earliest_pre(bank, now)
                if t_pre <= now:
                    self.channel.issue_pre(bank, now)
                    self.stats.precharges += 1
                    return now + self.t.tck_ps
                if earliest is None or t_pre < earliest:
                    earliest = t_pre
            return earliest
        # All banks idle: run the refresh cycle.
        end = now + self.t.trfc_ps
        for bank in self.channel.banks:
            bank.earliest_act = max(bank.earliest_act, end)
        self.channel.next_cmd_free = max(self.channel.next_cmd_free, end)
        self.channel.version += 1  # timing state mutated outside an issue
        self.stats.refreshes += 1
        self._next_refresh += self.t.trefi_ps
        return end

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def pending_work(self) -> int:
        """Requests anywhere in the controller (for end-of-run detection)."""
        return (
            self._reads_pending
            + len(self._read_overflow)
            + len(self.write_queue)
            + len(self._write_overflow)
            + self.cq.total_occupancy()
        )

    def sync_stats(self) -> None:
        """Fold channel-level counters into the stats object."""
        self.stats.data_bus_busy_ps = self.channel.data_bus_busy_ps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(ch{self.channel_id}, reads={self._reads_pending}, "
            f"writes={len(self.write_queue)}, cq={self.cq.total_occupancy()})"
        )
