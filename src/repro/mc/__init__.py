"""Memory controllers: the baseline GMC and the paper's warp-aware policies."""

from repro.mc.base import MemoryController
from repro.mc.command_queue import SCORE_HIT, SCORE_MISS, CommandQueues, QueuedRequest
from repro.mc.coordination import CoordinationNetwork
from repro.mc.fcfs import FCFSController
from repro.mc.frfcfs import FRFCFSController
from repro.mc.gmc import GMCController
from repro.mc.merb import merb_table, merb_value, single_bank_utilization
from repro.mc.registry import (
    PAPER_SCHEDULERS,
    SCHEDULERS,
    controller_class,
    coordinated_schedulers,
)
from repro.mc.row_sorter import RowSorter
from repro.mc.sbwas import SBWASController
from repro.mc.wafcfs import WAFCFSController
from repro.mc.warp_sorter import WarpGroupEntry, WarpSorter
from repro.mc.wg import WGController
from repro.mc.wgbw import WGBwController
from repro.mc.wgm import WGMController
from repro.mc.wgw import WGWController

__all__ = [
    "CommandQueues",
    "CoordinationNetwork",
    "FCFSController",
    "FRFCFSController",
    "GMCController",
    "MemoryController",
    "PAPER_SCHEDULERS",
    "QueuedRequest",
    "RowSorter",
    "SBWASController",
    "SCHEDULERS",
    "SCORE_HIT",
    "SCORE_MISS",
    "WAFCFSController",
    "WGBwController",
    "WGController",
    "WGMController",
    "WGWController",
    "WarpGroupEntry",
    "WarpSorter",
    "controller_class",
    "coordinated_schedulers",
    "merb_table",
    "merb_value",
    "single_bank_utilization",
]
