"""Naive First-Come First-Served controller (§III-A).

Reads are moved into the per-bank command queues in strict global arrival
order.  The command scheduler still interleaves banks, but no row-locality
reordering ever happens — the paper uses this to show why FCFS wastes
bandwidth and fails to keep warp-groups together anyway (per-bank queue
occupancies diverge).
"""

from __future__ import annotations

from collections import deque

from repro.core.request import MemoryRequest
from repro.mc.base import MemoryController

__all__ = ["FCFSController"]


class FCFSController(MemoryController):
    name = "fcfs"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._fifo: deque[MemoryRequest] = deque()

    def _accept_read(self, req: MemoryRequest) -> None:
        self._fifo.append(req)

    def _sorter_empty(self) -> bool:
        return not self._fifo

    def _schedule_reads(self, now: int) -> None:
        while self._fifo and self.cq.space(self._fifo[0].bank) > 0:
            self.cq.insert(self._fifo.popleft(), now)
