"""Warp sorter and bank table (Fig. 6, §IV-B).

The warp sorter replaces the baseline's row sorter: pending reads are
grouped by ``(SM-id, warp-id)`` into *warp-groups*.  A group becomes
eligible for scheduling only once the controller has admitted every
request of the group: the last-request tag of the paper is realized as an
expected-count announcement (see ``LoadTransaction``), so a group is
*complete* when ``received == expected`` — robust against read-queue
backpressure delaying individual requests.

The bank-table scoring of §IV-B is implemented by :meth:`WarpSorter.score`:

* each request scores 1 if it is predicted to hit the row its bank's
  command queue will leave open, 3 if it needs a row cycle
  (tRP+tRCD+tCAS ≈ 3 × tCAS);
* per bank, the group's requests' scores are added to the *queuing score*
  — the summed scores of everything already sitting in that bank's
  command queue;
* the group's score is the maximum over its banks, i.e. the estimated
  drain time of its slowest bank;
* WG-M coordination messages subtract a one-time discount (§IV-C).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.request import MemoryRequest
from repro.mc.command_queue import SCORE_HIT, SCORE_MISS, CommandQueues

__all__ = ["WarpGroupEntry", "WarpSorter"]


class WarpGroupEntry:
    """Pending requests of one warp at one controller."""

    __slots__ = (
        "key",
        "by_bank",
        "n_requests",
        "received",
        "expected",
        "arrival_ps",
        "completed_ps",
        "score_discount",
        "remote_score",
    )

    def __init__(self, key: tuple[int, int], arrival_ps: int) -> None:
        self.key = key
        self.by_bank: dict[int, list[MemoryRequest]] = {}
        self.n_requests = 0  # pending (not yet scheduled) requests
        self.received = 0  # total requests admitted so far
        self.expected: Optional[int] = None  # announced group size
        self.arrival_ps = arrival_ps
        self.completed_ps = -1  # instant the group became schedulable
        self.score_discount = 0  # accumulated WG-M priority boost
        self.remote_score: Optional[int] = None  # best peer completion score

    @property
    def complete(self) -> bool:
        return self.expected is not None and self.received >= self.expected

    def add(self, req: MemoryRequest) -> None:
        self.by_bank.setdefault(req.bank, []).append(req)
        self.n_requests += 1
        self.received += 1

    def remove(self, req: MemoryRequest) -> None:
        reqs = self.by_bank[req.bank]
        reqs.remove(req)
        if not reqs:
            del self.by_bank[req.bank]
        self.n_requests -= 1

    def requests(self) -> Iterable[MemoryRequest]:
        for reqs in self.by_bank.values():
            yield from reqs

    @property
    def empty(self) -> bool:
        return self.n_requests == 0


class WarpSorter:
    """All warp-group entries of one controller, with scoring."""

    def __init__(self) -> None:
        self.groups: dict[tuple[int, int], WarpGroupEntry] = {}
        # Expected counts that arrived before any of the group's requests.
        self._early_expected: dict[tuple[int, int], int] = {}
        # (bank, row) -> pending requests in arrival order; lets WG-Bw find
        # row-hit filler requests across groups in O(1).
        self.row_index: dict[tuple[int, int], list[MemoryRequest]] = {}
        self._count = 0

    # -- membership ------------------------------------------------------------
    def add(self, req: MemoryRequest, now_ps: int) -> WarpGroupEntry:
        key = req.warp
        entry = self.groups.get(key)
        if entry is None:
            entry = WarpGroupEntry(key, now_ps)
            self.groups[key] = entry
            early = self._early_expected.pop(key, None)
            if early is not None:
                entry.expected = early
        entry.add(req)
        if req.transaction is None:
            # Raw request streams (tests/microbenches) have no SM-side load
            # transaction: the group is always schedulable as-is.
            entry.expected = entry.received
        if entry.complete and entry.completed_ps < 0:
            entry.completed_ps = now_ps
        self.row_index.setdefault((req.bank, req.row), []).append(req)
        self._count += 1
        return entry

    def mark_complete(self, key: tuple[int, int], expected: int, now_ps: int) -> None:
        """The group's size announcement (the paper's last-request tag)."""
        entry = self.groups.get(key)
        if entry is None:
            self._early_expected[key] = expected
            return
        entry.expected = expected
        if entry.complete and entry.completed_ps < 0:
            entry.completed_ps = now_ps
        if entry.empty and entry.complete:
            # All requests were already pulled (e.g. as MERB fillers).
            del self.groups[key]

    def remove_request(self, req: MemoryRequest) -> None:
        entry = self.groups.get(req.warp)
        if entry is None:
            raise KeyError(f"no group for {req}")
        entry.remove(req)
        pending = self.row_index[(req.bank, req.row)]
        pending.remove(req)
        if not pending:
            del self.row_index[(req.bank, req.row)]
        self._count -= 1
        if entry.empty and entry.complete:
            del self.groups[req.warp]

    def complete_groups(self) -> Iterable[WarpGroupEntry]:
        return (e for e in self.groups.values() if e.complete and not e.empty)

    def get(self, key: tuple[int, int]) -> Optional[WarpGroupEntry]:
        return self.groups.get(key)

    def pending_hits(self, bank: int, row: int) -> list[MemoryRequest]:
        """Pending requests to (bank, row) in arrival order (may be empty)."""
        return self.row_index.get((bank, row), [])

    def empty(self) -> bool:
        return self._count == 0

    def __len__(self) -> int:
        return self._count

    # -- scoring (§IV-B) ----------------------------------------------------------
    @staticmethod
    def score(entry: WarpGroupEntry, cq: CommandQueues) -> tuple[int, int]:
        """(group score, row hits) of a warp-group against the bank table.

        The per-bank walk threads the predicted open row through the
        group's own requests, so four same-row requests behind a foreign
        row cost 3+1+1+1, not 3+3+3+3.
        """
        worst = 0
        hits = 0
        for bank, reqs in entry.by_bank.items():
            predicted = cq.last_sched_row[bank]
            bank_score = cq.queue_score[bank]
            for req in reqs:
                if req.row == predicted:
                    bank_score += SCORE_HIT
                    hits += 1
                else:
                    bank_score += SCORE_MISS
                predicted = req.row
            if bank_score > worst:
                worst = bank_score
        score = max(0, worst - entry.score_discount)
        if entry.remote_score is not None and entry.remote_score < score:
            # §IV-C: a peer already started servicing this warp; the local
            # score is lowered by (LC - RC), i.e. clamped to the remote
            # completion score, so the laggard group jumps the queue.
            score = max(0, entry.remote_score)
        return score, hits
