"""Warp sorter and bank table (Fig. 6, §IV-B).

The warp sorter replaces the baseline's row sorter: pending reads are
grouped by ``(SM-id, warp-id)`` into *warp-groups*.  A group becomes
eligible for scheduling only once the controller has admitted every
request of the group: the last-request tag of the paper is realized as an
expected-count announcement (see ``LoadTransaction``), so a group is
*complete* when ``received == expected`` — robust against read-queue
backpressure delaying individual requests.

The bank-table scoring of §IV-B is implemented by :meth:`WarpSorter.score`:

* each request scores 1 if it is predicted to hit the row its bank's
  command queue will leave open, 3 if it needs a row cycle
  (tRP+tRCD+tCAS ≈ 3 × tCAS);
* per bank, the group's requests' scores are added to the *queuing score*
  — the summed scores of everything already sitting in that bank's
  command queue;
* the group's score is the maximum over its banks, i.e. the estimated
  drain time of its slowest bank;
* WG-M coordination messages subtract a one-time discount (§IV-C).

Scoring is *incrementally maintained* (docs/performance.md): each entry
keeps, per bank, the row of its first pending request plus the summed
chain contributions of the later requests against their in-group
predecessor.  Those internal terms only change when a request joins or
leaves the group, so evaluating a group's score is O(banks touched) —
one comparison of the first row against the bank's ``last_sched_row``
plus the bank's live ``queue_score`` — instead of a walk over every
request.  The original walk survives as :meth:`WarpSorter.score_naive`
(selected globally by ``REPRO_NAIVE_SCORER=1``) and is the reference
half of the fuzzer's scorer-differential oracle.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional

from repro.core.request import MemoryRequest
from repro.mc.command_queue import SCORE_HIT, SCORE_MISS, CommandQueues

__all__ = ["WarpGroupEntry", "WarpSorter"]


class WarpGroupEntry:
    """Pending requests of one warp at one controller."""

    __slots__ = (
        "key",
        "by_bank",
        "bank_stats",
        "n_requests",
        "received",
        "expected",
        "arrival_ps",
        "completed_ps",
        "score_discount",
        "remote_score",
    )

    def __init__(self, key: tuple[int, int], arrival_ps: int) -> None:
        self.key = key
        self.by_bank: dict[int, list[MemoryRequest]] = {}
        # bank -> [first_row, chain_sum, chain_hits]: the incremental
        # scoring state.  ``first_row`` is the row of ``by_bank[b][0]``;
        # ``chain_sum``/``chain_hits`` are the summed §IV-B contributions
        # (and hit count) of requests [1:] against their predecessor in
        # the list.  The head's own contribution depends on the bank's
        # live ``last_sched_row`` and is computed at evaluation time.
        self.bank_stats: dict[int, list[int]] = {}
        self.n_requests = 0  # pending (not yet scheduled) requests
        self.received = 0  # total requests admitted so far
        self.expected: Optional[int] = None  # announced group size
        self.arrival_ps = arrival_ps
        self.completed_ps = -1  # instant the group became schedulable
        self.score_discount = 0  # accumulated WG-M priority boost
        self.remote_score: Optional[int] = None  # best peer completion score

    @property
    def complete(self) -> bool:
        return self.expected is not None and self.received >= self.expected

    def add(self, req: MemoryRequest) -> None:
        bank = req.bank
        reqs = self.by_bank.get(bank)
        if reqs is None:
            self.by_bank[bank] = [req]
            self.bank_stats[bank] = [req.row, 0, 0]
        else:
            stats = self.bank_stats[bank]
            if req.row == reqs[-1].row:
                stats[1] += SCORE_HIT
                stats[2] += 1
            else:
                stats[1] += SCORE_MISS
            reqs.append(req)
        self.n_requests += 1
        self.received += 1

    def remove(self, req: MemoryRequest) -> None:
        bank = req.bank
        reqs = self.by_bank[bank]
        i = reqs.index(req)
        if len(reqs) == 1:
            del self.by_bank[bank]
            del self.bank_stats[bank]
        else:
            stats = self.bank_stats[bank]
            row = reqs[i].row
            if i + 1 < len(reqs):
                # Unlink the successor's contribution against ``req``...
                if reqs[i + 1].row == row:
                    stats[1] -= SCORE_HIT
                    stats[2] -= 1
                else:
                    stats[1] -= SCORE_MISS
            if i == 0:
                # ...the successor becomes the head (its contribution is
                # now the live first-row term, not a chain term).
                stats[0] = reqs[1].row
            else:
                prev_row = reqs[i - 1].row
                if row == prev_row:
                    stats[1] -= SCORE_HIT
                    stats[2] -= 1
                else:
                    stats[1] -= SCORE_MISS
                if i + 1 < len(reqs):
                    # ...and re-link it to its new predecessor.
                    if reqs[i + 1].row == prev_row:
                        stats[1] += SCORE_HIT
                        stats[2] += 1
                    else:
                        stats[1] += SCORE_MISS
            del reqs[i]
        self.n_requests -= 1

    def requests(self) -> Iterable[MemoryRequest]:
        for reqs in self.by_bank.values():
            yield from reqs

    @property
    def empty(self) -> bool:
        return self.n_requests == 0


class WarpSorter:
    """All warp-group entries of one controller, with scoring."""

    def __init__(self) -> None:
        self.groups: dict[tuple[int, int], WarpGroupEntry] = {}
        # Expected counts that arrived before any of the group's requests.
        self._early_expected: dict[tuple[int, int], int] = {}
        # (bank, row) -> pending requests in arrival order; lets WG-Bw find
        # row-hit filler requests across groups in O(1).
        self.row_index: dict[tuple[int, int], list[MemoryRequest]] = {}
        self._count = 0
        #: Number of complete, non-empty groups (what complete_groups()
        #: yields); lets the transaction scheduler skip ranking entirely
        #: on the frequent nothing-schedulable pumps.
        self.n_complete = 0
        #: Bumped on any membership change (add / remove_request /
        #: mark_complete); with ``CommandQueues.version`` it keys the
        #: transaction scheduler's nothing-to-do caches.
        self.version = 0

    # -- membership ------------------------------------------------------------
    def add(self, req: MemoryRequest, now_ps: int) -> WarpGroupEntry:
        key = req.warp
        entry = self.groups.get(key)
        if entry is None:
            entry = WarpGroupEntry(key, now_ps)
            self.groups[key] = entry
            early = self._early_expected.pop(key, None)
            if early is not None:
                entry.expected = early
            was_complete = False
        else:
            was_complete = entry.complete
        entry.add(req)
        if req.transaction is None:
            # Raw request streams (tests/microbenches) have no SM-side load
            # transaction: the group is always schedulable as-is.
            entry.expected = entry.received
        if entry.complete:
            if entry.completed_ps < 0:
                entry.completed_ps = now_ps
            if not was_complete:
                self.n_complete += 1
        self.row_index.setdefault((req.bank, req.row), []).append(req)
        self._count += 1
        self.version += 1
        return entry

    def mark_complete(self, key: tuple[int, int], expected: int, now_ps: int) -> None:
        """The group's size announcement (the paper's last-request tag)."""
        entry = self.groups.get(key)
        if entry is None:
            self._early_expected[key] = expected
            return
        self.version += 1
        was_complete = entry.complete
        entry.expected = expected
        if entry.complete and entry.completed_ps < 0:
            entry.completed_ps = now_ps
        if entry.empty and entry.complete:
            # All requests were already pulled (e.g. as MERB fillers);
            # the group was never schedulable, so n_complete is untouched.
            del self.groups[key]
        elif entry.complete and not was_complete:
            self.n_complete += 1

    def remove_request(self, req: MemoryRequest) -> None:
        entry = self.groups.get(req.warp)
        if entry is None:
            raise KeyError(f"no group for {req}")
        entry.remove(req)
        pending = self.row_index[(req.bank, req.row)]
        pending.remove(req)
        if not pending:
            del self.row_index[(req.bank, req.row)]
        self._count -= 1
        self.version += 1
        if entry.empty and entry.complete:
            del self.groups[req.warp]
            self.n_complete -= 1

    def complete_groups(self) -> Iterable[WarpGroupEntry]:
        return (e for e in self.groups.values() if e.complete and not e.empty)

    def get(self, key: tuple[int, int]) -> Optional[WarpGroupEntry]:
        return self.groups.get(key)

    def pending_hits(self, bank: int, row: int) -> list[MemoryRequest]:
        """Pending requests to (bank, row) in arrival order (may be empty)."""
        return self.row_index.get((bank, row), [])

    def empty(self) -> bool:
        return self._count == 0

    def __len__(self) -> int:
        return self._count

    # -- scoring (§IV-B) ----------------------------------------------------------
    @staticmethod
    def score_incremental(entry: WarpGroupEntry, cq: CommandQueues) -> tuple[int, int]:
        """(group score, row hits) from the maintained per-bank stats.

        O(banks touched): only the head request's hit/miss depends on
        live queue state (``last_sched_row``); every later request's
        contribution was folded into ``chain_sum`` when it joined.
        """
        worst = 0
        hits = 0
        last_rows = cq.last_sched_row
        queue_score = cq.queue_score
        for bank, (first_row, chain_sum, chain_hits) in entry.bank_stats.items():
            if first_row == last_rows[bank]:
                bank_score = queue_score[bank] + SCORE_HIT + chain_sum
                hits += chain_hits + 1
            else:
                bank_score = queue_score[bank] + SCORE_MISS + chain_sum
                hits += chain_hits
            if bank_score > worst:
                worst = bank_score
        score = max(0, worst - entry.score_discount)
        if entry.remote_score is not None and entry.remote_score < score:
            # §IV-C: a peer already started servicing this warp; the local
            # score is lowered by (LC - RC), i.e. clamped to the remote
            # completion score, so the laggard group jumps the queue.
            score = max(0, entry.remote_score)
        return score, hits

    @staticmethod
    def score_naive(entry: WarpGroupEntry, cq: CommandQueues) -> tuple[int, int]:
        """Reference implementation: re-walk every request of the group.

        The per-bank walk threads the predicted open row through the
        group's own requests, so four same-row requests behind a foreign
        row cost 3+1+1+1, not 3+3+3+3.  Semantically identical to
        :meth:`score_incremental` (the fuzzer's scorer-differential
        oracle holds them to that); selected as ``WarpSorter.score`` by
        setting ``REPRO_NAIVE_SCORER=1`` in the environment.
        """
        worst = 0
        hits = 0
        for bank, reqs in entry.by_bank.items():
            predicted = cq.last_sched_row[bank]
            bank_score = cq.queue_score[bank]
            for req in reqs:
                if req.row == predicted:
                    bank_score += SCORE_HIT
                    hits += 1
                else:
                    bank_score += SCORE_MISS
                predicted = req.row
            if bank_score > worst:
                worst = bank_score
        score = max(0, worst - entry.score_discount)
        if entry.remote_score is not None and entry.remote_score < score:
            score = max(0, entry.remote_score)
        return score, hits

    #: Active scorer.  The naive walk is an escape hatch for debugging
    #: suspected incremental-state corruption (and the fuzzer's oracle).
    score = staticmethod(
        score_naive.__func__
        if os.environ.get("REPRO_NAIVE_SCORER") == "1"
        else score_incremental.__func__
    )
