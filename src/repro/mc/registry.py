"""Scheduler registry: policy name -> controller class.

Names follow the paper's nomenclature:

==========  ==============================================================
name        policy
==========  ==============================================================
``gmc``     throughput-optimized baseline (§II-C; all results normalized
            to it)
``fcfs``    naive first-come first-served
``frfcfs``  first-ready FCFS (Rixner et al.)
``wafcfs``  warp-groups in completion order, in-order (Yuan et al.)
``sbwas``   single-bank warp-aware potential function (Lakshminarayana)
``wg``      warp-group BASJF, single controller (§IV-B)
``wg-m``    + multi-controller coordination (§IV-C)
``wg-bw``   + MERB bandwidth governor (§IV-D)
``wg-w``    + warp-aware write drain (§IV-E) — the paper's best policy
==========  ==============================================================
"""

from __future__ import annotations

from typing import Type

from repro.mc.base import MemoryController
from repro.mc.fcfs import FCFSController
from repro.mc.frfcfs import FRFCFSController
from repro.mc.gmc import GMCController
from repro.mc.sbwas import SBWASController
from repro.mc.wafcfs import WAFCFSController
from repro.mc.wg import WGController
from repro.mc.wgbw import WGBwController
from repro.mc.wgm import WGMController
from repro.mc.wgshare import WGShareController
from repro.mc.wgw import WGWController

__all__ = [
    "SCHEDULERS",
    "PAPER_SCHEDULERS",
    "controller_class",
    "coordinated_schedulers",
]

SCHEDULERS: dict[str, Type[MemoryController]] = {
    cls.name: cls
    for cls in (
        GMCController,
        FCFSController,
        FRFCFSController,
        WAFCFSController,
        SBWASController,
        WGController,
        WGMController,
        WGBwController,
        WGWController,
        WGShareController,  # the conclusion's future-work extension
    )
}

# The schedulers evaluated in Fig. 8, in presentation order.
PAPER_SCHEDULERS = ("gmc", "wg", "wg-m", "wg-bw", "wg-w")

# Policies that participate in the §IV-C coordination network.
_COORDINATED = {"wg-m", "wg-bw", "wg-w", "wg-share"}


def controller_class(name: str) -> Type[MemoryController]:
    try:
        return SCHEDULERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; choose from {sorted(SCHEDULERS)}"
        ) from None


def coordinated_schedulers() -> frozenset[str]:
    return frozenset(_COORDINATED)
