r"""Minimum Efficient Row Burst (MERB) computation (§IV-D, Table I).

MERB(b) is the number of row-hit data transfers a bank must supply per
activate so that the overheads of a row-miss in that bank are hidden by
data transfers in the other ``b-1`` busy banks:

             /     tRTP + tRP + tRCD      max(tRRD, tFAW/4) \
  MERB(b) = max( ---------------------- , ------------------ )   for b > 1
             \     (b-1) * tBURST             tBURST         /

  MERB(1) = 31  (a 5-bit counter's limit: with a single busy bank nothing
                 can hide the row cycle, so hits are streamed until the
                 counter saturates, giving ~62% utilization on GDDR5)

The table depends only on DRAM timing, so real hardware would compute it
at boot or load it from ROM; we compute it once per timing config.
"""

from __future__ import annotations

import math
from functools import lru_cache

from repro.core.config import DRAMTimingConfig

__all__ = ["merb_value", "merb_table", "single_bank_utilization"]

MERB_COUNTER_MAX = 31  # 5-bit per-bank counter


def merb_value(busy_banks: int, timing: DRAMTimingConfig) -> int:
    """MERB for a given number of banks with pending work (>= 1)."""
    if busy_banks < 1:
        raise ValueError("busy_banks must be >= 1")
    if busy_banks == 1:
        return MERB_COUNTER_MAX
    tburst = timing.tburst_ck * timing.tck_ns
    row_cycle = timing.trtp_ns + timing.trp_ns + timing.trcd_ns
    act_gap = max(timing.trrd_ns, timing.tfaw_ns / 4.0)
    hide_row_cycle = row_cycle / ((busy_banks - 1) * tburst)
    hide_act_gap = act_gap / tburst
    value = math.ceil(round(max(hide_row_cycle, hide_act_gap), 9))
    return max(1, min(MERB_COUNTER_MAX, value))


@lru_cache(maxsize=None)
def merb_table(timing: DRAMTimingConfig, max_banks: int = 16) -> tuple[int, ...]:
    """MERB values indexed by busy-bank count; index 0 is unused (=MERB(1))."""
    values = [merb_value(1, timing)]
    values.extend(merb_value(b, timing) for b in range(1, max_banks + 1))
    return tuple(values)


def single_bank_utilization(hits_per_activate: int, timing: DRAMTimingConfig) -> float:
    """Bus utilization streaming ``n`` hits per activate to one bank (§IV-D).

    utilization = tBURST*n / (tRCD + tBURST*n + (tRTP - tBURST + tCK) + tRP)

    valid when the streak is long enough that tRAS is already satisfied.
    """
    if hits_per_activate < 1:
        raise ValueError("need at least one access per activate")
    n = hits_per_activate
    tburst = timing.tburst_ck * timing.tck_ns
    transfer = tburst * n
    overhead = timing.trcd_ns + (timing.trtp_ns - tburst + timing.tck_ns) + timing.trp_ns
    return transfer / (transfer + overhead)
