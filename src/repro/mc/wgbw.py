"""WG-Bw: bandwidth-optimized warp-group scheduling (§IV-D).

Extends WG-M with the MERB row-miss gate.  When the selected warp-group
wants to schedule a row-miss on a bank whose (scheduled) open row still has
pending row-hit requests from other warps, the transaction scheduler first
schedules enough of those hits to reach the MERB threshold for the current
number of busy banks — so the precharge/activate of the miss is hidden
behind transfers elsewhere — and then applies *orphan control*: if only one
or two hits would remain stranded on the row, they are scheduled too.

The deliberately bounded extra latency this adds to the row-miss
((MERB+2)·2·tCK worst case) buys back the bandwidth WG-M gives up.
"""

from __future__ import annotations

from repro.core.request import MemoryRequest
from repro.mc.merb import merb_table
from repro.mc.wgm import WGMController

__all__ = ["WGBwController"]

ORPHAN_LIMIT = 2


class WGBwController(WGMController):
    name = "wg-bw"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._merb = merb_table(self.t, self.org.banks_per_channel)

    def _insert_request(self, req: MemoryRequest, now: int) -> None:
        bank = req.bank
        open_row = self.cq.last_sched_row[bank]
        if (
            open_row is not None
            and open_row != req.row
            and not req.is_write
        ):
            self._merb_gate(bank, open_row, now)
        super()._insert_request(req, now)

    def _merb_gate(self, bank: int, open_row: int, now: int) -> None:
        """Schedule filler row-hits before allowing the row change.

        Fillers are capped at the bank queue's remaining space (minus one
        slot reserved for the row-miss request the caller is about to
        insert): ``_room_for`` only guaranteed a single free slot, so an
        uncapped gate could push the queue past ``command_queue_depth``.
        """
        room = self.cq.space(bank) - 1
        if room <= 0:
            return
        busy = self.cq.busy_banks()
        if not self.cq.queues[bank]:
            busy += 1  # the target bank is about to have work
        busy = max(1, min(busy, len(self._merb) - 1))
        need = self._merb[busy]

        pending = self.sorter.pending_hits(bank, open_row)
        while pending and room > 0 and self.cq.hits_since_row_change[bank] < need:
            filler = pending[0]
            self.sorter.remove_request(filler)
            self.cq.insert(filler, now)
            self.stats.merb_deferrals += 1
            room -= 1
            pending = self.sorter.pending_hits(bank, open_row)

        # Orphan control: don't strand one or two hits behind the row change.
        pending = self.sorter.pending_hits(bank, open_row)
        if 0 < len(pending) <= ORPHAN_LIMIT:
            for filler in list(pending)[:room]:
                self.sorter.remove_request(filler)
                self.cq.insert(filler, now)
                self.stats.orphan_rescues += 1
