"""WG-W: warp-aware write draining (§IV-E).

Write drains stall the read stream for long stretches; a warp that needed
just one more request before its group completed can be stalled for an
entire drain.  WG-W watches the write-queue occupancy and, once it is
within ``wgw_drain_guard_entries`` (8) of the high watermark, ranks
unit-size warp-groups ahead of everything — regardless of their score —
so they slip in before the bus turns around.
"""

from __future__ import annotations

from repro.mc.warp_sorter import WarpGroupEntry
from repro.mc.wgbw import WGBwController

__all__ = ["WGWController"]


class WGWController(WGBwController):
    name = "wg-w"

    def _near_drain(self) -> bool:
        guard = self.mc.write_high_watermark - self.mc.wgw_drain_guard_entries
        return len(self.write_queue) >= guard

    def _rank_key(self, entry: WarpGroupEntry, score: int, hits: int, now: int):
        base = super()._rank_key(entry, score, hits, now)
        if self._near_drain() and entry.n_requests == 1:
            return (-1, *base[1:])  # ahead of every non-promoted group
        return base

    def _on_group_selected(self, entry: WarpGroupEntry, score: int, now: int) -> None:
        if self._near_drain() and entry.n_requests == 1:
            self.stats.wgw_promotions += 1
        super()._on_group_selected(entry, score, now)
