"""First-Ready FCFS controller (Rixner et al. [42]).

Per bank: schedule the oldest request that hits the row the bank will have
open (first-ready), falling back to the oldest request outright.  This is
the classic bandwidth-oriented policy the GMC baseline refines; it has no
starvation guard beyond FCFS fallback and no streak limit.
"""

from __future__ import annotations

from typing import Optional

from repro.core.request import MemoryRequest
from repro.mc.base import MemoryController
from repro.mc.row_sorter import RowSorter

__all__ = ["FRFCFSController"]


class FRFCFSController(MemoryController):
    name = "frfcfs"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.sorter = RowSorter(self.org.banks_per_channel)

    def _accept_read(self, req: MemoryRequest) -> None:
        self.sorter.add(req)

    def _sorter_empty(self) -> bool:
        return self.sorter.empty()

    def _schedule_reads(self, now: int) -> None:
        for bank in range(self.org.banks_per_channel):
            while self.cq.space(bank) > 0:
                req = self._next_for_bank(bank)
                if req is None:
                    break
                self.cq.insert(req, now)

    def _next_for_bank(self, bank: int) -> Optional[MemoryRequest]:
        rows = self.sorter.rows_for(bank)
        if not rows:
            return None
        last = self.cq.last_sched_row[bank]
        if last is not None and last in rows:
            return self.sorter.pop(bank, last)
        oldest = self.sorter.oldest_in_bank(bank)
        assert oldest is not None
        return self.sorter.pop(bank, oldest.row)
