"""WAFCFS: warp-aware first-come first-served (Yuan et al. [51], §VI-C2).

Models the complexity-effective proposal where the interconnect preserves
intra-warp request adjacency and the controller services warp-groups in
completion order with plain in-order FCFS inside each group.  For regular
workloads the preserved spatial locality makes a simple controller viable;
for irregular workloads in-order servicing achieves almost no row hits and
the paper measures an 11.2% *loss* versus the GMC baseline.
"""

from __future__ import annotations

import heapq

from repro.core.request import MemoryRequest
from repro.mc.base import MemoryController
from repro.mc.warp_sorter import WarpGroupEntry, WarpSorter

__all__ = ["WAFCFSController"]


class WAFCFSController(MemoryController):
    name = "wafcfs"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.sorter = WarpSorter()
        # Min-heap of (completed_ps, seq, key): group service order.
        self._order: list[tuple[int, int, tuple[int, int]]] = []
        self._orderseq = 0
        self._queued: set[tuple[int, int]] = set()

    def _accept_read(self, req: MemoryRequest) -> None:
        entry = self.sorter.add(req, self.engine.now)
        self._maybe_enqueue(entry)

    def _sorter_empty(self) -> bool:
        return self.sorter.empty()

    def _mark_group_complete(self, key: tuple[int, int], expected: int) -> None:
        self.sorter.mark_complete(key, expected, self.engine.now)
        entry = self.sorter.get(key)
        if entry is not None:
            self._maybe_enqueue(entry)

    def _maybe_enqueue(self, entry: WarpGroupEntry) -> None:
        if entry.complete and not entry.empty and entry.key not in self._queued:
            self._queued.add(entry.key)
            heapq.heappush(
                self._order, (entry.completed_ps, self._orderseq, entry.key)
            )
            self._orderseq += 1

    def _schedule_reads(self, now: int) -> None:
        while self._order:
            _, _, key = self._order[0]
            entry = self.sorter.get(key)
            if entry is None or entry.empty:
                heapq.heappop(self._order)
                self._queued.discard(key)
                continue
            if not all(self.cq.space(b) > 0 for b in entry.by_bank):
                return
            # Strict arrival order inside the group: no row-locality sort.
            for req in sorted(
                entry.requests(), key=lambda r: (r.t_mc_arrival, r.req_id)
            ):
                self.sorter.remove_request(req)
                self.cq.insert(req, now)
            heapq.heappop(self._order)
            self._queued.discard(key)
        self._pressure_flush(now)

    def _pressure_flush(self, now: int) -> None:
        """Deadlock escape: with the read queue full and no complete group,
        drain the oldest group partially (see WGController for rationale)."""
        if self._reads_pending < self.mc.read_queue_entries and not self._read_overflow:
            return
        while self.sorter.groups and not self._order:
            oldest = min(
                (e for e in self.sorter.groups.values() if not e.empty),
                key=lambda e: e.arrival_ps,
                default=None,
            )
            if oldest is None:
                return
            for req in sorted(
                oldest.requests(), key=lambda r: (r.t_mc_arrival, r.req_id)
            ):
                self.sorter.remove_request(req)
                self.cq.insert(req, now)
