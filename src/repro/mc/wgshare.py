"""WG-Share: sharing-aware warp-group priority (the paper's future work).

The conclusion of the paper proposes going beyond WG-W by "prioritizing
warp-groups that contain blocks of data that are shared by multiple
warps".  The rationale: servicing a group whose rows other pending groups
also reference converts those groups' upcoming accesses into row hits —
one scheduling decision shortens several warps.

Realization on top of WG-W: when ranking complete groups, a group earns a
bonus proportional to how many *other* warps have pending requests on the
rows it is about to open (the warp sorter's (bank, row) index makes this
an O(requests) lookup).  The bonus is bounded so shortest-job-first
remains the primary order — sharing breaks ties and promotes near-ties.
"""

from __future__ import annotations

from repro.mc.warp_sorter import WarpGroupEntry
from repro.mc.wgw import WGWController

__all__ = ["WGShareController"]

MAX_SHARING_BONUS = 3  # one row-miss worth of score


class WGShareController(WGWController):
    name = "wg-share"

    def _sharing_bonus(self, entry: WarpGroupEntry) -> int:
        """How many other warps' pending requests hit this group's rows."""
        sharers = 0
        seen_rows = set()
        for bank, reqs in entry.by_bank.items():
            for req in reqs:
                key = (bank, req.row)
                if key in seen_rows:
                    continue
                seen_rows.add(key)
                for other in self.sorter.pending_hits(bank, req.row):
                    if other.warp != entry.key:
                        sharers += 1
        return min(MAX_SHARING_BONUS, sharers)

    def _rank_key(self, entry: WarpGroupEntry, score: int, hits: int, now: int):
        base = super()._rank_key(entry, score, hits, now)
        if base[0] != 1:
            return base  # promoted (WG-W unit group) or over-age: keep
        adjusted = max(0, score - self._sharing_bonus(entry))
        return (base[0], adjusted, *base[2:])
