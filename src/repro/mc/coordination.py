"""Dedicated MC-to-MC coordination network (§IV-C).

The paper assumes a narrow all-to-all network (30 links × 16 bits) distinct
from the SM crossbar.  A 32-bit message — SM id, warp id, and the local
completion score of the just-selected warp-group — is broadcast to the
other five controllers; receivers check their ports every cycle.

We model the network as contention-free with a fixed one-command-clock
delivery delay, which matches the paper's assumption that a 32-bit message
crosses two 16-bit flits in back-to-back cycles on an otherwise idle link.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.engine import Engine

if TYPE_CHECKING:  # pragma: no cover
    from repro.mc.base import MemoryController

__all__ = ["CoordinationNetwork"]


class CoordinationNetwork:
    """Broadcast fabric connecting all memory controllers."""

    def __init__(self, engine: Engine, delay_ps: int = 1334) -> None:
        self.engine = engine
        self.delay_ps = delay_ps
        self.controllers: list["MemoryController"] = []
        self.messages_sent = 0

    def attach(self, controller: "MemoryController") -> None:
        self.controllers.append(controller)

    def broadcast(
        self, src_channel: int, key: tuple[int, int], score: int
    ) -> None:
        """Announce that ``src_channel`` selected warp-group ``key``."""
        self.messages_sent += 1
        for mc in self.controllers:
            if mc.channel_id == src_channel:
                continue
            self.engine.schedule(self.delay_ps, mc.receive_coordination, key, score)
