"""Per-bank command queues (Fig. 1, box 5).

The transaction scheduler deposits *requests* here; the command scheduler
walks the queue heads and emits the actual PRE/ACT/RD/WR command sequences
in strict queue order per bank (the paper's command scheduler never reorders
within a bank so as not to disturb transaction-scheduler decisions).

The queues also maintain the bookkeeping the warp-aware policies need:

* ``last_sched_row``   — row address of the last request scheduled to each
  bank; the WG score predicts hit/miss against it (§IV-B);
* ``queue_score``      — sum of the scores of requests pending per bank,
  the "queuing latency score" of §IV-B;
* ``hits_since_row_change`` — planning-time analog of the per-bank 5-bit
  MERB counter of §IV-D (row-hit requests scheduled since the last
  scheduled row change).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.core.config import DRAMOrgConfig
from repro.core.request import MemoryRequest

__all__ = ["QueuedRequest", "CommandQueues", "SCORE_HIT", "SCORE_MISS"]

SCORE_HIT = 1  # tCAS ~ 12 ns
SCORE_MISS = 3  # tRP + tRCD + tCAS ~ 36 ns


class QueuedRequest:
    """A request plus its command-generation state inside a bank queue."""

    __slots__ = ("req", "score", "needed_act", "insert_ps")

    def __init__(self, req: MemoryRequest, score: int, insert_ps: int) -> None:
        self.req = req
        self.score = score
        self.needed_act = False
        self.insert_ps = insert_ps


class CommandQueues:
    """All per-bank command queues of one controller."""

    def __init__(self, org: DRAMOrgConfig, depth: int) -> None:
        n = org.banks_per_channel
        self.org = org
        self.depth = depth
        self.queues: list[deque[QueuedRequest]] = [deque() for _ in range(n)]
        self.queue_score = [0] * n
        self.last_sched_row: list[Optional[int]] = [None] * n
        self.hits_since_row_change = [0] * n
        # O(1) occupancy aggregates (maintained by insert/pop).
        self._total = 0
        self._reads = 0
        self._busy = 0
        #: Bumped on every insert/pop; consumers (the command scheduler's
        #: next-legal-issue cache, the incremental warp-group scores) may
        #: cache derived state until it moves.
        self.version = 0

    # -- scoring helpers ------------------------------------------------------
    def predicted_hit(self, bank: int, row: int) -> bool:
        """Would a request to (bank,row) be a row hit when it drains?"""
        return self.last_sched_row[bank] == row

    def request_score(self, bank: int, row: int) -> int:
        return SCORE_HIT if self.predicted_hit(bank, row) else SCORE_MISS

    # -- occupancy -------------------------------------------------------------
    def space(self, bank: int) -> int:
        return max(0, self.depth - len(self.queues[bank]))

    def occupancy(self, bank: int) -> int:
        return len(self.queues[bank])

    def total_occupancy(self) -> int:
        return self._total

    def busy_banks(self) -> int:
        """Number of banks with pending work (MERB table index)."""
        return self._busy

    def empty(self) -> bool:
        return self._total == 0

    def pending_reads(self) -> int:
        return self._reads

    # -- mutation ----------------------------------------------------------------
    def insert(self, req: MemoryRequest, now_ps: int) -> QueuedRequest:
        """Append a request to its bank queue; returns the queue entry."""
        bank = req.bank
        score = self.request_score(bank, req.row)
        entry = QueuedRequest(req, score, now_ps)
        q = self.queues[bank]
        if not q:
            self._busy += 1
        q.append(entry)
        self._total += 1
        if not req.is_write:
            self._reads += 1
        self.version += 1
        self.queue_score[bank] += score
        if score == SCORE_HIT:
            # The MERB counter counts row-hit *bursts* (§IV-D).
            self.hits_since_row_change[bank] = min(
                31, self.hits_since_row_change[bank] + self.org.bursts_per_access
            )
        else:
            self.hits_since_row_change[bank] = 0
        self.last_sched_row[bank] = req.row
        req.t_scheduled = now_ps
        return entry

    def pop(self, bank: int) -> QueuedRequest:
        """Remove the head entry after its column command issued."""
        q = self.queues[bank]
        entry = q.popleft()
        if not q:
            self._busy -= 1
        self._total -= 1
        if not entry.req.is_write:
            self._reads -= 1
        self.version += 1
        self.queue_score[bank] -= entry.score
        return entry

    def head(self, bank: int) -> Optional[QueuedRequest]:
        q = self.queues[bank]
        return q[0] if q else None
