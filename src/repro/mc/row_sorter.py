"""Baseline row sorter (Fig. 1, box 3).

Incoming reads are sorted by (bank, row); requests to the same row merge
into a FIFO *stream* of row hits the transaction scheduler can service
back-to-back.  Per-row FIFOs preserve arrival order, which the age-based
starvation guard relies on.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.core.request import MemoryRequest

__all__ = ["RowSorter"]


class RowSorter:
    """Per-bank, per-row pending-read index."""

    def __init__(self, num_banks: int) -> None:
        self.num_banks = num_banks
        # banks[b] maps row -> deque of requests in arrival order.
        self.banks: list[dict[int, deque[MemoryRequest]]] = [
            {} for _ in range(num_banks)
        ]
        self._count = 0

    def add(self, req: MemoryRequest) -> None:
        rows = self.banks[req.bank]
        stream = rows.get(req.row)
        if stream is None:
            rows[req.row] = deque((req,))
        else:
            stream.append(req)
        self._count += 1

    def pop(self, bank: int, row: int) -> MemoryRequest:
        rows = self.banks[bank]
        stream = rows[row]
        req = stream.popleft()
        if not stream:
            del rows[row]
        self._count -= 1
        return req

    def remove(self, req: MemoryRequest) -> None:
        """Remove a specific request (possibly mid-FIFO)."""
        rows = self.banks[req.bank]
        stream = rows[req.row]
        stream.remove(req)
        if not stream:
            del rows[req.row]
        self._count -= 1

    def rows_for(self, bank: int) -> dict[int, deque[MemoryRequest]]:
        return self.banks[bank]

    def has_row(self, bank: int, row: int) -> bool:
        return row in self.banks[bank]

    def oldest_in_bank(
        self, bank: int, exclude_row: Optional[int] = None
    ) -> Optional[MemoryRequest]:
        """Oldest pending request to a bank (front of some row FIFO),
        optionally ignoring one row (the stream currently being serviced)."""
        best: Optional[MemoryRequest] = None
        for row, stream in self.banks[bank].items():
            if row == exclude_row:
                continue
            head = stream[0]
            if best is None or head.t_mc_arrival < best.t_mc_arrival:
                best = head
        return best

    def stream_len(self, bank: int, row: int) -> int:
        stream = self.banks[bank].get(row)
        return len(stream) if stream else 0

    def __len__(self) -> int:
        return self._count

    def empty(self) -> bool:
        return self._count == 0
