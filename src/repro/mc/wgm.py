"""WG-M: warp-group scheduling coordinated across controllers (§IV-C).

On selecting a warp-group, a controller broadcasts (SM id, warp id, local
completion score).  A receiving controller that also holds requests of
that warp compares the remote score RC against its own local score LC for
the group; if LC > RC — i.e. this controller would finish the warp later
than the channel that already started it — the local score is decreased by
(LC − RC), promoting the laggard group so the warp's requests complete in
close succession across channels.
"""

from __future__ import annotations

from repro.mc.coordination import CoordinationNetwork
from repro.mc.warp_sorter import WarpGroupEntry, WarpSorter
from repro.mc.wg import WGController

__all__ = ["WGMController"]


class WGMController(WGController):
    name = "wg-m"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.network: CoordinationNetwork | None = None

    def attach_network(self, network: CoordinationNetwork) -> None:
        self.network = network
        network.attach(self)

    # -- outbound ---------------------------------------------------------------
    def _on_group_selected(self, entry: WarpGroupEntry, score: int, now: int) -> None:
        if self.network is not None:
            self.stats.coordination_msgs_sent += 1
            self.network.broadcast(self.channel_id, entry.key, score)

    # -- inbound -----------------------------------------------------------------
    def receive_coordination(self, key: tuple[int, int], remote_score: int) -> None:
        entry = self.sorter.get(key)
        if entry is None:
            return
        # Record the peer's completion score; the ranking clamps the local
        # score to it (the §IV-C "decrease by LC - RC") from the moment
        # the group is selectable, even if its last requests are still
        # working through the read-queue backpressure.
        if entry.remote_score is None or remote_score < entry.remote_score:
            entry.remote_score = remote_score
            self.stats.coordination_msgs_applied += 1
            self._kick()
