"""Timing/organization presets for the DRAM model.

``GDDR5_TIMING`` matches Table II of the paper (Hynix H5GQ1H24AFR-class
part).  ``DDR3_TIMING`` is provided for ablations: it has fewer banks'
worth of headroom (higher tFAW, no bank-group advantage) and demonstrates
why the paper's MERB table is technology-specific.  ``GDDR6`` and
``HBM2`` extend the ablation axis toward modern parts: GDDR6 doubles the
command clock with a deeper bank-group penalty, HBM2 trades per-pin speed
for wide, many-channel stacks with small rows.

Every preset is addressable by name through :data:`DRAM_PRESETS` /
:func:`get_preset`, which is how scenario specs (:mod:`repro.scenarios`)
select a device; the per-preset timing legality is pinned by
``tests/test_timing_presets.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import DRAMOrgConfig, DRAMTimingConfig

__all__ = [
    "DRAM_PRESETS",
    "DRAMPreset",
    "GDDR5_TIMING",
    "DDR3_TIMING",
    "GDDR5_ORG",
    "ddr3_org",
    "get_preset",
    "preset_names",
]

GDDR5_TIMING = DRAMTimingConfig()  # defaults are the paper's Table II values

DDR3_TIMING = DRAMTimingConfig(
    tck_ns=1.25,  # DDR3-1600
    trc_ns=48.75,
    trcd_ns=13.75,
    trp_ns=13.75,
    tcas_ns=13.75,
    tras_ns=35.0,
    trrd_ns=7.5,
    twtr_ns=7.5,
    tfaw_ns=40.0,
    trtp_ns=7.5,
    twr_ns=15.0,
    twl_ck=8,
    tburst_ck=4,
    trtrs_ck=2,
    tccdl_ck=4,  # DDR3 has no bank groups: tCCDL == tCCDS
    tccds_ck=4,
)

GDDR6_TIMING = DRAMTimingConfig(
    tck_ns=0.5,  # 2 GHz command clock (16 Gb/s-class pin rate)
    trc_ns=45.0,
    trcd_ns=14.0,
    trp_ns=14.0,
    tcas_ns=14.0,
    tras_ns=31.0,
    trrd_ns=5.0,
    twtr_ns=5.0,
    tfaw_ns=22.0,
    trtp_ns=2.0,
    twr_ns=14.0,
    twl_ck=6,
    tburst_ck=2,
    trtrs_ck=1,
    tccdl_ck=4,  # deeper same-group penalty than GDDR5 at the faster clock
    tccds_ck=2,
)

HBM2_TIMING = DRAMTimingConfig(
    tck_ns=1.0,  # 1 GHz command clock (2 Gb/s pins, very wide channels)
    trc_ns=47.0,
    trcd_ns=14.0,
    trp_ns=14.0,
    tcas_ns=14.0,
    tras_ns=33.0,
    trrd_ns=4.0,
    twtr_ns=8.0,
    tfaw_ns=16.0,  # pseudo-channel stacks relax the activate window
    trtp_ns=3.0,
    twr_ns=16.0,
    twl_ck=7,
    tburst_ck=2,
    trtrs_ck=1,
    tccdl_ck=2,  # bank groups cost little on the slow command clock
    tccds_ck=1,
)

GDDR5_ORG = DRAMOrgConfig()  # 6 channels, 16 banks, 4 banks/group

GDDR6_ORG = DRAMOrgConfig(
    num_channels=6,
    banks_per_channel=16,
    banks_per_group=4,
    row_size_bytes=2048,
)

HBM2_ORG = DRAMOrgConfig(
    num_channels=8,  # one stack's worth of pseudo-channels
    banks_per_channel=16,
    banks_per_group=4,
    row_size_bytes=1024,  # small rows: less overfetch, weaker row locality
    # A 128-bit HBM2 pseudo-channel at BL4 moves 32B per burst; a 128B
    # line needs four back-to-back bursts.
    bytes_per_burst=32,
)


def ddr3_org(num_channels: int = 6) -> DRAMOrgConfig:
    """DDR3-style organization: 8 banks, no bank-group distinction."""
    return DRAMOrgConfig(
        num_channels=num_channels,
        banks_per_channel=8,
        banks_per_group=8,
    )


@dataclass(frozen=True)
class DRAMPreset:
    """A named (timing, organization) pair a scenario spec can select."""

    name: str
    description: str
    timing: DRAMTimingConfig
    org: DRAMOrgConfig


DRAM_PRESETS: dict[str, DRAMPreset] = {
    p.name: p
    for p in (
        DRAMPreset(
            "gddr5",
            "Paper Table II: six 64-bit GDDR5 channels (default config)",
            GDDR5_TIMING,
            GDDR5_ORG,
        ),
        DRAMPreset(
            "ddr3",
            "DDR3-1600 ablation: 8 banks, no bank groups, long tFAW",
            DDR3_TIMING,
            ddr3_org(),
        ),
        DRAMPreset(
            "gddr6",
            "GDDR6-class part: 2 GHz command clock, deeper tCCDL",
            GDDR6_TIMING,
            GDDR6_ORG,
        ),
        DRAMPreset(
            "hbm2",
            "HBM2 stack: 8 pseudo-channels, 1KB rows, short tFAW",
            HBM2_TIMING,
            HBM2_ORG,
        ),
    )
}


def preset_names() -> tuple[str, ...]:
    return tuple(sorted(DRAM_PRESETS))


def get_preset(name: str) -> DRAMPreset:
    try:
        return DRAM_PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown DRAM preset {name!r}; choose from {sorted(DRAM_PRESETS)}"
        ) from None
