"""Timing presets for the DRAM model.

``GDDR5_TIMING`` matches Table II of the paper (Hynix H5GQ1H24AFR-class
part).  ``DDR3_TIMING`` is provided for ablations: it has fewer banks'
worth of headroom (higher tFAW, no bank-group advantage) and demonstrates
why the paper's MERB table is technology-specific.
"""

from __future__ import annotations

from repro.core.config import DRAMOrgConfig, DRAMTimingConfig

__all__ = ["GDDR5_TIMING", "DDR3_TIMING", "GDDR5_ORG", "ddr3_org"]

GDDR5_TIMING = DRAMTimingConfig()  # defaults are the paper's Table II values

DDR3_TIMING = DRAMTimingConfig(
    tck_ns=1.25,  # DDR3-1600
    trc_ns=48.75,
    trcd_ns=13.75,
    trp_ns=13.75,
    tcas_ns=13.75,
    tras_ns=35.0,
    trrd_ns=7.5,
    twtr_ns=7.5,
    tfaw_ns=40.0,
    trtp_ns=7.5,
    twr_ns=15.0,
    twl_ck=8,
    tburst_ck=4,
    trtrs_ck=2,
    tccdl_ck=4,  # DDR3 has no bank groups: tCCDL == tCCDS
    tccds_ck=4,
)

GDDR5_ORG = DRAMOrgConfig()  # 6 channels, 16 banks, 4 banks/group


def ddr3_org(num_channels: int = 6) -> DRAMOrgConfig:
    """DDR3-style organization: 8 banks, no bank-group distinction."""
    return DRAMOrgConfig(
        num_channels=num_channels,
        banks_per_channel=8,
        banks_per_group=8,
    )
