"""GDDR5 power model (Micron power-calculator methodology, §VI-B).

The paper estimates DRAM power with the Micron DDR3 calculator adapted to
GDDR5 datasheet currents and reports that although WG-W lowers the
row-buffer hit rate by 16%, total GDDR5 power rises only ~1.8% — because
most GDDR5 power is burned in the high-speed I/O drivers, not the arrays.

We reproduce that methodology: per-chip power is the sum of

* background (active standby) power,
* activate/precharge power  — proportional to the ACT rate,
* read/write array power    — proportional to data-bus utilization,
* I/O and termination power — proportional to data-bus utilization, and
  by far the largest term at GDDR5 data rates.

Current/voltage constants approximate a 6 Gbps x32 GDDR5 part.  Absolute
watts are indicative; the experiment asserts the *relative* sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import DRAMOrgConfig, DRAMTimingConfig

__all__ = ["GDDR5PowerParams", "PowerBreakdown", "estimate_channel_power"]


@dataclass(frozen=True)
class GDDR5PowerParams:
    """Electrical parameters of one x32 GDDR5 chip."""

    vdd: float = 1.5
    idd3n_a: float = 0.045  # active standby current
    idd0_a: float = 0.070  # one-bank ACT-PRE cycling current
    idd4r_a: float = 0.230  # burst read current
    idd4w_a: float = 0.225  # burst write current
    # I/O + ODT power of one chip with its 32 DQs at 100% bus utilization.
    io_w_at_full_bw: float = 2.6
    chips_per_channel: int = 2

    @property
    def activate_energy_j(self) -> float:
        """Energy of one ACT/PRE pair (charged over tRC at IDD0-IDD3N)."""
        trc_s = 40e-9
        return self.vdd * (self.idd0_a - self.idd3n_a) * trc_s


@dataclass(frozen=True)
class PowerBreakdown:
    """Per-channel power in watts."""

    background_w: float
    activate_w: float
    array_rw_w: float
    io_w: float

    @property
    def total_w(self) -> float:
        return self.background_w + self.activate_w + self.array_rw_w + self.io_w

    def as_dict(self) -> dict[str, float]:
        return {
            "background_w": self.background_w,
            "activate_w": self.activate_w,
            "array_rw_w": self.array_rw_w,
            "io_w": self.io_w,
            "total_w": self.total_w,
        }


def estimate_channel_power(
    activates: int,
    reads: int,
    writes: int,
    data_bus_busy_ps: int,
    elapsed_ps: int,
    timing: DRAMTimingConfig,
    params: GDDR5PowerParams = GDDR5PowerParams(),
) -> PowerBreakdown:
    """Estimate average power of one channel over a simulated interval."""
    if elapsed_ps <= 0:
        raise ValueError("elapsed_ps must be positive")
    elapsed_s = elapsed_ps * 1e-12
    utilization = min(1.0, data_bus_busy_ps / elapsed_ps)
    n = params.chips_per_channel

    background_w = n * params.vdd * params.idd3n_a
    activate_w = n * activates * params.activate_energy_j / elapsed_s

    col = reads + writes
    if col:
        read_frac = reads / col
        idd4 = read_frac * params.idd4r_a + (1.0 - read_frac) * params.idd4w_a
    else:
        idd4 = 0.0
    array_rw_w = n * params.vdd * max(0.0, idd4 - params.idd3n_a) * utilization
    io_w = n * params.io_w_at_full_bw * utilization

    return PowerBreakdown(
        background_w=background_w,
        activate_w=activate_w,
        array_rw_w=array_rw_w,
        io_w=io_w,
    )
