"""Per-bank DRAM state machine using timestamp algebra.

Instead of stepping every clock, each bank records the earliest picosecond
at which each command kind may legally be issued to it.  Issuing a command
advances those horizons according to the GDDR5 timing constraints:

=============  =========================================================
constraint     meaning
=============  =========================================================
tRCD           ACT -> column command, same bank
tRAS           ACT -> PRE, same bank
tRC            ACT -> ACT, same bank
tRP            PRE -> ACT, same bank
tRTP           RD  -> PRE, same bank
tWR            end of write data -> PRE, same bank (write recovery)
=============  =========================================================

Cross-bank constraints (tRRD, tFAW, tCCDL/tCCDS, bus turnarounds) are owned
by :class:`repro.dram.channel.Channel`.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import DRAMTimingConfig

__all__ = ["Bank"]


class Bank:
    """State of one DRAM bank."""

    __slots__ = (
        "index",
        "group",
        "open_row",
        "earliest_act",
        "earliest_pre",
        "earliest_col",
        "last_act_ps",
        "hits_since_act",
        "acts",
        "pres",
        "col_reads",
        "col_writes",
        "probe",
        "probe_ctx",
    )

    def __init__(self, index: int, group: int) -> None:
        self.index = index
        self.group = group
        self.open_row: Optional[int] = None
        # Earliest legal issue instants for commands targeting this bank.
        self.earliest_act = 0
        self.earliest_pre = 0
        self.earliest_col = 0
        self.last_act_ps = -(10**15)
        # Row-hit column accesses since the last ACT (MERB counter, 5 bits).
        self.hits_since_act = 0
        self.acts = 0
        self.pres = 0
        self.col_reads = 0
        self.col_writes = 0
        # Telemetry: row-hit-streak probe, wired by Channel.attach_probes.
        self.probe = None
        self.probe_ctx = -1

    # -- state transitions ----------------------------------------------------
    def do_activate(self, now: int, row: int, t: DRAMTimingConfig) -> None:
        if self.open_row is not None:
            raise RuntimeError(f"bank {self.index}: ACT with row {self.open_row} open")
        if now < self.earliest_act:
            raise RuntimeError(f"bank {self.index}: ACT at {now} before {self.earliest_act}")
        if self.probe and self.acts:
            # This ACT closes the previous activation's row-hit streak.
            self.probe.emit(self.probe_ctx, self.index, self.hits_since_act)
        self.open_row = row
        self.last_act_ps = now
        self.hits_since_act = 0
        self.acts += 1
        self.earliest_col = max(self.earliest_col, now + t.trcd_ps)
        self.earliest_pre = max(self.earliest_pre, now + t.tras_ps)
        self.earliest_act = max(self.earliest_act, now + t.trc_ps)

    def do_precharge(self, now: int, t: DRAMTimingConfig) -> None:
        if self.open_row is None:
            raise RuntimeError(f"bank {self.index}: PRE with no row open")
        if now < self.earliest_pre:
            raise RuntimeError(f"bank {self.index}: PRE at {now} before {self.earliest_pre}")
        self.open_row = None
        self.pres += 1
        self.earliest_act = max(self.earliest_act, now + t.trp_ps)

    def do_column(
        self, now: int, is_write: bool, t: DRAMTimingConfig, n_bursts: int = 1
    ) -> int:
        """Issue a column access of ``n_bursts`` back-to-back bursts;
        returns the data completion time."""
        if self.open_row is None:
            raise RuntimeError(f"bank {self.index}: column access with no row open")
        if now < self.earliest_col:
            raise RuntimeError(f"bank {self.index}: COL at {now} before {self.earliest_col}")
        burst_ps = n_bursts * t.tburst_ps
        if is_write:
            self.col_writes += 1
            data_start = now + t.twl_ps
            data_end = data_start + burst_ps
            # Write recovery gates the next precharge.
            self.earliest_pre = max(self.earliest_pre, data_end + t.twr_ps)
        else:
            self.col_reads += 1
            data_start = now + t.tcas_ps
            data_end = data_start + burst_ps
            self.earliest_pre = max(self.earliest_pre, now + t.trtp_ps)
        # The MERB counter counts *bursts* of row-hit data (§IV-D).
        self.hits_since_act = min(self.hits_since_act + n_bursts, 31)
        return data_end

    # -- queries ---------------------------------------------------------------
    def is_open(self, row: int) -> bool:
        return self.open_row == row

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Bank{self.index}(g{self.group}, row={self.open_row})"
