"""DRAM protocol auditor.

USIMM-style offline validation: a :class:`CommandLog` records every command
a channel issues, and :func:`audit_command_log` replays the log against the
timing parameters, reporting every constraint violation.  The simulator's
timestamp algebra is designed to make violations impossible; the auditor
is the independent proof (and the first tool to reach for if a scheduler
change ever produces suspicious timing).

Checked constraints:

====================  ====================================================
rule                  meaning
====================  ====================================================
CMD_BUS               one command per command clock
ACT_TO_ACT_SAME       tRC between ACTs to one bank
ACT_TO_ACT_DIFF       tRRD between ACTs to different banks
FAW                   at most 4 ACTs in any tFAW window
ACT_TO_COL            tRCD before a column command
ACT_TO_PRE            tRAS before precharging
PRE_TO_ACT            tRP before re-activating
RD_TO_PRE             tRTP after a read before precharge
WR_TO_PRE             write recovery (tWR after write data)
CCD                   tCCDL / tCCDS column spacing by bank group
DATA_BUS              data bursts never overlap
WTR                   end of write data to next read command
ROW_STATE             column commands only to the open row; no double ACT
====================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import DRAMOrgConfig, DRAMTimingConfig
from repro.dram.commands import CommandKind

__all__ = ["LoggedCommand", "CommandLog", "Violation", "audit_command_log"]


@dataclass(slots=True)
class LoggedCommand:
    issue_ps: int
    kind: CommandKind
    bank: int
    row: int = -1
    data_start_ps: int = -1
    data_end_ps: int = -1


class CommandLog:
    """Append-only record of a channel's command stream."""

    def __init__(self) -> None:
        self.commands: list[LoggedCommand] = []

    def record(
        self,
        issue_ps: int,
        kind: CommandKind,
        bank: int,
        row: int = -1,
        data_start_ps: int = -1,
        data_end_ps: int = -1,
    ) -> None:
        self.commands.append(
            LoggedCommand(issue_ps, kind, bank, row, data_start_ps, data_end_ps)
        )

    def __len__(self) -> int:
        return len(self.commands)


@dataclass(slots=True)
class Violation:
    rule: str
    time_ps: int
    bank: int
    detail: str

    def __str__(self) -> str:  # pragma: no cover - formatting
        return f"[{self.rule}] t={self.time_ps}ps bank={self.bank}: {self.detail}"


@dataclass
class _BankState:
    open_row: Optional[int] = None
    last_act: int = -(1 << 60)
    last_rd: int = -(1 << 60)
    last_wr_data_end: int = -(1 << 60)
    last_pre: int = -(1 << 60)


def audit_command_log(
    log: CommandLog,
    timing: DRAMTimingConfig,
    org: DRAMOrgConfig,
) -> list[Violation]:
    """Replay a command log; return every timing/protocol violation."""
    v: list[Violation] = []
    banks = [_BankState() for _ in range(org.banks_per_channel)]
    group_of = [b // org.banks_per_group for b in range(org.banks_per_channel)]
    last_cmd_time = -(1 << 60)
    last_act_any = -(1 << 60)
    act_times: list[int] = []
    last_col_time = -(1 << 60)
    last_col_group = -1
    last_data_end = -(1 << 60)
    last_wr_data_end_any = -(1 << 60)

    def bad(rule: str, t: int, bank: int, detail: str) -> None:
        v.append(Violation(rule, t, bank, detail))

    for cmd in log.commands:
        t = cmd.issue_ps
        b = banks[cmd.bank]

        if t < last_cmd_time + timing.tck_ps and t != last_cmd_time == -(1 << 60):
            pass
        if last_cmd_time > -(1 << 59) and t - last_cmd_time < timing.tck_ps:
            bad("CMD_BUS", t, cmd.bank, f"{t - last_cmd_time}ps since previous command")
        last_cmd_time = t

        if cmd.kind == CommandKind.ACT:
            if b.open_row is not None:
                bad("ROW_STATE", t, cmd.bank, "ACT with a row already open")
            if t - b.last_act < timing.trc_ps:
                bad("ACT_TO_ACT_SAME", t, cmd.bank, f"tRC: {t - b.last_act}ps")
            if last_act_any > -(1 << 59) and t - last_act_any < timing.trrd_ps:
                bad("ACT_TO_ACT_DIFF", t, cmd.bank, f"tRRD: {t - last_act_any}ps")
            if b.last_pre > -(1 << 59) and t - b.last_pre < timing.trp_ps:
                bad("PRE_TO_ACT", t, cmd.bank, f"tRP: {t - b.last_pre}ps")
            recent = [x for x in act_times if t - x < timing.tfaw_ps]
            if len(recent) >= 4:
                bad("FAW", t, cmd.bank, f"{len(recent) + 1} ACTs in tFAW window")
            act_times.append(t)
            if len(act_times) > 16:
                del act_times[:8]
            last_act_any = t
            b.last_act = t
            b.open_row = cmd.row

        elif cmd.kind == CommandKind.PRE:
            if b.open_row is None:
                bad("ROW_STATE", t, cmd.bank, "PRE with no open row")
            if t - b.last_act < timing.tras_ps:
                bad("ACT_TO_PRE", t, cmd.bank, f"tRAS: {t - b.last_act}ps")
            if b.last_rd > -(1 << 59) and t - b.last_rd < timing.trtp_ps:
                bad("RD_TO_PRE", t, cmd.bank, f"tRTP: {t - b.last_rd}ps")
            if (
                b.last_wr_data_end > -(1 << 59)
                and t - b.last_wr_data_end < timing.twr_ps
            ):
                bad("WR_TO_PRE", t, cmd.bank, f"tWR: {t - b.last_wr_data_end}ps")
            b.last_pre = t
            b.open_row = None

        else:  # RD / WR
            if b.open_row is None:
                bad("ROW_STATE", t, cmd.bank, "column command with bank closed")
            elif cmd.row >= 0 and cmd.row != b.open_row:
                bad("ROW_STATE", t, cmd.bank,
                    f"column to row {cmd.row} but row {b.open_row} open")
            if t - b.last_act < timing.trcd_ps:
                bad("ACT_TO_COL", t, cmd.bank, f"tRCD: {t - b.last_act}ps")
            if last_col_time > -(1 << 59):
                ccd = (
                    timing.tccdl_ps
                    if group_of[cmd.bank] == last_col_group
                    else timing.tccds_ps
                )
                if t - last_col_time < ccd:
                    bad("CCD", t, cmd.bank, f"{t - last_col_time}ps since last column")
            if cmd.kind == CommandKind.RD:
                if (
                    last_wr_data_end_any > -(1 << 59)
                    and t - last_wr_data_end_any < timing.twtr_ps
                ):
                    bad("WTR", t, cmd.bank,
                        f"{t - last_wr_data_end_any}ps after write data")
                b.last_rd = t
            if cmd.data_start_ps >= 0:
                if cmd.data_start_ps < last_data_end:
                    bad("DATA_BUS", t, cmd.bank,
                        f"burst starts {last_data_end - cmd.data_start_ps}ps early")
                last_data_end = max(last_data_end, cmd.data_end_ps)
            if cmd.kind == CommandKind.WR and cmd.data_end_ps >= 0:
                b.last_wr_data_end = cmd.data_end_ps
                last_wr_data_end_any = cmd.data_end_ps
            last_col_time = t
            last_col_group = group_of[cmd.bank]

    return v
