"""DRAM protocol auditor.

USIMM-style validation in two modes sharing one rule engine:

* **offline** — a :class:`CommandLog` records every command a channel
  issues, and :func:`audit_command_log` replays the log against the
  timing parameters, reporting every constraint violation;
* **streaming** — a :class:`StreamingAuditor` installed *as* the
  channel's log checks each command the instant it is recorded and (by
  default) aborts the run with a precise diagnostic, so a scheduler bug
  surfaces at the first illegal command instead of as wrong end-of-run
  numbers.  This is what ``python -m repro run --audit`` wires up (see
  :mod:`repro.guardrails`).

The simulator's timestamp algebra is designed to make violations
impossible; the auditor is the independent proof (and the first tool to
reach for if a scheduler change ever produces suspicious timing).

Checked constraints:

====================  ====================================================
rule                  meaning
====================  ====================================================
CMD_BUS               one command per command clock
ACT_TO_ACT_SAME       tRC between ACTs to one bank
ACT_TO_ACT_DIFF       tRRD between ACTs to different banks
FAW                   at most 4 ACTs in any tFAW window
ACT_TO_COL            tRCD before a column command
ACT_TO_PRE            tRAS before precharging
PRE_TO_ACT            tRP before re-activating
RD_TO_PRE             tRTP after a read before precharge
WR_TO_PRE             write recovery (tWR after write data)
CCD                   tCCDL / tCCDS column spacing by bank group
DATA_BUS              data bursts never overlap
WTR                   end of write data to next read command
ROW_STATE             column commands only to the open row; no double ACT
====================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import DRAMOrgConfig, DRAMTimingConfig
from repro.dram.commands import CommandKind

__all__ = [
    "LoggedCommand",
    "CommandLog",
    "ProtocolViolationError",
    "StreamingAuditor",
    "Violation",
    "audit_command_log",
]


@dataclass(slots=True)
class LoggedCommand:
    issue_ps: int
    kind: CommandKind
    bank: int
    row: int = -1
    data_start_ps: int = -1
    data_end_ps: int = -1


class CommandLog:
    """Append-only record of a channel's command stream."""

    def __init__(self) -> None:
        self.commands: list[LoggedCommand] = []

    def record(
        self,
        issue_ps: int,
        kind: CommandKind,
        bank: int,
        row: int = -1,
        data_start_ps: int = -1,
        data_end_ps: int = -1,
    ) -> None:
        self.commands.append(
            LoggedCommand(issue_ps, kind, bank, row, data_start_ps, data_end_ps)
        )

    def __len__(self) -> int:
        return len(self.commands)


@dataclass(slots=True)
class Violation:
    rule: str
    time_ps: int
    bank: int
    detail: str

    def __str__(self) -> str:  # pragma: no cover - formatting
        return f"[{self.rule}] t={self.time_ps}ps bank={self.bank}: {self.detail}"


class ProtocolViolationError(RuntimeError):
    """A streaming audit found a protocol-illegal command (run aborted)."""

    def __init__(self, violation: Violation, channel_id: int = -1) -> None:
        self.violation = violation
        self.channel_id = channel_id
        where = f"channel {channel_id}: " if channel_id >= 0 else ""
        super().__init__(f"DRAM protocol violation: {where}{violation}")


@dataclass
class _BankState:
    open_row: Optional[int] = None
    last_act: int = -(1 << 60)
    last_rd: int = -(1 << 60)
    last_wr_data_end: int = -(1 << 60)
    last_pre: int = -(1 << 60)


class _AuditState:
    """Incremental protocol checker: one channel's rule state machine."""

    def __init__(self, timing: DRAMTimingConfig, org: DRAMOrgConfig) -> None:
        self.t = timing
        self.banks = [_BankState() for _ in range(org.banks_per_channel)]
        self.group_of = [
            b // org.banks_per_group for b in range(org.banks_per_channel)
        ]
        self.last_cmd_time = -(1 << 60)
        self.last_act_any = -(1 << 60)
        self.act_times: list[int] = []
        self.last_col_time = -(1 << 60)
        self.last_col_group = -1
        self.last_data_end = -(1 << 60)
        self.last_wr_data_end_any = -(1 << 60)

    def check(self, cmd: LoggedCommand) -> list[Violation]:
        """Check one command against the state so far; advance the state."""
        timing = self.t
        v: list[Violation] = []
        t = cmd.issue_ps
        b = self.banks[cmd.bank]

        def bad(rule: str, detail: str) -> None:
            v.append(Violation(rule, t, cmd.bank, detail))

        if self.last_cmd_time > -(1 << 59) and t - self.last_cmd_time < timing.tck_ps:
            bad("CMD_BUS", f"{t - self.last_cmd_time}ps since previous command")
        self.last_cmd_time = t

        if cmd.kind == CommandKind.ACT:
            if b.open_row is not None:
                bad("ROW_STATE", "ACT with a row already open")
            if t - b.last_act < timing.trc_ps:
                bad("ACT_TO_ACT_SAME", f"tRC: {t - b.last_act}ps")
            if self.last_act_any > -(1 << 59) and t - self.last_act_any < timing.trrd_ps:
                bad("ACT_TO_ACT_DIFF", f"tRRD: {t - self.last_act_any}ps")
            if b.last_pre > -(1 << 59) and t - b.last_pre < timing.trp_ps:
                bad("PRE_TO_ACT", f"tRP: {t - b.last_pre}ps")
            recent = [x for x in self.act_times if t - x < timing.tfaw_ps]
            if len(recent) >= 4:
                bad("FAW", f"{len(recent) + 1} ACTs in tFAW window")
            self.act_times.append(t)
            if len(self.act_times) > 16:
                del self.act_times[:8]
            self.last_act_any = t
            b.last_act = t
            b.open_row = cmd.row

        elif cmd.kind == CommandKind.PRE:
            if b.open_row is None:
                bad("ROW_STATE", "PRE with no open row")
            if t - b.last_act < timing.tras_ps:
                bad("ACT_TO_PRE", f"tRAS: {t - b.last_act}ps")
            if b.last_rd > -(1 << 59) and t - b.last_rd < timing.trtp_ps:
                bad("RD_TO_PRE", f"tRTP: {t - b.last_rd}ps")
            if (
                b.last_wr_data_end > -(1 << 59)
                and t - b.last_wr_data_end < timing.twr_ps
            ):
                bad("WR_TO_PRE", f"tWR: {t - b.last_wr_data_end}ps")
            b.last_pre = t
            b.open_row = None

        else:  # RD / WR
            if b.open_row is None:
                bad("ROW_STATE", "column command with bank closed")
            elif cmd.row >= 0 and cmd.row != b.open_row:
                bad("ROW_STATE", f"column to row {cmd.row} but row {b.open_row} open")
            if t - b.last_act < timing.trcd_ps:
                bad("ACT_TO_COL", f"tRCD: {t - b.last_act}ps")
            if self.last_col_time > -(1 << 59):
                ccd = (
                    timing.tccdl_ps
                    if self.group_of[cmd.bank] == self.last_col_group
                    else timing.tccds_ps
                )
                if t - self.last_col_time < ccd:
                    bad("CCD", f"{t - self.last_col_time}ps since last column")
            if cmd.kind == CommandKind.RD:
                if (
                    self.last_wr_data_end_any > -(1 << 59)
                    and t - self.last_wr_data_end_any < timing.twtr_ps
                ):
                    bad("WTR", f"{t - self.last_wr_data_end_any}ps after write data")
                b.last_rd = t
            if cmd.data_start_ps >= 0:
                if cmd.data_start_ps < self.last_data_end:
                    bad(
                        "DATA_BUS",
                        f"burst starts {self.last_data_end - cmd.data_start_ps}ps early",
                    )
                self.last_data_end = max(self.last_data_end, cmd.data_end_ps)
            if cmd.kind == CommandKind.WR and cmd.data_end_ps >= 0:
                b.last_wr_data_end = cmd.data_end_ps
                self.last_wr_data_end_any = cmd.data_end_ps
            self.last_col_time = t
            self.last_col_group = self.group_of[cmd.bank]

        return v


class StreamingAuditor:
    """Online protocol audit: a drop-in for ``Channel.log``.

    Install one per channel (``mc.channel.log = StreamingAuditor(...)``)
    and every command is validated the instant it issues.  By default a
    violation raises :class:`ProtocolViolationError` carrying the exact
    rule, instant and bank; set ``collect=True`` to accumulate violations
    in :attr:`violations` instead (useful for tests and tooling).

    The auditor keeps O(1) state (no command history), so it is safe to
    leave on for arbitrarily long runs, and it is picklable, so it rides
    along in checkpoint snapshots.
    """

    def __init__(
        self,
        timing: DRAMTimingConfig,
        org: DRAMOrgConfig,
        channel_id: int = -1,
        collect: bool = False,
    ) -> None:
        self.channel_id = channel_id
        self.collect = collect
        self.commands_checked = 0
        self.violations: list[Violation] = []
        self._state = _AuditState(timing, org)

    def record(
        self,
        issue_ps: int,
        kind: CommandKind,
        bank: int,
        row: int = -1,
        data_start_ps: int = -1,
        data_end_ps: int = -1,
    ) -> None:
        cmd = LoggedCommand(issue_ps, kind, bank, row, data_start_ps, data_end_ps)
        found = self._state.check(cmd)
        self.commands_checked += 1
        if not found:
            return
        if self.collect:
            self.violations.extend(found)
        else:
            raise ProtocolViolationError(found[0], self.channel_id)

    def __len__(self) -> int:
        return self.commands_checked


def audit_command_log(
    log: CommandLog,
    timing: DRAMTimingConfig,
    org: DRAMOrgConfig,
) -> list[Violation]:
    """Replay a command log; return every timing/protocol violation."""
    state = _AuditState(timing, org)
    v: list[Violation] = []
    for cmd in log.commands:
        v.extend(state.check(cmd))
    return v
