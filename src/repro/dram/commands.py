"""DRAM command vocabulary.

The command scheduler issues four command kinds to the GDDR5 devices:
row activate (ACT), precharge (PRE), column read (RD) and column write (WR).
Refresh is intentionally not modeled — the paper's USIMM configuration and
the scheduling policies under study are refresh-agnostic, and omitting it
identically affects every scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Optional

__all__ = ["CommandKind", "DRAMCommand"]


class CommandKind(IntEnum):
    ACT = 0
    PRE = 1
    RD = 2
    WR = 3


@dataclass(slots=True)
class DRAMCommand:
    """A command issued on the channel's command bus."""

    kind: CommandKind
    bank: int
    row: int = -1
    issue_ps: int = -1
    # For column commands: when the data burst completes on the data bus.
    data_end_ps: int = -1
    req_id: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind.name}(b{self.bank},r{self.row}@{self.issue_ps})"
