"""A GDDR5 channel: banks, bank groups, shared command and data buses.

The channel owns every cross-bank timing constraint:

* command bus — one command per command clock (tCK);
* tRRD — minimum spacing between ACTs to different banks;
* tFAW — at most four ACTs in any tFAW window (GDDR5's stronger power
  delivery gives it a low tFAW; the value comes from the timing config);
* tCCDL / tCCDS — column-command spacing within / across bank groups (the
  bank-group advantage of GDDR5 that the baseline GMC command scheduler
  exploits);
* data-bus occupancy and read<->write turnaround (tWTR, tRTRS).

All methods are expressed as *earliest-issue queries* plus *issue actions*
so a memory controller can ask "when could I do X?" without committing.
"""

from __future__ import annotations

from repro.core.config import DRAMOrgConfig, DRAMTimingConfig
from repro.dram.bank import Bank

__all__ = ["Channel"]


class Channel:
    """Timing-accurate model of one 64-bit GDDR5 channel (single rank)."""

    def __init__(self, org: DRAMOrgConfig, timing: DRAMTimingConfig) -> None:
        self.org = org
        self.t = timing
        self.bursts_per_access = org.bursts_per_access
        self.banks = [
            Bank(i, i // org.banks_per_group) for i in range(org.banks_per_channel)
        ]
        # Hot timing parameters, resolved once (the earliest-issue queries
        # run per candidate bank per pump wake — property indirection on
        # the config object is measurable there).  Pairwise spacings come
        # from the precomputed legality table rather than the raw
        # parameters: each is the *total* floor between two commands with
        # the tCK command-bus term already folded in (bit-identical — see
        # TimingLegality's dominance argument), so every query is a
        # max() over adds with no parameter branches left.
        leg = timing.legality
        self._tck = timing.tck_ps
        self._act_act = leg.pair_ps[leg.ACT][leg.ACT][0]  # group-blind
        self._ccd_diff, self._ccd_same = leg.pair_ps[leg.RD][leg.RD]
        self._rd_lead = leg.read_cmd_lead_ps
        self._wr_lead = leg.write_cmd_lead_ps
        self._rd2wr = leg.rd_data_to_wr_cmd_ps
        self._wr2rd = leg.wr_data_to_rd_cmd_ps
        self._tfaw = leg.faw_window_ps
        self._twl = timing.twl_ps
        self._tcas = timing.tcas_ps
        self._tburst = timing.tburst_ps
        #: Bumped on every timing-state mutation (any command issue; the
        #: refresh gate bumps it too when it adjusts bank/bus state).
        #: Earliest-issue answers are pure functions of (state, now) with
        #: ``earliest(t1) = max(t1, earliest(t0))`` for t1 >= t0 while the
        #: version holds, so controllers may cache them until it changes.
        self.version = 0
        self.next_cmd_free = 0  # command bus
        self.last_act_any = -(10**15)  # tRRD tracking
        self.act_window: list[int] = []  # last 4 ACT instants (tFAW)
        self.last_col_cmd = -(10**15)
        self.last_col_group = -1
        self.last_read_data_end = -(10**15)
        self.last_write_data_end = -(10**15)
        self.data_bus_free = 0
        self.data_bus_busy_ps = 0
        self.commands_issued = 0
        # Optional protocol audit trail (see repro.dram.validate).
        self.log = None
        # Optional telemetry probe for command issue (see repro.telemetry).
        # The channel does not know its id; the owning controller passes
        # it in via attach_probes so emissions are attributable.
        self.probe = None
        self.probe_ctx = -1

    def attach_probes(self, channel_id: int, cmd_probe, streak_probe) -> None:
        """Wire telemetry probes into this channel and its banks.

        ``cmd_probe`` fires ``(channel_id, kind, bank, now_ps)`` on every
        ACT/PRE/RD/WR; ``streak_probe`` fires ``(channel_id, bank, hits)``
        each time an ACT closes out the previous row's hit streak.
        """
        self.probe = cmd_probe
        self.probe_ctx = channel_id
        for bank in self.banks:
            bank.probe = streak_probe
            bank.probe_ctx = channel_id

    # ------------------------------------------------------------------
    # earliest-issue queries
    # ------------------------------------------------------------------
    def earliest_act(self, bank_idx: int, now: int) -> int:
        b = self.banks[bank_idx]
        # The -(10**15) sentinels need no guard: sentinel + spacing stays
        # far below any reachable ``now`` and loses every max().
        t = max(now, b.earliest_act, self.next_cmd_free, self.last_act_any + self._act_act)
        if len(self.act_window) >= 4:
            t = max(t, self.act_window[-4] + self._tfaw)
        return t

    def earliest_pre(self, bank_idx: int, now: int) -> int:
        b = self.banks[bank_idx]
        return max(now, b.earliest_pre, self.next_cmd_free)

    def earliest_col(self, bank_idx: int, is_write: bool, now: int) -> int:
        b = self.banks[bank_idx]
        # Column-to-column spacing depends on bank-group relationship.
        ccd = self._ccd_same if b.group == self.last_col_group else self._ccd_diff
        if is_write:
            # Write data must not start before the bus frees (plus a
            # turnaround bubble after read data).
            return max(
                now,
                b.earliest_col,
                self.next_cmd_free,
                self.last_col_cmd + ccd,
                self.data_bus_free - self._wr_lead,
                self.last_read_data_end + self._rd2wr,
            )
        # tWTR: end of write data -> next read *command*.
        return max(
            now,
            b.earliest_col,
            self.next_cmd_free,
            self.last_col_cmd + ccd,
            self.data_bus_free - self._rd_lead,
            self.last_write_data_end + self._wr2rd,
        )

    def scan_terms(self, now: int) -> tuple[int, int, int, int, int, int, int]:
        """Channel-global earliest-issue terms, hoisted for a bank scan.

        Returns ``(base, act, col_rd, col_wr, ccd_same_t, ccd_diff_t,
        col_group)``: the per-command floors that do not depend on the
        candidate bank.  A command scheduler visiting every bank combines
        them with per-bank state only::

            PRE: max(base, bank.earliest_pre)
            ACT: max(act, bank.earliest_act)
            RD : max(col_rd, ccd_t(bank.group), bank.earliest_col)
            WR : max(col_wr, ccd_t(bank.group), bank.earliest_col)

        where ``ccd_t(group)`` is ``ccd_same_t`` when ``group ==
        col_group`` else ``ccd_diff_t``.  Each formula folds exactly the
        terms of the corresponding ``earliest_*`` query, so the combined
        value is bit-identical to calling it — the scan just stops
        recomputing the shared terms per bank.
        """
        base = now if now > self.next_cmd_free else self.next_cmd_free
        act = max(base, self.last_act_any + self._act_act)
        if len(self.act_window) >= 4:
            faw = self.act_window[-4] + self._tfaw
            if faw > act:
                act = faw
        col_rd = max(
            base,
            self.data_bus_free - self._rd_lead,
            self.last_write_data_end + self._wr2rd,
        )
        col_wr = max(
            base,
            self.data_bus_free - self._wr_lead,
            self.last_read_data_end + self._rd2wr,
        )
        last_col = self.last_col_cmd
        return (
            base,
            act,
            col_rd,
            col_wr,
            last_col + self._ccd_same,
            last_col + self._ccd_diff,
            self.last_col_group,
        )

    def earliest_for_request(
        self, bank_idx: int, row: int, is_write: bool, now: int
    ) -> int:
        """Earliest instant the *first* command of a request could issue.

        Used by schedulers for look-ahead; does not account for the serial
        PRE/ACT/COL sequence a row-miss needs beyond its first command.
        """
        b = self.banks[bank_idx]
        if b.open_row == row:
            return self.earliest_col(bank_idx, is_write, now)
        if b.open_row is None:
            return self.earliest_act(bank_idx, now)
        return self.earliest_pre(bank_idx, now)

    # ------------------------------------------------------------------
    # issue actions (caller must respect the earliest-issue times)
    # ------------------------------------------------------------------
    def _consume_cmd_bus(self, now: int) -> None:
        self.next_cmd_free = now + self._tck
        self.commands_issued += 1
        self.version += 1

    def issue_act(self, bank_idx: int, row: int, now: int) -> None:
        b = self.banks[bank_idx]
        b.do_activate(now, row, self.t)
        self.last_act_any = now
        self.act_window.append(now)
        if len(self.act_window) > 8:
            del self.act_window[:4]
        self._consume_cmd_bus(now)
        if self.probe:
            from repro.dram.commands import CommandKind

            self.probe.emit(self.probe_ctx, CommandKind.ACT, bank_idx, now)
        if self.log is not None:
            from repro.dram.commands import CommandKind

            self.log.record(now, CommandKind.ACT, bank_idx, row)

    def issue_pre(self, bank_idx: int, now: int) -> None:
        self.banks[bank_idx].do_precharge(now, self.t)
        self._consume_cmd_bus(now)
        if self.probe:
            from repro.dram.commands import CommandKind

            self.probe.emit(self.probe_ctx, CommandKind.PRE, bank_idx, now)
        if self.log is not None:
            from repro.dram.commands import CommandKind

            self.log.record(now, CommandKind.PRE, bank_idx)

    def issue_col(self, bank_idx: int, is_write: bool, now: int) -> int:
        """Issue RD/WR (one line-sized access); returns data completion time."""
        b = self.banks[bank_idx]
        data_end = b.do_column(now, is_write, self.t, self.bursts_per_access)
        self.last_col_cmd = now
        self.last_col_group = b.group
        self.data_bus_free = data_end
        self.data_bus_busy_ps += self.bursts_per_access * self._tburst
        if is_write:
            self.last_write_data_end = data_end
        else:
            self.last_read_data_end = data_end
        self._consume_cmd_bus(now)
        if self.probe:
            from repro.dram.commands import CommandKind

            kind = CommandKind.WR if is_write else CommandKind.RD
            self.probe.emit(self.probe_ctx, kind, bank_idx, now)
        if self.log is not None:
            from repro.dram.commands import CommandKind

            lead = self.t.twl_ps if is_write else self.t.tcas_ps
            self.log.record(
                now,
                CommandKind.WR if is_write else CommandKind.RD,
                bank_idx,
                b.open_row if b.open_row is not None else -1,
                data_start_ps=now + lead,
                data_end_ps=data_end,
            )
        return data_end

    # ------------------------------------------------------------------
    # convenience queries for schedulers
    # ------------------------------------------------------------------
    def open_row(self, bank_idx: int):
        return self.banks[bank_idx].open_row

    def is_row_hit(self, bank_idx: int, row: int) -> bool:
        return self.banks[bank_idx].open_row == row

    def hits_since_act(self, bank_idx: int) -> int:
        return self.banks[bank_idx].hits_since_act

    def total_activates(self) -> int:
        return sum(b.acts for b in self.banks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        open_rows = {b.index: b.open_row for b in self.banks if b.open_row is not None}
        return f"Channel(open={open_rows}, cmd_free={self.next_cmd_free})"
