"""GDDR5 DRAM device model: banks, channels, timing presets, power."""

from repro.dram.bank import Bank
from repro.dram.channel import Channel
from repro.dram.commands import CommandKind, DRAMCommand
from repro.dram.power import GDDR5PowerParams, PowerBreakdown, estimate_channel_power
from repro.dram.timing import DDR3_TIMING, GDDR5_ORG, GDDR5_TIMING, ddr3_org

__all__ = [
    "Bank",
    "Channel",
    "CommandKind",
    "DDR3_TIMING",
    "DRAMCommand",
    "GDDR5PowerParams",
    "GDDR5_ORG",
    "GDDR5_TIMING",
    "PowerBreakdown",
    "ddr3_org",
    "estimate_channel_power",
]
