"""Declarative scenario specs (docs/scenarios.md).

A scenario is one experiment expressed as data — DRAM preset + config
overrides, workload recipe, scheduler list, scale/seeds, kept metrics
and an optional figure — in a versioned YAML/JSON file.  The committed
library lives in ``scenarios/``; ``repro scenario run|list|validate``
and ``repro sweep --spec`` consume them.
"""

from repro.scenarios.loader import find_specs, load_spec, validate_spec_file
from repro.scenarios.runner import ScenarioResult, build_runner, run_scenario
from repro.scenarios.spec import (
    KNOWN_METRICS,
    SPEC_VERSION,
    FigureRecipe,
    ScenarioSpec,
    SpecError,
    WorkloadSpec,
)

__all__ = [
    "KNOWN_METRICS",
    "SPEC_VERSION",
    "FigureRecipe",
    "ScenarioResult",
    "ScenarioSpec",
    "SpecError",
    "WorkloadSpec",
    "build_runner",
    "find_specs",
    "load_spec",
    "run_scenario",
    "validate_spec_file",
]
