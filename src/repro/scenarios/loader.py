"""Scenario spec loading and validation (YAML/JSON -> ScenarioSpec).

Every schema violation raises :class:`SpecError` carrying the spec file,
the offending field's dotted path and — for YAML — its *line number*,
recovered from the YAML node tree (``yaml.compose``) that mirrors the
parsed data.  JSON specs get file+field-accurate errors (the stdlib
parser only exposes line numbers for syntax errors).

Config-level problems reuse the real validators: override paths are
checked against the live :class:`SimConfig` field tree
(:mod:`repro.core.overrides`) and resolved configs run
:meth:`SimConfig.validate`, so a spec can never express a config the
constructor would reject — and the constructor's one-line physics
errors surface *as spec errors at the overrides block*, not tracebacks.
"""

from __future__ import annotations

import os
from typing import Optional

import repro.idealized  # noqa: F401  (registers zero-div)
from repro.core.config import SimConfig
from repro.core.overrides import OverrideError, apply_override
from repro.dram.timing import DRAM_PRESETS
from repro.mc.registry import SCHEDULERS
from repro.scenarios.spec import (
    KNOWN_METRICS,
    SPEC_VERSION,
    WORKLOAD_KINDS,
    FigureRecipe,
    ScenarioSpec,
    SpecError,
    WorkloadSpec,
)
from repro.workloads.profiles import ALL_PROFILES
from repro.workloads.suite import Scale, benchmark_names
from repro.workloads.trace import TraceFormatError, load_trace_file

__all__ = ["find_specs", "load_spec", "validate_spec_file"]

_TOP_KEYS = {
    "spec_version",
    "name",
    "description",
    "preset",
    "overrides",
    "workload",
    "schedulers",
    "scale",
    "seeds",
    "perfect",
    "metrics",
    "figure",
    "sweep",
}
_WORKLOAD_KEYS = {"kind", "benchmarks", "traces"}
_FIGURE_KEYS = {"metric", "normalize_to", "title"}
_SWEEP_KEYS = {"workers", "timeout_s", "retries"}


# ----------------------------------------------------------------------
# document reading (data + line map)
# ----------------------------------------------------------------------
def _require_yaml(path: str):
    try:
        import yaml
    except ImportError:  # pragma: no cover - baked into the toolchain
        raise SpecError(
            "reading YAML specs needs the PyYAML package (pip install "
            "pyyaml); JSON specs work without it",
            path=path,
        ) from None
    return yaml


def _yaml_line_map(yaml_mod, text: str) -> dict[tuple, int]:
    """{field-path-tuple: 1-based line} for every node in the document.

    Mapping entries are located at their *key* token, sequence elements
    at the element itself — the line a human would point at.
    """
    lines: dict[tuple, int] = {}
    try:
        root = yaml_mod.compose(text)
    except yaml_mod.YAMLError:
        return lines
    if root is None:
        return lines

    def walk(node, prefix: tuple) -> None:
        lines.setdefault(prefix, node.start_mark.line + 1)
        if isinstance(node, yaml_mod.MappingNode):
            for key_node, value_node in node.value:
                key = str(key_node.value)
                lines[prefix + (key,)] = key_node.start_mark.line + 1
                walk(value_node, prefix + (key,))
        elif isinstance(node, yaml_mod.SequenceNode):
            for i, item in enumerate(node.value):
                walk(item, prefix + (str(i),))

    walk(root, ())
    return lines


def _read_document(path: str) -> tuple[object, dict[tuple, int]]:
    try:
        with open(path) as fh:
            text = fh.read()
    except OSError as exc:
        raise SpecError(f"unreadable spec file ({exc})", path=path) from exc
    if path.endswith(".json"):
        import json

        try:
            return json.loads(text), {}
        except json.JSONDecodeError as exc:
            raise SpecError(
                f"not valid JSON: {exc.msg}", path=path, line=exc.lineno
            ) from exc
    yaml_mod = _require_yaml(path)
    try:
        data = yaml_mod.safe_load(text)
    except yaml_mod.YAMLError as exc:
        line = None
        mark = getattr(exc, "problem_mark", None)
        if mark is not None:
            line = mark.line + 1
        raise SpecError(f"not valid YAML: {exc}", path=path, line=line) from exc
    return data, _yaml_line_map(yaml_mod, text)


# ----------------------------------------------------------------------
# validation cursor
# ----------------------------------------------------------------------
def _dotted(parts: tuple) -> str:
    out = ""
    for p in parts:
        out += f"[{p}]" if p.isdigit() else (f".{p}" if out else p)
    return out


class _Ctx:
    """Carries (file, line map) so checks can raise located errors."""

    def __init__(self, path: str, lines: dict[tuple, int]) -> None:
        self.path = path
        self.lines = lines

    def fail(self, where: tuple, message: str) -> "SpecError":
        line = self.lines.get(where)
        # Fall back to the nearest located ancestor (JSON has no map).
        probe = where
        while line is None and probe:
            probe = probe[:-1]
            line = self.lines.get(probe)
        return SpecError(
            message, path=self.path, line=line, spec_field=_dotted(where)
        )

    def str_at(self, doc: dict, where: tuple, *, required: bool = False,
               default: str = "") -> str:
        value = doc.get(where[-1])
        if value is None and not required:
            return default
        if not isinstance(value, str) or not value:
            raise self.fail(where, f"must be a non-empty string, got {value!r}")
        return value

    def str_list_at(self, value, where: tuple, what: str) -> list[str]:
        if not isinstance(value, list) or not value:
            raise self.fail(where, f"must be a non-empty list of {what}")
        for i, item in enumerate(value):
            if not isinstance(item, str) or not item:
                raise self.fail(
                    where + (str(i),),
                    f"each entry must be a non-empty string, got {item!r}",
                )
        return value


def _check_unknown_keys(
    ctx: _Ctx, doc: dict, allowed: set[str], where: tuple
) -> None:
    for key in doc:
        if key not in allowed:
            raise ctx.fail(
                where + (str(key),),
                f"unknown key {key!r} (allowed: {', '.join(sorted(allowed))})",
            )


# ----------------------------------------------------------------------
# section validators
# ----------------------------------------------------------------------
def _validate_workload(ctx: _Ctx, doc: dict, spec_dir: str) -> WorkloadSpec:
    raw = doc.get("workload")
    if not isinstance(raw, dict):
        raise ctx.fail(
            ("workload",),
            "required section: {kind: synthetic|algorithmic|trace, "
            "benchmarks: [...] or traces: {...}}",
        )
    _check_unknown_keys(ctx, raw, _WORKLOAD_KEYS, ("workload",))
    kind = raw.get("kind")
    if kind not in WORKLOAD_KINDS:
        raise ctx.fail(
            ("workload", "kind"),
            f"must be one of {', '.join(WORKLOAD_KINDS)}, got {kind!r}",
        )
    if kind == "trace":
        if "benchmarks" in raw:
            raise ctx.fail(
                ("workload", "benchmarks"),
                "a trace workload lists 'traces', not 'benchmarks'",
            )
        traces = raw.get("traces")
        if not isinstance(traces, dict) or not traces:
            raise ctx.fail(
                ("workload", "traces"),
                "must be a non-empty mapping of name -> trace file path",
            )
        resolved: dict[str, str] = {}
        for name, rel in traces.items():
            where = ("workload", "traces", str(name))
            if not isinstance(rel, str) or not rel:
                raise ctx.fail(where, f"must be a file path, got {rel!r}")
            full = rel if os.path.isabs(rel) else os.path.join(spec_dir, rel)
            if not os.path.exists(full):
                raise ctx.fail(where, f"trace file not found: {full}")
            resolved[str(name)] = full
        return WorkloadSpec(kind=kind, traces=resolved)
    if "traces" in raw:
        raise ctx.fail(
            ("workload", "traces"),
            f"'traces' only applies to kind: trace (this is {kind!r})",
        )
    benches = ctx.str_list_at(
        raw.get("benchmarks"), ("workload", "benchmarks"), "benchmark names"
    )
    valid = set(ALL_PROFILES) if kind == "synthetic" else set(benchmark_names())
    for i, bench in enumerate(benches):
        if bench not in valid:
            hint = (
                " (no synthetic profile — try kind: algorithmic)"
                if kind == "synthetic" and bench in benchmark_names()
                else ""
            )
            raise ctx.fail(
                ("workload", "benchmarks", str(i)),
                f"unknown benchmark {bench!r} for kind {kind!r}{hint}; "
                f"choose from {', '.join(sorted(valid))}",
            )
    return WorkloadSpec(kind=kind, benchmarks=tuple(benches))


def _validate_figure(
    ctx: _Ctx, doc: dict, schedulers: tuple[str, ...]
) -> Optional[FigureRecipe]:
    raw = doc.get("figure")
    if raw is None:
        return None
    if not isinstance(raw, dict):
        raise ctx.fail(("figure",), "must be a mapping (metric, normalize_to, title)")
    _check_unknown_keys(ctx, raw, _FIGURE_KEYS, ("figure",))
    metric = raw.get("metric")
    if metric not in KNOWN_METRICS:
        raise ctx.fail(
            ("figure", "metric"),
            f"unknown metric {metric!r}; choose from {', '.join(KNOWN_METRICS)}",
        )
    normalize_to = raw.get("normalize_to") or ""
    if normalize_to and normalize_to not in schedulers:
        raise ctx.fail(
            ("figure", "normalize_to"),
            f"{normalize_to!r} is not in this scenario's schedulers list",
        )
    title = raw.get("title") or ""
    if not isinstance(title, str):
        raise ctx.fail(("figure", "title"), f"must be a string, got {title!r}")
    return FigureRecipe(metric=metric, normalize_to=normalize_to, title=title)


def _validate_sweep_opts(ctx: _Ctx, doc: dict) -> dict:
    raw = doc.get("sweep")
    if raw is None:
        return {}
    if not isinstance(raw, dict):
        raise ctx.fail(("sweep",), "must be a mapping (workers, timeout_s, retries)")
    _check_unknown_keys(ctx, raw, _SWEEP_KEYS, ("sweep",))
    out: dict = {}
    for key, minimum in (("workers", 0), ("retries", 0)):
        if key in raw:
            v = raw[key]
            if not isinstance(v, int) or isinstance(v, bool) or v < minimum:
                raise ctx.fail(
                    ("sweep", key), f"must be an integer >= {minimum}, got {v!r}"
                )
            out[key] = v
    if "timeout_s" in raw:
        v = raw["timeout_s"]
        if not isinstance(v, (int, float)) or isinstance(v, bool) or v <= 0:
            raise ctx.fail(
                ("sweep", "timeout_s"), f"must be a positive number, got {v!r}"
            )
        out["timeout_s"] = float(v)
    return out


def _validate_overrides(ctx: _Ctx, doc: dict) -> dict[str, object]:
    raw = doc.get("overrides")
    if raw is None:
        return {}
    if not isinstance(raw, dict):
        raise ctx.fail(
            ("overrides",), "must be a mapping of dotted.field.path -> value"
        )
    base = SimConfig()
    out: dict[str, object] = {}
    for key, value in raw.items():
        where = ("overrides", str(key))
        if not isinstance(key, str):
            raise ctx.fail(where, f"field path must be a string, got {key!r}")
        if not isinstance(value, (str, int, float, bool)):
            raise ctx.fail(
                where, f"value must be a scalar, got {type(value).__name__}"
            )
        # Path check only: re-applying the *current* value is a no-op
        # that cannot trip cross-field validation, but walks the same
        # field tree (and produces the same errors) a real edit would.
        try:
            node = base
            for part in key.split("."):
                probe = getattr(node, part, None)
                if probe is None:
                    break
                node = probe
            apply_override(base, key, node)
        except OverrideError as exc:
            raise ctx.fail(where, str(exc)) from exc
        out[key] = value
    return out


def _resolve_config(ctx: _Ctx, spec: ScenarioSpec) -> SimConfig:
    """Build the base config, turning constructor rejections into located
    one-line spec errors (the PR 4 ``--set`` usage-error treatment)."""
    try:
        return spec.resolved_config()
    except OverrideError as exc:  # path errors are pre-checked; belt+braces
        raise ctx.fail(("overrides",), str(exc)) from exc
    except (ValueError, TypeError) as exc:
        raise ctx.fail(("overrides",), f"invalid configuration: {exc}") from exc


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------
def load_spec(path: str, *, check_traces: bool = False) -> ScenarioSpec:
    """Parse + fully validate one spec file; raises :class:`SpecError`.

    ``check_traces=True`` additionally parses every referenced trace
    file (``repro scenario validate`` uses this; plain loading only
    checks existence so huge traces aren't read twice per run).
    """
    doc, lines = _read_document(path)
    ctx = _Ctx(path, lines)
    if not isinstance(doc, dict):
        raise SpecError(
            "top level must be a mapping of spec fields", path=path, line=1
        )
    _check_unknown_keys(ctx, doc, _TOP_KEYS, ())

    version = doc.get("spec_version")
    if version != SPEC_VERSION:
        raise ctx.fail(
            ("spec_version",),
            f"must be {SPEC_VERSION} (this build's spec format), "
            f"got {version!r}",
        )
    name = ctx.str_at(doc, ("name",), required=True)
    if not all(c.isalnum() or c in "-_" for c in name):
        raise ctx.fail(
            ("name",),
            f"must be a slug of [a-zA-Z0-9_-], got {name!r} "
            "(it keys cache entries and history records)",
        )
    description = ctx.str_at(doc, ("description",))

    preset = doc.get("preset", "gddr5")
    if preset not in DRAM_PRESETS:
        raise ctx.fail(
            ("preset",),
            f"unknown DRAM preset {preset!r}; choose from "
            f"{', '.join(sorted(DRAM_PRESETS))}",
        )

    overrides = _validate_overrides(ctx, doc)
    spec_dir = os.path.dirname(os.path.abspath(path))
    workload = _validate_workload(ctx, doc, spec_dir)

    schedulers = tuple(
        ctx.str_list_at(doc.get("schedulers"), ("schedulers",), "scheduler names")
    )
    for i, sched in enumerate(schedulers):
        if sched not in SCHEDULERS:
            raise ctx.fail(
                ("schedulers", str(i)),
                f"unknown scheduler {sched!r}; choose from "
                f"{', '.join(sorted(SCHEDULERS))}",
            )

    raw_scale = doc.get("scale", "quick")
    if not isinstance(raw_scale, str) or raw_scale.upper() not in Scale.__members__:
        raise ctx.fail(
            ("scale",),
            f"must be one of {', '.join(s.name.lower() for s in Scale)}, "
            f"got {raw_scale!r}",
        )
    scale = raw_scale.upper()

    raw_seeds = doc.get("seeds", [1])
    if not isinstance(raw_seeds, list) or not raw_seeds:
        raise ctx.fail(("seeds",), "must be a non-empty list of integers")
    seeds: list[int] = []
    for i, s in enumerate(raw_seeds):
        if not isinstance(s, int) or isinstance(s, bool):
            raise ctx.fail(
                ("seeds", str(i)), f"must be an integer, got {s!r}"
            )
        if s not in seeds:
            seeds.append(s)

    perfect = doc.get("perfect", False)
    if not isinstance(perfect, bool):
        raise ctx.fail(("perfect",), f"must be true/false, got {perfect!r}")

    raw_metrics = doc.get("metrics", [])
    if raw_metrics is None:
        raw_metrics = []
    if not isinstance(raw_metrics, list):
        raise ctx.fail(("metrics",), "must be a list of summary metric names")
    for i, m in enumerate(raw_metrics):
        if m not in KNOWN_METRICS:
            raise ctx.fail(
                ("metrics", str(i)),
                f"unknown metric {m!r}; choose from {', '.join(KNOWN_METRICS)}",
            )

    figure = _validate_figure(ctx, doc, schedulers)
    sweep_opts = _validate_sweep_opts(ctx, doc)

    spec = ScenarioSpec(
        name=name,
        description=description,
        preset=preset,
        overrides=overrides,
        workload=workload,
        schedulers=schedulers,
        scale=scale,
        seeds=tuple(seeds),
        perfect=perfect,
        metrics=tuple(raw_metrics),
        figure=figure,
        source=os.path.abspath(path),
        **sweep_opts,
    )
    _resolve_config(ctx, spec)  # constructor-level validation, located
    if check_traces:
        for tname, tpath in workload.traces.items():
            try:
                load_trace_file(tpath)
            except TraceFormatError as exc:
                raise ctx.fail(
                    ("workload", "traces", tname), f"broken trace: {exc}"
                ) from exc
    return spec


def find_specs(directory: str) -> list[str]:
    """Spec files directly inside ``directory`` (``*.yaml``/``*.yml``/
    ``*.json``), sorted.  ``*.trace.json`` files are trace payloads, not
    specs, and are skipped."""
    try:
        entries = sorted(os.listdir(directory))
    except OSError as exc:
        raise SpecError(f"cannot list spec directory ({exc})", path=directory)
    out = []
    for entry in entries:
        if entry.endswith(".trace.json"):
            continue
        if entry.endswith((".yaml", ".yml", ".json")):
            out.append(os.path.join(directory, entry))
    return out


def validate_spec_file(path: str) -> Optional[SpecError]:
    """The error one spec file fails with, or None when it is valid."""
    try:
        load_spec(path, check_traces=True)
    except SpecError as exc:
        return exc
    return None
