"""Scenario spec model: what a declarative experiment *is*.

A scenario is one sweep expressed as data — DRAM preset + config
overrides, a workload recipe, a scheduler list, scale and seeds, which
summary metrics to keep, and an optional figure recipe.  The YAML/JSON
surface and its validation live in :mod:`repro.scenarios.loader`; this
module holds the validated in-memory form and the error type both share.

``spec_version`` is the compatibility contract: a build only runs specs
whose version it knows (:data:`SPEC_VERSION`), so a future breaking spec
change cannot be silently misread.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.runner import config_hash
from repro.core.config import SimConfig

__all__ = [
    "KNOWN_METRICS",
    "SPEC_VERSION",
    "FigureRecipe",
    "ScenarioSpec",
    "SpecError",
    "WorkloadSpec",
]

SPEC_VERSION = 1

WORKLOAD_KINDS = ("synthetic", "algorithmic", "trace")

#: Summary keys a spec's ``metrics:`` list may select — the simulator's
#: headline summary plus the runner's figure extras.  Pinned against the
#: real summary keys by ``tests/test_scenarios.py``.
KNOWN_METRICS = (
    "ipc",
    "effective_latency_ns",
    "divergence_ns",
    "frac_divergent_loads",
    "requests_per_load",
    "requests_issued",
    "channels_per_warp",
    "bandwidth_utilization",
    "row_hit_rate",
    "last_over_first",
    "write_intensity",
    "elapsed_ns",
    "l1_hits",
    "l2_hits",
    "unit_group_frac",
    "banks_per_warp",
    "activates",
    "reads",
    "writes",
)


class SpecError(ValueError):
    """A scenario spec is malformed, with file/line-accurate location.

    ``str()`` renders one line — ``file.yaml:12: workload.kind: ...`` —
    which is exactly what ``repro scenario validate`` prints; the CLI
    never shows a traceback for a bad spec.
    """

    def __init__(
        self,
        message: str,
        *,
        path: str = "",
        line: Optional[int] = None,
        spec_field: str = "",
    ) -> None:
        self.path = path
        self.line = line
        self.spec_field = spec_field
        prefix = path or "<spec>"
        if line is not None:
            prefix += f":{line}"
        if spec_field:
            prefix += f": {spec_field}"
        super().__init__(f"{prefix}: {message}")


@dataclass(frozen=True)
class WorkloadSpec:
    """What the sweep runs: suite benchmarks or external trace files."""

    kind: str  # synthetic | algorithmic | trace
    benchmarks: tuple[str, ...] = ()
    #: ``trace`` kind: name -> file path (resolved relative to the spec).
    traces: dict[str, str] = field(default_factory=dict)

    @property
    def names(self) -> tuple[str, ...]:
        return self.benchmarks if self.kind != "trace" else tuple(self.traces)


@dataclass(frozen=True)
class FigureRecipe:
    """Optional per-scenario figure: one metric, optionally normalized."""

    metric: str
    normalize_to: str = ""  # scheduler name, "" = absolute values
    title: str = ""


@dataclass(frozen=True)
class ScenarioSpec:
    """A fully validated scenario (see docs/scenarios.md for the schema)."""

    name: str
    workload: WorkloadSpec
    schedulers: tuple[str, ...]
    description: str = ""
    preset: str = "gddr5"
    overrides: dict[str, object] = field(default_factory=dict)
    scale: str = "QUICK"  # Scale enum name
    seeds: tuple[int, ...] = (1,)
    perfect: bool = False
    metrics: tuple[str, ...] = ()
    figure: Optional[FigureRecipe] = None
    workers: int = 4
    timeout_s: Optional[float] = None
    retries: int = 1
    #: Where the spec was loaded from ("" for programmatic specs); trace
    #: paths are resolved relative to this file's directory.
    source: str = ""

    def resolved_config(self) -> SimConfig:
        """Preset + overrides -> the sweep's base :class:`SimConfig`.

        Raising variant — callers wanting spec-path errors go through
        :func:`repro.scenarios.loader.resolve_config`.
        """
        from repro.core.overrides import apply_overrides
        from repro.dram.timing import get_preset

        preset = get_preset(self.preset)
        cfg = SimConfig(dram_timing=preset.timing, dram_org=preset.org)
        return apply_overrides(cfg, self.overrides)

    def spec_hash(self) -> str:
        """12-hex content hash over the *resolved* scenario.

        Covers the resolved config (via :func:`config_hash`, the same
        identity the sweep cache uses) plus every run coordinate, so two
        spellings of the same experiment — a preset name vs. equivalent
        overrides — hash identically, and any semantic change re-keys.
        """
        doc = {
            "spec_version": SPEC_VERSION,
            "name": self.name,
            "config_hash": config_hash(self.resolved_config()),
            "workload": {
                "kind": self.workload.kind,
                "benchmarks": list(self.workload.benchmarks),
                "traces": dict(sorted(self.workload.traces.items())),
            },
            "schedulers": list(self.schedulers),
            "scale": self.scale,
            "seeds": list(self.seeds),
            "perfect": self.perfect,
            "metrics": list(self.metrics),
            "figure": dataclasses.asdict(self.figure) if self.figure else None,
        }
        payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]

    @property
    def n_jobs(self) -> int:
        return (
            len(self.workload.names) * len(self.schedulers) * len(self.seeds)
        )
