"""Execute a validated :class:`ScenarioSpec` through the sweep harness.

``run_scenario`` is the one entry point both CLI surfaces share
(``repro scenario run`` and ``repro sweep --spec``): it builds the
resolved-config :class:`ExperimentRunner`, drives ``run_sweep`` with the
scenario's name+hash stamped into the report (and so into the history
store), then collects the spec's kept metrics into a per-benchmark ×
per-scheduler table — including the optional figure recipe's normalized
view.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.analysis import format_table
from repro.analysis.runner import ExperimentRunner, atomic_write_json, config_hash
from repro.analysis.sweep import SweepReport, run_sweep
from repro.scenarios.spec import ScenarioSpec
from repro.workloads.suite import Scale

__all__ = ["ScenarioResult", "build_runner", "run_scenario"]

#: Metrics kept when a spec's ``metrics:`` list is empty.
DEFAULT_METRICS = (
    "ipc",
    "effective_latency_ns",
    "divergence_ns",
    "row_hit_rate",
    "bandwidth_utilization",
)


@dataclass
class ScenarioResult:
    """Everything one scenario execution produced."""

    spec: ScenarioSpec
    spec_hash: str
    config_hash: str
    report: SweepReport
    #: benchmark -> scheduler -> metric -> seed-mean value.
    metrics: dict[str, dict[str, dict[str, float]]] = field(default_factory=dict)
    #: figure recipe values (normalized when the recipe asks for it):
    #: benchmark -> scheduler -> value.  Empty without a ``figure:`` block.
    figure: dict[str, dict[str, float]] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "scenario": self.spec.name,
            "description": self.spec.description,
            "spec_hash": self.spec_hash,
            "config_hash": self.config_hash,
            "preset": self.spec.preset,
            "scale": self.spec.scale,
            "metrics": self.metrics,
            "figure": self.figure,
            "sweep": self.report.to_dict(),
        }

    def write(self, path: str) -> None:
        atomic_write_json(path, self.to_dict())

    def format(self) -> str:
        """Human tables: kept metrics per benchmark, plus the figure."""
        kept = list(self.spec.metrics or DEFAULT_METRICS)
        blocks = []
        for bench, per_sched in self.metrics.items():
            rows = [
                [sched, *(per_sched[sched].get(m, 0.0) for m in kept)]
                for sched in self.spec.schedulers
                if sched in per_sched
            ]
            blocks.append(
                format_table(
                    ["scheduler", *kept], rows,
                    title=f"{self.spec.name}: {bench}",
                )
            )
        if self.figure:
            recipe = self.spec.figure
            label = recipe.metric + (
                f" (vs {recipe.normalize_to})" if recipe.normalize_to else ""
            )
            rows = [
                [bench, *(per_sched.get(s, 0.0) for s in self.spec.schedulers)]
                for bench, per_sched in self.figure.items()
            ]
            blocks.append(
                format_table(
                    ["benchmark", *self.spec.schedulers], rows,
                    title=recipe.title or f"{self.spec.name}: {label}",
                )
            )
        return "\n\n".join(blocks)


def build_runner(
    spec: ScenarioSpec,
    *,
    cache_dir: str = ".repro-results",
    scale: Optional[str] = None,
) -> ExperimentRunner:
    """The :class:`ExperimentRunner` a scenario resolves to.

    ``scale`` overrides the spec's scale (a Scale name) — the CLI's
    ``--scale`` lets one spec serve CI (tiny) and real runs unchanged.
    """
    return ExperimentRunner(
        config=spec.resolved_config(),
        scale=Scale[(scale or spec.scale).upper()],
        seeds=spec.seeds,
        kind=spec.workload.kind,
        cache_dir=cache_dir,
        trace_paths=spec.workload.traces or None,
    )


def _collect_metrics(
    spec: ScenarioSpec, runner: ExperimentRunner
) -> dict[str, dict[str, dict[str, float]]]:
    kept = spec.metrics or DEFAULT_METRICS
    out: dict[str, dict[str, dict[str, float]]] = {}
    for bench in spec.workload.names:
        per_sched: dict[str, dict[str, float]] = {}
        for sched in spec.schedulers:
            mean = runner.mean(bench, sched, spec.perfect)
            per_sched[sched] = {m: mean.get(m, 0.0) for m in kept}
        out[bench] = per_sched
    return out


def _collect_figure(
    spec: ScenarioSpec, metrics: dict[str, dict[str, dict[str, float]]]
) -> dict[str, dict[str, float]]:
    if spec.figure is None:
        return {}
    recipe = spec.figure
    out: dict[str, dict[str, float]] = {}
    for bench, per_sched in metrics.items():
        base = 1.0
        if recipe.normalize_to:
            base = per_sched[recipe.normalize_to].get(recipe.metric, 0.0) or 1.0
        out[bench] = {
            sched: vals.get(recipe.metric, 0.0) / base
            for sched, vals in per_sched.items()
        }
    return out


def run_scenario(
    spec: ScenarioSpec,
    *,
    cache_dir: str = ".repro-results",
    workers: Optional[int] = None,
    timeout_s: Optional[float] = None,
    retries: Optional[int] = None,
    resume: bool = False,
    scale: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
    history: bool = True,
    cluster_dir: Optional[str] = None,
) -> ScenarioResult:
    """Run the scenario's full grid and collect its kept metrics.

    Caching and identity are exactly the plain sweep's: the resolved
    config's content hash keys every cache entry, so a scenario that
    resolves to a config some earlier run (spec'd or hand-coded) already
    swept is served bit-identically from cache.  Failed jobs raise (the
    scenario's tables would silently hold zeros otherwise).

    ``cluster_dir`` drains the grid through the distributed backend
    (docs/distributed.md) instead of the local pool; results, caching,
    and the collected metrics are identical either way.
    """
    os.makedirs(cache_dir, exist_ok=True)
    runner = build_runner(spec, cache_dir=cache_dir, scale=scale)
    spec_hash = spec.spec_hash()
    report = run_sweep(
        runner,
        list(spec.workload.names),
        list(spec.schedulers),
        perfect=spec.perfect,
        workers=spec.workers if workers is None else workers,
        timeout_s=spec.timeout_s if timeout_s is None else timeout_s,
        retries=spec.retries if retries is None else retries,
        resume=resume,
        progress=progress,
        history=history,
        scenario_name=spec.name,
        scenario_hash=spec_hash,
        cluster_dir=cluster_dir,
    )
    report.raise_on_failure()
    metrics = _collect_metrics(spec, runner)
    return ScenarioResult(
        spec=spec,
        spec_hash=spec_hash,
        config_hash=config_hash(runner.config),
        report=report,
        metrics=metrics,
        figure=_collect_figure(spec, metrics),
    )
