"""Command-line interface: ``python -m repro``.

Subcommands:

* ``run BENCH``   — simulate one benchmark under one scheduler and print
  the summary metrics;
* ``compare BENCH`` — all schedulers on one benchmark;
* ``reproduce``   — regenerate the paper's tables and figures;
* ``list``        — available benchmarks and schedulers.
"""

from __future__ import annotations

import argparse
import sys

import repro.idealized  # noqa: F401  (registers zero-div)
from repro import (
    ALL_PROFILES,
    SCHEDULERS,
    Scale,
    SimConfig,
    benchmark_names,
    build_benchmark,
    simulate,
    synthetic_trace,
)
from repro.analysis import format_table, run_all


def _trace(args, cfg):
    if args.kind == "synthetic":
        return synthetic_trace(
            ALL_PROFILES[args.benchmark], cfg, seed=args.seed,
            scale=Scale[args.scale.upper()].factor,
        )
    return build_benchmark(
        args.benchmark, cfg, Scale[args.scale.upper()], seed=args.seed
    )


def cmd_run(args) -> int:
    cfg = SimConfig(scheduler=args.scheduler)
    stats = simulate(cfg, _trace(args, cfg))
    for key, value in stats.summary().items():
        print(f"{key:24s} {value:.4f}")
    return 0


def cmd_compare(args) -> int:
    cfg = SimConfig()
    trace = _trace(args, cfg)
    rows = []
    base = None
    for sched in ("gmc", "wg", "wg-m", "wg-bw", "wg-w"):
        s = simulate(cfg.with_scheduler(sched), trace).summary()
        if base is None:
            base = s["ipc"]
        rows.append([sched, s["ipc"], s["ipc"] / base, s["effective_latency_ns"],
                     s["divergence_ns"], s["bandwidth_utilization"]])
    print(format_table(
        ["scheduler", "IPC", "vs GMC", "stall ns", "div ns", "bus util"],
        rows, title=args.benchmark,
    ))
    return 0


def cmd_reproduce(args) -> int:
    results = run_all(
        scale=Scale[args.scale.upper()], seeds=tuple(args.seeds),
        kind=args.kind, cache_dir=args.cache_dir, verbose=True,
    )
    for res in results.values():
        print()
        print(res)
    return 0


def cmd_list(_args) -> int:
    print("benchmarks:", ", ".join(benchmark_names()))
    print("schedulers:", ", ".join(sorted(SCHEDULERS)))
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = ap.add_subparsers(dest="cmd", required=True)

    def common(p):
        p.add_argument("--scale", default="quick",
                       choices=[s.name.lower() for s in Scale])
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--kind", default="synthetic",
                       choices=["synthetic", "algorithmic"])

    p_run = sub.add_parser("run", help="simulate one benchmark")
    p_run.add_argument("benchmark", choices=sorted(benchmark_names()))
    p_run.add_argument("--scheduler", default="wg-w", choices=sorted(SCHEDULERS))
    common(p_run)
    p_run.set_defaults(fn=cmd_run)

    p_cmp = sub.add_parser("compare", help="all paper schedulers on a benchmark")
    p_cmp.add_argument("benchmark", choices=sorted(benchmark_names()))
    common(p_cmp)
    p_cmp.set_defaults(fn=cmd_compare)

    p_rep = sub.add_parser("reproduce", help="regenerate the paper's evaluation")
    p_rep.add_argument("--scale", default="quick",
                       choices=[s.name.lower() for s in Scale])
    p_rep.add_argument("--seeds", type=int, nargs="+", default=[1, 2])
    p_rep.add_argument("--kind", default="synthetic",
                       choices=["synthetic", "algorithmic"])
    p_rep.add_argument("--cache-dir", default=".repro-results")
    p_rep.set_defaults(fn=cmd_reproduce)

    p_list = sub.add_parser("list", help="available benchmarks and schedulers")
    p_list.set_defaults(fn=cmd_list)

    args = ap.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
